"""Tests for warp-level collective primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.counters import CostCounters
from repro.gpusim.warp import WARP_SIZE, WarpModel


@pytest.fixture
def warp():
    return WarpModel(CostCounters())


class TestReductions:
    def test_reduce_max(self, warp):
        assert warp.reduce_max(np.array([1.0, 5.0, 3.0])) == 5.0

    def test_reduce_max_empty(self, warp):
        assert warp.reduce_max(np.array([])) == float("-inf")

    def test_reduce_sum(self, warp):
        assert warp.reduce_sum(np.array([1.0, 2.0, 3.0])) == 6.0

    def test_reduce_argmax(self, warp):
        assert warp.reduce_argmax(np.array([1.0, 9.0, 3.0])) == 1

    def test_reduce_argmax_empty(self, warp):
        assert warp.reduce_argmax(np.array([])) == -1

    def test_prefix_sum_inclusive(self, warp):
        assert np.array_equal(warp.prefix_sum(np.array([1.0, 2.0, 3.0])), [1.0, 3.0, 6.0])

    def test_reductions_account_elements(self):
        counters = CostCounters()
        warp = WarpModel(counters)
        warp.reduce_max(np.arange(10.0))
        warp.prefix_sum(np.arange(5.0))
        assert counters.reduction_elements == 10
        assert counters.prefix_sum_elements == 5


class TestVotesAndShuffles:
    def test_ballot_mask(self, warp):
        mask = warp.ballot(np.array([True, False, True, True]))
        assert mask == 0b1101

    def test_ballot_counts_sync(self):
        counters = CostCounters()
        warp = WarpModel(counters)
        warp.ballot(np.array([False]))
        assert counters.warp_syncs == 1

    def test_any_sync(self, warp):
        assert warp.any_sync(np.array([False, True]))
        assert not warp.any_sync(np.array([False, False]))

    def test_shfl_broadcast(self, warp):
        assert warp.shfl(np.array([10.0, 20.0, 30.0]), 1) == 20.0

    def test_shfl_out_of_range(self, warp):
        with pytest.raises(IndexError):
            warp.shfl(np.array([1.0]), 5)


class TestLaneChunks:
    def test_strided_assignment_covers_all_indices(self, warp):
        chunks = warp.chunks(100)
        combined = np.sort(np.concatenate(chunks))
        assert np.array_equal(combined, np.arange(100))

    def test_lane_count_capped_by_warp_size(self, warp):
        assert len(warp.chunks(1000)) == WARP_SIZE
        assert len(warp.chunks(5)) == 5

    def test_strided_pattern(self, warp):
        chunks = warp.chunks(64)
        assert np.array_equal(chunks[0], [0, 32])
        assert np.array_equal(chunks[1], [1, 33])
