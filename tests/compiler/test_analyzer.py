"""Tests for the Flexi-Compiler code analyser (dependency checker + flag allocator)."""

from __future__ import annotations

import pytest

from repro.compiler.analyzer import analyze_get_weight
from repro.compiler.flags import BoundGranularity
from repro.graph.csr import CSRGraph
from repro.walks.metapath import MetaPathSpec
from repro.walks.node2vec import Node2VecSpec, UnweightedNode2VecSpec
from repro.walks.second_order_pr import SecondOrderPRSpec
from repro.walks.spec import UniformWalkSpec, WalkSpec
from repro.walks.state import WalkerState


class TestBuiltinWorkloads:
    def test_weighted_node2vec_is_per_step(self):
        analysis = analyze_get_weight(Node2VecSpec())
        assert analysis.supported
        assert analysis.granularity is BoundGranularity.PER_STEP
        assert "h_e" in analysis.edge_indexed_names
        assert analysis.source_array_for("h_e") == "weights"

    def test_unweighted_node2vec_is_per_kernel(self):
        analysis = analyze_get_weight(UnweightedNode2VecSpec())
        assert analysis.supported
        assert analysis.granularity is BoundGranularity.PER_KERNEL

    def test_metapath_reads_weights_and_labels(self):
        analysis = analyze_get_weight(MetaPathSpec())
        assert analysis.supported
        sources = {v.source_array for v in analysis.edge_indexed}
        assert "weights" in sources
        assert "labels" in sources

    def test_second_order_pr_is_per_step(self):
        analysis = analyze_get_weight(SecondOrderPRSpec())
        assert analysis.supported
        assert analysis.granularity is BoundGranularity.PER_STEP

    def test_return_expressions_collected_in_source_order(self):
        analysis = analyze_get_weight(Node2VecSpec())
        # Four return branches: first-step, return-to-prev, unlinked, linked.
        assert len(analysis.return_expressions) == 4
        assert len(analysis.return_dependencies) == 4

    def test_condition_only_variables_do_not_force_fallback(self):
        # `post = graph.indices[edge]` only appears in conditions; the
        # analyser must keep the workload supported.
        analysis = analyze_get_weight(Node2VecSpec())
        assert analysis.supported

    def test_argument_names_recorded(self):
        analysis = analyze_get_weight(Node2VecSpec())
        assert analysis.argument_names == ("self", "graph", "state", "edge")


class _LoopSpec(WalkSpec):
    """Unsupported: a data-dependent loop inside get_weight."""

    name = "loop"

    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        h_e = graph.weights[edge]
        total = 0.0
        while total < h_e:
            total += 1.0
        return total


class _RecursiveSpec(WalkSpec):
    """Unsupported: recursion."""

    name = "recursive"

    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        if edge == 0:
            return 1.0
        return self.get_weight(graph, state, edge - 1)


class _WarpIntrinsicSpec(WalkSpec):
    """Unsupported: inter-thread communication in user code (Section 5.2)."""

    name = "warpy"

    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        h_e = graph.weights[edge]
        self.ballot_sync(h_e)
        return h_e

    def ballot_sync(self, value: float) -> float:  # pragma: no cover - helper
        return value


class _IndexReturnSpec(WalkSpec):
    """Unsupported bound: the return value is the neighbour id itself."""

    name = "index_return"

    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        post = graph.indices[edge]
        return float(post)


class _NoReturnValueSpec(WalkSpec):
    """Degenerate user code with no return expression."""

    name = "no_return"

    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        h_e = graph.weights[edge]
        return None  # type: ignore[return-value]


class TestUnsupportedConstructs:
    def test_loop_triggers_fallback(self):
        analysis = analyze_get_weight(_LoopSpec())
        assert not analysis.supported
        assert any("loop" in w for w in analysis.warnings)

    def test_recursion_triggers_fallback(self):
        analysis = analyze_get_weight(_RecursiveSpec())
        assert not analysis.supported
        assert any("recursive" in w for w in analysis.warnings)

    def test_warp_intrinsics_trigger_fallback(self):
        analysis = analyze_get_weight(_WarpIntrinsicSpec())
        assert not analysis.supported
        assert any("intrinsic" in w for w in analysis.warnings)

    def test_index_based_return_triggers_fallback(self):
        analysis = analyze_get_weight(_IndexReturnSpec())
        assert not analysis.supported
        assert any("non-aggregatable" in w for w in analysis.warnings)

    def test_supported_workloads_have_no_warnings(self):
        assert analyze_get_weight(UniformWalkSpec()).warnings == []


class _WalrusSpec(WalkSpec):
    """Assignment expressions must register as ordinary assignments."""

    name = "walrus"

    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        if (h_e := graph.weights[edge]) > 1.0:
            return h_e * 2.0
        return h_e


class _AugAssignSpec(WalkSpec):
    """Augmented assignment keeps the edge-indexed dependency chain alive."""

    name = "augassign"

    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        h_e = graph.weights[edge]
        h_e *= 2.0
        return h_e


class _TernaryReturnSpec(WalkSpec):
    """A conditional expression in the return position."""

    name = "ternary"

    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        h_e = graph.weights[edge]
        return h_e * 2.0 if state.prev_node == graph.indices[edge] else h_e


class _NestedReturnSpec(WalkSpec):
    """Returns nested two branches deep must all be collected."""

    name = "nested"

    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        h_e = graph.weights[edge]
        if state.prev_node < 0:
            if h_e > 1.0:
                return h_e * 3.0
            return h_e
        else:
            return h_e * 0.5


def _traced(fn):
    import functools

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        return fn(*args, **kwargs)

    return wrapper


class _DecoratedSpec(WalkSpec):
    """The analyser must unwrap a ``functools.wraps`` decorator."""

    name = "decorated"

    @_traced
    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        return graph.weights[edge]


class TestEdgeCaseConstructs:
    def test_walrus_assignment_is_tracked(self):
        analysis = analyze_get_weight(_WalrusSpec())
        assert analysis.supported
        assert not analysis.reads_state
        assert len(analysis.return_expressions) == 2
        assert "h_e" in analysis.edge_indexed_names

    def test_augmented_assignment_keeps_dependencies(self):
        analysis = analyze_get_weight(_AugAssignSpec())
        assert analysis.supported
        assert not analysis.reads_state
        assert "h_e" in analysis.edge_indexed_names
        assert analysis.source_array_for("h_e") == "weights"

    def test_ternary_return_reads_state(self):
        analysis = analyze_get_weight(_TernaryReturnSpec())
        assert analysis.supported
        assert analysis.reads_state
        assert len(analysis.return_expressions) == 1

    def test_nested_returns_all_collected(self):
        analysis = analyze_get_weight(_NestedReturnSpec())
        assert analysis.supported
        assert len(analysis.return_expressions) == 3
        assert len(analysis.return_dependencies) == 3

    def test_decorated_get_weight_is_unwrapped(self):
        analysis = analyze_get_weight(_DecoratedSpec())
        assert analysis.supported
        assert not analysis.reads_state

    def test_sourceless_spec_degrades_to_fallback(self):
        # exec-defined specs have no retrievable source: the analyser must
        # degrade to the conservative eRVS-only fallback with a warning, not
        # raise.
        namespace: dict = {}
        exec(  # noqa: S102 - deliberately building a source-less spec
            "from repro.walks.spec import WalkSpec\n"
            "class ReplSpec(WalkSpec):\n"
            "    name = 'repl'\n"
            "    def get_weight(self, graph, state, edge):\n"
            "        return graph.weights[edge]\n",
            namespace,
        )
        analysis = analyze_get_weight(namespace["ReplSpec"]())
        assert not analysis.supported
        assert analysis.reads_state  # conservative default
        assert any("cannot obtain the source" in w for w in analysis.warnings)
