"""Workload registry used by the benchmark harness.

The paper's evaluation covers five dynamic-walk configurations (Table 2):
(un)weighted Node2Vec, (un)weighted MetaPath and 2nd-order PageRank.  Each
entry here is a factory producing a fresh spec with the paper's
hyperparameters (``a = 2.0``, ``b = 0.5``, schema ``(0..4)``, ``gamma = 0.2``)
plus the weight scheme that should be applied to the input graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.errors import WalkSpecError
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.metapath import MetaPathSpec
from repro.walks.node2vec import Node2VecSpec, UnweightedNode2VecSpec
from repro.walks.second_order_pr import SecondOrderPRSpec
from repro.walks.spec import WalkSpec


@dataclass(frozen=True)
class WorkloadEntry:
    """One named workload configuration."""

    name: str
    factory: Callable[[], WalkSpec]
    weighted: bool
    description: str

    def make(self) -> WalkSpec:
        return self.factory()


#: The five evaluated workloads of Table 2, plus DeepWalk as a static reference.
WORKLOADS: dict[str, WorkloadEntry] = {
    "node2vec": WorkloadEntry(
        "node2vec", lambda: Node2VecSpec(a=2.0, b=0.5), True,
        "Weighted Node2Vec (a=2.0, b=0.5), the paper's main workload",
    ),
    "node2vec_unweighted": WorkloadEntry(
        "node2vec_unweighted", lambda: UnweightedNode2VecSpec(a=2.0, b=0.5), False,
        "Unweighted Node2Vec (h = 1), the PER_KERNEL bound case",
    ),
    "metapath": WorkloadEntry(
        "metapath", lambda: MetaPathSpec(schema=(0, 1, 2, 3, 4)), True,
        "Weighted MetaPath with schema (0,1,2,3,4), depth 5",
    ),
    "metapath_unweighted": WorkloadEntry(
        "metapath_unweighted", lambda: MetaPathSpec(schema=(0, 1, 2, 3, 4)), False,
        "Unweighted MetaPath with schema (0,1,2,3,4), depth 5",
    ),
    "2nd_pr": WorkloadEntry(
        "2nd_pr", lambda: SecondOrderPRSpec(gamma=0.2), True,
        "Second-order PageRank (gamma = 0.2)",
    ),
    "deepwalk": WorkloadEntry(
        "deepwalk", lambda: DeepWalkSpec(), True,
        "DeepWalk static reference walk",
    ),
}


def workload_names(dynamic_only: bool = False) -> list[str]:
    """Names of the registered workloads (paper order)."""
    names = list(WORKLOADS.keys())
    if dynamic_only:
        names = [n for n in names if WORKLOADS[n].make().is_dynamic]
    return names


def make_workload(name: str) -> WalkSpec:
    """Instantiate a registered workload by name."""
    entry = WORKLOADS.get(name)
    if entry is None:
        raise WalkSpecError(f"unknown workload {name!r}; known: {', '.join(WORKLOADS)}")
    return entry.make()
