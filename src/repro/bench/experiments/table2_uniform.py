"""Table 2 — execution time of every system with uniform property weights.

Runs the five evaluated workloads — (un)weighted Node2Vec, (un)weighted
MetaPath and 2nd-order PageRank — across the configured dataset scale models
for all six baselines plus FlexiWalker, with property weights drawn uniformly
from ``[1, 5)``.  Reports per-cell execution times (or OOM) and the
geometric-mean speedup of FlexiWalker over the best CPU and best GPU baseline
per cell — the paper's headline 73.44x / 5.91x numbers.
"""

from __future__ import annotations

from repro.baselines.registry import CPU_BASELINES, GPU_BASELINES
from repro.bench.config import ExperimentConfig
from repro.bench.runner import prepare_graph, prepare_queries, run_baseline, run_flexiwalker
from repro.bench.tables import format_table
from repro.stats.summary import geometric_mean

WORKLOADS = (
    "node2vec_unweighted",
    "node2vec",
    "metapath_unweighted",
    "metapath",
    "2nd_pr",
)

SYSTEMS = ("SOWalker", "ThunderRW", "C-SAW", "NextDoor", "Skywalker", "FlowWalker")


def run_experiment(config: ExperimentConfig | None = None) -> dict:
    """Execute the Table 2 sweep and compute the headline speedups."""
    config = config or ExperimentConfig.quick()
    cells: list[dict] = []
    cpu_speedups: list[float] = []
    gpu_speedups: list[float] = []

    for workload in WORKLOADS:
        for dataset in config.datasets:
            graph = prepare_graph(dataset, workload, weights="uniform")
            queries = prepare_queries(graph, workload, config)
            row: dict[str, object] = {"workload": workload, "dataset": dataset}

            baseline_runs = {}
            for system in SYSTEMS:
                run = run_baseline(
                    system, dataset, workload, config, graph=graph, queries=queries
                )
                baseline_runs[system] = run
                row[system] = run.cell()

            flexi = run_flexiwalker(dataset, workload, config, graph=graph, queries=queries)
            row["FlexiWalker"] = flexi.cell()
            cells.append(row)

            if flexi.ok:
                cpu_times = [baseline_runs[s].time_ms for s in CPU_BASELINES if baseline_runs[s].ok]
                gpu_times = [baseline_runs[s].time_ms for s in GPU_BASELINES if s in baseline_runs and baseline_runs[s].ok]
                if cpu_times:
                    cpu_speedups.append(min(cpu_times) / flexi.time_ms)
                if gpu_times:
                    gpu_speedups.append(min(gpu_times) / flexi.time_ms)

    summary = {
        "geomean_speedup_over_best_cpu": geometric_mean(cpu_speedups) if cpu_speedups else float("nan"),
        "geomean_speedup_over_best_gpu": geometric_mean(gpu_speedups) if gpu_speedups else float("nan"),
        "max_speedup_over_best_cpu": max(cpu_speedups) if cpu_speedups else float("nan"),
        "max_speedup_over_best_gpu": max(gpu_speedups) if gpu_speedups else float("nan"),
    }
    return {
        "cells": cells,
        "summary": summary,
        "config": config,
        "paper_reference": "Table 2: uniform property weights; paper geomeans 73.44x (CPU) / 5.91x (GPU)",
    }


def format_result(result: dict) -> str:
    headers = ["workload", "dataset", *SYSTEMS, "FlexiWalker"]
    rows = [[cell[h] for h in headers] for cell in result["cells"]]
    table = format_table(headers, rows, title="Table 2 — execution time (ms, simulated), uniform weights")
    summary = result["summary"]
    lines = [
        table,
        "",
        f"Geomean speedup over best CPU baseline: {summary['geomean_speedup_over_best_cpu']:.2f}x",
        f"Geomean speedup over best GPU baseline: {summary['geomean_speedup_over_best_gpu']:.2f}x",
        f"Max speedup over best CPU baseline:     {summary['max_speedup_over_best_cpu']:.2f}x",
        f"Max speedup over best GPU baseline:     {summary['max_speedup_over_best_gpu']:.2f}x",
    ]
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_result(run_experiment()))


if __name__ == "__main__":  # pragma: no cover
    main()
