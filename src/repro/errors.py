"""Exception hierarchy for the FlexiWalker reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch a single exception type at API boundaries while still being
able to distinguish the failure category when needed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Raised when a graph is malformed or an operation on it is invalid."""


class GraphFormatError(GraphError):
    """Raised when parsing an on-disk graph representation fails."""


class SamplingError(ReproError):
    """Raised when a sampling kernel is invoked on an invalid context."""


class WalkSpecError(ReproError):
    """Raised when a user-supplied walk specification is invalid."""


class CompilerError(ReproError):
    """Raised when Flexi-Compiler cannot analyse user walk logic.

    Note that many analysis failures are *not* errors: when the analyser
    detects unsupported constructs it falls back to eRVS-only mode (see
    Section 7.1 of the paper) and emits a :class:`CompilerWarning` instead.
    """


class CompilerWarning(UserWarning):
    """Warning emitted when Flexi-Compiler falls back to a safe mode."""


class RuntimeSelectionError(ReproError):
    """Raised when Flexi-Runtime cannot select a sampling strategy."""


class SimulationError(ReproError):
    """Raised when the GPU execution simulator is configured inconsistently."""


class ServiceError(ReproError):
    """Raised by the session-based service API (:mod:`repro.service`).

    Covers plan-negotiation failures (requesting more devices than the
    service fleet owns, unknown backends), invalid submissions (duplicate
    query ids within a session) and collecting results from a session that
    never received queries.
    """


class QueueFull(ServiceError):
    """Backpressure signal of the continuous-batching scheduler.

    Raised by :meth:`~repro.service.session.WalkSession.submit` on a
    scheduler-attached session when the in-flight walker budget
    (``max_inflight_walkers``) is exhausted, or when the submission would
    push the tenant's outstanding-walker quota past its limit, and the
    submission did not opt into blocking admission
    (``SubmitOptions(block_on_full=True)``).
    """


class FaultError(ReproError):
    """Raised when an injected fault is unrecoverable.

    Produced by the fault-injection runtime (:mod:`repro.runtime.faults`)
    when a transient fault exhausts its configured retry budget
    (``FaultPlan.max_retries``).  Recoverable faults — transient kernel
    faults that eventually retry through, permanent device failures covered
    by a checkpoint — never surface as exceptions; they show up as
    ``recovery_time_ns`` / ``degraded_devices`` on the run result instead.
    """


class DeadlineExceeded(ServiceError):
    """A ticket's walkers were cancelled because its deadline expired.

    Raised by :meth:`~repro.service.session.QueryTicket.paths` when the
    ticket was submitted with ``SubmitOptions(deadline_ticks=...)`` and the
    scheduler cancelled its remaining walkers at the deadline.
    """


class BenchmarkError(ReproError):
    """Raised by the benchmark harness on invalid experiment configuration."""


class OutOfMemoryError(SimulationError):
    """Simulated GPU out-of-memory condition (reported as OOM in tables)."""


class OutOfTimeError(SimulationError):
    """Simulated out-of-time condition (reported as OOT in tables)."""
