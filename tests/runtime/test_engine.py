"""Tests for the walk engine."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.compiler.generator import compile_workload
from repro.graph.generators import cycle_graph
from repro.gpusim.device import A6000
from repro.runtime.engine import WalkEngine
from repro.runtime.selector import CostModelSelector, FixedSelector
from repro.sampling.erjs import EnhancedRejectionSampler
from repro.sampling.ervs import EnhancedReservoirSampler
from repro.walks.metapath import MetaPathSpec
from repro.walks.node2vec import Node2VecSpec
from repro.walks.spec import UniformWalkSpec
from repro.walks.state import WalkQuery, make_queries

DEVICE = dataclasses.replace(A6000, parallel_lanes=8)


def run_engine(graph, spec, queries, **kwargs):
    engine = WalkEngine(graph=graph, spec=spec, device=DEVICE, **kwargs)
    return engine.run(queries)


class TestWalkExecution:
    def test_paths_start_at_query_start_nodes(self, small_graph):
        queries = make_queries(small_graph.num_nodes, walk_length=4, num_queries=10, seed=0)
        result = run_engine(small_graph, UniformWalkSpec(), queries)
        assert len(result.paths) == 10
        for query, path in zip(queries, result.paths, strict=False):
            assert path[0] == query.start_node

    def test_every_step_follows_an_edge(self, small_graph):
        queries = make_queries(small_graph.num_nodes, walk_length=5, num_queries=8, seed=1)
        result = run_engine(small_graph, Node2VecSpec(), queries)
        for path in result.paths:
            for src, dst in zip(path, path[1:], strict=False):
                assert small_graph.has_edge(src, dst)

    def test_walk_length_respected(self, small_graph):
        queries = make_queries(small_graph.num_nodes, walk_length=6, num_queries=5)
        result = run_engine(small_graph, UniformWalkSpec(), queries)
        assert all(len(path) - 1 <= 6 for path in result.paths)
        # The small BA graph is strongly connected, so walks reach full length.
        assert result.average_walk_length() == pytest.approx(6.0)

    def test_dead_end_terminates_walk_early(self, tiny_graph):
        # MetaPath with a label that exists only on some edges: walks stop
        # when no edge matches the schema.
        spec = MetaPathSpec(schema=(4,))
        queries = [WalkQuery(query_id=0, start_node=2, max_length=5)]
        result = run_engine(tiny_graph, spec, queries)
        assert len(result.paths[0]) - 1 <= 5

    def test_results_are_deterministic_for_a_seed(self, small_graph):
        queries = make_queries(small_graph.num_nodes, walk_length=5, num_queries=6)
        a = run_engine(small_graph, Node2VecSpec(), queries, seed=9)
        b = run_engine(small_graph, Node2VecSpec(), queries, seed=9)
        assert a.paths == b.paths
        assert a.kernel.time_ns == pytest.approx(b.kernel.time_ns)

    def test_different_seeds_give_different_walks(self, small_graph):
        queries = make_queries(small_graph.num_nodes, walk_length=8, num_queries=6)
        a = run_engine(small_graph, Node2VecSpec(), queries, seed=1)
        b = run_engine(small_graph, Node2VecSpec(), queries, seed=2)
        assert a.paths != b.paths

    def test_cycle_graph_walk_is_fully_determined(self):
        graph = cycle_graph(5)
        queries = [WalkQuery(query_id=0, start_node=0, max_length=4)]
        result = run_engine(graph, UniformWalkSpec(), queries)
        assert result.paths[0] == [0, 1, 2, 3, 4]


class TestSimulationOutputs:
    def test_per_query_times_positive(self, small_graph):
        queries = make_queries(small_graph.num_nodes, walk_length=4, num_queries=6)
        result = run_engine(small_graph, UniformWalkSpec(), queries)
        assert result.per_query_ns.shape == (6,)
        assert np.all(result.per_query_ns > 0)

    def test_counters_aggregate_over_all_steps(self, small_graph):
        queries = make_queries(small_graph.num_nodes, walk_length=4, num_queries=6)
        result = run_engine(small_graph, UniformWalkSpec(), queries)
        assert result.counters.total_memory_accesses > 0
        assert result.total_steps == sum(len(p) - 1 for p in result.paths)

    def test_sampler_usage_tracks_selector(self, small_graph):
        queries = make_queries(small_graph.num_nodes, walk_length=4, num_queries=6)
        result = run_engine(
            small_graph, UniformWalkSpec(), queries,
            selector=FixedSelector(EnhancedReservoirSampler()),
        )
        assert set(result.sampler_usage) == {"eRVS"}
        assert result.selection_ratio() == {"eRVS": 1.0}

    def test_adaptive_engine_uses_both_kernels(self, small_graph):
        spec = Node2VecSpec()
        compiled = compile_workload(spec, small_graph)
        queries = make_queries(small_graph.num_nodes, walk_length=6, num_queries=12)
        result = run_engine(
            small_graph, spec, queries,
            selector=CostModelSelector(), compiled=compiled,
        )
        assert set(result.sampler_usage) <= {"eRJS", "eRVS"}
        assert sum(result.sampler_usage.values()) == result.total_steps

    def test_int8_weight_bytes_reduce_simulated_time(self, small_graph):
        queries = make_queries(small_graph.num_nodes, walk_length=5, num_queries=8)
        full = run_engine(small_graph, UniformWalkSpec(), queries, weight_bytes=8)
        narrow = run_engine(small_graph, UniformWalkSpec(), queries, weight_bytes=1)
        assert narrow.kernel.time_ns < full.kernel.time_ns

    def test_warp_switch_overhead_adds_syncs(self, small_graph):
        queries = make_queries(small_graph.num_nodes, walk_length=4, num_queries=4)
        with_overhead = run_engine(
            small_graph, UniformWalkSpec(), queries,
            selector=FixedSelector(EnhancedReservoirSampler()), warp_switch_overhead=True,
        )
        without = run_engine(
            small_graph, UniformWalkSpec(), queries,
            selector=FixedSelector(EnhancedReservoirSampler()), warp_switch_overhead=False,
        )
        assert with_overhead.counters.warp_syncs > without.counters.warp_syncs

    def test_step_overhead_hook_invoked(self, small_graph):
        calls = []

        def hook(ctx, sampler):
            calls.append(sampler.name)
            ctx.counters.atomic_ops += 1

        queries = make_queries(small_graph.num_nodes, walk_length=3, num_queries=4)
        result = run_engine(small_graph, UniformWalkSpec(), queries, step_overhead=hook)
        assert len(calls) == result.total_steps
        assert result.counters.atomic_ops >= result.total_steps

    def test_static_scheduling_supported(self, small_graph):
        queries = make_queries(small_graph.num_nodes, walk_length=3, num_queries=6)
        result = run_engine(small_graph, UniformWalkSpec(), queries, scheduling="static")
        assert result.kernel.scheduling == "static"


class TestExecutionModes:
    def test_batched_is_the_default(self, small_graph):
        engine = WalkEngine(graph=small_graph, spec=UniformWalkSpec(), device=DEVICE)
        assert engine.execution == "batched"

    def test_unknown_execution_mode_rejected(self, small_graph):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            WalkEngine(graph=small_graph, spec=UniformWalkSpec(), execution="speculative")

    @pytest.mark.parametrize("execution", ["scalar", "batched"])
    def test_throughput_observable(self, small_graph, execution):
        queries = make_queries(small_graph.num_nodes, walk_length=4, num_queries=6)
        result = run_engine(small_graph, UniformWalkSpec(), queries, execution=execution)
        assert result.wall_clock_s > 0
        assert result.throughput_steps_per_s == pytest.approx(
            result.total_steps / result.wall_clock_s
        )

    def test_throughput_zero_without_wall_clock(self, small_graph):
        queries = make_queries(small_graph.num_nodes, walk_length=3, num_queries=4)
        result = run_engine(small_graph, UniformWalkSpec(), queries)
        result.wall_clock_s = 0.0
        assert result.throughput_steps_per_s == 0.0

    def test_summary_surfaces_throughput(self, small_graph):
        queries = make_queries(small_graph.num_nodes, walk_length=3, num_queries=4)
        result = run_engine(small_graph, UniformWalkSpec(), queries)
        summary = result.summary()
        assert summary["throughput_steps_per_s"] == result.throughput_steps_per_s
        assert summary["wall_clock_s"] == result.wall_clock_s
