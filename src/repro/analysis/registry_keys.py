"""Registry-key soundness: every behavioural parameter must be keyed.

The service keys its compiled-workload, transition-cache and hint
registries by ``(spec module, qualname, canonical(describe()),
graph_version)``.  A hyperparameter that changes hook behaviour but is
*not* reflected in ``describe()`` silently aliases two distinct workloads
onto one registry entry — the second spec is served the first spec's
compiled helpers, cached weight rows and hints.

``registry-keys/unkeyed-attribute`` (ERROR)
    An instance attribute (``self.X`` set at construction, not
    ``_``-prefixed) is read by a behaviour hook but never read by any
    ``describe()`` implementation in the class hierarchy.

Class-level attributes are exempt: the class identity (module + qualname)
is already part of the registry key, so a value shared by every instance
of the class cannot alias.  ``_``-prefixed attributes are treated as
internal plumbing by convention and skipped.
"""

from __future__ import annotations

import ast

from repro.analysis.diagnostics import Diagnostic, Severity, _DiagnosticCollector
from repro.analysis.hooks import HookSource, SpecSources, hook_overridden, load_describe
from repro.walks.spec import WalkSpec


def _self_attr_reads(source: HookSource) -> dict[str, ast.Attribute]:
    """First read site of every ``self.<attr>`` in one hook source."""
    self_name = source.arg_names[0] if source.arg_names else "self"
    reads: dict[str, ast.Attribute] = {}
    for node in ast.walk(source.func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self_name
            and isinstance(node.ctx, ast.Load)
        ):
            reads.setdefault(node.attr, node)
    return reads


def check_registry_keys(spec: WalkSpec, sources: SpecSources) -> list[Diagnostic]:
    """Cross-check hook-read instance attributes against ``describe()``."""
    out = _DiagnosticCollector()
    instance_attrs = set(vars(spec))

    describe_sources = load_describe(spec)
    if hook_overridden(spec, "describe") and not describe_sources:
        # describe() exists but its source is unreadable: we cannot prove
        # anything is missing from it, so stay silent rather than guess.
        return out.diagnostics

    keyed: set[str] = set()
    for source in describe_sources:
        keyed |= set(_self_attr_reads(source))

    reported: set[str] = set()
    for source in sources.hooks:
        for attr, node in _self_attr_reads(source).items():
            if attr.startswith("_") or attr in reported:
                continue
            if attr not in instance_attrs or attr in keyed:
                continue
            reported.add(attr)
            out.add(
                "registry-keys/unkeyed-attribute",
                Severity.ERROR,
                f"self.{attr} influences {source.context} but is not reflected in "
                "describe(); two specs differing only in this parameter would "
                "alias one compiled/cache registry key",
                span=source.span(node),
                hook=source.context,
                fix_hint=f"include {attr!r} in the dict returned by describe()",
            )
    return out.diagnostics
