"""Cross-superstep transition caching for node-only workloads.

Real GPU walk engines amortise per-node sampling state across the whole run:
C-SAW keeps per-node CDFs, Skywalker keeps per-node alias tables, and both
are only rebuilt when the transition weights actually change.  For workloads
whose ``get_weight`` is a pure function of the current node (the analyser's
``weights_node_only`` classification — DeepWalk and every other static
workload), the weights of a node are identical for every walker, superstep,
device and repeated ``engine.run`` call, so the batched engine can compute
them **once per (graph, spec)** and share the result from then on.

The cache stores three flattened per-node structures, all parallel to the
graph's CSR edge arrays and filled lazily on first visit (a sparse-query run
must not pay an O(num_edges) startup it would never have paid):

* the transition **weights** themselves (consulted by
  :meth:`~repro.sampling.batch.BatchStepContext.transition_weights`, i.e. by
  every kernel's weight gather);
* the per-node **CDF + total** pair (consulted by the ITS kernel, replacing
  its per-walker ``np.cumsum`` cores);
* the per-node **alias tables** (consulted by the ALS kernel, replacing its
  per-walker Vose builds).

Simulated cost accounting is deliberately untouched: the kernels still charge
the modeled scans/table builds at every step — on the GPU being modeled the
data *is* re-read per step — so counter totals and simulated timings are
bit-identical with the cache on or off (the parity suite enforces this).
Only host wall-clock changes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sampling.alias import build_alias_table
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkerState, WalkQuery

if TYPE_CHECKING:  # pragma: no cover - batch imports this module lazily
    from repro.sampling.batch import BatchStepContext


class TransitionCache:
    """Per-(graph, spec) flattened weight / CDF / alias-table cache.

    Attributes
    ----------
    weight_fills / cdf_fills / alias_fills:
        Number of nodes whose respective structure has been materialised so
        far (introspection for tests and the benchmark harness).
    lookups:
        Number of cache-served weight gathers.
    """

    def __init__(self, graph: CSRGraph, spec: WalkSpec) -> None:
        self.graph = graph
        self.spec = spec
        num_nodes, num_edges = graph.num_nodes, graph.num_edges
        self._weights = np.zeros(num_edges, dtype=np.float64)
        self._have_weights = np.zeros(num_nodes, dtype=bool)
        self._cdf = np.zeros(num_edges, dtype=np.float64)
        self._totals = np.zeros(num_nodes, dtype=np.float64)
        self._have_cdf = np.zeros(num_nodes, dtype=bool)
        self._alias_prob = np.zeros(num_edges, dtype=np.float64)
        self._alias_idx = np.zeros(num_edges, dtype=np.int64)
        self._have_alias = np.zeros(num_nodes, dtype=bool)
        self._probe = WalkerState(
            query=WalkQuery(query_id=0, start_node=0, max_length=1), current_node=0
        )
        self.weight_fills = 0
        self.cdf_fills = 0
        self.alias_fills = 0
        self.lookups = 0

    # ------------------------------------------------------------------ #
    # Weights
    # ------------------------------------------------------------------ #
    def ensure_weights(self, nodes: np.ndarray) -> None:
        """Materialise the weight slices of the given nodes (idempotent)."""
        pending = np.unique(nodes[~self._have_weights[nodes]])
        if pending.size == 0:
            return
        bulk = self.spec.static_transition_weights(self.graph)
        if bulk is not None:
            # The workload can produce the whole edge array in one shot; fill
            # everything and never come back.
            bulk = np.asarray(bulk, dtype=np.float64)
            if bulk.shape != self._weights.shape:
                raise ValueError(
                    "static_transition_weights must be parallel to graph.indices"
                )
            self._weights = bulk
            self._have_weights[:] = True
            self.weight_fills += int(self.graph.num_nodes)
            return
        indptr = self.graph.indptr
        for node in pending.tolist():
            self._probe.current_node = node
            self._weights[indptr[node]:indptr[node + 1]] = self.spec.transition_weights(
                self.graph, self._probe
            )
        self._have_weights[pending] = True
        self.weight_fills += int(pending.size)

    # ------------------------------------------------------------------ #
    # Versioned invalidation (dynamic graphs)
    # ------------------------------------------------------------------ #
    def rebind(self, new_graph: CSRGraph, touched_nodes: np.ndarray) -> None:
        """Scoped invalidation contract: carry untouched nodes to a new CSR.

        Called by the versioned invalidation layer
        (:mod:`repro.graph.invalidation`) when a graph delta produces a new
        compacted snapshot.  The edge-parallel arrays are remapped onto the
        new CSR layout: every node outside ``touched_nodes`` has an
        identical adjacency slice in both snapshots (same degree, same
        content — the delta did not touch it), so its materialised weights /
        CDF / alias entries are scatter-copied to their new positions and
        its ``have``-flags survive.  Touched nodes are cleared and refill
        lazily on their next visit.  The cache *object* (and its per-node
        mask/total arrays) keeps its identity, so every engine and session
        sharing it through :class:`~repro.runtime.engine.EngineCaches`
        keeps sharing it.
        """
        from repro.graph.delta import _intra_offsets

        old_graph = self.graph
        touched = np.asarray(touched_nodes, dtype=np.int64)
        new_weights = np.zeros(new_graph.num_edges, dtype=np.float64)
        new_cdf = np.zeros(new_graph.num_edges, dtype=np.float64)
        new_alias_prob = np.zeros(new_graph.num_edges, dtype=np.float64)
        new_alias_idx = np.zeros(new_graph.num_edges, dtype=np.int64)

        def carried(have: np.ndarray) -> np.ndarray:
            mask = have.copy()
            mask[touched] = False
            return np.nonzero(mask)[0]

        def segment_positions(nodes: np.ndarray, indptr: np.ndarray) -> np.ndarray:
            deg = (indptr[nodes + 1] - indptr[nodes]).astype(np.int64)
            return np.repeat(indptr[nodes], deg) + _intra_offsets(deg)

        for nodes, copies in (
            (carried(self._have_weights), ((self._weights, new_weights),)),
            (carried(self._have_cdf), ((self._cdf, new_cdf),)),
            (
                carried(self._have_alias),
                ((self._alias_prob, new_alias_prob), (self._alias_idx, new_alias_idx)),
            ),
        ):
            if nodes.size == 0:
                continue
            old_pos = segment_positions(nodes, old_graph.indptr)
            new_pos = segment_positions(nodes, new_graph.indptr)
            for old_arr, new_arr in copies:
                new_arr[new_pos] = old_arr[old_pos]

        self._weights = new_weights
        self._cdf = new_cdf
        self._alias_prob = new_alias_prob
        self._alias_idx = new_alias_idx
        self._have_weights[touched] = False
        self._have_cdf[touched] = False
        self._have_alias[touched] = False
        self._totals[touched] = 0.0
        self.graph = new_graph

    def weights_for(self, batch: BatchStepContext) -> np.ndarray:
        """Flattened transition weights of a batch context, cache-served.

        Identical values to ``spec.transition_weights_batch`` (node-only
        workloads compute per-node weights that both paths agree on — the
        spec test suite enforces it), gathered from the cached edge array.
        """
        self.ensure_weights(batch.current)
        self.lookups += 1
        return self._weights[batch.flat_edges]

    # ------------------------------------------------------------------ #
    # CDFs (ITS)
    # ------------------------------------------------------------------ #
    def ensure_cdf(self, nodes: np.ndarray) -> None:
        """Materialise CDF/total pairs, replaying the per-walker expressions.

        ``np.cumsum`` / ``ndarray.sum`` are evaluated per node slice exactly
        as the uncached ITS kernel evaluates them per walker, so the stored
        values are bit-identical to what every later step would recompute.
        """
        pending = np.unique(nodes[~self._have_cdf[nodes]])
        if pending.size == 0:
            return
        self.ensure_weights(pending)
        indptr = self.graph.indptr
        for node in pending.tolist():
            lo, hi = int(indptr[node]), int(indptr[node + 1])
            wslice = self._weights[lo:hi]
            self._cdf[lo:hi] = np.cumsum(wslice)
            self._totals[node] = wslice.sum()
        self._have_cdf[pending] = True
        self.cdf_fills += int(pending.size)

    def cdf_arrays(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(global flattened CDF, per-request totals)`` for the given nodes."""
        self.ensure_cdf(nodes)
        return self._cdf, self._totals[nodes]

    # ------------------------------------------------------------------ #
    # Alias tables (ALS)
    # ------------------------------------------------------------------ #
    def ensure_alias(self, nodes: np.ndarray) -> None:
        """Materialise Vose alias tables for the given nodes (idempotent)."""
        pending = np.unique(nodes[~self._have_alias[nodes]])
        if pending.size == 0:
            return
        self.ensure_weights(pending)
        indptr = self.graph.indptr
        for node in pending.tolist():
            lo, hi = int(indptr[node]), int(indptr[node + 1])
            prob, alias = build_alias_table(self._weights[lo:hi])
            self._alias_prob[lo:hi] = prob
            self._alias_idx[lo:hi] = alias
        self._have_alias[pending] = True
        self.alias_fills += int(pending.size)

    def alias_arrays(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """The global flattened ``(prob, alias)`` arrays, ensured for ``nodes``."""
        self.ensure_alias(nodes)
        return self._alias_prob, self._alias_idx
