"""Tests for the synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    rmat_graph,
    star_graph,
)


class TestBarabasiAlbert:
    def test_node_count_and_connectivity(self):
        g = barabasi_albert_graph(100, 3, seed=1)
        assert g.num_nodes == 100
        assert np.all(g.degrees()[3:] >= 3)

    def test_symmetric_edges(self):
        g = barabasi_albert_graph(50, 2, seed=2)
        for v in range(g.num_nodes):
            for u in g.neighbors(v):
                assert g.has_edge(int(u), v)

    def test_heavy_tailed_degrees(self):
        g = barabasi_albert_graph(400, 3, seed=3)
        degrees = g.degrees()
        assert degrees.max() > 4 * degrees.mean()

    def test_deterministic_by_seed(self):
        a = barabasi_albert_graph(80, 2, seed=5)
        b = barabasi_albert_graph(80, 2, seed=5)
        assert np.array_equal(a.indices, b.indices)

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(3, 5)
        with pytest.raises(GraphError):
            barabasi_albert_graph(10, 0)


class TestRMAT:
    def test_size_close_to_requested(self):
        g = rmat_graph(256, 2000, seed=1)
        assert g.num_nodes == 256
        # Duplicates and self loops are removed, so slightly fewer edges.
        assert 0.5 * 2000 <= g.num_edges <= 2000

    def test_skewed_out_degrees(self):
        g = rmat_graph(512, 6000, seed=2)
        degrees = g.degrees()
        assert degrees.max() > 5 * max(degrees.mean(), 1)

    def test_no_self_loops(self):
        g = rmat_graph(128, 1000, seed=3)
        src = np.repeat(np.arange(g.num_nodes), g.degrees())
        assert np.all(src != g.indices)

    def test_deterministic_by_seed(self):
        a = rmat_graph(128, 800, seed=9)
        b = rmat_graph(128, 800, seed=9)
        assert np.array_equal(a.indptr, b.indptr)

    def test_invalid_probabilities(self):
        with pytest.raises(GraphError):
            rmat_graph(64, 100, a=0.9, b=0.3, c=0.3)


class TestSimpleGenerators:
    def test_star_graph_hub_degree(self):
        g = star_graph(10)
        assert g.degree(0) == 10
        assert all(g.degree(v) == 1 for v in range(1, 11))

    def test_cycle_graph_degree_one_everywhere(self):
        g = cycle_graph(7)
        assert np.all(g.degrees() == 1)
        assert g.has_edge(6, 0)

    def test_complete_graph(self):
        g = complete_graph(5)
        assert g.num_edges == 20
        assert np.all(g.degrees() == 4)

    def test_erdos_renyi_probability_extremes(self):
        assert erdos_renyi_graph(10, 0.0).num_edges == 0
        assert erdos_renyi_graph(10, 1.0).num_edges == 90

    def test_erdos_renyi_invalid_probability(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(10, 1.5)

    def test_small_size_validation(self):
        with pytest.raises(GraphError):
            star_graph(0)
        with pytest.raises(GraphError):
            cycle_graph(1)
        with pytest.raises(GraphError):
            complete_graph(1)
