"""Flexi-Runtime: per-step sampling-strategy selection and walk execution.

The runtime layer is the paper's second contribution (Section 4.1): because
neither eRJS nor eRVS wins everywhere — the winner depends on the node's
degree and the skew of its transition weights, which change *during* a walk —
FlexiWalker chooses the kernel per node, per step, using a lightweight
first-order cost model whose single hardware parameter (the random-to-
coalesced edge-access cost ratio) is profiled at start-up.

This package contains the cost model (Eq. 9–11), the profiling kernels
(Section 5.1), the selection strategies compared in Fig. 13, the dynamic
query queue (Section 5.3) and the walk engine that ties the kernels, the
compiler output and the GPU simulator together.
"""

from repro.runtime.cost_model import CostModel
from repro.runtime.profiler import ProfileResult, profile_edge_costs
from repro.runtime.selector import (
    SamplerSelector,
    CostModelSelector,
    DegreeThresholdRule,
    FixedSelector,
    RandomSelector,
    DegreeBasedSelector,
)
from repro.runtime.scheduler import DynamicQueryQueue
from repro.runtime.engine import (
    GRAPH_PLACEMENTS,
    EngineCaches,
    WalkEngine,
    WalkRunResult,
)
from repro.runtime.faults import (
    DEFAULT_CHECKPOINT_INTERVAL,
    DeviceFailure,
    FaultPlan,
    InterconnectDrop,
    TransientFault,
)
from repro.runtime.frontier import SuperstepReport

__all__ = [
    "DEFAULT_CHECKPOINT_INTERVAL",
    "DeviceFailure",
    "EngineCaches",
    "FaultPlan",
    "GRAPH_PLACEMENTS",
    "InterconnectDrop",
    "SuperstepReport",
    "TransientFault",
    "CostModel",
    "ProfileResult",
    "profile_edge_costs",
    "SamplerSelector",
    "CostModelSelector",
    "DegreeThresholdRule",
    "FixedSelector",
    "RandomSelector",
    "DegreeBasedSelector",
    "DynamicQueryQueue",
    "WalkEngine",
    "WalkRunResult",
]
