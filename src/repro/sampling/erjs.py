"""eRJS: FlexiWalker's enhanced rejection sampling kernel (Section 3.3).

The baseline rejection kernel must compute *every* transition weight just to
find the maximum that bounds the proposal's ``y`` axis.  eRJS replaces the
exact maximum with a **theoretical upper bound computed on the fly** from the
workload's structure (``max(w) · max(h)``, where ``max(h)`` comes from a
per-node preprocessing pass and ``max(w)`` from the workload's branch
analysis — both produced by Flexi-Compiler).  Sections 3.3's proof shows the
accepted node's distribution is *identical* for any constant ``c`` that upper
bounds the weights: only the acceptance rate (``Σ w̃ / (degree · c)``)
changes, so a looser bound costs extra trials, never correctness.

When no bound hint is available (the compiler fell back, or the user opted
out) the kernel degrades gracefully to the baseline max-reduction path.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import Sampler, StepContext, gather_transition_weights
from repro.sampling.batch import BatchStepContext, segment_max
from repro.sampling.rejection import run_rejection_trials, run_rejection_trials_batch


class EnhancedRejectionSampler(Sampler):
    """eRJS: rejection sampling against an estimated upper bound."""

    name = "eRJS"
    processing_unit = "thread"

    def __init__(
        self,
        use_estimated_bound: bool = True,
        max_trial_factor: int = 16,
        min_trials: int = 64,
    ) -> None:
        self.use_estimated_bound = bool(use_estimated_bound)
        self.max_trial_factor = int(max_trial_factor)
        self.min_trials = int(min_trials)

    def sample(self, ctx: StepContext) -> int | None:
        if not self._check_nonempty(ctx):
            return None
        degree = ctx.degree

        # The trial loop needs the true weight of each probed candidate; the
        # Python implementation materialises the vector once for speed, but
        # only the per-trial accesses are charged to the counters (on the GPU
        # each trial reads exactly one candidate's data).
        weights = ctx.spec.transition_weights(ctx.graph, ctx.state)

        bound: float | None = None
        if self.use_estimated_bound and ctx.bound_hint is not None and ctx.bound_hint > 0:
            # Estimating the bound touches one preprocessed value per indexed
            # array plus a handful of arithmetic — Fig. 5b.
            bound = float(ctx.bound_hint)
            ctx.counters.random_accesses += 1
            ctx.counters.weight_computations += 1
        else:
            # Fallback: exact maximum via a full scan + max reduction, i.e.
            # the baseline behaviour (Fig. 5a).
            gathered = gather_transition_weights(ctx)
            bound = ctx.warp().reduce_max(gathered)

        if bound <= 0.0:
            return None
        # A bound below the true maximum would clip the distribution; since
        # correctness is non-negotiable (the paper's proof assumes c >= max),
        # widen the bound if the hint was violated.  This can only happen
        # with a user-supplied helper that is not a true upper bound.
        true_max = float(weights.max()) if weights.size else 0.0
        if true_max > bound:
            bound = true_max

        max_trials = max(self.min_trials, self.max_trial_factor * degree)
        choice, _ = run_rejection_trials(ctx, weights, bound, max_trials)
        if choice is None:
            # Either every weight is zero (dead end) or the trial budget was
            # exhausted because the bound is far from the actual weights; in
            # the latter case finish with a direct inversion so the walk
            # still advances from the correct distribution (and charge the
            # full scan that requires).
            total = float(weights.sum())
            if total <= 0.0:
                return None
            ctx.counters.coalesced_accesses += degree
            ctx.counters.weight_computations += degree
            cdf = ctx.warp().prefix_sum(weights)
            u = ctx.rng.uniform()
            ctx.counters.rng_draws += 1
            choice = min(int(np.searchsorted(cdf, u * total, side="right")), degree - 1)
        return int(ctx.neighbors()[choice])

    # ------------------------------------------------------------------ #
    def _sample_batch_nonempty(self, batch: BatchStepContext, out: np.ndarray) -> np.ndarray:
        """Frontier-wide eRJS: hinted bounds where available, scans elsewhere.

        Walkers with a usable compiler bound pay one uncoalesced hint read;
        the rest fall back to the scan + max-reduction path — per walker,
        exactly the branch the scalar kernel would have taken, with the same
        trial draws and the same charges.
        """
        degrees = batch.degrees
        weights = batch.transition_weights()
        true_max = segment_max(weights, degrees)

        hinted = np.zeros(batch.size, dtype=bool)
        if self.use_estimated_bound and batch.bound_hints is not None:
            hints = batch.bound_hints
            hinted = ~np.isnan(hints) & (hints > 0)
        bounds = np.empty(batch.size, dtype=np.float64)
        hint_idx = np.nonzero(hinted)[0]
        if hint_idx.size:
            # Estimating the bound touches one preprocessed value plus a bit
            # of arithmetic (Fig. 5b).
            bounds[hint_idx] = batch.bound_hints[hint_idx]
            batch.charge("random_accesses", 1, hint_idx)
            batch.charge("weight_computations", 1, hint_idx)
        scan_idx = np.nonzero(~hinted)[0]
        if scan_idx.size:
            # Fallback: exact maximum via a full scan + max reduction (Fig. 5a).
            batch.gather_weights(idx=scan_idx)
            batch.charge("reduction_elements", degrees[scan_idx], scan_idx)
            bounds[scan_idx] = true_max[scan_idx]

        alive = np.nonzero(bounds > 0)[0]
        if alive.size == 0:
            return out
        # Widen hint-violating bounds so correctness never depends on the
        # helper really being an upper bound (same rule as the scalar path).
        bounds = np.maximum(bounds, true_max)

        max_trials = np.maximum(self.min_trials, self.max_trial_factor * degrees)
        choice = np.full(batch.size, -1, dtype=np.int64)
        choice[alive] = run_rejection_trials_batch(
            batch, alive, weights, bounds[alive], max_trials[alive]
        )
        for i in alive[choice[alive] < 0]:
            lo, hi = int(batch.offsets[i]), int(batch.offsets[i + 1])
            wslice = weights[lo:hi]
            total = float(wslice.sum())
            if total <= 0.0:
                continue
            degree = hi - lo
            only = np.array([i])
            batch.charge("coalesced_accesses", degree, only)
            batch.charge("weight_computations", degree, only)
            cdf = np.cumsum(wslice)
            batch.charge("prefix_sum_elements", degree, only)
            u = batch.stream(i).uniform()
            batch.charge("rng_draws", 1, only)
            choice[i] = min(int(np.searchsorted(cdf, u * total, side="right")), degree - 1)
        picked = np.nonzero(choice >= 0)[0]
        out[picked] = batch.neighbors_flat[batch.offsets[:-1][picked] + choice[picked]]
        return out
