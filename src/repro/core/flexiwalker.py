"""The FlexiWalker facade: compile → profile → select → walk (Fig. 6).

Typical use::

    from repro.core import FlexiWalker
    from repro.graph import load_dataset
    from repro.walks import Node2VecSpec

    graph = load_dataset("YT", weights="uniform")
    walker = FlexiWalker(graph, Node2VecSpec())
    result = walker.run(walk_length=80)
    print(result.time_ms, result.selection_ratio())

The facade performs the full pipeline of the paper's Fig. 6:

1. **Compile time** — Flexi-Compiler analyses the workload's ``get_weight``
   and generates the max/sum estimation helpers plus the per-node
   preprocessing (falling back to eRVS-only when the code is too complex).
2. **Profiling** — two lightweight kernels measure the device's
   rejection-vs-reservoir per-edge cost ratio (Section 5.1).
3. **Runtime** — walk queries are pulled from a dynamic queue, the cost model
   picks eRJS or eRVS per node per step, and the optimised kernels execute on
   the simulated device.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.generator import CompiledWorkload, compile_workload
from repro.core.config import FlexiWalkerConfig
from repro.errors import ReproError
from repro.graph.csr import CSRGraph
from repro.runtime.cost_model import CostModel
from repro.runtime.engine import WalkEngine, WalkRunResult
from repro.runtime.profiler import ProfileResult, profile_edge_costs
from repro.runtime.selector import (
    CostModelSelector,
    DegreeBasedSelector,
    FixedSelector,
    RandomSelector,
    SamplerSelector,
)
from repro.sampling.erjs import EnhancedRejectionSampler
from repro.sampling.ervs import EnhancedReservoirSampler
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkQuery, make_queries


class FlexiWalker:
    """End-to-end dynamic random walk framework on the simulated GPU.

    Parameters
    ----------
    graph:
        The input graph (CSR).
    spec:
        The workload's gather-move-update logic.
    config:
        Pipeline configuration; defaults reproduce the paper's setup
        (cost-model selection, profiling on, overheads accounted).
    """

    def __init__(
        self,
        graph: CSRGraph,
        spec: WalkSpec,
        config: FlexiWalkerConfig | None = None,
    ) -> None:
        self.graph = graph
        self.spec = spec
        self.config = config or FlexiWalkerConfig()

        # -- Compile time -------------------------------------------------
        self.compiled: CompiledWorkload = compile_workload(spec, graph, device=self.config.device)

        # -- Profiling ----------------------------------------------------
        self.profile: ProfileResult | None = None
        if self.config.run_profiling:
            self.profile = profile_edge_costs(
                graph, spec, self.config.device, seed=self.config.seed
            )
            ratio = self.profile.edge_cost_ratio
        else:
            ratio = self.config.device.random_to_coalesced_ratio
        self.cost_model = CostModel(edge_cost_ratio=max(ratio, 1e-6))

        # -- Runtime ------------------------------------------------------
        self.selector = self._build_selector()
        # An unsupported workload (compiler fallback, Section 7.1) must not
        # run eRJS, whatever the configured policy says.
        if not self.compiled.supported and self.config.selection in ("cost_model", "erjs_only", "degree", "random"):
            self.selector = FixedSelector(EnhancedReservoirSampler())
        self.engine = WalkEngine(
            graph=graph,
            spec=spec,
            device=self.config.device,
            selector=self.selector,
            compiled=self.compiled,
            seed=self.config.seed,
            warp_width=self.config.warp_width,
            weight_bytes=self.config.weight_bytes,
            scheduling=self.config.scheduling,
            selection_overhead=self.config.selection_overhead and self.config.selection == "cost_model",
            warp_switch_overhead=self.config.warp_switch_overhead,
            execution=self.config.execution,
            num_devices=self.config.num_devices,
            partition_policy=self.config.partition_policy,
        )

    # ------------------------------------------------------------------ #
    def _build_selector(self) -> SamplerSelector:
        policy = self.config.selection
        if policy == "cost_model":
            return CostModelSelector(self.cost_model)
        if policy == "ervs_only":
            return FixedSelector(EnhancedReservoirSampler())
        if policy == "erjs_only":
            return FixedSelector(EnhancedRejectionSampler())
        if policy == "random":
            return RandomSelector(seed=self.config.seed)
        if policy == "degree":
            return DegreeBasedSelector(threshold=self.config.degree_threshold)
        raise ReproError(f"unknown selection policy {policy!r}")  # pragma: no cover

    # ------------------------------------------------------------------ #
    def run(
        self,
        walk_length: int | None = None,
        num_queries: int | None = None,
        start_nodes: np.ndarray | None = None,
    ) -> WalkRunResult:
        """Create one query per node (or per requested start) and execute them.

        ``walk_length`` defaults to the workload's paper setting (80 steps,
        or the schema depth for MetaPath).
        """
        length = self.spec.walk_length(walk_length)
        queries = make_queries(
            self.graph.num_nodes,
            walk_length=length,
            num_queries=num_queries,
            start_nodes=start_nodes,
            seed=self.config.seed,
        )
        return self.run_queries(queries)

    def run_queries(self, queries: list[WalkQuery]) -> WalkRunResult:
        """Execute an explicit batch of walk queries."""
        if not queries:
            raise ReproError("no walk queries to execute")
        return self.engine.run(queries, profile=self.profile)

    # ------------------------------------------------------------------ #
    def describe(self) -> dict[str, object]:
        """Summary of the compiled/pipelined state (used by examples/docs)."""
        return {
            "workload": self.spec.describe(),
            "granularity": self.compiled.granularity.name,
            "compiler_supported": self.compiled.supported,
            "compiler_warnings": list(self.compiled.analysis.warnings),
            "edge_cost_ratio": self.cost_model.edge_cost_ratio,
            "selector": self.selector.name,
            "device": self.config.device.name,
            "execution": self.config.execution,
            "num_devices": self.config.num_devices,
            "partition_policy": self.config.partition_policy,
        }
