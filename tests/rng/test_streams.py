"""Tests for counting streams and the per-thread stream pool."""

from __future__ import annotations

import numpy as np

from repro.rng.streams import CountingStream, StreamPool


class TestCountingStream:
    def test_counts_scalar_draws(self):
        stream = CountingStream.from_seed(1)
        stream.uniform()
        stream.uniform()
        assert stream.draws == 2

    def test_counts_vector_draws_by_size(self):
        stream = CountingStream.from_seed(1)
        stream.uniform(10)
        stream.integers(0, 5, size=4)
        stream.exponential(3)
        assert stream.draws == 17

    def test_reset_count_only_resets_counter_not_stream(self):
        stream = CountingStream.from_seed(2)
        first = stream.uniform()
        stream.reset_count()
        second = stream.uniform()
        assert stream.draws == 1
        assert first != second

    def test_split_child_counts_independently(self):
        parent = CountingStream.from_seed(3)
        child = parent.split(0)
        parent.uniform(5)
        child.uniform(2)
        assert parent.draws == 5
        assert child.draws == 2

    def test_same_seed_same_sequence(self):
        a = CountingStream.from_seed(9)
        b = CountingStream.from_seed(9)
        assert np.array_equal(a.uniform(16), b.uniform(16))


class TestStreamPool:
    def test_streams_are_cached_per_thread(self):
        pool = StreamPool(0)
        assert pool.stream(3) is pool.stream(3)

    def test_different_threads_get_independent_streams(self):
        pool = StreamPool(0)
        a = pool.stream(0).uniform(50)
        b = pool.stream(1).uniform(50)
        assert not np.allclose(a, b)

    def test_total_draws_aggregates_all_streams(self):
        pool = StreamPool(0)
        pool.stream(0).uniform(4)
        pool.stream(1).uniform(6)
        assert pool.total_draws == 10

    def test_reset_counts(self):
        pool = StreamPool(0)
        pool.stream(0).uniform(4)
        pool.reset_counts()
        assert pool.total_draws == 0

    def test_pool_reproducible_across_instances(self):
        a = StreamPool(77).stream(5).uniform(8)
        b = StreamPool(77).stream(5).uniform(8)
        assert np.array_equal(a, b)


class TestDuplicateStreamsInOneBatch:
    """A thread index repeated in one batch must behave like one shared stream."""

    def test_duplicates_share_one_slot_and_draw_sequentially(self):
        pool = StreamPool(seed=4)
        batch = pool.batch([5, 5])
        values = batch.uniform_flat(np.array([1, 1]))
        reference = StreamPool(seed=4).stream(5).uniform(2)
        assert np.array_equal(values, np.asarray(reference))
        assert values[0] != values[1]
        assert pool.stream(5).draws == 2

    def test_duplicate_then_scalar_continues_the_stream(self):
        pool = StreamPool(seed=9)
        pool.batch([3, 3]).uniform_flat(np.array([2, 1]))
        tail = pool.stream(3).uniform()
        reference = StreamPool(seed=9).stream(3).uniform(4)
        assert tail == float(np.asarray(reference)[3])
