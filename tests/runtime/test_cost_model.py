"""Tests for the first-order cost model (Eq. 9-11)."""

from __future__ import annotations

import pytest

from repro.errors import RuntimeSelectionError
from repro.runtime.cost_model import CostModel


class TestCostModel:
    def test_rvs_cost_linear_in_degree(self):
        model = CostModel(edge_cost_ratio=8.0)
        assert model.cost_rvs(100) == 100
        assert model.cost_rvs(0) == 0

    def test_rjs_cost_follows_eq_10(self):
        model = CostModel(edge_cost_ratio=8.0)
        # degree * max / sum = 10 * 2 / 10 = 2 expected trials, times ratio.
        assert model.cost_rjs(10, max_weight=2.0, sum_weight=10.0) == pytest.approx(8.0 * 10 * 2 / 10)

    def test_rjs_cost_infinite_for_degenerate_inputs(self):
        model = CostModel()
        assert model.cost_rjs(10, 0.0, 5.0) == float("inf")
        assert model.cost_rjs(10, 2.0, 0.0) == float("inf")

    def test_prefer_rjs_rule_eq_11(self):
        model = CostModel(edge_cost_ratio=8.0)
        # sum > ratio * max -> RJS wins.
        assert model.prefer_rjs(max_weight=1.0, sum_weight=10.0)
        assert not model.prefer_rjs(max_weight=2.0, sum_weight=10.0)

    def test_prefer_rjs_false_without_estimates(self):
        model = CostModel()
        assert not model.prefer_rjs(None, 10.0)
        assert not model.prefer_rjs(1.0, None)
        assert not model.prefer_rjs(0.0, 10.0)

    def test_skew_pushes_choice_to_reservoir(self):
        model = CostModel(edge_cost_ratio=8.0)
        degree = 100
        uniform_max, uniform_sum = 1.0, float(degree)
        skewed_max, skewed_sum = 50.0, float(degree) + 49.0
        assert model.prefer_rjs(uniform_max, uniform_sum)
        assert not model.prefer_rjs(skewed_max, skewed_sum)

    def test_expected_trials(self):
        model = CostModel()
        assert model.expected_trials(10, 2.0, 10.0) == pytest.approx(2.0)
        assert model.expected_trials(0, 2.0, 10.0) == float("inf")

    def test_invalid_ratio_rejected(self):
        with pytest.raises(RuntimeSelectionError):
            CostModel(edge_cost_ratio=0.0)

    def test_selection_consistent_with_costs(self):
        model = CostModel(edge_cost_ratio=5.0)
        for degree, max_w, sum_w in [(10, 1.0, 10.0), (50, 5.0, 60.0), (200, 30.0, 400.0)]:
            prefer = model.prefer_rjs(max_w, sum_w)
            assert prefer == (model.cost_rjs(degree, max_w, sum_w) < model.cost_rvs(degree))
