"""Batched sampling infrastructure: segment primitives and the batch context.

The batched walk engine executes one *superstep* for a whole frontier of
walkers at a time.  Per-walker neighbour lists have different lengths, so the
frontier's candidate edges are flattened into one contiguous array segmented
by walker; the helpers here provide the per-segment reductions (sum, max,
first-argmax, running max, binary search) the vectorised kernels are built
from.

Parity with the scalar engine is a hard requirement (the selection studies
compare counter totals and simulated timings between modes), so every helper
is written to reproduce the numpy expression the scalar kernel uses — e.g.
:func:`segment_bisect` replays ``np.searchsorted``'s bisection decisions
exactly, and sums that feed *values* (not just sign checks) are left to the
per-walker cores of the kernels that need them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.graph.csr import CSRGraph
from repro.gpusim.counters import CostCounters, CounterBatch
from repro.gpusim.warp import WARP_SIZE
from repro.rng.streams import BatchStreams, CountingStream
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkerFrontier

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (base imports batch)
    from repro.sampling.base import StepContext
    from repro.sampling.transition_cache import TransitionCache
    from repro.walks.state import WalkerState


class BufferArena:
    """Reusable per-run scratch buffers, recycled across supersteps.

    The frontier loop materialises the same flattened segment arrays every
    superstep (offsets, walker slot ids, the flat edge enumeration).  The
    arena hands out geometrically grown buffers keyed by role, so once the
    frontier's high-water mark is reached no superstep allocates them again.
    A buffer stays valid until the same key is requested next superstep; the
    engine requests each key at most once per superstep and subset contexts
    allocate their own (smaller) arrays instead of sharing the arena.
    """

    __slots__ = ("_buffers", "_arange")

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self._arange = np.zeros(0, dtype=np.int64)

    def int64(self, key: str, size: int) -> np.ndarray:
        """A writable ``int64`` scratch view of the given size for ``key``."""
        buf = self._buffers.get(key)
        if buf is None or buf.size < size:
            buf = np.empty(max(int(size), 2 * (0 if buf is None else buf.size)), dtype=np.int64)
            self._buffers[key] = buf
        return buf[:size]

    def arange(self, size: int) -> np.ndarray:
        """A read-only view of ``[0, size)`` (shared across all callers)."""
        if self._arange.size < size:
            self._arange = np.arange(max(int(size), 2 * self._arange.size), dtype=np.int64)
            self._arange.flags.writeable = False
        return self._arange[:size]


# ---------------------------------------------------------------------- #
# Segment primitives
# ---------------------------------------------------------------------- #
def segment_offsets(lengths: np.ndarray) -> np.ndarray:
    """``[0, cumsum(lengths)]`` — start/stop positions of each segment."""
    out = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=out[1:])
    return out


def segment_ids(lengths: np.ndarray) -> np.ndarray:
    """Segment index of every flattened element."""
    return np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)


def local_positions(lengths: np.ndarray) -> np.ndarray:
    """Position of every flattened element within its own segment."""
    offsets = segment_offsets(lengths)
    seg = segment_ids(lengths)
    return np.arange(int(offsets[-1]), dtype=np.int64) - offsets[:-1][seg]


def segment_any_positive(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Per segment: does any element exceed zero?

    For the non-negative transition weights every kernel operates on, this is
    exactly the scalar kernels' ``weights.sum() > 0`` dead-end test, without
    depending on floating-point summation order.
    """
    seg = segment_ids(lengths)
    counts = np.bincount(seg[values > 0], minlength=lengths.size)
    return counts > 0


def segment_max(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Per-segment maximum (exact — max is order-independent).

    Empty segments yield ``-inf``.
    """
    out = np.full(lengths.size, -np.inf, dtype=np.float64)
    nonempty = lengths > 0
    if not nonempty.any():
        return out
    offsets = segment_offsets(lengths)
    out[nonempty] = np.maximum.reduceat(
        values.astype(np.float64, copy=False), offsets[:-1][nonempty]
    )
    return out


def segment_argmax_first(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Index (local to each segment) of the first occurrence of the maximum.

    Matches ``np.argmax`` tie-breaking (first index wins).  Segments must be
    non-empty.
    """
    offsets = segment_offsets(lengths)
    seg = segment_ids(lengths)
    maxima = np.maximum.reduceat(values.astype(np.float64, copy=False), offsets[:-1])
    positions = np.arange(values.size, dtype=np.int64)
    sentinel = values.size
    candidates = np.where(values == maxima[seg], positions, sentinel)
    firsts = np.minimum.reduceat(candidates, offsets[:-1])
    return firsts - offsets[:-1]


def segment_cummax(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Per-segment inclusive running maximum (Hillis–Steele doubling).

    Handles ``-inf`` entries exactly (no offset tricks), which matters for
    the exponential-race keys where zero-weight neighbours map to ``-inf``.
    """
    out = values.astype(np.float64, copy=True)
    if out.size == 0 or lengths.size == 0:
        return out
    seg = segment_ids(lengths)
    max_len = int(lengths.max())
    shift = 1
    while shift < max_len:
        same = seg[shift:] == seg[:-shift]
        candidate = np.where(same, out[:-shift], -np.inf)
        out[shift:] = np.maximum(out[shift:], candidate)
        shift <<= 1
    return out


def segment_first_true(mask: np.ndarray, lengths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per segment: (any element true, local index of the first true element).

    Segments without a true element report index 0 with ``any`` False.
    """
    offsets = segment_offsets(lengths)
    seg = segment_ids(lengths)
    positions = np.arange(mask.size, dtype=np.int64)
    sentinel = mask.size
    nonempty = lengths > 0
    firsts_abs = np.full(lengths.size, sentinel, dtype=np.int64)
    if nonempty.any():
        candidates = np.where(mask, positions, sentinel)
        firsts_abs[nonempty] = np.minimum.reduceat(candidates, offsets[:-1][nonempty])
    any_true = firsts_abs < sentinel
    local = np.where(any_true, firsts_abs - offsets[:-1], 0)
    return any_true, local


def segment_bisect(
    sorted_flat: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    queries: np.ndarray,
    side: str = "left",
) -> np.ndarray:
    """Vectorised binary search of each query within its own sorted slice.

    Searches ``sorted_flat[lo[i]:hi[i]]`` for ``queries[i]`` and returns the
    *absolute* insertion position, replaying exactly the bisection
    ``np.searchsorted`` performs (so results agree even on degenerate input).
    """
    lo = np.asarray(lo, dtype=np.int64).copy()
    hi = np.asarray(hi, dtype=np.int64).copy()
    if side not in ("left", "right"):
        raise ValueError(f"unknown side {side!r}")
    while True:
        open_mask = lo < hi
        if not open_mask.any():
            return lo
        mid = (lo + hi) >> 1
        probe = np.where(open_mask, mid, 0)
        vals = sorted_flat[probe]
        if side == "left":
            go_right = vals < queries
        else:
            go_right = vals <= queries
        go_right &= open_mask
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(open_mask & ~go_right, mid, hi)


# ---------------------------------------------------------------------- #
# The batch step context
# ---------------------------------------------------------------------- #
@dataclass
class BatchStepContext:
    """Everything a batch sampling kernel needs for one superstep partition.

    The batched analogue of :class:`~repro.sampling.base.StepContext`: it
    describes *many* walkers about to take one step each.  Candidate edges of
    all walkers are exposed in flattened (segmented) form; cost accounting
    goes into per-walker slots of a shared :class:`CounterBatch`; random
    draws come from per-walker counter-based streams via
    :class:`~repro.rng.streams.BatchStreams`.

    Attributes
    ----------
    graph / spec:
        The graph and the workload logic (shared by every walker).
    frontier:
        Array-form walker state of the whole run.
    walkers:
        Frontier indices of the walkers in this context.
    rng:
        Batched per-walker random streams, parallel to ``walkers``.
    counters / slots:
        The superstep's :class:`CounterBatch` and the slot of each walker in
        it.  Kernels charge through :meth:`charge` so partitions of one
        superstep share a single per-walker accounting row — required for the
        one-float-add-per-step timing parity with the scalar engine.
    bound_hints / sum_hints:
        Compiler-estimated per-walker max/sum hints (``NaN`` = unavailable),
        the batched form of ``StepContext.bound_hint`` / ``sum_hint``.
    warp_width:
        Cooperative width for warp kernels.
    transition_cache:
        Cross-superstep per-node weight/CDF/alias cache, present only when
        the compiler classified the workload as node-only
        (``weights_node_only``); :meth:`transition_weights` and the ITS/ALS
        kernels consult it instead of recomputing.  Host-side only — the
        simulated cost accounting is identical with or without it.
    arena:
        Optional per-run scratch-buffer arena; when present, the flattened
        segment arrays are built into recycled buffers instead of fresh
        allocations every superstep.
    """

    graph: CSRGraph
    spec: WalkSpec
    frontier: WalkerFrontier
    walkers: np.ndarray
    rng: BatchStreams
    counters: CounterBatch
    slots: np.ndarray
    bound_hints: np.ndarray | None = None
    sum_hints: np.ndarray | None = None
    warp_width: int = WARP_SIZE
    transition_cache: TransitionCache | None = None
    arena: BufferArena | None = None
    _flat: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return int(self.walkers.size)

    @property
    def current(self) -> np.ndarray:
        return self.frontier.current[self.walkers]

    @property
    def prev(self) -> np.ndarray:
        return self.frontier.prev[self.walkers]

    @property
    def steps(self) -> np.ndarray:
        return self.frontier.steps[self.walkers]

    # -- flattened frontier edges -------------------------------------- #
    @property
    def edge_start(self) -> np.ndarray:
        """Global edge index where each walker's neighbour list begins."""
        return self._cached("edge_start", lambda: self.graph.indptr[self.current])

    @property
    def degrees(self) -> np.ndarray:
        return self._cached(
            "degrees", lambda: self.graph.indptr[self.current + 1] - self.edge_start
        )

    @property
    def offsets(self) -> np.ndarray:
        """Start/stop of each walker's segment in the flattened arrays."""

        def build() -> np.ndarray:
            if self.arena is not None:
                out = self.arena.int64("offsets", self.degrees.size + 1)
                out[0] = 0
                np.cumsum(self.degrees, out=out[1:])
                return out
            return segment_offsets(self.degrees)

        return self._cached("offsets", build)

    @property
    def seg_ids(self) -> np.ndarray:
        return self._cached("seg_ids", lambda: segment_ids(self.degrees))

    @property
    def flat_edges(self) -> np.ndarray:
        """Global edge index of every flattened candidate edge."""

        def build() -> np.ndarray:
            base = np.repeat(self.edge_start - self.offsets[:-1], self.degrees)
            total = int(self.offsets[-1])
            if self.arena is not None:
                base += self.arena.arange(total)
                return base
            return base + np.arange(total, dtype=np.int64)

        return self._cached("flat_edges", build)

    @property
    def neighbors_flat(self) -> np.ndarray:
        """Destination node of every flattened candidate edge."""
        return self._cached("neighbors_flat", lambda: self.graph.indices[self.flat_edges])

    def _cached(self, key: str, build):
        value = self._flat.get(key)
        if value is None:
            value = build()
            self._flat[key] = value
        return value

    def edge_mask(self, idx: np.ndarray) -> np.ndarray:
        """Boolean mask over the flattened edges of the given walkers.

        Projects a per-walker index set onto the flat candidate-edge arrays,
        selecting exactly the segments owned by those walkers.
        """
        keep = np.zeros(self.size, dtype=bool)
        keep[idx] = True
        return keep[self.seg_ids]

    # ------------------------------------------------------------------ #
    def charge(self, name: str, amount: np.ndarray | int, idx: np.ndarray | None = None) -> None:
        """Charge a counter for every walker (or the subset ``idx``)."""
        slots = self.slots if idx is None else self.slots[idx]
        self.counters.charge(name, slots, amount)

    def transition_weights(self) -> np.ndarray:
        """Flattened transition weights of every candidate edge (no accounting).

        Cached per superstep: a kernel that needs the weights twice (e.g.
        eRJS's trial probes plus its fallback) computes them once, exactly
        like the scalar kernels materialise the vector once.  When a
        cross-superstep :class:`TransitionCache` is attached (node-only
        workloads), the values are gathered from it instead of recomputed —
        same numbers, no per-step evaluation.
        """

        def build() -> np.ndarray:
            if self.transition_cache is not None:
                return self.transition_cache.weights_for(self)
            return self.spec.transition_weights_batch(self.graph, self)

        return self._cached("weights", build)

    def gather_weights(self, passes: int = 1, coalesced: bool = True,
                       idx: np.ndarray | None = None) -> np.ndarray:
        """Batched :func:`~repro.sampling.base.gather_transition_weights`.

        Returns the full flattened weight array and charges the scan cost —
        for every walker, or only for the subset ``idx`` (used when only some
        walkers of a partition take the scanning path).
        """
        weights = self.transition_weights()
        degrees = self.degrees if idx is None else self.degrees[idx]
        field_name = "coalesced_accesses" if coalesced else "random_accesses"
        self.charge(field_name, degrees * passes, idx)
        self.charge("weight_computations", degrees, idx)
        scan_words = self.spec.scan_cost_words_batch(self.graph, self)
        self.charge("coalesced_accesses", scan_words if idx is None else scan_words[idx], idx)
        return weights

    # -- scalar-fallback bridge ---------------------------------------- #
    def state(self, i: int) -> WalkerState:
        """Object-form state of the ``i``-th walker in this context."""
        return self.frontier.state_view(self.walkers[int(i)])

    def stream(self, i: int) -> CountingStream:
        """The ``i``-th walker's scalar random stream."""
        return self.rng.stream(i)

    def scalar_context(self, i: int) -> tuple["StepContext", CostCounters]:
        """A scalar :class:`StepContext` for one walker, plus its counters.

        The bridge that lets samplers and selectors without a vectorised
        implementation run their scalar code unchanged inside the batched
        engine: run the kernel on the returned context, then fold the
        counters back with ``absorb(i, counters)``.
        """
        from repro.sampling.base import StepContext

        counters = CostCounters(bytes_per_weight=self.counters.bytes_per_weight)
        bound = None
        if self.bound_hints is not None and not np.isnan(self.bound_hints[i]):
            bound = float(self.bound_hints[i])
        total = None
        if self.sum_hints is not None and not np.isnan(self.sum_hints[i]):
            total = float(self.sum_hints[i])
        ctx = StepContext(
            graph=self.graph,
            state=self.state(i),
            spec=self.spec,
            rng=self.stream(i),
            counters=counters,
            bound_hint=bound,
            sum_hint=total,
            warp_width=self.warp_width,
        )
        return ctx, counters

    def absorb(self, i: int, counters: CostCounters) -> None:
        """Fold a scalar context's counters into walker ``i``'s slot."""
        self.counters.absorb(int(self.slots[int(i)]), counters)

    # ------------------------------------------------------------------ #
    def subset(self, idx: np.ndarray) -> BatchStepContext:
        """A context over a subset of the walkers (shared counter batch).

        The transition cache is shared (it is keyed by node, not by walker);
        the arena is not — a subset materialising its own segment arrays must
        not overwrite the parent's recycled buffers mid-superstep.
        """
        return BatchStepContext(
            graph=self.graph,
            spec=self.spec,
            frontier=self.frontier,
            walkers=self.walkers[idx],
            rng=self.rng.subset(idx),
            counters=self.counters,
            slots=self.slots[idx],
            bound_hints=None if self.bound_hints is None else self.bound_hints[idx],
            sum_hints=None if self.sum_hints is None else self.sum_hints[idx],
            warp_width=self.warp_width,
            transition_cache=self.transition_cache,
        )
