"""Inverse transform sampling (ITS), the strategy of C-SAW.

ITS builds the normalised cumulative distribution of the transition weights
with a prefix sum, then inverts one uniform random number through a binary
search (Fig. 2c).  As with alias sampling, the auxiliary structure (the CDF)
must be rebuilt at every step of a dynamic walk, which is the overhead the
paper's design-space study rules out.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import (
    Sampler,
    StepContext,
    all_weights_zero,
    gather_transition_weights,
)
from repro.sampling.batch import BatchStepContext, segment_any_positive, segment_bisect


class InverseTransformSampler(Sampler):
    """Per-step CDF construction + binary-search inversion (C-SAW, Fig. 2c)."""

    name = "ITS"
    processing_unit = "warp"

    def sample(self, ctx: StepContext) -> int | None:
        if not self._check_nonempty(ctx):
            return None
        weights = gather_transition_weights(ctx)
        degree = weights.size
        if all_weights_zero(weights):
            return None
        total = float(weights.sum())

        warp = ctx.warp()
        cdf = warp.prefix_sum(weights)
        # Storing the normalised prefix sums is an extra write per element.
        ctx.counters.table_builds += degree

        u = ctx.rng.uniform()
        ctx.counters.rng_draws += 1
        target = u * total
        # First index whose cumulative weight strictly exceeds the target;
        # "right" side guarantees zero-weight slots (flat CDF segments) are
        # never selected.
        choice = int(np.searchsorted(cdf, target, side="right"))
        choice = min(choice, degree - 1)
        # Binary search over the stored CDF: ~log2(degree) probes.
        ctx.counters.random_accesses += max(1, int(np.ceil(np.log2(max(degree, 2)))))
        return int(ctx.neighbors()[choice])

    # ------------------------------------------------------------------ #
    def _sample_batch_nonempty(self, batch: BatchStepContext, out: np.ndarray) -> np.ndarray:
        """Frontier-wide ITS: vectorised gather/draws, per-walker CDF cores.

        The prefix-sum core stays a per-walker ``np.cumsum`` so the floating
        point accumulation (and hence the inverted index) is bit-identical to
        the scalar kernel; everything around it — the weight gather, the cost
        accounting and the uniform draws — is vectorised.
        """
        degrees = batch.degrees
        weights = batch.gather_weights()
        live = np.nonzero(segment_any_positive(weights, degrees))[0]
        if live.size == 0:
            return out

        batch.charge("prefix_sum_elements", degrees[live], live)
        batch.charge("table_builds", degrees[live], live)
        counts = np.zeros(batch.size, dtype=np.int64)
        counts[live] = 1
        uniforms = batch.rng.uniform_flat(counts)
        batch.charge("rng_draws", 1, live)
        probes = np.maximum(1, np.ceil(np.log2(np.maximum(degrees[live], 2))).astype(np.int64))
        batch.charge("random_accesses", probes, live)

        cache = batch.transition_cache
        if cache is not None:
            # Node-only workload: the per-node CDF/total pair is a run-wide
            # constant served by the transition cache, and the inversion runs
            # as one segmented binary search (which replays np.searchsorted's
            # bisection decisions exactly, so the chosen indices are
            # bit-identical to the per-walker cores below).
            live_nodes = batch.current[live]
            cdf_flat, totals = cache.cdf_arrays(live_nodes)
            lo = batch.graph.indptr[live_nodes]
            hi = batch.graph.indptr[live_nodes + 1]
            pos = segment_bisect(cdf_flat, lo, hi, uniforms * totals, side="right")
            choice = np.minimum(pos - lo, hi - lo - 1)
            out[live] = batch.graph.indices[lo + choice]
            return out

        for j, i in enumerate(live):
            lo, hi = int(batch.offsets[i]), int(batch.offsets[i + 1])
            wslice = weights[lo:hi]
            total = float(wslice.sum())
            cdf = np.cumsum(wslice)
            choice = int(np.searchsorted(cdf, uniforms[j] * total, side="right"))
            choice = min(choice, hi - lo - 1)
            out[i] = batch.neighbors_flat[lo + choice]
        return out
