"""Tests for edge-list / adjacency builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.builders import from_adjacency, from_edge_list, to_undirected


class TestFromEdgeList:
    def test_builds_sorted_neighbor_lists(self):
        g = from_edge_list([(0, 2), (0, 1), (1, 0)])
        assert np.array_equal(g.neighbors(0), [1, 2])
        assert np.array_equal(g.neighbors(1), [0])

    def test_weights_follow_their_edges_through_sorting(self):
        g = from_edge_list([(0, 2), (0, 1)], weights=[20.0, 10.0])
        # Neighbour 1 carries the weight originally attached to edge (0, 1).
        assert g.edge_weights(0)[0] == 10.0
        assert g.edge_weights(0)[1] == 20.0

    def test_labels_follow_their_edges(self):
        g = from_edge_list([(0, 2), (0, 1)], labels=[7, 3])
        assert list(g.edge_labels(0)) == [3, 7]

    def test_num_nodes_inferred_and_explicit(self):
        assert from_edge_list([(0, 4)]).num_nodes == 5
        assert from_edge_list([(0, 1)], num_nodes=10).num_nodes == 10

    def test_explicit_num_nodes_too_small_raises(self):
        with pytest.raises(GraphError):
            from_edge_list([(0, 5)], num_nodes=3)

    def test_deduplicate_removes_parallel_edges(self):
        g = from_edge_list([(0, 1), (0, 1), (0, 2)], deduplicate=True)
        assert g.num_edges == 2

    def test_duplicates_kept_by_default(self):
        assert from_edge_list([(0, 1), (0, 1)]).num_edges == 2

    def test_empty_edge_list(self):
        g = from_edge_list([], num_nodes=3)
        assert g.num_nodes == 3
        assert g.num_edges == 0

    def test_negative_node_ids_rejected(self):
        with pytest.raises(GraphError):
            from_edge_list([(-1, 0)])

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(GraphError):
            from_edge_list([(0, 1)], weights=[1.0, 2.0])

    def test_malformed_edges_rejected(self):
        with pytest.raises(GraphError):
            from_edge_list(np.array([[0, 1, 2]]))


class TestFromAdjacency:
    def test_round_trip(self):
        g = from_adjacency([[1, 2], [2], []])
        assert np.array_equal(g.neighbors(0), [1, 2])
        assert g.num_nodes == 3

    def test_with_weights(self):
        g = from_adjacency([[1], []], weights=[[4.0], []])
        assert g.edge_weights(0)[0] == 4.0

    def test_mismatched_weights_rejected(self):
        with pytest.raises(GraphError):
            from_adjacency([[1, 2]], weights=[[1.0]])


class TestToUndirected:
    def test_every_edge_gets_a_mirror(self):
        g = from_edge_list([(0, 1), (1, 2)], num_nodes=3)
        u = to_undirected(g)
        assert u.has_edge(1, 0)
        assert u.has_edge(2, 1)
        assert u.num_edges == 4

    def test_existing_mirrors_not_duplicated(self):
        g = from_edge_list([(0, 1), (1, 0)], num_nodes=2)
        assert to_undirected(g).num_edges == 2

    def test_weights_copied_to_mirrors(self):
        g = from_edge_list([(0, 1)], num_nodes=2, weights=[3.5])
        u = to_undirected(g)
        assert u.edge_weights(1)[0] == 3.5
