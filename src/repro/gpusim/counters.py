"""Cost counters recorded by sampling kernels.

Every quantity the paper's first-order performance arguments rest on is an
explicit counter here.  Kernels *add* to a counter object while they execute;
the device model later prices each counter.  Counters are also the mechanism
behind the reproduction's ablation studies: e.g. the eRVS jump optimisation
shows up directly as a drop in ``rng_draws`` and ``flops``, and the eRJS bound
estimation as the disappearance of ``reduction_elements``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np


@dataclass
class CostCounters:
    """Accumulated operation counts for one kernel (or one query, or one step).

    Attributes
    ----------
    coalesced_accesses:
        Words read through warp-coalesced (sequential) global-memory
        transactions — e.g. a reservoir scan over a neighbour list.
    random_accesses:
        Words read through uncoalesced single-lane transactions — e.g. the
        probe of one candidate edge in rejection sampling.
    weight_computations:
        Evaluations of the user ``get_weight`` function (the dynamic part of
        the transition weight).
    rng_draws:
        Random variates generated (cuRAND calls on the real hardware).
    reduction_elements:
        Elements that participated in warp/block reductions (max/sum/argmax).
    prefix_sum_elements:
        Elements that participated in prefix-sum computations (ITS, baseline
        RVS).
    rejection_trials:
        Accepted + rejected trials performed by rejection-sampling kernels.
    warp_syncs:
        Warp-synchronisation intrinsics executed (``__ballot_sync``,
        ``__shfl_sync``) by the concurrent RJS/RVS kernel of Section 5.2.
    atomic_ops:
        Atomic operations (the dynamic query queue's global counter).
    table_builds:
        Elements written while building auxiliary structures (alias tables,
        CDF arrays) — the cost that makes ALS/ITS unattractive for dynamic
        walks.
    bytes_per_weight:
        Size of one stored property weight (8 for float64, 1 for the INT8
        extension); used by the memory model to convert accesses to bytes.
    """

    coalesced_accesses: int = 0
    random_accesses: int = 0
    weight_computations: int = 0
    rng_draws: int = 0
    reduction_elements: int = 0
    prefix_sum_elements: int = 0
    rejection_trials: int = 0
    warp_syncs: int = 0
    atomic_ops: int = 0
    table_builds: int = 0
    bytes_per_weight: int = field(default=8)

    _COUNT_FIELDS = (
        "coalesced_accesses",
        "random_accesses",
        "weight_computations",
        "rng_draws",
        "reduction_elements",
        "prefix_sum_elements",
        "rejection_trials",
        "warp_syncs",
        "atomic_ops",
        "table_builds",
    )

    def merge(self, other: CostCounters) -> CostCounters:
        """Add ``other``'s counts into this object (in place) and return self."""
        for name in self._COUNT_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def copy(self) -> CostCounters:
        return CostCounters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def reset(self) -> None:
        for name in self._COUNT_FIELDS:
            setattr(self, name, 0)

    @property
    def total_memory_accesses(self) -> int:
        """All global-memory word accesses regardless of coalescing."""
        return self.coalesced_accesses + self.random_accesses

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self._COUNT_FIELDS}

    def __add__(self, other: CostCounters) -> CostCounters:
        return self.copy().merge(other)


class CounterBatch:
    """Vectorised cost accounting: one counter *array* per operation class.

    The batched (frontier) walk engine executes one step for many walkers at
    once; each walker still needs its own per-step operation counts so the
    device model can price its lane time exactly like the scalar engine
    does.  ``CounterBatch`` is the structure-of-arrays form of
    :class:`CostCounters`: slot ``i`` holds the counts of the ``i``-th walker
    in the current superstep.  Batch kernels add whole numpy vectors
    (``batch.coalesced_accesses[slots] += degrees``), and the totals fold
    back into an ordinary :class:`CostCounters` for aggregation.
    """

    __slots__ = ("size", "bytes_per_weight") + CostCounters._COUNT_FIELDS

    def __init__(self, size: int, bytes_per_weight: int = 8) -> None:
        self.size = int(size)
        self.bytes_per_weight = int(bytes_per_weight)
        for name in CostCounters._COUNT_FIELDS:
            setattr(self, name, np.zeros(self.size, dtype=np.int64))

    # ------------------------------------------------------------------ #
    def charge(self, name: str, slots: np.ndarray, amount: np.ndarray | int) -> None:
        """Add ``amount`` to counter ``name`` at the given slots.

        ``slots`` must not contain duplicates (each walker occupies exactly
        one slot per superstep), which keeps this a plain fancy-index add.
        """
        getattr(self, name)[slots] += amount

    def absorb(self, slot: int, counters: CostCounters) -> None:
        """Add a scalar :class:`CostCounters` into one slot.

        Used by the scalar-fallback paths (per-walker ``sample()`` loops,
        baseline step-overhead hooks) so their accounting lands in the same
        per-walker slot the vectorised kernels use.
        """
        for name in CostCounters._COUNT_FIELDS:
            getattr(self, name)[slot] += getattr(counters, name)

    def snapshot(self, slot: int) -> CostCounters:
        """One slot's counts as a scalar :class:`CostCounters` (a copy)."""
        out = CostCounters(bytes_per_weight=self.bytes_per_weight)
        for name in CostCounters._COUNT_FIELDS:
            setattr(out, name, int(getattr(self, name)[slot]))
        return out

    def write_back(self, slot: int, counters: CostCounters) -> None:
        """Overwrite one slot with a scalar :class:`CostCounters`.

        The counterpart of :meth:`snapshot` for code that must let scalar
        hooks *see and mutate* a walker's already-accumulated step counts
        (the scalar engine hands hooks the live step counters, so the
        batched engine round-trips the slot through a scalar object).
        """
        for name in CostCounters._COUNT_FIELDS:
            getattr(self, name)[slot] = getattr(counters, name)

    def totals(self) -> CostCounters:
        """Fold every slot into one scalar :class:`CostCounters`."""
        out = CostCounters(bytes_per_weight=self.bytes_per_weight)
        for name in CostCounters._COUNT_FIELDS:
            setattr(out, name, int(getattr(self, name).sum()))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CounterBatch(size={self.size})"
