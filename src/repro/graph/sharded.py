"""Graph sharding: splitting one CSR graph into per-device edge shards.

The replicated multi-device design (Fig. 15) copies the whole graph onto
every device, so the largest servable graph is bounded by a single device's
memory.  Distributed walk systems (KnightKing-style walker migration) lift
that bound by *partitioning the graph*: each device owns a subset of the
nodes together with their out-edges, and a walker executes each step on the
device owning its current node — paying an interconnect transfer when a
sampled step crosses a shard boundary.

:class:`ShardedCSRGraph` is the storage side of that model.  Ownership is a
relabeling layer: a node→shard ``owner_map`` (one ``int64`` per node) plus a
per-shard sorted global-node list that doubles as the local-index
permutation, so *any* node-to-shard assignment is expressible — the
contiguous-range policies are just the special case where each shard's node
list is a run of consecutive ids.  Three build policies exist:

* ``"contiguous"`` — equal node-id ranges (naive, degree-blind);
* ``"degree_balanced"`` — contiguous ranges balanced by edge count;
* ``"locality"`` — a streaming LDG/Fennel-style one-pass partitioner that
  assigns each node (highest degree first) to the shard already holding
  most of its neighbours, subject to a capacity penalty.  Guaranteed to cut
  no more edges than the contiguous split of the same graph (the builder
  keeps whichever of the two assignments cuts fewer).

The decomposition also builds the per-shard *ghost cache* used by the
sharded runtime: each shard locally caches the adjacency slices of the
hottest (highest global out-degree) remote nodes within a modeled byte
budget, so walker steps landing on a cached remote hub are served locally
instead of migrating (:meth:`ShardedCSRGraph.ghost_cache`).

Shards slice the parent's edge arrays (views for contiguous ranges, one
gather for permuted assignments): the shard decomposition is a bookkeeping
structure, exactly like the CSR slices the per-node accessors hand out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

#: Valid node partitioning policies of :meth:`ShardedCSRGraph.build`.
SHARD_POLICIES = ("contiguous", "degree_balanced", "locality")


@dataclass(frozen=True)
class GraphShard:
    """One device's slice of a sharded graph.

    Attributes
    ----------
    shard_id:
        Position of this shard in the decomposition (== owning device id).
    nodes:
        Sorted ``int64`` array of the *global* node ids this shard owns.
        Its position order is the shard's local node numbering — the
        relabeling permutation (:meth:`local_index` inverts it).
    indptr:
        Local ``int64`` row-pointer array of length ``num_nodes + 1``
        (rebased to start at 0); row ``i`` describes global node
        ``nodes[i]``.
    indices / weights / labels:
        This shard's out-edge arrays (views into the parent for contiguous
        node runs, gathered copies otherwise).  Destination ids stay
        *global* — a destination owned by another shard is a remote edge.
    owner_map:
        The decomposition's shared node→shard map (not per-shard data; the
        same array every sibling shard holds), backing :meth:`owns`.
    """

    shard_id: int
    nodes: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    labels: np.ndarray | None
    owner_map: np.ndarray = field(repr=False)

    @property
    def num_nodes(self) -> int:
        return int(self.nodes.size)

    @property
    def num_edges(self) -> int:
        return int(self.indices.size)

    def owns(self, nodes: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``nodes`` this shard owns."""
        nodes = np.asarray(nodes, dtype=np.int64)
        return self.owner_map[nodes] == self.shard_id

    def local_index(self, nodes: np.ndarray) -> np.ndarray:
        """Per-shard local index of each (owned) global node id.

        The inverse of the ``nodes`` permutation: ``nodes[local_index(v)]
        == v`` for every owned ``v``.  Callers pass owned nodes only (the
        sharded driver routes through :meth:`ShardedCSRGraph.owner` first).
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        return np.searchsorted(self.nodes, nodes)

    def remote_edge_count(self) -> int:
        """Out-edges whose destination lives on another shard."""
        return int(np.count_nonzero(~self.owns(self.indices)))

    def memory_footprint_bytes(self, weight_bytes: int = 8) -> int:
        """Device memory needed to hold this shard (same model as the
        replicated :meth:`~repro.graph.csr.CSRGraph.memory_footprint_bytes`)."""
        return int(
            self.indptr.size * 8
            + self.indices.size * 8
            + self.indices.size * weight_bytes
            + (self.indices.size * 8 if self.labels is not None else 0)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphShard(#{self.shard_id}, {self.num_nodes} nodes, "
            f"{self.num_edges} edges)"
        )


@dataclass(frozen=True)
class GhostNodeCache:
    """Per-shard ghost copies of the hottest remote nodes' adjacency slices.

    Distributed walk engines cut migration traffic by *ghosting*: each
    partition keeps a read-only local copy of the adjacency lists of the
    highest-degree nodes it does not own, so a walker stepping onto such a
    hub is served from the local copy instead of migrating.  The cache is
    degree-ranked under a byte budget: shard ``s`` caches remote nodes in
    descending global out-degree order while their cumulative modeled size
    (edge destinations + weights [+ labels] + one row pointer) fits
    ``budget_bytes``.

    Attributes
    ----------
    budget_bytes:
        Per-shard byte budget the cache was built under.
    weight_bytes:
        Stored weight width used for the size model.
    mask:
        Boolean ``[num_shards, num_nodes]``; ``mask[s, v]`` means shard
        ``s`` holds a ghost copy of remote node ``v``.
    cached_nodes / cached_bytes:
        Per-shard totals of ghosted nodes and their modeled bytes.
    """

    budget_bytes: int
    weight_bytes: int
    mask: np.ndarray
    cached_nodes: np.ndarray
    cached_bytes: np.ndarray

    def covers(self, shard_ids: np.ndarray, nodes: np.ndarray) -> np.ndarray:
        """Whether each (shard, node) pair is served by a ghost copy."""
        return self.mask[shard_ids, nodes]

    def describe(self) -> dict[str, object]:
        return {
            "budget_bytes": self.budget_bytes,
            "cached_nodes": self.cached_nodes.tolist(),
            "cached_bytes": self.cached_bytes.tolist(),
        }


class ShardedCSRGraph:
    """A CSR graph decomposed into per-device node shards.

    Build with :meth:`build`; the decomposition is immutable.  The parent
    graph stays fully intact (the walk kernels still execute against it —
    the simulator charges communication instead of actually distributing the
    arrays), so a sharded run is bit-identical to a replicated run in
    everything but the modeled interconnect traffic.

    Attributes
    ----------
    graph:
        The parent :class:`~repro.graph.csr.CSRGraph`.
    policy:
        The partitioning policy used (one of :data:`SHARD_POLICIES`).
    owner_map:
        ``int64`` array of length ``num_nodes``: ``owner_map[v]`` is the
        shard owning node ``v``.  The single source of truth every
        ownership query (:meth:`owner`, :meth:`GraphShard.owns`, the
        sharded driver) routes through.
    shards:
        The per-device :class:`GraphShard` slices, in shard-id order.
    """

    def __init__(
        self,
        graph: CSRGraph,
        owner_map: np.ndarray,
        num_shards: int,
        policy: str,
    ) -> None:
        self.graph = graph
        self.policy = policy
        self.owner_map = np.asarray(owner_map, dtype=np.int64)
        if num_shards < 1:
            raise GraphError("need at least one shard")
        if self.owner_map.shape != (graph.num_nodes,) or (
            self.owner_map.size
            and (self.owner_map.min() < 0 or self.owner_map.max() >= num_shards)
        ):
            raise GraphError(
                "owner_map must assign every node one shard id in "
                f"[0, {num_shards}); got shape {self.owner_map.shape}"
            )
        self.shards = [
            self._slice_shard(s, np.nonzero(self.owner_map == s)[0])
            for s in range(num_shards)
        ]
        # Lazily computed, cached per instance (the decomposition is
        # immutable): per-shard edge counts and the static cut size.
        self._edge_counts: np.ndarray | None = None
        self._remote_edges: int | None = None

    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls, graph: CSRGraph, num_shards: int, policy: str = "contiguous"
    ) -> ShardedCSRGraph:
        """Split ``graph`` into ``num_shards`` shards under ``policy``.

        ``"contiguous"`` slices the node id space into equal ranges — the
        naive decomposition, cheap but degree-blind (the scale models give
        low node ids the highest degrees, so shard 0 ends up edge-heavy).
        ``"degree_balanced"`` places contiguous range boundaries so every
        shard holds roughly ``num_edges / num_shards`` out-edges — the
        edge-balanced decomposition distributed walk frameworks default to.
        ``"locality"`` runs the streaming partitioner
        (:func:`locality_owner_map`), minimising cut edges under the same
        per-shard node capacity the contiguous split uses.
        """
        if num_shards < 1:
            raise GraphError("need at least one shard")
        if policy not in SHARD_POLICIES:
            raise GraphError(
                f"unknown shard policy {policy!r}; valid: {SHARD_POLICIES}"
            )
        if policy == "locality":
            owner_map = locality_owner_map(graph, num_shards)
        else:
            owner_map = _range_owner_map(graph, num_shards, policy)
        return cls(graph, owner_map, num_shards, policy)

    def _slice_shard(self, shard_id: int, nodes: np.ndarray) -> GraphShard:
        graph = self.graph
        nodes = nodes.astype(np.int64, copy=False)
        if nodes.size and nodes[-1] - nodes[0] + 1 == nodes.size:
            # Contiguous id run: the shard's edge arrays are views into the
            # parent, exactly like the range-policy decomposition always was.
            start, stop = int(nodes[0]), int(nodes[-1]) + 1
            lo = int(graph.indptr[start])
            hi = int(graph.indptr[stop])
            indptr = (graph.indptr[start:stop + 1] - lo).astype(np.int64)
            indices = graph.indices[lo:hi]
            weights = graph.weights[lo:hi]
            labels = graph.labels[lo:hi] if graph.labels is not None else None
        else:
            # Permuted assignment: gather each owned node's edge slice into
            # one contiguous local array (repeat/cumsum, no Python loop).
            degrees = graph.indptr[nodes + 1] - graph.indptr[nodes]
            indptr = np.concatenate(
                ([0], np.cumsum(degrees, dtype=np.int64))
            ).astype(np.int64)
            positions = (
                np.repeat(graph.indptr[nodes] - indptr[:-1], degrees)
                + np.arange(indptr[-1], dtype=np.int64)
            )
            indices = graph.indices[positions]
            weights = graph.weights[positions]
            labels = graph.labels[positions] if graph.labels is not None else None
        return GraphShard(
            shard_id=shard_id,
            nodes=nodes,
            indptr=indptr,
            indices=indices,
            weights=weights,
            labels=labels,
            owner_map=self.owner_map,
        )

    def rebind(self, new_graph: CSRGraph, touched_nodes: np.ndarray) -> ShardedCSRGraph:
        """Re-own only the touched nodes of a graph delta (scoped rebuild).

        The versioned invalidation contract for sharded decompositions
        (:mod:`repro.graph.invalidation`): the node→shard ``owner_map`` is
        kept — delta edges are attributed to the current owners — so only
        shards owning at least one touched node are re-sliced against the
        new snapshot.  Every other shard is reused *by object identity*; its
        edge arrays still view the old snapshot's (immutable) storage, whose
        content is bit-identical for untouched nodes.  Returns a new
        decomposition bound to ``new_graph``; cached edge-ownership
        aggregates are reset (removals/additions can change them even for
        reused shards' totals).
        """
        touched = np.asarray(touched_nodes, dtype=np.int64)
        affected = set(np.unique(self.owner_map[touched]).tolist()) if touched.size else set()
        clone = ShardedCSRGraph.__new__(ShardedCSRGraph)
        clone.graph = new_graph
        clone.policy = self.policy
        clone.owner_map = self.owner_map
        clone.shards = [
            clone._slice_shard(s.shard_id, s.nodes) if s.shard_id in affected else s
            for s in self.shards
        ]
        clone._edge_counts = None
        clone._remote_edges = None
        return clone

    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def owner(self, nodes: np.ndarray) -> np.ndarray:
        """Shard id owning each of ``nodes`` (one owner-map gather)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.graph.num_nodes):
            raise GraphError("node id out of range for owner() lookup")
        return self.owner_map[nodes]

    def memory_footprint_bytes(self, weight_bytes: int = 8) -> int:
        """Total device memory across all shards (≈ the replicated footprint
        plus one duplicated ``indptr`` entry per extra shard)."""
        return sum(s.memory_footprint_bytes(weight_bytes) for s in self.shards)

    def max_shard_footprint_bytes(self, weight_bytes: int = 8) -> int:
        """Largest single-shard footprint — what each device must actually fit."""
        return max(s.memory_footprint_bytes(weight_bytes) for s in self.shards)

    def _edge_ownership(self) -> tuple[np.ndarray, int]:
        """Per-shard edge counts and the static cut, one vectorised pass.

        Both are pure functions of the immutable owner map, so they are
        computed once from it (``repeat`` expands node ownership to edge
        ownership) and cached on the instance.
        """
        if self._edge_counts is None:
            graph = self.graph
            degrees = graph.indptr[1:] - graph.indptr[:-1]
            source_owner = np.repeat(self.owner_map, degrees)
            self._edge_counts = np.bincount(
                source_owner, minlength=self.num_shards
            ).astype(np.int64)
            self._remote_edges = int(
                np.count_nonzero(source_owner != self.owner_map[graph.indices])
            )
        return self._edge_counts, self._remote_edges

    def shard_edge_counts(self) -> np.ndarray:
        """Out-edges per shard (the balance the degree_balanced policy targets)."""
        counts, _ = self._edge_ownership()
        return counts

    def remote_edge_fraction(self) -> float:
        """Fraction of all edges whose destination lives on another shard.

        A static property of the decomposition (the *walked* remote-edge
        ratio additionally depends on the workload's visit distribution and
        is reported per run by the sharded driver).
        """
        if self.graph.num_edges == 0:
            return 0.0
        _, remote = self._edge_ownership()
        return remote / self.graph.num_edges

    # ------------------------------------------------------------------ #
    def ghost_cache(
        self, budget_bytes: int, weight_bytes: int = 8
    ) -> GhostNodeCache:
        """Build the per-shard ghost cache under a byte budget.

        Every shard walks the global out-degree ranking (hottest first),
        skips its own nodes, and ghosts remote nodes while their cumulative
        modeled size fits ``budget_bytes``.  A node's ghost costs its edge
        destinations and weights (plus labels when present) and one local
        row-pointer entry — the same per-element widths as
        :meth:`GraphShard.memory_footprint_bytes`.
        """
        if budget_bytes < 0:
            raise GraphError("ghost cache budget must be non-negative")
        graph = self.graph
        n = graph.num_nodes
        k = self.num_shards
        mask = np.zeros((k, n), dtype=bool)
        cached_nodes = np.zeros(k, dtype=np.int64)
        cached_bytes = np.zeros(k, dtype=np.int64)
        if budget_bytes and n:
            degrees = graph.indptr[1:] - graph.indptr[:-1]
            per_edge = 8 + weight_bytes + (8 if graph.labels is not None else 0)
            node_bytes = degrees * per_edge + 8
            hot_order = np.argsort(-degrees, kind="stable")
            for s in range(k):
                remote = hot_order[self.owner_map[hot_order] != s]
                cumulative = np.cumsum(node_bytes[remote])
                take = remote[cumulative <= budget_bytes]
                mask[s, take] = True
                cached_nodes[s] = take.size
                cached_bytes[s] = int(cumulative[take.size - 1]) if take.size else 0
        return GhostNodeCache(
            budget_bytes=int(budget_bytes),
            weight_bytes=int(weight_bytes),
            mask=mask,
            cached_nodes=cached_nodes,
            cached_bytes=cached_bytes,
        )

    def describe(self) -> dict[str, object]:
        """Plain-dict view for logs, plans and the bench tables."""
        counts = self.shard_edge_counts()
        return {
            "num_shards": self.num_shards,
            "policy": self.policy,
            "shard_node_counts": [s.num_nodes for s in self.shards],
            "shard_edge_counts": counts.tolist(),
            "edge_balance": float(counts.max() / counts.mean()) if counts.size and counts.mean() else 1.0,
            "remote_edge_fraction": self.remote_edge_fraction(),
            "max_shard_footprint_bytes": self.max_shard_footprint_bytes(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedCSRGraph({self.graph!r}, {self.num_shards} shards, "
            f"policy={self.policy!r})"
        )


# ---------------------------------------------------------------------- #
# Partitioners
# ---------------------------------------------------------------------- #
def _range_owner_map(graph: CSRGraph, num_shards: int, policy: str) -> np.ndarray:
    """Owner map of the contiguous-range policies (node- or edge-balanced)."""
    n = graph.num_nodes
    if policy == "contiguous":
        boundaries = np.linspace(0, n, num_shards + 1).astype(np.int64)
    else:
        # Edge-balanced boundaries: walk the cumulative edge counts (indptr
        # *is* that prefix sum) and cut at the node where each shard's edge
        # budget fills up.  Interior boundaries are clipped into [0, n];
        # shards can come out empty on degenerate graphs (fewer nodes than
        # shards), which the owner map handles naturally.
        targets = (np.arange(1, num_shards) * graph.num_edges) / num_shards
        interior = np.searchsorted(graph.indptr, targets, side="left")
        boundaries = np.concatenate(
            ([0], np.minimum(interior, n), [n])
        ).astype(np.int64)
        boundaries = np.maximum.accumulate(boundaries)
    owner_map = np.empty(n, dtype=np.int64)
    for s in range(num_shards):
        owner_map[boundaries[s]:boundaries[s + 1]] = s
    return owner_map


def _cut_edges(graph: CSRGraph, owner_map: np.ndarray) -> int:
    """Number of edges whose endpoints land on different shards."""
    degrees = graph.indptr[1:] - graph.indptr[:-1]
    source_owner = np.repeat(owner_map, degrees)
    return int(np.count_nonzero(source_owner != owner_map[graph.indices]))


def locality_owner_map(graph: CSRGraph, num_shards: int) -> np.ndarray:
    """Streaming LDG/Fennel-style one-pass locality partitioner.

    Nodes stream in descending degree order (hubs first — they anchor the
    clusters); each node goes to the shard holding the most of its
    already-placed neighbours, discounted by a linear capacity penalty
    ``(1 - size / capacity)`` with ``capacity = ceil(n / num_shards)`` —
    the same maximum shard width the contiguous split produces, so the
    locality decomposition never needs more per-device node head-room.
    Nodes with no placed neighbours (or only full candidate shards) fall
    back to the least-loaded open shard.

    The returned assignment is guaranteed to cut no more edges than the
    contiguous split of the same graph: the builder scores both and keeps
    the better one (on pathological inputs a greedy stream can lose to the
    trivial split; the guarantee makes the policy safe to default to).
    """
    if num_shards < 1:
        raise GraphError("need at least one shard")
    n = graph.num_nodes
    if num_shards == 1 or n == 0:
        return np.zeros(n, dtype=np.int64)
    capacity = -(-n // num_shards)
    indptr, indices = graph.indptr, graph.indices
    degrees = indptr[1:] - indptr[:-1]
    owner = np.full(n, -1, dtype=np.int64)
    sizes = np.zeros(num_shards, dtype=np.int64)
    for v in np.argsort(-degrees, kind="stable"):
        placed = owner[indices[indptr[v]:indptr[v + 1]]]
        placed = placed[placed >= 0]
        best = -1
        if placed.size:
            scores = np.bincount(placed, minlength=num_shards) * (
                1.0 - sizes / capacity
            )
            scores[sizes >= capacity] = -1.0
            candidate = int(np.argmax(scores))
            if scores[candidate] > 0.0:
                best = candidate
        if best < 0:
            open_shards = np.nonzero(sizes < capacity)[0]
            best = int(open_shards[np.argmin(sizes[open_shards])])
        owner[v] = best
        sizes[best] += 1

    contiguous = _range_owner_map(graph, num_shards, "contiguous")
    if _cut_edges(graph, owner) > _cut_edges(graph, contiguous):
        return contiguous
    return owner
