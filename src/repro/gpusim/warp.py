"""Warp-level execution primitives.

Real GPU kernels cooperate at warp granularity: 32 threads execute in
lock-step and exchange values through register shuffles (``__shfl_sync``),
vote with ``__ballot_sync`` and reduce with shuffle trees.  The paper's
concurrent RJS/RVS kernel (Section 5.2) leans on exactly these primitives, so
the simulator exposes a :class:`WarpModel` whose methods perform the same
collective operations on numpy vectors *and* account their cost into the
shared counters.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.counters import CostCounters

#: Number of threads per warp on every NVIDIA architecture.
WARP_SIZE = 32


class WarpModel:
    """Collective operations of one warp, with cost accounting.

    Parameters
    ----------
    counters:
        Shared cost counters; every collective adds its element count.
    width:
        Logical warp width (defaults to :data:`WARP_SIZE`).
    """

    def __init__(self, counters: CostCounters, width: int = WARP_SIZE) -> None:
        self.counters = counters
        self.width = int(width)

    # ------------------------------------------------------------------ #
    # Reductions and scans
    # ------------------------------------------------------------------ #
    def reduce_max(self, values: np.ndarray) -> float:
        """Warp-tree max reduction (log-depth shuffle tree on hardware)."""
        values = np.asarray(values)
        self.counters.reduction_elements += int(values.size)
        return float(values.max()) if values.size else float("-inf")

    def reduce_sum(self, values: np.ndarray) -> float:
        """Warp-tree sum reduction."""
        values = np.asarray(values)
        self.counters.reduction_elements += int(values.size)
        return float(values.sum()) if values.size else 0.0

    def reduce_argmax(self, values: np.ndarray) -> int:
        """Warp argmax (value + index shuffle tree), used by reservoir kernels."""
        values = np.asarray(values)
        self.counters.reduction_elements += int(values.size)
        if values.size == 0:
            return -1
        return int(np.argmax(values))

    def prefix_sum(self, values: np.ndarray) -> np.ndarray:
        """Inclusive prefix sum (Hillis–Steele scan on hardware)."""
        values = np.asarray(values, dtype=np.float64)
        self.counters.prefix_sum_elements += int(values.size)
        return np.cumsum(values)

    # ------------------------------------------------------------------ #
    # Votes and shuffles
    # ------------------------------------------------------------------ #
    def ballot(self, predicate: np.ndarray) -> int:
        """``__ballot_sync``: bitmask of lanes whose predicate is true."""
        predicate = np.asarray(predicate, dtype=bool)
        self.counters.warp_syncs += 1
        mask = 0
        for lane, flag in enumerate(predicate[: self.width]):
            if flag:
                mask |= 1 << lane
        return mask

    def any_sync(self, predicate: np.ndarray) -> bool:
        """``__any_sync``: true when any lane's predicate holds."""
        return self.ballot(predicate) != 0

    def shfl(self, values: np.ndarray, src_lane: int) -> float:
        """``__shfl_sync``: broadcast lane ``src_lane``'s value to the warp."""
        values = np.asarray(values)
        self.counters.warp_syncs += 1
        if not 0 <= src_lane < values.size:
            raise IndexError(f"source lane {src_lane} outside warp of {values.size}")
        return float(values[src_lane])

    # ------------------------------------------------------------------ #
    def chunks(self, length: int) -> list[np.ndarray]:
        """Strided per-lane index assignment over ``length`` elements.

        Lane ``l`` owns indices ``l, l + width, l + 2*width, ...`` — the
        coalesced access pattern warp-parallel reservoir scans use.
        """
        all_indices = np.arange(length)
        return [all_indices[lane::self.width] for lane in range(min(self.width, max(length, 1)))]
