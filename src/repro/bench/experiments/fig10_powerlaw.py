"""Fig. 10 — power-law and degree-based property-weight distributions.

Weighted Node2Vec on the YT / EU / SK scale models with property weights
drawn from Pareto distributions of shape ``alpha`` in {1, 1.5, 2, 2.5, 3, 4}
and from the destination-degree-based scheme, comparing NextDoor (GPU
rejection sampling), FlowWalker (GPU reservoir sampling) and FlexiWalker.

Expected shape (paper): FlexiWalker is robust across the skew sweep (geomean
26.6x over NextDoor, 4.37x over FlowWalker); NextDoor degrades sharply as
``alpha`` decreases and hits OOM on SK; the degree-based scheme is the
slowest setting for every system.
"""

from __future__ import annotations

from repro.bench.config import ExperimentConfig
from repro.bench.runner import prepare_graph, prepare_queries, run_baseline, run_flexiwalker
from repro.bench.tables import format_table
from repro.stats.summary import geometric_mean

ALPHAS = (1.0, 1.5, 2.0, 2.5, 3.0, 4.0)
DATASETS = ("YT", "EU", "SK")
WORKLOAD = "node2vec"
SYSTEMS = ("NextDoor", "FlowWalker")


def _weight_settings() -> list[tuple[str, str, float]]:
    settings = [(f"alpha={alpha:g}", "powerlaw", alpha) for alpha in ALPHAS]
    settings.append(("degree", "degree", 2.0))
    return settings


def run_experiment(config: ExperimentConfig | None = None) -> dict:
    """Execute the Fig. 10 sweep."""
    config = config or ExperimentConfig.quick()
    datasets = [d for d in DATASETS if d in config.datasets] or list(DATASETS[:2])
    rows: list[dict] = []
    speedups: dict[str, list[float]] = {s: [] for s in SYSTEMS}

    for dataset in datasets:
        for label, scheme, alpha in _weight_settings():
            graph = prepare_graph(dataset, WORKLOAD, weights=scheme, alpha=alpha)
            queries = prepare_queries(graph, WORKLOAD, config)
            row: dict[str, object] = {"dataset": dataset, "weights": label}
            flexi = run_flexiwalker(
                dataset, WORKLOAD, config, graph=graph, queries=queries,
                weights=scheme, alpha=alpha,
            )
            for system in SYSTEMS:
                run = run_baseline(
                    system, dataset, WORKLOAD, config, graph=graph, queries=queries,
                    weights=scheme, alpha=alpha,
                )
                row[system] = run.cell()
                if run.ok and flexi.ok:
                    speedups[system].append(run.time_ms / flexi.time_ms)
            row["FlexiWalker"] = flexi.cell()
            rows.append(row)

    summary = {
        f"geomean_speedup_over_{system}": geometric_mean(vals) if vals else float("nan")
        for system, vals in speedups.items()
    }
    return {
        "rows": rows,
        "summary": summary,
        "config": config,
        "paper_reference": "Figure 10: power-law / degree weights; paper geomeans 26.60x (NextDoor), 4.37x (FlowWalker)",
    }


def format_result(result: dict) -> str:
    headers = ["dataset", "weights", *SYSTEMS, "FlexiWalker"]
    rows = [[row[h] for h in headers] for row in result["rows"]]
    table = format_table(headers, rows, title="Fig. 10 — execution time (ms, simulated)")
    lines = [table, ""]
    for key, value in result["summary"].items():
        lines.append(f"{key}: {value:.2f}x")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_result(run_experiment()))


if __name__ == "__main__":  # pragma: no cover
    main()
