"""Per-kernel behaviour and cost-accounting tests.

Beyond distribution correctness (covered in
``test_distribution_correctness.py``), each kernel must charge the costs the
paper attributes to it: ALS/ITS pay table construction, the baseline RVS pays
a prefix sum and one RNG draw per neighbour, the baseline RJS pays a max
reduction, eRVS drops the prefix sum and most RNG draws, and eRJS drops the
reduction entirely when a bound hint is available.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.graph.builders import from_edge_list
from repro.graph.generators import star_graph
from repro.sampling.alias import AliasSampler, build_alias_table
from repro.sampling.base import gather_transition_weights
from repro.sampling.erjs import EnhancedRejectionSampler
from repro.sampling.ervs import (
    EnhancedReservoirSampler,
    count_candidate_updates,
    exponential_race_keys,
)
from repro.sampling.its import InverseTransformSampler
from repro.sampling.registry import SAMPLERS, make_sampler, sampler_names
from repro.sampling.rejection import RejectionSampler
from repro.sampling.reservoir import ReservoirSampler, parallel_reservoir_choice
from repro.walks.spec import UniformWalkSpec

from tests.conftest import make_ctx

ALL_SAMPLER_NAMES = ["ALS", "ITS", "RJS", "RVS", "eRJS", "eRVS"]


@pytest.fixture
def dead_end_graph():
    """Node 0 has out-edges whose weights are all zero; node 2 has none at all."""
    g = from_edge_list([(0, 1), (0, 2), (1, 0)], num_nodes=3, weights=[0.0, 0.0, 1.0])
    return g


class TestCommonKernelBehaviour:
    @pytest.mark.parametrize("name", ALL_SAMPLER_NAMES)
    def test_returns_a_neighbor(self, tiny_graph, name):
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0, bound_hint=5.0)
        chosen = make_sampler(name).sample(ctx)
        assert chosen in set(tiny_graph.neighbors(0))

    @pytest.mark.parametrize("name", ALL_SAMPLER_NAMES)
    def test_isolated_node_returns_none(self, dead_end_graph, name):
        ctx = make_ctx(dead_end_graph, UniformWalkSpec(), node=2, bound_hint=1.0)
        assert make_sampler(name).sample(ctx) is None

    @pytest.mark.parametrize("name", ALL_SAMPLER_NAMES)
    def test_all_zero_weights_return_none(self, dead_end_graph, name):
        ctx = make_ctx(dead_end_graph, UniformWalkSpec(), node=0, bound_hint=0.0)
        assert make_sampler(name).sample(ctx) is None

    @pytest.mark.parametrize("name", ALL_SAMPLER_NAMES)
    def test_counters_are_populated(self, tiny_graph, name):
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0, bound_hint=5.0)
        make_sampler(name).sample(ctx)
        assert ctx.counters.total_memory_accesses > 0
        assert ctx.counters.rng_draws > 0

    def test_registry_contents(self):
        assert sampler_names() == ALL_SAMPLER_NAMES
        for name in ALL_SAMPLER_NAMES:
            assert name in SAMPLERS

    def test_unknown_sampler_rejected(self):
        with pytest.raises(SamplingError):
            make_sampler("bogus")


class TestGatherHelper:
    def test_single_pass_counts_degree(self, tiny_graph):
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0)
        gather_transition_weights(ctx, passes=1)
        assert ctx.counters.coalesced_accesses == 4
        assert ctx.counters.weight_computations == 4

    def test_double_pass_doubles_accesses_not_computes(self, tiny_graph):
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0)
        gather_transition_weights(ctx, passes=2)
        assert ctx.counters.coalesced_accesses == 8
        assert ctx.counters.weight_computations == 4

    def test_uncoalesced_mode(self, tiny_graph):
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0)
        gather_transition_weights(ctx, coalesced=False)
        assert ctx.counters.random_accesses == 4

    def test_invalid_passes(self, tiny_graph):
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0)
        with pytest.raises(SamplingError):
            gather_transition_weights(ctx, passes=0)


class TestAliasTable:
    def test_probabilities_preserved_exactly(self):
        weights = np.array([3.0, 2.0, 4.0, 1.0])
        prob, alias = build_alias_table(weights)
        # Reconstruct each item's total mass from its own column plus every
        # column that aliases to it.
        n = weights.size
        mass = prob.copy()
        for i in range(n):
            if prob[i] < 1.0:
                mass[alias[i]] += 1.0 - prob[i]
        assert np.allclose(mass / n, weights / weights.sum())

    def test_uniform_weights_give_full_columns(self):
        prob, alias = build_alias_table(np.ones(8))
        assert np.allclose(prob, 1.0)

    def test_zero_total_weight(self):
        prob, alias = build_alias_table(np.zeros(3))
        assert np.all(prob == 0)

    def test_empty_input(self):
        prob, alias = build_alias_table(np.array([]))
        assert prob.size == 0

    def test_alias_sampler_charges_table_builds(self, tiny_graph):
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0)
        AliasSampler().sample(ctx)
        assert ctx.counters.table_builds == 2 * 4
        assert ctx.counters.reduction_elements >= 4


class TestITS:
    def test_charges_prefix_sum_and_binary_search(self, tiny_graph):
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0)
        InverseTransformSampler().sample(ctx)
        assert ctx.counters.prefix_sum_elements == 4
        assert ctx.counters.rng_draws == 1
        assert ctx.counters.random_accesses >= 1


class TestBaselineRejection:
    def test_charges_max_reduction_over_all_weights(self, tiny_graph):
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0)
        RejectionSampler().sample(ctx)
        assert ctx.counters.reduction_elements == 4
        # Thread-per-walker kernel: the weight scan is uncoalesced.
        assert ctx.counters.random_accesses >= 4
        assert ctx.counters.rejection_trials >= 1

    def test_two_rng_draws_per_trial(self, tiny_graph):
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0)
        RejectionSampler().sample(ctx)
        assert ctx.counters.rng_draws == 2 * ctx.counters.rejection_trials


class TestBaselineReservoir:
    def test_parallel_choice_matches_positive_weight_support(self):
        weights = np.array([0.0, 2.0, 3.0])
        prefix = np.cumsum(weights)
        uniforms = np.array([0.5, 0.5, 0.9])
        choice = parallel_reservoir_choice(weights, uniforms, prefix)
        assert choice in (1, 2)

    def test_parallel_choice_none_when_all_zero(self):
        weights = np.zeros(3)
        assert parallel_reservoir_choice(weights, np.full(3, 0.5), np.cumsum(weights)) is None

    def test_charges_two_passes_and_one_rng_per_neighbor(self, tiny_graph):
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0)
        ReservoirSampler().sample(ctx)
        assert ctx.counters.coalesced_accesses == 8
        assert ctx.counters.prefix_sum_elements == 4
        assert ctx.counters.rng_draws == 4


class TestEnhancedReservoir:
    def test_exponential_keys_zero_weight_is_minus_inf(self):
        keys = exponential_race_keys(np.array([0.0, 1.0]), np.array([0.5, 0.5]))
        assert keys[0] == -np.inf
        assert np.isfinite(keys[1])

    def test_higher_weight_gives_larger_expected_key(self):
        u = np.full(2, 0.5)
        keys = exponential_race_keys(np.array([1.0, 10.0]), u)
        assert keys[1] > keys[0]

    def test_count_candidate_updates_zero_for_short_lists(self):
        keys = exponential_race_keys(np.ones(8), np.linspace(0.1, 0.9, 8))
        assert count_candidate_updates(keys, warp_width=32) == 0

    def test_count_candidate_updates_counts_record_breakers(self):
        # Keys strictly increasing past the first warp round: every later
        # element is a new record.
        keys = np.arange(40, dtype=np.float64)
        assert count_candidate_updates(keys, warp_width=32) == 8

    def test_single_pass_over_weights(self, tiny_graph):
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0)
        EnhancedReservoirSampler().sample(ctx)
        assert ctx.counters.coalesced_accesses == 4
        assert ctx.counters.prefix_sum_elements == 0

    def test_memory_access_halved_vs_baseline(self, tiny_graph):
        base_ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0)
        ReservoirSampler().sample(base_ctx)
        ervs_ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0)
        EnhancedReservoirSampler().sample(ervs_ctx)
        assert ervs_ctx.counters.coalesced_accesses * 2 == base_ctx.counters.coalesced_accesses

    def test_jump_reduces_rng_draws_on_high_degree_node(self):
        hub = star_graph(500)
        with_jump = make_ctx(hub, UniformWalkSpec(), node=0)
        EnhancedReservoirSampler(use_jump=True).sample(with_jump)
        without_jump = make_ctx(hub, UniformWalkSpec(), node=0)
        EnhancedReservoirSampler(use_jump=False).sample(without_jump)
        assert without_jump.counters.rng_draws == 500
        assert with_jump.counters.rng_draws < 150

    def test_exp_disabled_falls_back_to_baseline_costs(self, tiny_graph):
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0)
        EnhancedReservoirSampler(use_exponential_keys=False).sample(ctx)
        assert ctx.counters.prefix_sum_elements == 4


class TestEnhancedRejection:
    def test_no_reduction_when_bound_hint_present(self, tiny_graph):
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0, bound_hint=4.0)
        EnhancedRejectionSampler().sample(ctx)
        assert ctx.counters.reduction_elements == 0
        assert ctx.counters.coalesced_accesses == 0

    def test_falls_back_to_max_reduce_without_hint(self, tiny_graph):
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0, bound_hint=None)
        EnhancedRejectionSampler().sample(ctx)
        assert ctx.counters.reduction_elements == 4

    def test_bound_below_true_max_is_widened_not_wrong(self, tiny_graph):
        # A (user-error) hint below the true max must not bias the kernel; it
        # widens the bound internally and still samples node 3 (weight 4).
        sampler = EnhancedRejectionSampler()
        seen = set()
        for seed in range(300):
            ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0, seed=seed, bound_hint=1.0)
            seen.add(sampler.sample(ctx))
        assert 3 in seen

    def test_use_estimated_bound_disabled_behaves_like_baseline(self, tiny_graph):
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0, bound_hint=4.0)
        EnhancedRejectionSampler(use_estimated_bound=False).sample(ctx)
        assert ctx.counters.reduction_elements == 4
