"""Counting RNG streams and per-thread stream pools.

The number of random numbers generated is one of the explicit cost terms in
the paper (Section 3.2: the baseline reservoir kernel draws one uniform per
neighbour, eRVS's jump technique draws far fewer).  ``CountingStream`` wraps a
:class:`~repro.rng.philox.PhiloxEngine` and records every draw so kernels can
report exact RNG counts to the GPU simulator's cost counters.
"""

from __future__ import annotations

import numpy as np

from repro.rng.philox import PhiloxEngine


class CountingStream:
    """RNG stream that counts how many variates have been drawn.

    The count is the number of *variates*, not the number of calls, because a
    vectorised call drawing ``n`` uniforms corresponds to ``n`` cuRAND calls
    on the GPU.
    """

    __slots__ = ("_engine", "draws")

    def __init__(self, engine: PhiloxEngine) -> None:
        self._engine = engine
        self.draws = 0

    @classmethod
    def from_seed(cls, seed: int, stream: int = 0) -> "CountingStream":
        return cls(PhiloxEngine(seed, stream))

    def reset_count(self) -> None:
        self.draws = 0

    def uniform(self, size: int | tuple[int, ...] | None = None) -> np.ndarray | float:
        self.draws += 1 if size is None else int(np.prod(size))
        return self._engine.uniform(size)

    def integers(self, low: int, high: int, size: int | None = None) -> np.ndarray | int:
        self.draws += 1 if size is None else int(size)
        return self._engine.integers(low, high, size)

    def exponential(self, size: int | None = None) -> np.ndarray | float:
        self.draws += 1 if size is None else int(size)
        return self._engine.exponential(size)

    def split(self, index: int) -> "CountingStream":
        """Derive an independent child stream with its own counter."""
        return CountingStream(self._engine.split(index))


class StreamPool:
    """A pool of independent streams, one per simulated GPU thread.

    GPU kernels assign one cuRAND state per thread.  The pool mirrors this by
    deriving one child stream per thread index on demand and caching it, so a
    thread that processes many walk queries keeps advancing its own stream.
    """

    def __init__(self, seed: int) -> None:
        self._root = PhiloxEngine(seed)
        self._streams: dict[int, CountingStream] = {}

    def stream(self, thread_index: int) -> CountingStream:
        """Return the (cached) stream owned by ``thread_index``."""
        existing = self._streams.get(thread_index)
        if existing is None:
            existing = CountingStream(self._root.split(thread_index))
            self._streams[thread_index] = existing
        return existing

    @property
    def total_draws(self) -> int:
        """Total variates drawn across every stream in the pool."""
        return sum(stream.draws for stream in self._streams.values())

    def reset_counts(self) -> None:
        for stream in self._streams.values():
            stream.reset_count()
