"""Plan negotiation: declared capabilities resolve requests into one plan."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import FlexiWalkerConfig
from repro.errors import ServiceError
from repro.gpusim.multigpu import PARTITION_POLICIES
from repro.service import (
    BACKENDS,
    DeviceFleet,
    WalkService,
    declare_capabilities,
    negotiate_plan,
)
from repro.gpusim.device import A6000
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.node2vec import Node2VecSpec

DEVICE = dataclasses.replace(A6000, parallel_lanes=8)


def caps(count: int = 4):
    return declare_capabilities(DeviceFleet(DEVICE, count))


class TestCapabilities:
    def test_single_device_fleet_has_no_multi_device_backend(self):
        declared = caps(1)
        assert declared.backends == ("scalar", "batched")
        assert not declared.supports("multi_device")

    def test_multi_device_fleet_declares_all_backends(self):
        declared = caps(4)
        assert set(declared.backends) == set(BACKENDS)
        assert declared.max_devices == 4
        assert declared.partition_policies == PARTITION_POLICIES

    def test_fleet_needs_at_least_one_device(self):
        with pytest.raises(ServiceError):
            DeviceFleet(DEVICE, 0)


class TestNegotiation:
    def test_default_config_negotiates_batched(self):
        plan = negotiate_plan(caps(), FlexiWalkerConfig(device=DEVICE))
        assert plan.backend == "batched"
        assert plan.execution == "batched"
        assert plan.num_devices == 1
        assert plan.streaming_granularity == "superstep"
        assert plan.reasons  # the trail is recorded

    def test_scalar_execution_negotiates_scalar_backend(self):
        config = FlexiWalkerConfig(device=DEVICE, execution="scalar")
        plan = negotiate_plan(caps(), config)
        assert plan.backend == "scalar"
        assert plan.execution == "scalar"
        assert plan.streaming_granularity == "walk"

    def test_device_count_negotiates_multi_device(self):
        config = FlexiWalkerConfig(device=DEVICE, num_devices=3, partition_policy="balanced")
        plan = negotiate_plan(caps(), config)
        assert plan.backend == "multi_device"
        assert plan.num_devices == 3
        assert plan.partition_policy == "balanced"

    def test_explicit_multi_device_backend_uses_whole_fleet(self):
        plan = negotiate_plan(caps(4), FlexiWalkerConfig(device=DEVICE), backend="multi_device")
        assert plan.num_devices == 4

    def test_requesting_more_devices_than_fleet_fails(self):
        config = FlexiWalkerConfig(device=DEVICE, num_devices=8)
        with pytest.raises(ServiceError):
            negotiate_plan(caps(4), config)

    def test_unknown_backend_fails(self):
        with pytest.raises(ServiceError):
            negotiate_plan(caps(), FlexiWalkerConfig(device=DEVICE), backend="quantum")

    def test_undeclared_backend_fails(self):
        with pytest.raises(ServiceError):
            negotiate_plan(caps(1), FlexiWalkerConfig(device=DEVICE), backend="multi_device")

    def test_explicit_backend_overrides_config_execution(self):
        config = FlexiWalkerConfig(device=DEVICE, execution="scalar")
        plan = negotiate_plan(caps(), config, backend="batched")
        assert plan.backend == "batched"
        assert plan.execution == "batched"
        assert plan.streaming_granularity == "superstep"
        assert any("overrides config execution" in reason for reason in plan.reasons)

    def test_single_device_backend_rejects_device_count(self):
        config = FlexiWalkerConfig(device=DEVICE, num_devices=2)
        with pytest.raises(ServiceError):
            negotiate_plan(caps(4), config, backend="batched")

    def test_transition_cache_negotiated_from_compiler_proof(self, service_graph):
        service = WalkService(service_graph, fleet=DeviceFleet(DEVICE, 1))
        config = FlexiWalkerConfig(device=DEVICE)
        static = service.plan_for(DeepWalkSpec(), config)
        dynamic = service.plan_for(Node2VecSpec(), config)
        assert static.use_transition_cache
        assert not dynamic.use_transition_cache

    def test_plan_describe_round_trips(self):
        plan = negotiate_plan(caps(), FlexiWalkerConfig(device=DEVICE))
        described = plan.describe()
        assert described["backend"] == plan.backend
        assert described["reasons"] == list(plan.reasons)


class TestGraphPlacementNegotiation:
    MEMORY = DEVICE.memory_bytes

    def test_default_plan_is_replicated(self):
        plan = negotiate_plan(caps(), FlexiWalkerConfig(device=DEVICE, num_devices=4))
        assert plan.graph_placement == "replicated"
        assert plan.shard_policy is None

    def test_sharded_selected_exactly_when_footprint_exceeds_memory(self):
        config = FlexiWalkerConfig(device=DEVICE, num_devices=4)
        fits = negotiate_plan(caps(), config, graph_footprint_bytes=self.MEMORY)
        too_big = negotiate_plan(caps(), config, graph_footprint_bytes=self.MEMORY + 1)
        assert fits.graph_placement == "replicated"
        assert too_big.graph_placement == "sharded"
        assert too_big.shard_policy == config.shard_policy
        assert any("exceeds device memory" in r for r in too_big.reasons)
        assert any("fits device memory" in r for r in fits.reasons)

    def test_explicit_sharded_request_wins_even_when_the_graph_fits(self):
        config = FlexiWalkerConfig(
            device=DEVICE, num_devices=4, graph_placement="sharded",
            shard_policy="degree_balanced",
        )
        plan = negotiate_plan(caps(), config, graph_footprint_bytes=1)
        assert plan.graph_placement == "sharded"
        assert plan.shard_policy == "degree_balanced"
        assert any("requested explicitly" in r for r in plan.reasons)

    def test_explicit_replicated_request_records_the_oom_risk(self):
        config = FlexiWalkerConfig(
            device=DEVICE, num_devices=4, graph_placement="replicated"
        )
        plan = negotiate_plan(caps(), config, graph_footprint_bytes=self.MEMORY * 2)
        assert plan.graph_placement == "replicated"
        assert any("simulated-OOM risk" in r for r in plan.reasons)

    def test_sharded_needs_multi_device_backend(self):
        config = FlexiWalkerConfig(device=DEVICE, graph_placement="sharded")
        with pytest.raises(ServiceError):
            negotiate_plan(caps(), config)

    def test_scalar_execution_falls_back_to_replicated(self):
        config = FlexiWalkerConfig(device=DEVICE, num_devices=4, execution="scalar")
        plan = negotiate_plan(caps(), config, graph_footprint_bytes=self.MEMORY * 2)
        assert plan.graph_placement == "replicated"
        assert any("scalar execution cannot shard" in r for r in plan.reasons)

    def test_explicit_sharded_with_scalar_execution_fails(self):
        config = FlexiWalkerConfig(
            device=DEVICE, num_devices=4, execution="scalar",
            graph_placement="sharded",
        )
        with pytest.raises(ServiceError):
            negotiate_plan(caps(), config)

    def test_sharded_plan_warns_when_even_the_shards_do_not_fit(self):
        config = FlexiWalkerConfig(device=DEVICE, num_devices=4)
        # 10x one device's memory over 4 shards: ~2.5x per shard — sharding
        # alone does not solve the memory problem and the plan must say so.
        plan = negotiate_plan(caps(), config, graph_footprint_bytes=self.MEMORY * 10)
        assert plan.graph_placement == "sharded"
        assert any("even sharded" in r and "simulated-OOM risk" in r
                   for r in plan.reasons)
        # A footprint the shards can absorb stays warning-free.
        ok = negotiate_plan(caps(), config, graph_footprint_bytes=self.MEMORY * 3)
        assert ok.graph_placement == "sharded"
        assert not any("even sharded" in r for r in ok.reasons)

    def test_auto_falls_back_when_sharding_is_not_offered(self):
        # "auto" is a negotiation, not a requirement: capabilities without
        # the sharded placement keep the session alive on replicated and
        # record why, even for an oversized graph.
        declared = dataclasses.replace(caps(4), graph_placements=("replicated",))
        config = FlexiWalkerConfig(device=DEVICE, num_devices=4)
        plan = negotiate_plan(declared, config, graph_footprint_bytes=self.MEMORY * 2)
        assert plan.graph_placement == "replicated"
        assert any("sharded placement is not offered" in r for r in plan.reasons)
        # An explicit request against the same capabilities still fails.
        explicit = dataclasses.replace(config, graph_placement="sharded")
        with pytest.raises(ServiceError):
            negotiate_plan(declared, explicit, graph_footprint_bytes=self.MEMORY * 2)

    def test_capabilities_declare_memory_and_placements(self):
        declared = caps(4)
        assert declared.device_memory_bytes == DEVICE.memory_bytes
        assert declared.graph_placements == ("replicated", "sharded")
        assert caps(1).graph_placements == ("replicated",)

    def test_describe_includes_the_placement(self):
        config = FlexiWalkerConfig(device=DEVICE, num_devices=4)
        plan = negotiate_plan(caps(), config, graph_footprint_bytes=self.MEMORY + 1)
        described = plan.describe()
        assert described["graph_placement"] == "sharded"
        assert described["shard_policy"] == "contiguous"

    def test_ghost_budget_granted_and_clamped(self):
        declared = caps(4)
        sharded = FlexiWalkerConfig(
            device=DEVICE, num_devices=4, graph_placement="sharded",
            ghost_cache_bytes=1_000,
        )
        plan = negotiate_plan(declared, sharded)
        assert plan.ghost_cache_bytes == 1_000
        assert any("ghost cache granted" in r for r in plan.reasons)
        # Requests beyond the declared maximum clamp down to it.
        greedy = dataclasses.replace(
            sharded, ghost_cache_bytes=declared.ghost_cache_bytes * 10
        )
        clamped = negotiate_plan(declared, greedy)
        assert clamped.ghost_cache_bytes == declared.ghost_cache_bytes
        assert any("clamped" in r for r in clamped.reasons)

    def test_ghost_budget_zero_without_request_or_offering(self):
        sharded = FlexiWalkerConfig(
            device=DEVICE, num_devices=4, graph_placement="sharded"
        )
        assert negotiate_plan(caps(), sharded).ghost_cache_bytes == 0
        # A service that offers no ghost memory disables the request.
        none_offered = dataclasses.replace(caps(4), ghost_cache_bytes=0)
        config = dataclasses.replace(sharded, ghost_cache_bytes=1_000)
        plan = negotiate_plan(none_offered, config)
        assert plan.ghost_cache_bytes == 0
        assert any("not offered" in r for r in plan.reasons)
        # Replicated plans never carry a ghost budget.
        replicated = negotiate_plan(
            caps(), FlexiWalkerConfig(device=DEVICE, ghost_cache_bytes=1_000)
        )
        assert replicated.ghost_cache_bytes == 0

    def test_ghost_budget_counts_against_the_footprint_warning(self):
        config = FlexiWalkerConfig(
            device=DEVICE, num_devices=4, graph_placement="sharded",
            ghost_cache_bytes=self.MEMORY // 8,
        )
        # Each shard's graph share alone just fits, but not once the shard
        # also reserves an eighth of its memory for ghost copies.
        footprint = self.MEMORY * 4 - 8_000
        plan = negotiate_plan(caps(), config, graph_footprint_bytes=footprint)
        assert any("ghost cache" in r and "simulated-OOM risk" in r
                   for r in plan.reasons)
        lean = dataclasses.replace(config, ghost_cache_bytes=1_000)
        ok = negotiate_plan(caps(), lean, graph_footprint_bytes=footprint)
        assert not any("even sharded" in r for r in ok.reasons)

    def test_capabilities_declare_the_ghost_budget(self):
        assert caps(4).ghost_cache_bytes == DEVICE.memory_bytes // 8
        assert caps(1).ghost_cache_bytes == 0

    def test_service_passes_the_graph_footprint(self, service_graph):
        small = dataclasses.replace(
            DEVICE, memory_bytes=service_graph.memory_footprint_bytes() - 1
        )
        service = WalkService(service_graph, fleet=DeviceFleet(small, 4))
        plan = service.plan_for(
            Node2VecSpec(), FlexiWalkerConfig(device=small, num_devices=4)
        )
        assert plan.graph_placement == "sharded"


class TestServiceSessionGuards:
    def test_session_device_must_match_fleet(self, service_graph):
        service = WalkService(service_graph, fleet=DeviceFleet(DEVICE, 1))
        other = dataclasses.replace(DEVICE, name="other", parallel_lanes=16)
        with pytest.raises(ServiceError):
            service.session(DeepWalkSpec(), FlexiWalkerConfig(device=other))

    def test_default_config_uses_fleet_device(self, service_graph):
        service = WalkService(service_graph, fleet=DeviceFleet(DEVICE, 1))
        session = service.session(DeepWalkSpec())
        assert session.engine.device == DEVICE
