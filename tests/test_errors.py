"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "GraphError",
        "GraphFormatError",
        "SamplingError",
        "WalkSpecError",
        "CompilerError",
        "RuntimeSelectionError",
        "SimulationError",
        "BenchmarkError",
        "OutOfMemoryError",
        "OutOfTimeError",
    ):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_graph_format_error_is_graph_error():
    assert issubclass(errors.GraphFormatError, errors.GraphError)


def test_oom_and_oot_are_simulation_errors():
    assert issubclass(errors.OutOfMemoryError, errors.SimulationError)
    assert issubclass(errors.OutOfTimeError, errors.SimulationError)


def test_compiler_warning_is_a_warning_not_an_error():
    assert issubclass(errors.CompilerWarning, UserWarning)
    assert not issubclass(errors.CompilerWarning, errors.ReproError)


def test_errors_can_be_raised_and_caught_generically():
    with pytest.raises(errors.ReproError):
        raise errors.SamplingError("boom")
