"""Execution-plan negotiation for the session service.

The legacy surface scattered backend selection across constructor flags:
``FlexiWalkerConfig.execution``, ``WalkEngine(num_devices=...)``,
``WalkEngine.with_devices(...)``.  The service API replaces that with an
explicit negotiation step: the service declares what it *can* do
(:class:`ServiceCapabilities` — which backends exist, how many devices the
:class:`DeviceFleet` owns, which partition policies are implemented), the
session says what it *wants* (its :class:`~repro.core.config.FlexiWalkerConfig`
plus an optional explicit backend), and :func:`negotiate_plan` resolves the
two into one immutable :class:`ExecutionPlan` — including *why* each choice
was made, so a serving operator can audit the decision instead of reverse-
engineering flag defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import Severity
from repro.compiler.generator import CompiledWorkload
from repro.core.config import FlexiWalkerConfig
from repro.errors import ServiceError
from repro.gpusim.device import A6000, DeviceSpec
from repro.gpusim.multigpu import PARTITION_POLICIES
from repro.graph.sharded import SHARD_POLICIES

#: Backends a service can negotiate.  ``scalar`` is the reference
#: interpreter (streams walk-by-walk), ``batched`` the step-synchronous
#: frontier loop (streams superstep-by-superstep), ``multi_device`` the fused
#: multi-device frontier (also superstep-by-superstep; placement only moves
#: the makespan, never the walks).
BACKENDS = ("scalar", "batched", "multi_device")


@dataclass(frozen=True)
class DeviceFleet:
    """The simulated devices a :class:`~repro.service.WalkService` owns.

    Attributes
    ----------
    device:
        The per-device cost model; the fleet is homogeneous, like the
        paper's replicated-graph multi-GPU setup (Fig. 15).
    count:
        Number of devices available to sessions.  A session may use fewer
        (its plan's ``num_devices``), never more.
    """

    device: DeviceSpec = A6000
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ServiceError("a device fleet needs at least one device")


@dataclass(frozen=True)
class ServiceCapabilities:
    """What a service instance can execute, declared up front.

    Returned by :meth:`repro.service.WalkService.capabilities` and consumed
    by :func:`negotiate_plan`; sessions never probe flags at run time.
    """

    backends: tuple[str, ...]
    max_devices: int
    partition_policies: tuple[str, ...]
    device_name: str
    #: Memory capacity of one fleet device — the budget the graph footprint
    #: is negotiated against.  0 means "unknown" (no footprint negotiation).
    device_memory_bytes: int = 0
    #: Graph placements this service can execute (sharding needs a fleet
    #: of at least 2 devices).
    graph_placements: tuple[str, ...] = ("replicated",)
    #: Node-range shard policies the sharded placement offers.
    shard_policies: tuple[str, ...] = SHARD_POLICIES
    #: Largest per-shard ghost-node cache budget the service grants to a
    #: sharded session (0 = ghost caching not offered).
    ghost_cache_bytes: int = 0
    #: Admission policy of the continuous-batching scheduler: cap on walkers
    #: simultaneously in flight across every attached session (0 =
    #: unbounded; submissions past the cap hit backpressure).
    max_inflight_walkers: int = 0
    #: How the scheduler arbitrates between tenant admission queues:
    #: ``"wrr"`` (weighted round-robin, starvation-free for any nonzero
    #: weight) or ``"fifo"`` (global submission order).
    fairness: str = "wrr"
    #: Per-tenant caps on outstanding (queued + in-flight) walkers, as
    #: ``(tenant, quota)`` pairs — hashable so the capability set stays
    #: frozen.  Empty means no per-tenant quotas.
    tenant_quotas: tuple[tuple[str, int], ...] = ()
    #: Whether the service offers superstep checkpointing and fault
    #: recovery (:mod:`repro.runtime.faults`).  Checkpointing needs the
    #: batched frontier loop, so scalar-only services decline it.
    checkpointing: bool = True
    #: When True, a spec whose static verification carries ERROR
    #: diagnostics (:func:`repro.analysis.verify_spec`) is rejected at
    #: negotiation time with a :class:`~repro.errors.ServiceError` instead
    #: of the default degrade path (run, but decline transition caching and
    #: scheduler fusion).
    strict_verification: bool = False

    def __post_init__(self) -> None:
        if self.fairness not in ("wrr", "fifo"):
            raise ServiceError(
                f"unknown fairness policy {self.fairness!r}; valid: ('wrr', 'fifo')"
            )
        if self.max_inflight_walkers < 0:
            raise ServiceError("max_inflight_walkers must be non-negative (0 = unbounded)")

    def supports(self, backend: str) -> bool:
        return backend in self.backends


@dataclass(frozen=True)
class ExecutionPlan:
    """The negotiated execution strategy of one session.

    Immutable and self-describing: every field that used to be a scattered
    constructor flag is resolved here once, and ``reasons`` records the
    negotiation trail (requested vs. granted, capability fallbacks).

    Attributes
    ----------
    backend:
        One of :data:`BACKENDS`.
    execution:
        The engine execution mode implementing the backend (``"batched"``
        or ``"scalar"``).
    num_devices / partition_policy:
        Device placement; 1/"hash" for single-device backends.
    graph_placement / shard_policy:
        How a multi-device plan places the graph: ``"replicated"`` copies
        it onto every device (Fig. 15), ``"sharded"`` splits it into
        per-device node-range shards (``shard_policy`` names the
        decomposition; ``None`` unless sharded).  Negotiated from the
        graph's memory footprint against the fleet device's memory when the
        config requests ``"auto"``.
    ghost_cache_bytes:
        Granted per-shard ghost-node cache budget (0 unless sharded and
        requested): the session's request clamped to the service's
        declared maximum.
    scheduling:
        Query-to-lane scheduling inside each device.
    use_transition_cache:
        Whether the cross-superstep transition cache applies — true only
        when the compiler proved the workload's weights node-only (the
        whole-spec proof: scalar *and* batch/vector override paths).
    scheduler_fusion:
        Whether the continuous-batching scheduler may fuse this plan's
        walkers with other sessions.  Declined (False) when static
        verification found ERROR diagnostics — an unverified spec must not
        contaminate a shared fused frontier.
    streaming_granularity:
        How :meth:`~repro.service.WalkSession.stream` chunks results:
        ``"superstep"`` (frontier backends) or ``"walk"`` (scalar).
    checkpoint_interval:
        Granted superstep checkpoint interval (0 = no explicit
        checkpoints).  The session's request, declined with a recorded
        reason when the service does not offer checkpointing or the
        backend cannot support it.
    reasons:
        Human-readable negotiation trail, for logs and ``describe()``.
    """

    backend: str
    execution: str
    num_devices: int = 1
    partition_policy: str = "hash"
    graph_placement: str = "replicated"
    shard_policy: str | None = None
    ghost_cache_bytes: int = 0
    scheduling: str = "dynamic"
    use_transition_cache: bool = True
    scheduler_fusion: bool = True
    streaming_granularity: str = "superstep"
    checkpoint_interval: int = 0
    reasons: tuple[str, ...] = field(default=())

    def describe(self) -> dict[str, object]:
        """Plain-dict view (used by examples, logs and ``describe()``s)."""
        return {
            "backend": self.backend,
            "execution": self.execution,
            "num_devices": self.num_devices,
            "partition_policy": self.partition_policy,
            "graph_placement": self.graph_placement,
            "shard_policy": self.shard_policy,
            "ghost_cache_bytes": self.ghost_cache_bytes,
            "scheduling": self.scheduling,
            "use_transition_cache": self.use_transition_cache,
            "scheduler_fusion": self.scheduler_fusion,
            "streaming_granularity": self.streaming_granularity,
            "checkpoint_interval": self.checkpoint_interval,
            "reasons": list(self.reasons),
        }


def negotiate_plan(
    capabilities: ServiceCapabilities,
    config: FlexiWalkerConfig,
    compiled: CompiledWorkload | None = None,
    backend: str | None = None,
    graph_footprint_bytes: int | None = None,
) -> ExecutionPlan:
    """Resolve declared capabilities and a session request into one plan.

    Parameters
    ----------
    capabilities:
        What the service can do (fleet size, implemented backends, device
        memory, graph placements).
    config:
        The session's requested knobs (execution mode, device count,
        partition policy, graph placement, scheduling).
    compiled:
        The compiled workload, consulted for cache eligibility.
    backend:
        Explicit backend request; by default the backend is derived from
        ``config`` (``num_devices > 1`` → ``multi_device``, else the
        configured execution mode).
    graph_footprint_bytes:
        Memory footprint of the graph to serve
        (:meth:`~repro.graph.csr.CSRGraph.memory_footprint_bytes`).  Drives
        the replicated-vs-sharded decision for multi-device plans when the
        config requests ``graph_placement="auto"``: sharded is selected
        exactly when the footprint exceeds one fleet device's memory.
        ``None`` (or an unknown device memory) skips the negotiation and
        keeps the replicated placement.

    Raises
    ------
    ServiceError
        When the request exceeds the declared capabilities (unknown
        backend, more devices than the fleet owns, inconsistent
        backend/device/placement combinations).
    """
    reasons: list[str] = []

    if backend is None:
        if config.num_devices > 1:
            backend = "multi_device"
            reasons.append(
                f"config requested {config.num_devices} devices -> multi_device backend"
            )
        else:
            backend = config.execution
            reasons.append(f"config requested execution={config.execution!r}")
    else:
        reasons.append(f"backend {backend!r} requested explicitly")

    if backend not in BACKENDS:
        raise ServiceError(f"unknown backend {backend!r}; valid: {BACKENDS}")
    if not capabilities.supports(backend):
        raise ServiceError(
            f"backend {backend!r} not offered by this service; "
            f"declared: {capabilities.backends}"
        )

    num_devices = config.num_devices
    if backend == "multi_device" and num_devices < 2:
        num_devices = capabilities.max_devices
        reasons.append(
            f"multi_device backend with no device count requested -> "
            f"using the whole fleet ({num_devices})"
        )
    if backend != "multi_device" and num_devices > 1:
        raise ServiceError(
            f"backend {backend!r} is single-device but config requests "
            f"{num_devices} devices; use the multi_device backend"
        )
    if num_devices > capabilities.max_devices:
        raise ServiceError(
            f"session requests {num_devices} devices but the service fleet "
            f"owns {capabilities.max_devices}"
        )
    if backend == "multi_device" and num_devices < 2:
        raise ServiceError("the multi_device backend needs a fleet of at least 2 devices")

    if config.partition_policy not in capabilities.partition_policies:
        raise ServiceError(
            f"unknown partition policy {config.partition_policy!r}; "
            f"valid: {capabilities.partition_policies}"
        )

    # Graph placement: replicated vs sharded.  Only a multi-device plan has
    # a placement choice to make; single-device backends trivially hold the
    # whole graph (replicated) and reject explicit shard requests.
    placement = "replicated"
    shard_policy: str | None = None
    ghost_cache_bytes = 0
    if backend == "multi_device":
        memory = capabilities.device_memory_bytes
        known = graph_footprint_bytes is not None and memory > 0
        fits = not known or graph_footprint_bytes <= memory
        can_shard = (
            "sharded" in capabilities.graph_placements
            and config.shard_policy in capabilities.shard_policies
            and config.execution != "scalar"
        )
        requested = config.graph_placement
        if requested == "sharded":
            # An explicit shard request is a hard requirement: failing it
            # loudly beats silently serving a placement the caller did not
            # ask for.
            if "sharded" not in capabilities.graph_placements:
                raise ServiceError(
                    "sharded graph placement is not offered by this service; "
                    f"declared: {capabilities.graph_placements}"
                )
            if config.execution == "scalar":
                raise ServiceError(
                    "sharded graph placement requires the batched execution mode"
                )
            if config.shard_policy not in capabilities.shard_policies:
                raise ServiceError(
                    f"unknown shard policy {config.shard_policy!r}; "
                    f"valid: {capabilities.shard_policies}"
                )
            placement = "sharded"
            reasons.append("sharded graph placement requested explicitly")
        elif requested == "replicated":
            reasons.append("replicated graph placement requested explicitly")
            if not fits:
                reasons.append(
                    f"warning: graph footprint {graph_footprint_bytes} B exceeds "
                    f"device memory {memory} B but replicated placement was "
                    "requested (simulated-OOM risk)"
                )
        # "auto": a negotiation, never a hard requirement — when sharding
        # would help but the service cannot offer it, fall back to
        # replicated and say so instead of failing the session.
        elif not fits and not can_shard:
            blocker = (
                "scalar execution cannot shard"
                if config.execution == "scalar"
                else "sharded placement is not offered"
            )
            reasons.append(
                f"graph footprint {graph_footprint_bytes} B exceeds device "
                f"memory {memory} B but {blocker} -> replicated placement "
                "kept (simulated-OOM risk)"
            )
        elif not fits:
            placement = "sharded"
            reasons.append(
                f"graph footprint {graph_footprint_bytes} B exceeds device "
                f"memory {memory} B -> sharded placement over "
                f"{num_devices} devices ({config.shard_policy} ranges)"
            )
        elif not known:
            reasons.append("graph footprint not negotiated -> replicated placement")
        else:
            reasons.append(
                f"graph footprint {graph_footprint_bytes} B fits device "
                f"memory {memory} B -> replicated placement"
            )
        if placement == "sharded":
            shard_policy = config.shard_policy
            # Ghost caching trades per-shard memory for fewer migrations:
            # the grant is the session's request clamped to the service's
            # declared maximum, never more.
            if config.ghost_cache_bytes > 0:
                ghost_cache_bytes = min(
                    config.ghost_cache_bytes, capabilities.ghost_cache_bytes
                )
                if ghost_cache_bytes < config.ghost_cache_bytes:
                    reasons.append(
                        f"ghost cache request {config.ghost_cache_bytes} B "
                        f"clamped to the service maximum {ghost_cache_bytes} B"
                        if ghost_cache_bytes
                        else "ghost cache requested but not offered by this "
                        "service -> disabled"
                    )
                else:
                    reasons.append(
                        f"ghost cache granted: {ghost_cache_bytes} B per shard"
                    )
            # Sharding divides the graph, it does not shrink it: when even
            # a device's 1/num_devices share of the footprint (plus its
            # ghost-cache budget) exceeds its memory, the plan is still
            # under-provisioned — say so instead of presenting the
            # placement as a solved memory problem.  (The edge-balanced
            # ideal share; a skewed contiguous decomposition can only be
            # worse.)
            if known:
                per_shard = -(-graph_footprint_bytes // num_devices) + ghost_cache_bytes
                if per_shard > memory:
                    reasons.append(
                        f"warning: even sharded, ~{per_shard} B per shard "
                        "(graph share + ghost cache) exceeds device memory "
                        f"{memory} B — the graph needs more than "
                        f"{num_devices} devices (simulated-OOM risk)"
                    )
    elif config.graph_placement == "sharded":
        raise ServiceError(
            f"sharded graph placement needs the multi_device backend, "
            f"not {backend!r}"
        )

    # The engine execution mode implementing the backend.  An explicitly
    # requested single-device backend *is* the execution mode (the request
    # wins over config.execution); multi_device keeps the configured mode:
    # batched -> one fused frontier, scalar -> the serial per-device
    # composition (both placement-invariant).
    execution = config.execution if backend == "multi_device" else backend
    if execution != config.execution:
        reasons.append(
            f"requested backend overrides config execution "
            f"({config.execution!r} -> {execution!r})"
        )

    # Static verification gates the bit-identity optimisations.  ERROR
    # diagnostics mean a hook was *refuted* (nondeterministic, cache-unsafe
    # or registry-unsound): the spec still runs, but never from a shared
    # transition cache and never fused with other sessions' walkers — or
    # not at all, when the service declared strict verification.
    use_cache = compiled is not None and compiled.weights_node_only
    scheduler_fusion = True
    report = compiled.report if compiled is not None else None
    if report is not None and report.has_errors:
        rules = ", ".join(report.rule_ids(Severity.ERROR))
        if capabilities.strict_verification:
            detail = "; ".join(d.format() for d in report.errors)
            raise ServiceError(
                f"{report.spec_class} failed static verification "
                f"({rules}) and this service requires verified specs: {detail}"
            )
        use_cache = False
        scheduler_fusion = False
        reasons.append(
            f"static verification found ERROR diagnostics ({rules}): "
            "transition caching and scheduler fusion declined"
        )
    elif use_cache:
        reasons.append("transition cache enabled: compiler proved weights node-only")
    else:
        reasons.append("transition cache disabled: weights depend on walker state")
    if report is not None and report.warnings:
        rules = ", ".join(sorted({d.rule for d in report.warnings}))
        reasons.append(f"static verification warnings: {rules}")
    if compiled is not None and not compiled.analysis.supported and compiled.analysis.warnings:
        reasons.append(
            "compiler fallback to eRVS-only: " + "; ".join(compiled.analysis.warnings)
        )

    # Fault tolerance: the checkpoint interval is a negotiation, not a hard
    # requirement — a service that cannot checkpoint (or a scalar plan,
    # which has no superstep boundary to checkpoint at) declines the
    # request with a recorded reason, and recovery falls back to replaying
    # from the implicit initial checkpoint.
    checkpoint_interval = config.checkpoint_interval
    if checkpoint_interval > 0:
        if execution == "scalar":
            checkpoint_interval = 0
            reasons.append(
                "checkpointing declined: the scalar backend has no "
                "superstep boundary to checkpoint at"
            )
        elif not capabilities.checkpointing:
            checkpoint_interval = 0
            reasons.append(
                "checkpointing declined: not offered by this service "
                "(recovery replays from the initial state)"
            )
        else:
            reasons.append(
                f"checkpointing granted: every {checkpoint_interval} supersteps"
            )

    # Admission policy is part of the negotiated record like any placement
    # decision: a session attached to the service's continuous-batching
    # scheduler competes under exactly these terms.
    budget = (
        f"in-flight walker budget {capabilities.max_inflight_walkers}"
        if capabilities.max_inflight_walkers
        else "unbounded in-flight walkers"
    )
    quotas = (
        f", {len(capabilities.tenant_quotas)} tenant quota(s)"
        if capabilities.tenant_quotas
        else ""
    )
    reasons.append(
        f"admission policy: {capabilities.fairness} fairness, {budget}{quotas}"
    )

    granularity = "walk" if execution == "scalar" else "superstep"
    return ExecutionPlan(
        backend=backend,
        execution=execution,
        num_devices=num_devices,
        partition_policy=config.partition_policy,
        graph_placement=placement,
        shard_policy=shard_policy,
        ghost_cache_bytes=ghost_cache_bytes,
        scheduling=config.scheduling,
        use_transition_cache=use_cache,
        scheduler_fusion=scheduler_fusion,
        streaming_granularity=granularity,
        checkpoint_interval=checkpoint_interval,
        reasons=tuple(reasons),
    )


#: Default capability declaration for a fleet: every backend this codebase
#: implements, gated only by the fleet size.
def declare_capabilities(
    fleet: DeviceFleet,
    *,
    max_inflight_walkers: int = 0,
    fairness: str = "wrr",
    tenant_quotas: tuple[tuple[str, int], ...] = (),
    strict_verification: bool = False,
) -> ServiceCapabilities:
    """The capability set a service with ``fleet`` declares.

    The keyword arguments declare the admission policy of the service's
    continuous-batching scheduler (:meth:`~repro.service.WalkService.scheduler`
    builds schedulers with these defaults); they default to an open policy —
    unbounded in-flight walkers, weighted round-robin, no quotas.
    """
    backends = ["scalar", "batched"]
    placements = ["replicated"]
    if fleet.count > 1:
        backends.append("multi_device")
        placements.append("sharded")
    return ServiceCapabilities(
        backends=tuple(backends),
        max_devices=fleet.count,
        partition_policies=PARTITION_POLICIES,
        device_name=fleet.device.name,
        device_memory_bytes=fleet.device.memory_bytes,
        graph_placements=tuple(placements),
        shard_policies=SHARD_POLICIES,
        # A shard may spend up to 1/8 of its device's memory on ghost
        # copies of hot remote nodes.
        ghost_cache_bytes=fleet.device.memory_bytes // 8 if fleet.count > 1 else 0,
        max_inflight_walkers=max_inflight_walkers,
        fairness=fairness,
        tenant_quotas=tuple(tenant_quotas),
        strict_verification=strict_verification,
    )
