"""Fig. 7 — why runtime selection is needed.

Panel (a): sensitivity of the two optimised kernels to edge-weight skew.
Weighted Node2Vec runs on the EU scale model with Pareto property weights of
varying shape ``alpha``; eRVS should be flat across the sweep while eRJS
degrades sharply as the distribution becomes more skewed (lower ``alpha``),
because a single outlier inflates its proposal bound.

Panel (b): runtime variation of the transition-weight *sums* under 2nd-order
PageRank — the coefficient-of-variation histogram showing that a large number
of nodes change their weight statistics substantially between steps, so a
static per-node choice cannot be optimal.
"""

from __future__ import annotations

from repro.bench.config import ExperimentConfig
from repro.bench.runner import prepare_graph, prepare_queries, run_flexiwalker
from repro.bench.tables import format_table
from repro.stats.distributions import weight_sum_cv_histogram
from repro.walks.registry import make_workload

ALPHAS = (1.0, 1.5, 2.0, 2.5, 3.0, 4.0)
DATASET = "EU"


def run_experiment(config: ExperimentConfig | None = None) -> dict:
    """Execute both panels of Fig. 7."""
    config = config or ExperimentConfig.quick()

    # Panel (a): eRVS-only vs eRJS-only across weight skew.
    skew_rows = []
    for alpha in ALPHAS:
        graph = prepare_graph(DATASET, "node2vec", weights="powerlaw", alpha=alpha)
        queries = prepare_queries(graph, "node2vec", config)
        ervs = run_flexiwalker(
            DATASET, "node2vec", config, graph=graph, queries=queries,
            weights="powerlaw", alpha=alpha, selection="ervs_only", check_memory=False,
        )
        erjs = run_flexiwalker(
            DATASET, "node2vec", config, graph=graph, queries=queries,
            weights="powerlaw", alpha=alpha, selection="erjs_only", check_memory=False,
        )
        skew_rows.append({"alpha": alpha, "eRVS_ms": ervs.time_ms, "eRJS_ms": erjs.time_ms})

    # Panel (b): CV histogram of per-node weight sums under 2nd PR.
    graph = prepare_graph(DATASET, "2nd_pr", weights="uniform")
    bins, counts = weight_sum_cv_histogram(
        graph, make_workload("2nd_pr"), num_nodes=min(256, graph.num_nodes), seed=config.seed
    )

    return {
        "skew_sensitivity": skew_rows,
        "cv_histogram": {"bin_upper_bounds": list(bins) + ["inf"], "counts": list(counts)},
        "config": config,
        "paper_reference": "Figure 7: (a) skewness sensitivity, (b) runtime weight variation (EU)",
    }


def format_result(result: dict) -> str:
    rows_a = [[r["alpha"], r["eRVS_ms"], r["eRJS_ms"], r["eRJS_ms"] / r["eRVS_ms"]] for r in result["skew_sensitivity"]]
    table_a = format_table(
        ["alpha", "eRVS (ms)", "eRJS (ms)", "eRJS/eRVS"],
        rows_a,
        title="Fig. 7a — skewness sensitivity (weighted Node2Vec, EU)",
    )
    hist = result["cv_histogram"]
    rows_b = [[str(b), c] for b, c in zip(hist["bin_upper_bounds"], hist["counts"], strict=False)]
    table_b = format_table(
        ["CV bin (upper bound)", "#nodes"],
        rows_b,
        title="Fig. 7b — runtime weight-sum variation (2nd PR, EU)",
    )
    return table_a + "\n\n" + table_b


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_result(run_experiment()))


if __name__ == "__main__":  # pragma: no cover
    main()
