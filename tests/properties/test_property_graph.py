"""Property-based tests for the graph substrate (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builders import from_edge_list, to_undirected
from repro.graph.weights import dequantize_weights_int8, quantize_weights_int8

edge_lists = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(edges=edge_lists)
def test_csr_preserves_edge_multiset(edges):
    graph = from_edge_list(edges, num_nodes=16)
    rebuilt = []
    for v in range(graph.num_nodes):
        rebuilt.extend((v, int(u)) for u in graph.neighbors(v))
    assert sorted(rebuilt) == sorted(edges)


@settings(max_examples=60, deadline=None)
@given(edges=edge_lists)
def test_degrees_sum_to_edge_count(edges):
    graph = from_edge_list(edges, num_nodes=16)
    assert int(graph.degrees().sum()) == graph.num_edges
    assert int(graph.in_degrees().sum()) == graph.num_edges


@settings(max_examples=60, deadline=None)
@given(edges=edge_lists)
def test_neighbor_lists_are_sorted(edges):
    graph = from_edge_list(edges, num_nodes=16)
    for v in range(graph.num_nodes):
        nbrs = graph.neighbors(v)
        assert np.all(np.diff(nbrs) >= 0)


@settings(max_examples=60, deadline=None)
@given(edges=edge_lists)
def test_has_edge_agrees_with_neighbor_lists(edges):
    graph = from_edge_list(edges, num_nodes=16, deduplicate=True)
    present = {(v, int(u)) for v in range(graph.num_nodes) for u in graph.neighbors(v)}
    for v in range(graph.num_nodes):
        for u in range(graph.num_nodes):
            assert graph.has_edge(v, u) == ((v, u) in present)


@settings(max_examples=40, deadline=None)
@given(edges=edge_lists)
def test_to_undirected_is_symmetric(edges):
    graph = to_undirected(from_edge_list(edges, num_nodes=16, deduplicate=True))
    for v in range(graph.num_nodes):
        for u in graph.neighbors(v):
            assert graph.has_edge(int(u), v)


@settings(max_examples=60, deadline=None)
@given(
    weights=st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=100)
)
def test_int8_quantisation_error_bounded_by_half_step(weights):
    w = np.asarray(weights)
    codes, scale = quantize_weights_int8(w)
    recovered = dequantize_weights_int8(codes, scale)
    assert np.all(np.abs(recovered - w) <= scale / 2 + 1e-9)
