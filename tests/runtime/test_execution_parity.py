"""Scalar-vs-batched execution parity.

The batched frontier engine must be *simulation-equivalent* to the scalar
reference interpreter: identical walks, identical per-kernel usage, identical
counter totals and identical per-query simulated times for a fixed seed
policy.  These tests enforce that across workloads, selection policies,
baseline kernels and randomly generated graphs (property-based via
hypothesis).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.generator import compile_workload
from repro.core.config import FlexiWalkerConfig
from repro.core.flexiwalker import FlexiWalker
from repro.graph.generators import barabasi_albert_graph
from repro.graph.labels import random_edge_labels
from repro.graph.weights import uniform_weights
from repro.gpusim.device import A6000
from repro.runtime.engine import WalkEngine
from repro.runtime.selector import (
    CostModelSelector,
    DegreeBasedSelector,
    FixedSelector,
)
from repro.sampling.alias import AliasSampler
from repro.sampling.erjs import EnhancedRejectionSampler
from repro.sampling.ervs import EnhancedReservoirSampler
from repro.sampling.its import InverseTransformSampler
from repro.sampling.rejection import RejectionSampler
from repro.sampling.reservoir import ReservoirSampler
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.metapath import MetaPathSpec
from repro.walks.node2vec import Node2VecSpec, UnweightedNode2VecSpec
from repro.walks.second_order_pr import SecondOrderPRSpec
from repro.walks.state import make_queries

DEVICE = dataclasses.replace(A6000, parallel_lanes=8)


def labeled_graph(num_nodes: int, seed: int):
    graph = barabasi_albert_graph(num_nodes, 3, seed=seed, name=f"parity-{seed}")
    graph = graph.with_weights(uniform_weights(graph, seed=seed))
    return graph.with_labels(random_edge_labels(graph, num_labels=5, seed=seed))


def run_both_engines(graph, spec, seed=0, walk_length=6, num_queries=24, **kwargs):
    queries = make_queries(graph.num_nodes, walk_length=walk_length,
                           num_queries=num_queries, seed=seed)
    results = []
    for mode in ("scalar", "batched"):
        engine = WalkEngine(graph=graph, spec=spec, device=DEVICE, seed=seed,
                            execution=mode, **kwargs)
        results.append(engine.run(queries))
    return results


def assert_parity(scalar, batched):
    assert scalar.paths == batched.paths
    assert scalar.sampler_usage == batched.sampler_usage
    assert scalar.total_steps == batched.total_steps
    assert scalar.counters.as_dict() == batched.counters.as_dict()
    assert np.array_equal(scalar.per_query_ns, batched.per_query_ns)
    assert scalar.kernel.time_ns == batched.kernel.time_ns


SPEC_FACTORIES = {
    "deepwalk": DeepWalkSpec,
    "node2vec": Node2VecSpec,
    "node2vec_unweighted": UnweightedNode2VecSpec,
    "metapath": lambda: MetaPathSpec(schema=(0, 1, 2)),
    "2nd_pr": SecondOrderPRSpec,
}


class TestAdaptiveSelectionParity:
    """The paper's configuration: cost-model selection with compiled hints."""

    @pytest.mark.parametrize("workload", sorted(SPEC_FACTORIES))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cost_model_parity(self, workload, seed):
        graph = labeled_graph(50, seed=seed + 10)
        spec = SPEC_FACTORIES[workload]()
        compiled = compile_workload(spec, graph)
        scalar, batched = run_both_engines(
            graph, spec, seed=seed,
            selector=CostModelSelector(), compiled=compiled,
            selection_overhead=True, warp_switch_overhead=True,
        )
        assert_parity(scalar, batched)

    def test_degree_selection_parity(self):
        graph = labeled_graph(60, seed=7)
        spec = Node2VecSpec()
        compiled = compile_workload(spec, graph)
        scalar, batched = run_both_engines(
            graph, spec, seed=3,
            selector=DegreeBasedSelector(threshold=5), compiled=compiled,
        )
        assert_parity(scalar, batched)

    def test_metapath_dead_ends_terminate_identically(self):
        graph = labeled_graph(40, seed=5)
        spec = MetaPathSpec(schema=(4,))
        scalar, batched = run_both_engines(graph, spec, seed=1, walk_length=5)
        assert_parity(scalar, batched)
        # Schema label 4 is sparse, so some walks must actually have stopped
        # early for this test to be exercising the dead-end path.
        lengths = [len(p) - 1 for p in scalar.paths]
        assert min(lengths) < 5


class TestFixedKernelParity:
    """Every kernel's sample_batch must replay its scalar sample exactly."""

    @pytest.mark.parametrize("sampler_factory", [
        EnhancedReservoirSampler,
        lambda: EnhancedReservoirSampler(use_jump=False),
        lambda: EnhancedReservoirSampler(use_exponential_keys=False),
        EnhancedRejectionSampler,
        RejectionSampler,
        ReservoirSampler,
        InverseTransformSampler,
        AliasSampler,
    ])
    @pytest.mark.parametrize("seed", [0, 4])
    def test_fixed_sampler_parity(self, sampler_factory, seed):
        graph = labeled_graph(50, seed=seed + 20)
        spec = Node2VecSpec()
        compiled = compile_workload(spec, graph)
        scalar, batched = run_both_engines(
            graph, spec, seed=seed,
            selector=FixedSelector(sampler_factory()), compiled=compiled,
        )
        assert_parity(scalar, batched)

    def test_erjs_without_hints_uses_scan_fallback_identically(self):
        graph = labeled_graph(50, seed=9)
        scalar, batched = run_both_engines(
            graph, Node2VecSpec(), seed=2,
            selector=FixedSelector(EnhancedRejectionSampler()), compiled=None,
        )
        assert_parity(scalar, batched)


class TestHooksAndOverheadParity:
    def test_step_overhead_hook_parity(self):
        def hook(ctx, sampler):
            ctx.counters.random_accesses += 4
            ctx.counters.atomic_ops += 2

        graph = labeled_graph(40, seed=11)
        scalar, batched = run_both_engines(
            graph, Node2VecSpec(), seed=0,
            selector=FixedSelector(RejectionSampler()), step_overhead=hook,
        )
        assert_parity(scalar, batched)

    def test_counter_reading_hook_parity(self):
        """Hooks may read the step's already-charged counts (scalar contract)."""

        def hook(ctx, sampler):
            ctx.counters.atomic_ops += ctx.counters.rng_draws

        graph = labeled_graph(40, seed=14)
        scalar, batched = run_both_engines(
            graph, Node2VecSpec(), seed=1, step_overhead=hook,
        )
        assert_parity(scalar, batched)
        assert scalar.counters.atomic_ops > len(scalar.paths)

    def test_static_scheduling_parity(self):
        graph = labeled_graph(40, seed=12)
        scalar, batched = run_both_engines(
            graph, DeepWalkSpec(), seed=0, scheduling="static",
        )
        assert_parity(scalar, batched)

    def test_int8_weight_bytes_parity(self):
        graph = labeled_graph(40, seed=13)
        scalar, batched = run_both_engines(
            graph, DeepWalkSpec(), seed=0, weight_bytes=1,
        )
        assert_parity(scalar, batched)


class TestFacadeParity:
    # Exercises the deprecated one-shot facade on purpose (legacy-shim test).
    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    @pytest.mark.parametrize("selection", ["cost_model", "ervs_only", "erjs_only", "degree"])
    def test_flexiwalker_modes_agree(self, selection):
        graph = labeled_graph(60, seed=21)
        results = []
        for mode in ("scalar", "batched"):
            config = FlexiWalkerConfig(
                device=DEVICE, selection=selection, execution=mode,
                degree_threshold=5, seed=1,
            )
            walker = FlexiWalker(graph, Node2VecSpec(), config)
            results.append(walker.run(walk_length=5, num_queries=30))
        assert_parity(*results)

    def test_describe_reports_execution_mode(self):
        graph = labeled_graph(30, seed=22)
        walker = FlexiWalker(graph, Node2VecSpec(), FlexiWalkerConfig(device=DEVICE))
        assert walker.describe()["execution"] == "batched"


class TestPropertyBasedParity:
    """Random graphs, seeds and walk shapes (the ISSUE's property test)."""

    @settings(max_examples=12, deadline=None)
    @given(
        graph_seed=st.integers(min_value=0, max_value=40),
        run_seed=st.integers(min_value=0, max_value=1000),
        workload=st.sampled_from(sorted(SPEC_FACTORIES)),
        walk_length=st.integers(min_value=1, max_value=8),
    )
    def test_random_graph_parity(self, graph_seed, run_seed, workload, walk_length):
        graph = labeled_graph(20 + (graph_seed % 5) * 8, seed=graph_seed)
        spec = SPEC_FACTORIES[workload]()
        compiled = compile_workload(spec, graph)
        scalar, batched = run_both_engines(
            graph, spec, seed=run_seed, walk_length=walk_length, num_queries=12,
            selector=CostModelSelector(), compiled=compiled,
            selection_overhead=True, warp_switch_overhead=True,
        )
        assert_parity(scalar, batched)
