"""Determinism rules.

The stack's strongest guarantees — scheduler-fusion parity (PR 7),
fault-recovery bit-identity (PR 8), delta compaction identity (PR 9) — all
assume spec hooks are pure, deterministic functions of their arguments.
These rules refute that assumption statically:

``determinism/unseeded-rng``
    Construction of an unseeded RNG (``np.random.default_rng()``,
    ``random.Random()``) or any call into the module-level ``random`` /
    ``np.random`` global streams.  Hooks must draw randomness only from the
    engine-provided counter-based streams (``batch.rng``), which are the
    thing checkpoint/replay restores.
``determinism/wall-clock``
    Reads of wall-clock or monotonic time (``time.*``, ``datetime.now``),
    ``os.urandom`` and time/host-derived UUIDs — values that differ between
    a run and its fault-recovery replay.
``determinism/object-identity``
    ``id(...)`` (ERROR: CPython address, changes every run) and ``hash(...)``
    (WARNING: str/bytes hashes are salted per process).
``determinism/pure-hook-writes-self``
    Assignment to ``self.*`` inside a weight or cost hook.  Only
    ``update`` / ``update_batch`` may mutate; a weight hook that memoises on
    ``self`` diverges between the scalar and batched engines and across
    recovery replays.
``determinism/global-state``
    ``global`` / ``nonlocal`` declarations in any hook.
``determinism/closure-mutable``
    A selector/hint callable closing over a mutable object (list, dict,
    set, bytearray) — the capture can drift between evaluations.
"""

from __future__ import annotations

import ast
import inspect

from repro.analysis.diagnostics import Diagnostic, Severity, _DiagnosticCollector
from repro.analysis.hooks import MUTATING_HOOKS, HookSource, SpecSources

#: RNG factory callables that are deterministic *only* when seeded.
_RNG_FACTORIES = frozenset(
    {"default_rng", "Random", "SystemRandom", "RandomState", "SeedSequence", "Philox", "PCG64"}
)

#: Draw functions of the module-level ``random`` / ``np.random`` streams.
#: Flagged when the preceding dotted component is ``random`` — that shape
#: (``random.choice``, ``np.random.rand``) can only be the global stream,
#: never an engine-provided generator like ``batch.rng.choice``.
_GLOBAL_STREAM_FNS = frozenset(
    {
        "random",
        "rand",
        "randn",
        "randint",
        "randrange",
        "random_sample",
        "choice",
        "choices",
        "shuffle",
        "permutation",
        "sample",
        "uniform",
        "normal",
        "standard_normal",
        "gauss",
        "getrandbits",
        "bytes",
        "binomial",
        "poisson",
        "exponential",
        "beta",
        "seed",
    }
)

_TIME_FNS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

_MUTABLE_CLOSURE_TYPES = (list, dict, set, bytearray)


def _dotted_path(node: ast.expr) -> tuple[str, ...]:
    """``a.b.c`` call targets as name components; empty when not dotted."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return tuple(reversed(parts))
    return ()


def _check_call(node: ast.Call, source: HookSource, out: _DiagnosticCollector) -> None:
    path = _dotted_path(node.func)
    if not path:
        return
    fn = path[-1]
    span = source.span(node)
    hook = source.context

    if fn in _RNG_FACTORIES and not node.args and not node.keywords:
        out.add(
            "determinism/unseeded-rng",
            Severity.ERROR,
            f"unseeded RNG construction {'.'.join(path)}() breaks replay bit-identity",
            span=span,
            hook=hook,
            fix_hint="seed explicitly, or draw from the engine stream (batch.rng / state RNG)",
        )
        return
    if len(path) >= 2 and path[-2] == "random" and fn in _GLOBAL_STREAM_FNS:
        out.add(
            "determinism/unseeded-rng",
            Severity.ERROR,
            f"call into the module-level RNG stream {'.'.join(path)}()",
            span=span,
            hook=hook,
            fix_hint="draw from the engine-provided counter-based stream instead",
        )
        return
    if len(path) >= 2 and path[-2] == "time" and fn in _TIME_FNS:
        out.add(
            "determinism/wall-clock",
            Severity.ERROR,
            f"wall-clock read {'.'.join(path)}() differs between a run and its recovery replay",
            span=span,
            hook=hook,
            fix_hint="derive per-step values from walker state (state.step), not host time",
        )
        return
    if fn in _DATETIME_FNS and len(path) >= 2 and path[-2] in ("datetime", "date"):
        out.add(
            "determinism/wall-clock",
            Severity.ERROR,
            f"wall-clock read {'.'.join(path)}()",
            span=span,
            hook=hook,
            fix_hint="derive per-step values from walker state, not host time",
        )
        return
    if path[-2:] == ("os", "urandom") or fn in ("uuid1", "uuid4"):
        out.add(
            "determinism/wall-clock",
            Severity.ERROR,
            f"entropy source {'.'.join(path)}() is nondeterministic across runs",
            span=span,
            hook=hook,
            fix_hint="use the engine-provided seeded stream",
        )


def _check_builtin_identity(node: ast.Call, source: HookSource, out: _DiagnosticCollector) -> None:
    if not isinstance(node.func, ast.Name):
        return
    if node.func.id == "id":
        out.add(
            "determinism/object-identity",
            Severity.ERROR,
            "id() returns a per-process object address; never stable across runs",
            span=source.span(node),
            hook=source.context,
            fix_hint="key on node ids or describe() parameters instead",
        )
    elif node.func.id == "hash":
        out.add(
            "determinism/object-identity",
            Severity.WARNING,
            "hash() of str/bytes is salted per process (PYTHONHASHSEED)",
            span=source.span(node),
            hook=source.context,
            fix_hint="use a keyed stable hash or integer keys",
        )


def _self_write_targets(stmt: ast.stmt, self_name: str) -> list[ast.expr]:
    """Assignment targets that write through ``self``."""
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    else:
        return []
    hits: list[ast.expr] = []
    for target in targets:
        base = target
        while isinstance(base, (ast.Subscript, ast.Attribute)):
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == self_name
            ):
                hits.append(target)
                break
            base = base.value
    return hits


def check_determinism(sources: SpecSources) -> list[Diagnostic]:
    """Run every determinism rule over every loaded hook source."""
    out = _DiagnosticCollector()
    for source in sources.hooks:
        self_name = source.arg_names[0] if source.arg_names else "self"
        pure_context = source.context not in MUTATING_HOOKS
        for node in ast.walk(source.func):
            if isinstance(node, ast.Call):
                _check_call(node, source, out)
                _check_builtin_identity(node, source, out)
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                out.add(
                    "determinism/global-state",
                    Severity.WARNING,
                    f"{'global' if isinstance(node, ast.Global) else 'nonlocal'} "
                    f"declaration of {', '.join(node.names)} in a spec hook",
                    span=source.span(node),
                    hook=source.context,
                    fix_hint="carry per-walk state on the walker, not module globals",
                )
            elif pure_context and isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                for target in _self_write_targets(node, self_name):
                    out.add(
                        "determinism/pure-hook-writes-self",
                        Severity.ERROR,
                        f"{source.context} writes {ast.unparse(target)}; weight/cost hooks "
                        "must be pure (only update/update_batch may mutate)",
                        span=source.span(node),
                        hook=source.context,
                        fix_hint="move the mutation into update()/update_batch()",
                    )
    return out.diagnostics


def check_callable_determinism(fn, name: str) -> list[Diagnostic]:
    """Determinism rules for a bare callable (selector / hint function).

    Adds the closure inspection the AST cannot see: a cell holding a
    mutable object is flagged ``determinism/closure-mutable``.
    """
    out = _DiagnosticCollector()
    closure = getattr(fn, "__closure__", None)
    if closure:
        freevars = getattr(getattr(fn, "__code__", None), "co_freevars", ())
        for var, cell in zip(freevars, closure, strict=False):
            try:
                value = cell.cell_contents
            except ValueError:  # pragma: no cover - unfilled cell
                continue
            if isinstance(value, _MUTABLE_CLOSURE_TYPES):
                out.add(
                    "determinism/closure-mutable",
                    Severity.WARNING,
                    f"{name} closes over mutable {type(value).__name__} {var!r}; "
                    "its contents can drift between evaluations",
                    hook=name,
                    fix_hint="capture an immutable snapshot (tuple/frozenset) instead",
                )
    from repro.analysis.hooks import _load_function

    source = _load_function(fn, name)
    if source is not None:
        for node in ast.walk(source.func):
            if isinstance(node, ast.Call):
                _check_call(node, source, out)
                _check_builtin_identity(node, source, out)
    return out.diagnostics
