"""eRVS: FlexiWalker's enhanced reservoir sampling kernel (Section 3.2).

Two optimisations over the baseline RVS kernel:

**EXP (memory-access reduction).**  Instead of prefix sums, each neighbour
``i`` receives an exponential-race key ``k_i = u_i^(1 / w̃_i)`` (Efraimidis &
Spirakis, 2006) and the neighbour with the *largest* key wins.  This converts
the step into an argmax, eliminates the prefix-sum pass and roughly halves
the memory accesses to the weight list.

**JUMP (computation reduction).**  Rather than drawing one key per neighbour,
the jump technique samples — once per candidate update — how much cumulative
weight can be skipped before the next update occurs (Eq. 4), so random-number
generation drops from ``degree`` draws to roughly ``O(warp + log degree)``
draws.

Both optimisations are statistically exact: the selected neighbour follows
``p(u) = w̃(v,u)/Σ w̃`` either way (chi-square verified in the test suite).
The two flags ``use_exponential_keys`` / ``use_jump`` exist so the Fig. 12a
ablation (baseline → +EXP → +JUMP) can be reproduced with the same class.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import (
    Sampler,
    StepContext,
    all_weights_zero,
    gather_transition_weights,
)
from repro.sampling.batch import (
    BatchStepContext,
    local_positions,
    segment_any_positive,
    segment_argmax_first,
    segment_cummax,
    segment_ids,
)


def exponential_race_keys(weights: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
    """Efraimidis–Spirakis keys ``k_i = u_i^(1/w_i)`` (zero weight → key 0).

    Computed in log space for numerical stability: ``log k_i = log(u_i)/w_i``;
    argmax is invariant under the monotone transform, and zero-weight items
    are mapped to ``-inf`` so they can never win.
    """
    weights = np.asarray(weights, dtype=np.float64)
    uniforms = np.asarray(uniforms, dtype=np.float64)
    log_keys = np.full(weights.shape, -np.inf, dtype=np.float64)
    positive = weights > 0
    # uniforms are in (0, 1); log is negative, dividing by the weight scales it.
    with np.errstate(divide="ignore"):
        log_keys[positive] = np.log(uniforms[positive]) / weights[positive]
    return log_keys


def count_candidate_updates(log_keys: np.ndarray, warp_width: int) -> int:
    """Number of global-candidate updates after the warp's first iteration.

    The jump kernel (Fig. 4b) seeds one key per lane in iteration 1, reduces
    them to the global maximum ``k_g`` and from then on only generates a new
    key when a lane's cumulative weight crosses its threshold — i.e. when the
    candidate would actually be replaced.  The expected number of such
    replacements grows only logarithmically with the neighbour count, which
    is exactly why the jump saves random numbers on high-degree nodes.  This
    helper counts the replacements exactly from the realised keys: a neighbour
    beyond the first warp-wide round triggers an update iff its key exceeds
    the running maximum of everything before it.
    """
    log_keys = np.asarray(log_keys, dtype=np.float64)
    n = log_keys.size
    width = max(1, min(warp_width, n))
    if n <= width:
        return 0
    running_max = np.maximum.accumulate(log_keys)
    later = log_keys[width:]
    return int(np.count_nonzero(later > running_max[width - 1:-1]))


class EnhancedReservoirSampler(Sampler):
    """eRVS: exponential-key reservoir sampling with the jump technique."""

    name = "eRVS"
    processing_unit = "warp"

    def __init__(self, use_exponential_keys: bool = True, use_jump: bool = True) -> None:
        self.use_exponential_keys = bool(use_exponential_keys)
        self.use_jump = bool(use_jump)

    def sample(self, ctx: StepContext) -> int | None:
        if not self._check_nonempty(ctx):
            return None
        if not self.use_exponential_keys:
            # Ablation baseline: behave exactly like the FlowWalker kernel.
            from repro.sampling.reservoir import ReservoirSampler

            return ReservoirSampler().sample(ctx)

        # Single pass over the weights — the EXP optimisation.
        weights = gather_transition_weights(ctx, passes=1)
        degree = weights.size
        if all_weights_zero(weights):
            return None

        uniforms = np.asarray(ctx.rng.uniform(degree))
        log_keys = exponential_race_keys(weights, uniforms)

        warp = ctx.warp()
        width = max(1, min(ctx.warp_width, degree))
        if self.use_jump and degree > width:
            # Iteration 1 draws one key per lane; after the k_g reduction each
            # lane draws one threshold, and every later candidate update costs
            # two more draws (replacement key + fresh threshold).  Everything
            # in between is jumped over.
            updates = count_candidate_updates(log_keys, ctx.warp_width)
            ctx.counters.rng_draws += 2 * width + 2 * updates
        else:
            # One key per neighbour (the plain exponential-race formulation);
            # for neighbour lists no longer than a warp the jump has nothing
            # to skip, so the cost is identical.
            ctx.counters.rng_draws += degree

        # Local per-lane maxima are reduced across the warp.
        choice = int(np.argmax(log_keys))
        warp.reduce_argmax(log_keys[:width])
        return int(ctx.neighbors()[choice])

    # ------------------------------------------------------------------ #
    def _sample_batch_nonempty(self, batch: BatchStepContext, out: np.ndarray) -> np.ndarray:
        """Frontier-wide eRVS: one exponential race across every walker.

        Walker-for-walker identical to :meth:`sample` — the per-walker
        uniforms come from the same counter positions of the same streams,
        the keys/argmax use the same formulas, and the jump accounting counts
        the same candidate updates via a segmented running maximum.
        """
        if not self.use_exponential_keys:
            # Ablation baseline: behave exactly like the FlowWalker kernel.
            from repro.sampling.reservoir import ReservoirSampler

            return ReservoirSampler()._sample_batch_nonempty(batch, out)

        weights = batch.gather_weights(passes=1)
        degrees = batch.degrees
        live = np.nonzero(segment_any_positive(weights, degrees))[0]
        if live.size == 0:
            return out

        # Draw exactly one uniform per neighbour for every live walker, from
        # each walker's own stream (dead-end walkers consume no draws, like
        # the scalar early return).
        counts = np.zeros(batch.size, dtype=np.int64)
        counts[live] = degrees[live]
        uniforms = batch.rng.uniform_flat(counts)
        flat_mask = batch.edge_mask(live)
        live_weights = weights[flat_mask]
        live_lengths = degrees[live]
        log_keys = exponential_race_keys(live_weights, uniforms)

        widths = np.minimum(batch.warp_width, live_lengths)
        rng_counts = live_lengths.copy()
        if self.use_jump:
            jump = live_lengths > batch.warp_width
            if jump.any():
                # Count the candidate updates exactly as the scalar helper
                # does: position j >= width triggers an update iff its key
                # beats the running maximum of everything before it.  Only
                # jump-eligible segments are scanned — the running maximum is
                # a per-segment quantity, so restricting the scan cannot
                # change any counted update.
                jump_idx = np.nonzero(jump)[0]
                jump_lengths = live_lengths[jump_idx]
                jump_mask = np.repeat(jump, live_lengths)
                jump_keys = log_keys[jump_mask]
                cummax = segment_cummax(jump_keys, jump_lengths)
                prev_max = np.empty_like(cummax)
                prev_max[0] = -np.inf
                prev_max[1:] = cummax[:-1]
                pos = local_positions(jump_lengths)
                seg = segment_ids(jump_lengths)
                beats = (pos >= widths[jump_idx][seg]) & (jump_keys > prev_max)
                updates = np.zeros(live_lengths.size, dtype=np.int64)
                updates[jump_idx] = np.bincount(seg[beats], minlength=jump_lengths.size)
                rng_counts = np.where(jump, 2 * widths + 2 * updates, live_lengths)
        batch.charge("rng_draws", rng_counts, live)
        batch.charge("reduction_elements", widths, live)

        choice = segment_argmax_first(log_keys, live_lengths)
        out[live] = batch.neighbors_flat[batch.offsets[:-1][live] + choice]
        return out
