"""Node2Vec: the canonical second-order (dynamic) random walk.

Node2Vec (Grover & Leskovec, 2016) biases each step by the distance between
the candidate neighbour ``u`` and the previously visited node ``v'``
(Eq. 2 of the paper):

* ``dist(v', u) == 0`` (returning to ``v'``):      ``w = 1/a``
* ``dist(v', u) == 1`` (``u`` is a neighbour of ``v'``): ``w = 1``
* ``dist(v', u) == 2`` (otherwise):                 ``w = 1/b``

The paper evaluates with ``a = 2.0`` and ``b = 0.5``.  The *unweighted*
variant uses ``h = 1`` for every edge, which makes the maximum transition
weight a compile-time constant (``max(1, 1/a, 1/b)``) — the PER_KERNEL case of
Flexi-Compiler; the *weighted* variant multiplies by the property weight and
needs a PER_STEP bound.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import WalkSpecError
from repro.graph.csr import CSRGraph
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkerState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sampling.batch import BatchStepContext


def _prev_degrees(graph: CSRGraph, prev: np.ndarray) -> np.ndarray:
    """Out-degree of each walker's previous node (0 where there is none)."""
    safe = np.where(prev >= 0, prev, 0)
    degrees = graph.indptr[safe + 1] - graph.indptr[safe]
    return np.where(prev >= 0, degrees, 0)


def _second_order_bias(graph: CSRGraph, batch: BatchStepContext) -> tuple[np.ndarray, np.ndarray]:
    """Per-candidate-edge second-order classification for the whole frontier.

    Returns ``(has_prev, linked)``, both parallel to ``batch.neighbors_flat``:
    ``has_prev`` marks edges of walkers that have a previous node, ``linked``
    marks candidates that are themselves neighbours of that previous node —
    the ``dist(v', u) == 1`` test, answered for the whole frontier by one
    global binary search over the graph's sorted edge keys
    (:meth:`~repro.graph.csr.CSRGraph.has_edges`).
    """
    seg = batch.seg_ids
    prev_per_edge = batch.prev[seg]
    has_prev = prev_per_edge >= 0
    linked = np.zeros(prev_per_edge.size, dtype=bool)
    check = np.nonzero(has_prev)[0]
    if check.size:
        linked[check] = graph.has_edges(
            prev_per_edge[check], batch.neighbors_flat[check]
        )
    return has_prev, linked


class Node2VecSpec(WalkSpec):
    """Node2Vec walk specification with return parameter ``a`` and in-out ``b``."""

    name = "node2vec"
    is_dynamic = True
    default_walk_length = 80

    def __init__(self, a: float = 2.0, b: float = 0.5) -> None:
        if a <= 0 or b <= 0:
            raise WalkSpecError("Node2Vec parameters a and b must be positive")
        self.a = float(a)
        self.b = float(b)
        super().__init__()

    # ------------------------------------------------------------------ #
    # User code analysed by Flexi-Compiler (paper Fig. 9a)
    # ------------------------------------------------------------------ #
    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        h_e = graph.weights[edge]
        post = graph.indices[edge]
        if state.prev_node < 0:
            return h_e
        if post == state.prev_node:
            return h_e / self.a
        if not graph.has_edge(state.prev_node, post):
            return h_e / self.b
        return h_e

    # ------------------------------------------------------------------ #
    def transition_weights(self, graph: CSRGraph, state: WalkerState) -> np.ndarray:
        """Vectorised Eq. 2: classify every neighbour against ``prev_node``."""
        h = graph.edge_weights(state.current_node).astype(np.float64)
        if state.prev_node < 0:
            return h.copy()
        neighbors = graph.neighbors(state.current_node)
        prev_neighbors = graph.neighbors(state.prev_node)
        w = np.full(neighbors.size, 1.0 / self.b, dtype=np.float64)
        if prev_neighbors.size:
            # Neighbour lists are sorted, so membership is a binary search.
            pos = np.searchsorted(prev_neighbors, neighbors)
            pos = np.clip(pos, 0, prev_neighbors.size - 1)
            linked = prev_neighbors[pos] == neighbors
            w[linked] = 1.0
        w[neighbors == state.prev_node] = 1.0 / self.a
        return w * h

    def transition_weights_batch(self, graph: CSRGraph, batch: BatchStepContext) -> np.ndarray:
        """Frontier-wide Eq. 2: one segmented membership search for all walkers."""
        h = graph.weights[batch.flat_edges].astype(np.float64)
        has_prev, linked = _second_order_bias(graph, batch)
        w = np.full(h.size, 1.0 / self.b, dtype=np.float64)
        w[linked] = 1.0
        w[has_prev & (batch.neighbors_flat == batch.prev[batch.seg_ids])] = 1.0 / self.a
        w[~has_prev] = 1.0
        return w * h

    # ------------------------------------------------------------------ #
    # Simulator cost hooks: the dist(v', u) check is a membership probe.
    # ------------------------------------------------------------------ #
    def probe_cost_words(self, graph: CSRGraph, state: WalkerState) -> int:
        if state.prev_node < 0:
            return 0
        d_prev = graph.degree(state.prev_node)
        return int(np.ceil(np.log2(d_prev + 2)))

    def scan_cost_words(self, graph: CSRGraph, state: WalkerState) -> int:
        if state.prev_node < 0:
            return 0
        return graph.degree(state.prev_node)

    def probe_cost_words_batch(self, graph: CSRGraph, batch: BatchStepContext) -> np.ndarray:
        prev = batch.prev
        d_prev = _prev_degrees(graph, prev)
        words = np.ceil(np.log2(d_prev + 2)).astype(np.int64)
        return np.where(prev < 0, 0, words)

    def scan_cost_words_batch(self, graph: CSRGraph, batch: BatchStepContext) -> np.ndarray:
        return _prev_degrees(graph, batch.prev)

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info.update({"a": self.a, "b": self.b})
        return info


class UnweightedNode2VecSpec(Node2VecSpec):
    """Node2Vec with the property weights ignored (``h = 1`` for every edge).

    This is the paper's *unweighted Node2Vec* configuration: because no
    edge-indexed data reaches the return value, the maximum transition weight
    is the compile-time constant ``max(1, 1/a, 1/b)`` — the PER_KERNEL case of
    Flexi-Compiler, and the only dynamic configuration NextDoor supports
    natively.
    """

    name = "node2vec_unweighted"

    # ------------------------------------------------------------------ #
    # User code analysed by Flexi-Compiler: note no graph.weights[edge] read.
    # ------------------------------------------------------------------ #
    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        post = graph.indices[edge]
        if state.prev_node < 0:
            return 1.0
        if post == state.prev_node:
            return 1.0 / self.a
        if not graph.has_edge(state.prev_node, post):
            return 1.0 / self.b
        return 1.0

    def transition_weights(self, graph: CSRGraph, state: WalkerState) -> np.ndarray:
        neighbors = graph.neighbors(state.current_node)
        if state.prev_node < 0:
            return np.ones(neighbors.size, dtype=np.float64)
        prev_neighbors = graph.neighbors(state.prev_node)
        w = np.full(neighbors.size, 1.0 / self.b, dtype=np.float64)
        if prev_neighbors.size:
            pos = np.searchsorted(prev_neighbors, neighbors)
            pos = np.clip(pos, 0, prev_neighbors.size - 1)
            linked = prev_neighbors[pos] == neighbors
            w[linked] = 1.0
        w[neighbors == state.prev_node] = 1.0 / self.a
        return w

    def transition_weights_batch(self, graph: CSRGraph, batch: BatchStepContext) -> np.ndarray:
        has_prev, linked = _second_order_bias(graph, batch)
        w = np.full(batch.neighbors_flat.size, 1.0 / self.b, dtype=np.float64)
        w[linked] = 1.0
        w[has_prev & (batch.neighbors_flat == batch.prev[batch.seg_ids])] = 1.0 / self.a
        w[~has_prev] = 1.0
        return w
