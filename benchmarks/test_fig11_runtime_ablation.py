"""Benchmark: Fig. 11 — ablation of the runtime selection component."""

from __future__ import annotations

from bench_helpers import run_once

from repro.bench.config import ExperimentConfig
from repro.bench.experiments import fig11_runtime_ablation as experiment


def test_fig11_runtime_ablation(benchmark):
    config = ExperimentConfig(num_queries=64, walk_length=8, datasets=("YT", "EU"))
    result = run_once(benchmark, experiment, config)
    for row in result["rows"]:
        adaptive = float(row["FlexiWalker"])
        ervs_only = float(row["eRVS-only"])
        erjs_only = float(row["eRJS-only"])
        # The adaptive runtime never tracks the *worse* fixed kernel.
        assert adaptive <= max(ervs_only, erjs_only) * 1.05
    # Under the most skewed weights, the eRJS-only configuration collapses
    # relative to eRVS-only (the failure mode adaptation protects against).
    skewed = [r for r in result["rows"] if r["weights"] == "alpha=1"]
    assert all(float(r["eRJS-only"]) > float(r["eRVS-only"]) for r in skewed)
