"""FlowWalker (Mei et al., VLDB 2024): the state-of-the-art GPU dynamic-walk system.

FlowWalker executes every walk step with warp-parallel weighted **reservoir
sampling** over prefix sums.  It keeps no per-node auxiliary structures, which
is why it is the strongest prior GPU system for dynamic walks and the
reference baseline of the paper's ablations.  Its remaining costs — the
prefix-sum pass and one random number per neighbour — are exactly what eRVS
removes.
"""

from __future__ import annotations

from repro.baselines.base import BaselineSystem
from repro.gpusim.device import A6000
from repro.gpusim.memory import MemoryModel
from repro.sampling.reservoir import ReservoirSampler
from repro.walks.spec import WalkSpec


def _sampler(spec: WalkSpec) -> ReservoirSampler:
    return ReservoirSampler()


def make_flowwalker() -> BaselineSystem:
    """Build the FlowWalker baseline model."""
    return BaselineSystem(
        name="FlowWalker",
        platform="gpu",
        device=A6000,
        sampler_factory=_sampler,
        description="GPU dynamic-walk framework with parallel weighted reservoir sampling",
        # Graph in CSR plus a per-query walker/result slot; no auxiliary
        # per-edge structures, so it fits everywhere the graph itself fits.
        memory_model=MemoryModel(graph_overhead=1.0, per_query_bytes=96),
        scheduling="dynamic",
    )
