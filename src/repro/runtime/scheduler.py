"""Dynamic query scheduling (Section 5.3).

FlexiWalker keeps all pending walk queries behind a single global counter:
whenever a processing unit finishes a query it atomically increments the
counter and uses the old value to index the array of start nodes.  The same
mechanism is reproduced here; the executor prices each fetch as one global
atomic operation, and the timing consequences of dynamic vs. static
assignment are modelled by :class:`~repro.gpusim.executor.KernelExecutor`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.counters import CostCounters
from repro.walks.state import WalkQuery


class DynamicQueryQueue:
    """Global-counter work queue over a batch of walk queries.

    The batch is usually fixed at construction (one kernel launch), but the
    session layer (:mod:`repro.service`) also enqueues incrementally through
    :meth:`extend` — the hardware analogue is the host appending to the
    query array and bumping its length *before* publishing the new bound to
    the device, so already-running fetch loops simply observe more work.
    """

    def __init__(self, queries: list[WalkQuery] | None = None) -> None:
        self._queries = list(queries) if queries is not None else []
        self._counter = 0
        self.atomic_ops = 0

    def extend(self, queries: list[WalkQuery]) -> None:
        """Append queries to the tail of the queue (incremental enqueue).

        Appending never reorders or re-issues earlier queries: the global
        counter is untouched, so consumers keep fetching in submission
        order.
        """
        self._queries.extend(queries)

    def __len__(self) -> int:
        return len(self._queries)

    @property
    def remaining(self) -> int:
        return max(0, len(self._queries) - self._counter)

    @property
    def exhausted(self) -> bool:
        return self._counter >= len(self._queries)

    def fetch(self, counters: CostCounters | None = None) -> WalkQuery | None:
        """Atomically claim the next query, or ``None`` when the queue is empty.

        Each successful or failed claim costs one atomic increment, charged to
        ``counters`` when provided (and always tallied on the queue itself).
        """
        self.atomic_ops += 1
        if counters is not None:
            counters.atomic_ops += 1
        if self._counter >= len(self._queries):
            return None
        query = self._queries[self._counter]
        self._counter += 1
        return query

    def fetch_batch(self, max_count: int, counters: CostCounters | None = None) -> list[WalkQuery]:
        """Atomically claim up to ``max_count`` queries in submission order.

        The batched engine's frontier launch: every claimed query still costs
        one atomic increment (the global counter is bumped once per query on
        the hardware, whether the claims happen staggered or back to back),
        so the accounting matches ``max_count`` scalar :meth:`fetch` calls.
        """
        if max_count < 0:
            raise SimulationError("cannot fetch a negative number of queries")
        count = min(int(max_count), self.remaining)
        self.atomic_ops += count
        if counters is not None:
            counters.atomic_ops += count
        claimed = self._queries[self._counter:self._counter + count]
        self._counter += count
        return list(claimed)

    def reset(self) -> None:
        """Rewind the queue (used when re-running the same batch)."""
        self._counter = 0
        self.atomic_ops = 0

    def drain(self) -> list[WalkQuery]:
        """Fetch every remaining query (convenience for tests)."""
        out: list[WalkQuery] = []
        while True:
            query = self.fetch()
            if query is None:
                return out
            out.append(query)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DynamicQueryQueue({self.remaining}/{len(self._queries)} remaining)"


def split_for_devices(
    queries: list[WalkQuery],
    partitions: list[np.ndarray],
) -> list[list[WalkQuery]]:
    """Materialise per-device query batches from partition index arrays.

    The multi-device driver partitions *indices* (cheap numpy work in
    :func:`repro.gpusim.multigpu.partition_queries`) and this helper turns
    them into the per-device query lists each device's
    :class:`DynamicQueryQueue` is built from.  It also enforces the
    scheduling-layer invariant the parity guarantee rests on: the partitions
    must assign every query index exactly once — a dropped query would
    silently shorten the result set, a duplicated one would double-consume
    its random stream.
    """
    assigned = np.concatenate([np.asarray(p, dtype=np.int64) for p in partitions]) \
        if partitions else np.zeros(0, dtype=np.int64)
    if assigned.size != len(queries) or not np.array_equal(
        np.sort(assigned), np.arange(len(queries), dtype=np.int64)
    ):
        raise SimulationError(
            "device partitions must assign every query index exactly once "
            f"(got {assigned.size} assignments for {len(queries)} queries)"
        )
    return [[queries[int(i)] for i in part] for part in partitions]


def validate_queries(queries: list[WalkQuery], num_nodes: int) -> None:
    """Sanity-check a query batch against the target graph.

    Query ids must be unique within a batch: each id owns one random stream,
    and two walks sharing a stream would consume it in execution-order —
    making the result depend on scheduling instead of only on the seed (and
    silently breaking the scalar/batched parity guarantee).

    Runs on every submit and every engine run, so both checks are
    vectorised (a single pass to extract the fields, then numpy for the
    range test and the sort-based duplicate detection) — the per-query
    Python loop with a growing ``set`` dominated large-batch submit cost.
    Error behaviour is unchanged: the reported query is the first one, in
    submission order, that fails either check (range checked before
    duplication at the same index, exactly like the old loop).
    """
    n = len(queries)
    if n == 0:
        return
    starts = np.fromiter((q.start_node for q in queries), dtype=np.int64, count=n)
    out_of_range = (starts < 0) | (starts >= num_nodes)
    first_bad = int(np.argmax(out_of_range)) if out_of_range.any() else n

    ids = np.fromiter((q.query_id for q in queries), dtype=np.int64, count=n)
    first_dup = n
    sorted_ids = np.sort(ids)
    if (sorted_ids[1:] == sorted_ids[:-1]).any():
        # Duplicates exist (np.unique-style sorted-neighbour test); locate
        # the offender only on this error path.  A stable sort keeps equal
        # ids in submission order, so every element equal to its sorted
        # predecessor is a *repeat* of an earlier query; the earliest such
        # submission index is where the old loop raised.
        order = np.argsort(ids, kind="stable")
        by_order = ids[order]
        repeats = order[1:][by_order[1:] == by_order[:-1]]
        first_dup = int(repeats.min())

    if first_bad <= first_dup and first_bad < n:
        query = queries[first_bad]
        raise SimulationError(
            f"query {query.query_id} starts at node {query.start_node}, "
            f"which is outside the graph (num_nodes={num_nodes})"
        )
    if first_dup < n:
        query = queries[first_dup]
        raise SimulationError(
            f"duplicate query_id {query.query_id}: ids must be unique within "
            "a batch (each id owns one random stream)"
        )
