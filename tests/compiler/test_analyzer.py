"""Tests for the Flexi-Compiler code analyser (dependency checker + flag allocator)."""

from __future__ import annotations

import pytest

from repro.compiler.analyzer import analyze_get_weight
from repro.compiler.flags import BoundGranularity
from repro.graph.csr import CSRGraph
from repro.walks.metapath import MetaPathSpec
from repro.walks.node2vec import Node2VecSpec, UnweightedNode2VecSpec
from repro.walks.second_order_pr import SecondOrderPRSpec
from repro.walks.spec import UniformWalkSpec, WalkSpec
from repro.walks.state import WalkerState


class TestBuiltinWorkloads:
    def test_weighted_node2vec_is_per_step(self):
        analysis = analyze_get_weight(Node2VecSpec())
        assert analysis.supported
        assert analysis.granularity is BoundGranularity.PER_STEP
        assert "h_e" in analysis.edge_indexed_names
        assert analysis.source_array_for("h_e") == "weights"

    def test_unweighted_node2vec_is_per_kernel(self):
        analysis = analyze_get_weight(UnweightedNode2VecSpec())
        assert analysis.supported
        assert analysis.granularity is BoundGranularity.PER_KERNEL

    def test_metapath_reads_weights_and_labels(self):
        analysis = analyze_get_weight(MetaPathSpec())
        assert analysis.supported
        sources = {v.source_array for v in analysis.edge_indexed}
        assert "weights" in sources
        assert "labels" in sources

    def test_second_order_pr_is_per_step(self):
        analysis = analyze_get_weight(SecondOrderPRSpec())
        assert analysis.supported
        assert analysis.granularity is BoundGranularity.PER_STEP

    def test_return_expressions_collected_in_source_order(self):
        analysis = analyze_get_weight(Node2VecSpec())
        # Four return branches: first-step, return-to-prev, unlinked, linked.
        assert len(analysis.return_expressions) == 4
        assert len(analysis.return_dependencies) == 4

    def test_condition_only_variables_do_not_force_fallback(self):
        # `post = graph.indices[edge]` only appears in conditions; the
        # analyser must keep the workload supported.
        analysis = analyze_get_weight(Node2VecSpec())
        assert analysis.supported

    def test_argument_names_recorded(self):
        analysis = analyze_get_weight(Node2VecSpec())
        assert analysis.argument_names == ("self", "graph", "state", "edge")


class _LoopSpec(WalkSpec):
    """Unsupported: a data-dependent loop inside get_weight."""

    name = "loop"

    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        h_e = graph.weights[edge]
        total = 0.0
        while total < h_e:
            total += 1.0
        return total


class _RecursiveSpec(WalkSpec):
    """Unsupported: recursion."""

    name = "recursive"

    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        if edge == 0:
            return 1.0
        return self.get_weight(graph, state, edge - 1)


class _WarpIntrinsicSpec(WalkSpec):
    """Unsupported: inter-thread communication in user code (Section 5.2)."""

    name = "warpy"

    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        h_e = graph.weights[edge]
        self.ballot_sync(h_e)
        return h_e

    def ballot_sync(self, value: float) -> float:  # pragma: no cover - helper
        return value


class _IndexReturnSpec(WalkSpec):
    """Unsupported bound: the return value is the neighbour id itself."""

    name = "index_return"

    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        post = graph.indices[edge]
        return float(post)


class _NoReturnValueSpec(WalkSpec):
    """Degenerate user code with no return expression."""

    name = "no_return"

    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        h_e = graph.weights[edge]
        return None  # type: ignore[return-value]


class TestUnsupportedConstructs:
    def test_loop_triggers_fallback(self):
        analysis = analyze_get_weight(_LoopSpec())
        assert not analysis.supported
        assert any("loop" in w for w in analysis.warnings)

    def test_recursion_triggers_fallback(self):
        analysis = analyze_get_weight(_RecursiveSpec())
        assert not analysis.supported
        assert any("recursive" in w for w in analysis.warnings)

    def test_warp_intrinsics_trigger_fallback(self):
        analysis = analyze_get_weight(_WarpIntrinsicSpec())
        assert not analysis.supported
        assert any("intrinsic" in w for w in analysis.warnings)

    def test_index_based_return_triggers_fallback(self):
        analysis = analyze_get_weight(_IndexReturnSpec())
        assert not analysis.supported
        assert any("non-aggregatable" in w for w in analysis.warnings)

    def test_supported_workloads_have_no_warnings(self):
        assert analyze_get_weight(UniformWalkSpec()).warnings == []
