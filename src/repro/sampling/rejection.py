"""Baseline rejection sampling (RJS), the strategy of NextDoor.

Each trial draws a 2-D coordinate ``(x, y)``: ``x`` picks a candidate
neighbour uniformly and the candidate is accepted when ``y`` — drawn from
``[0, max w̃]`` — falls under its transition weight (Fig. 2d).  The baseline
pays for a **max reduction over every transition weight** before it can start
drawing, which for dynamic walks means computing every weight anyway; this is
exactly the cost eRJS removes.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import Sampler, StepContext, gather_transition_weights
from repro.sampling.batch import (
    BatchStepContext,
    local_positions,
    segment_first_true,
    segment_ids,
    segment_max,
    segment_offsets,
)

#: Size of the vectorised trial batches drawn at once (purely an
#: implementation detail; the trial count recorded in the counters is exact).
_TRIAL_BATCH = 16


def run_rejection_trials(
    ctx: StepContext,
    weights: np.ndarray,
    bound: float,
    max_trials: int,
) -> tuple[int | None, int]:
    """Run accept/reject trials against ``weights`` with proposal bound ``bound``.

    Returns ``(accepted index or None, number of trials performed)``.  The
    per-trial cost — two random numbers, one uncoalesced weight access, one
    dynamic-weight evaluation plus whatever side data that evaluation touches
    (``spec.probe_cost_words``, e.g. the dist(v', u) membership probe of
    second-order workloads) — is accounted here so both the baseline kernel
    and eRJS share the exact same trial pricing.
    """
    degree = int(weights.size)
    if degree == 0 or bound <= 0.0:
        return None, 0
    probe_words = 1 + ctx.spec.probe_cost_words(ctx.graph, ctx.state)
    trials_done = 0
    while trials_done < max_trials:
        batch = min(_TRIAL_BATCH, max_trials - trials_done)
        xs = ctx.rng.integers(0, degree, size=batch)
        ys = np.asarray(ctx.rng.uniform(batch)) * bound
        accepted = np.nonzero(ys <= weights[xs])[0]
        if accepted.size:
            used = int(accepted[0]) + 1
            trials_done += used
            ctx.counters.rng_draws += 2 * used
            ctx.counters.random_accesses += probe_words * used
            ctx.counters.weight_computations += used
            ctx.counters.rejection_trials += used
            return int(xs[accepted[0]]), trials_done
        trials_done += batch
        ctx.counters.rng_draws += 2 * batch
        ctx.counters.random_accesses += probe_words * batch
        ctx.counters.weight_computations += batch
        ctx.counters.rejection_trials += batch
    return None, trials_done


def run_rejection_trials_batch(
    batch: BatchStepContext,
    idx: np.ndarray,
    weights_flat: np.ndarray,
    bounds: np.ndarray,
    max_trials: np.ndarray,
) -> np.ndarray:
    """Accept/reject trials for many walkers at once.

    The batched twin of :func:`run_rejection_trials`: per round every still
    undecided walker draws one block of candidate/acceptance uniforms from
    its own stream (the same counters the scalar loop would consume, so the
    realised trials are identical), and the round's acceptance test runs as
    one vectorised comparison across all of them.

    Parameters
    ----------
    idx:
        Batch-local indices of the participating walkers.
    weights_flat / bounds / max_trials:
        The flattened frontier weights, plus per-walker proposal bounds and
        trial budgets parallel to ``idx``.

    Returns the accepted candidate index *within each walker's neighbour
    list* (``-1`` when the budget was exhausted), charging exactly the trial
    costs the scalar helper charges.
    """
    choice = np.full(idx.size, -1, dtype=np.int64)
    if idx.size == 0:
        return choice
    degrees = batch.degrees[idx]
    probe_words = 1 + batch.spec.probe_cost_words_batch(batch.graph, batch)[idx]
    offsets = batch.offsets[:-1][idx]
    done = np.zeros(idx.size, dtype=np.int64)
    active = np.nonzero((degrees > 0) & (bounds > 0))[0]
    while active.size:
        block = np.minimum(_TRIAL_BATCH, max_trials[active] - done[active])
        runnable = block > 0
        active = active[runnable]
        block = block[runnable]
        if active.size == 0:
            break
        # One contiguous counter block of 2·b draws per walker: the first b
        # feed the candidate integers, the rest the acceptance uniforms —
        # the exact consumption order of the scalar loop.
        u = batch.rng.subset(idx[active]).uniform_flat(2 * block)
        local = local_positions(2 * block)
        seg2 = segment_ids(2 * block)
        is_candidate = local < block[seg2]
        seg = segment_ids(block)
        xs = np.floor(u[is_candidate] * degrees[active][seg]).astype(np.int64)
        ys = u[~is_candidate] * bounds[active][seg]
        hit = ys <= weights_flat[offsets[active][seg] + xs]
        any_hit, first = segment_first_true(hit, block)

        used = np.where(any_hit, first + 1, block)
        slots = idx[active]
        batch.charge("rng_draws", 2 * used, slots)
        batch.charge("random_accesses", probe_words[active] * used, slots)
        batch.charge("weight_computations", used, slots)
        batch.charge("rejection_trials", used, slots)
        done[active] += used

        if any_hit.any():
            block_offsets = segment_offsets(block)
            winners = xs[block_offsets[:-1] + first]
            choice[active[any_hit]] = winners[any_hit]
        active = active[~any_hit]
    return choice


class RejectionSampler(Sampler):
    """Max-reduce + accept/reject trials (NextDoor's strategy, Fig. 2d)."""

    name = "RJS"
    processing_unit = "thread"

    def __init__(self, max_trial_factor: int = 16, min_trials: int = 64) -> None:
        self.max_trial_factor = int(max_trial_factor)
        self.min_trials = int(min_trials)

    def sample(self, ctx: StepContext) -> int | None:
        if not self._check_nonempty(ctx):
            return None
        # The baseline must compute every transition weight to find the max.
        # Rejection-sampling kernels are thread-per-walker (Section 5.2), so
        # this scan is a serial, uncoalesced sweep — the "heavy weight max
        # reduction" the paper blames for NextDoor's weighted-workload
        # collapse and that eRJS's bound estimation removes.
        weights = gather_transition_weights(ctx, coalesced=False)
        degree = weights.size
        warp = ctx.warp()
        bound = warp.reduce_max(weights)
        if bound <= 0.0:
            return None

        max_trials = max(self.min_trials, self.max_trial_factor * degree)
        choice, _ = run_rejection_trials(ctx, weights, bound, max_trials)
        if choice is None:
            # Extremely unlucky trial budget exhaustion: finish the step with
            # a direct inversion over the already-computed weights so the
            # walk still advances from the correct distribution.
            total = float(weights.sum())
            if total <= 0.0:
                return None
            cdf = warp.prefix_sum(weights)
            u = ctx.rng.uniform()
            ctx.counters.rng_draws += 1
            choice = min(int(np.searchsorted(cdf, u * total)), degree - 1)
        return int(ctx.neighbors()[choice])

    # ------------------------------------------------------------------ #
    def _sample_batch_nonempty(self, batch: BatchStepContext, out: np.ndarray) -> np.ndarray:
        """Frontier-wide baseline RJS: vectorised max reduction + trials."""
        degrees = batch.degrees
        weights = batch.gather_weights(coalesced=False)
        bounds = segment_max(weights, degrees)
        batch.charge("reduction_elements", degrees)
        alive = np.nonzero(bounds > 0)[0]
        if alive.size == 0:
            return out

        max_trials = np.maximum(self.min_trials, self.max_trial_factor * degrees)
        choice = np.full(batch.size, -1, dtype=np.int64)
        choice[alive] = run_rejection_trials_batch(
            batch, alive, weights, bounds[alive], max_trials[alive]
        )
        # Trial-budget exhaustion: finish with a direct inversion per walker,
        # replaying the scalar fallback on the same weight slice and stream.
        for i in alive[choice[alive] < 0]:
            lo, hi = int(batch.offsets[i]), int(batch.offsets[i + 1])
            wslice = weights[lo:hi]
            total = float(wslice.sum())
            if total <= 0.0:
                continue
            degree = hi - lo
            cdf = np.cumsum(wslice)
            batch.charge("prefix_sum_elements", degree, np.array([i]))
            u = batch.stream(i).uniform()
            batch.charge("rng_draws", 1, np.array([i]))
            choice[i] = min(int(np.searchsorted(cdf, u * total)), degree - 1)
        picked = np.nonzero(choice >= 0)[0]
        out[picked] = batch.neighbors_flat[batch.offsets[:-1][picked] + choice[picked]]
        return out
