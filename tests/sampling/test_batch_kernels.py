"""Unit tests for the batched sampling infrastructure.

The parity suite (tests/runtime/test_execution_parity.py) checks the
end-to-end equivalence; these tests pin down the building blocks — segment
primitives, vectorised stream draws, the counter batch and the scalar
fallback of ``sample_batch``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.counters import CostCounters, CounterBatch
from repro.gpusim.device import A6000
from repro.rng.streams import BatchStreams, CountingStream, StreamPool
from repro.sampling.base import Sampler, all_weights_zero, is_dead_end
from repro.sampling.batch import (
    local_positions,
    segment_any_positive,
    segment_argmax_first,
    segment_bisect,
    segment_cummax,
    segment_first_true,
    segment_max,
    segment_offsets,
)


class TestSegmentPrimitives:
    def test_offsets_and_ids(self):
        lengths = np.array([2, 0, 3])
        assert segment_offsets(lengths).tolist() == [0, 2, 2, 5]
        assert local_positions(lengths).tolist() == [0, 1, 0, 1, 2]

    def test_segment_max_matches_numpy(self):
        rng = np.random.default_rng(0)
        lengths = rng.integers(1, 9, size=20)
        values = rng.normal(size=int(lengths.sum()))
        offsets = segment_offsets(lengths)
        expected = [values[offsets[i]:offsets[i + 1]].max() for i in range(20)]
        assert np.allclose(segment_max(values, lengths), expected)

    def test_segment_argmax_matches_numpy_tie_breaking(self):
        lengths = np.array([4, 3, 5])
        values = np.array([1.0, 3.0, 3.0, 0.0,
                           -np.inf, -np.inf, -np.inf,
                           2.0, 5.0, 5.0, 5.0, 1.0])
        offsets = segment_offsets(lengths)
        expected = [int(np.argmax(values[offsets[i]:offsets[i + 1]])) for i in range(3)]
        assert segment_argmax_first(values, lengths).tolist() == expected

    def test_segment_cummax_matches_accumulate(self):
        rng = np.random.default_rng(1)
        lengths = rng.integers(1, 12, size=15)
        values = rng.normal(size=int(lengths.sum()))
        values[rng.random(values.size) < 0.2] = -np.inf
        offsets = segment_offsets(lengths)
        expected = np.concatenate([
            np.maximum.accumulate(values[offsets[i]:offsets[i + 1]])
            for i in range(15)
        ])
        assert np.array_equal(segment_cummax(values, lengths), expected)

    def test_segment_first_true(self):
        lengths = np.array([3, 2, 4])
        mask = np.array([False, True, True, False, False, False, False, False, True])
        any_true, first = segment_first_true(mask, lengths)
        assert any_true.tolist() == [True, False, True]
        assert first[0] == 1 and first[2] == 3

    def test_segment_bisect_matches_searchsorted(self):
        rng = np.random.default_rng(2)
        flat = []
        lo, hi, queries, expected = [], [], [], []
        cursor = 0
        for _ in range(30):
            seg = np.sort(rng.integers(0, 50, size=rng.integers(1, 10)))
            q = int(rng.integers(0, 50))
            flat.append(seg)
            lo.append(cursor)
            hi.append(cursor + seg.size)
            queries.append(q)
            expected.append(int(np.searchsorted(seg, q)) + cursor)
            cursor += seg.size
        flat = np.concatenate(flat)
        out = segment_bisect(flat, np.array(lo), np.array(hi), np.array(queries), side="left")
        assert out.tolist() == expected

    def test_segment_any_positive(self):
        lengths = np.array([2, 2, 1])
        values = np.array([0.0, 0.0, 0.0, 1.0, 5.0])
        assert segment_any_positive(values, lengths).tolist() == [False, True, True]


class TestBatchStreams:
    def test_uniform_flat_matches_sequential_draws(self):
        pool_a = StreamPool(seed=9)
        pool_b = StreamPool(seed=9)
        ids = [3, 7, 11, 20]
        counts = np.array([4, 0, 2, 7])
        batched = pool_a.batch(ids).uniform_flat(counts)
        expected = np.concatenate([
            np.atleast_1d(pool_b.stream(i).uniform(int(c))) if c else np.zeros(0)
            for i, c in zip(ids, counts, strict=False)
        ])
        assert np.array_equal(batched, expected)
        # The draw accounting advanced identically too.
        assert pool_a.total_draws == pool_b.total_draws == int(counts.sum())

    def test_draws_resume_where_scalar_draws_stopped(self):
        stream = CountingStream.from_seed(5)
        first = stream.uniform(3)
        batch = BatchStreams([stream])
        second = batch.uniform_flat(np.array([3]))
        reference = CountingStream.from_seed(5).uniform(6)
        assert np.array_equal(np.concatenate([np.atleast_1d(first), second]), reference)

    def test_subset_preserves_stream_identity(self):
        pool = StreamPool(seed=1)
        batch = pool.batch([0, 1, 2])
        sub = batch.subset(np.array([2]))
        assert sub.stream(0) is batch.stream(2)


class TestCounterBatch:
    def test_totals_fold_every_slot(self):
        batch = CounterBatch(3, bytes_per_weight=1)
        batch.coalesced_accesses += np.array([1, 2, 3])
        batch.charge("rng_draws", np.array([0, 2]), 5)
        totals = batch.totals()
        assert totals.coalesced_accesses == 6
        assert totals.rng_draws == 10
        assert totals.bytes_per_weight == 1

    def test_absorb_scalar_counters(self):
        batch = CounterBatch(2)
        scalar = CostCounters(random_accesses=4, atomic_ops=1)
        batch.absorb(1, scalar)
        assert batch.random_accesses.tolist() == [0, 4]
        assert batch.atomic_ops.tolist() == [0, 1]

    def test_lane_times_match_scalar_pricing(self):
        rng = np.random.default_rng(3)
        batch = CounterBatch(5, bytes_per_weight=8)
        for name in CostCounters._COUNT_FIELDS:
            getattr(batch, name)[:] = rng.integers(0, 50, size=5)
        vector = A6000.lane_times_ns(batch)
        for i in range(5):
            scalar = CostCounters(bytes_per_weight=8)
            for name in CostCounters._COUNT_FIELDS:
                setattr(scalar, name, int(getattr(batch, name)[i]))
            assert vector[i] == A6000.lane_time_ns(scalar)


class TestDeadEndHelpers:
    def test_is_dead_end(self, tiny_graph):
        assert not is_dead_end(tiny_graph, 0)

    def test_all_weights_zero(self):
        assert all_weights_zero(np.zeros(4))
        assert all_weights_zero(np.zeros(0))
        assert not all_weights_zero(np.array([0.0, 0.5]))


class TestScalarFallback:
    def test_unported_sampler_runs_in_batched_engine(self, small_graph):
        """A custom sampler without sample_batch must work via the fallback."""
        from repro.runtime.engine import WalkEngine
        from repro.runtime.selector import FixedSelector
        from repro.sampling.base import StepContext, gather_transition_weights
        from repro.walks.spec import UniformWalkSpec
        from repro.walks.state import make_queries

        class FirstNeighborSampler(Sampler):
            name = "first"
            processing_unit = "thread"

            def sample(self, ctx: StepContext):
                if not self._check_nonempty(ctx):
                    return None
                weights = gather_transition_weights(ctx)
                if all_weights_zero(weights):
                    return None
                return int(ctx.neighbors()[0])

        queries = make_queries(small_graph.num_nodes, walk_length=4, num_queries=6)
        results = {}
        for mode in ("scalar", "batched"):
            engine = WalkEngine(
                graph=small_graph, spec=UniformWalkSpec(),
                selector=FixedSelector(FirstNeighborSampler()), execution=mode,
            )
            results[mode] = engine.run(queries)
        assert results["scalar"].paths == results["batched"].paths
        assert (results["scalar"].counters.as_dict()
                == results["batched"].counters.as_dict())
        assert results["batched"].sampler_usage == {"first": 24}
