"""Energy model (Fig. 16).

The paper reports joules-per-query and maximum watts per framework.  Energy
in this reproduction is derived from the simulated kernel time and the
device's power envelope: average draw is interpolated between idle and peak
power by the kernel's lane utilisation, and max watts is the peak draw scaled
by how much of the device the kernel actually occupies.  The absolute values
are synthetic, but the ranking — GPU frameworks draw more power yet win on
joules/query because they finish far sooner — is reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.gpusim.device import DeviceSpec
from repro.gpusim.executor import KernelResult


@dataclass(frozen=True)
class EnergyReport:
    """Energy outcome of one workload run."""

    total_joules: float
    joules_per_query: float
    max_watts: float
    average_watts: float
    time_s: float


class EnergyModel:
    """Converts simulated kernel results into energy figures."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device

    def report(self, result: KernelResult, num_queries: int | None = None) -> EnergyReport:
        """Compute the energy report for one kernel result."""
        queries = result.num_queries if num_queries is None else int(num_queries)
        if queries < 0:
            raise SimulationError("query count must be non-negative")
        utilization = result.utilization
        avg_watts = self.device.idle_watts + utilization * (
            self.device.peak_watts - self.device.idle_watts
        )
        # A kernel that only fills part of the device does not push the
        # package to its TDP; scale the reported max draw by occupancy.
        occupancy = min(1.0, result.lane_times_ns.size / max(self.device.parallel_lanes, 1))
        max_watts = self.device.idle_watts + occupancy * (
            self.device.peak_watts - self.device.idle_watts
        )
        total_joules = avg_watts * result.time_s
        per_query = total_joules / queries if queries else 0.0
        return EnergyReport(
            total_joules=total_joules,
            joules_per_query=per_query,
            max_watts=max_watts,
            average_watts=avg_watts,
            time_s=result.time_s,
        )
