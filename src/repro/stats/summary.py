"""Aggregate statistics used when reporting experiment results."""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.errors import BenchmarkError


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (the paper's headline aggregation)."""
    values = [float(v) for v in values]
    if not values:
        raise BenchmarkError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise BenchmarkError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup(baseline_time: float, new_time: float) -> float:
    """``baseline / new`` — how many times faster the new system is."""
    if new_time <= 0:
        raise BenchmarkError("cannot compute a speedup over a non-positive time")
    return baseline_time / new_time


def normalize_to(values: dict[str, float], reference: str) -> dict[str, float]:
    """Normalise a name → time mapping to one entry (Fig. 3-style plots)."""
    if reference not in values:
        raise BenchmarkError(f"reference {reference!r} missing from results")
    ref = values[reference]
    if ref <= 0:
        raise BenchmarkError("reference time must be positive")
    return {name: value / ref for name, value in values.items()}
