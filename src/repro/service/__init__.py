"""Session-based service API: compile → plan → execute, decoupled.

The serving surface of the reproduction.  Where the legacy
:class:`~repro.core.flexiwalker.FlexiWalker` facade re-resolves everything on
every one-shot ``run()``, this package keeps a workload *hot*:

* :class:`WalkService` — owns the shared immutable state (graph, compiled
  workloads, profiles, hint tables, transition caches, device fleet);
* :class:`ExecutionPlan` / :func:`negotiate_plan` — backend selection as an
  explicit, auditable negotiation against declared
  :class:`ServiceCapabilities` instead of scattered constructor flags;
* :class:`WalkSession` — per-tenant execution: incremental
  :meth:`~WalkSession.submit` (returning :class:`QueryTicket`\\ s), streaming
  :meth:`~WalkSession.stream` (yielding :class:`WalkChunk`\\ s as walks
  finish) and exact :meth:`~WalkSession.collect`.

``FlexiWalker.run`` is now a thin deprecated shim over a single-session
service; the parity suite keeps the two bit-identical.
"""

from repro.service.plan import (
    BACKENDS,
    DeviceFleet,
    ExecutionPlan,
    ServiceCapabilities,
    declare_capabilities,
    negotiate_plan,
)
from repro.service.service import WalkService, build_selector
from repro.service.session import QueryTicket, WalkChunk, WalkSession

__all__ = [
    "BACKENDS",
    "DeviceFleet",
    "ExecutionPlan",
    "ServiceCapabilities",
    "declare_capabilities",
    "negotiate_plan",
    "WalkService",
    "build_selector",
    "QueryTicket",
    "WalkChunk",
    "WalkSession",
]
