"""Shared fixtures for the test suite.

Most tests operate on tiny, hand-checkable graphs so distribution and cost
assertions stay exact; a couple of fixtures expose small generated graphs for
integration-level checks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.builders import from_edge_list
from repro.graph.csr import CSRGraph
from repro.graph.generators import barabasi_albert_graph
from repro.graph.labels import random_edge_labels
from repro.graph.weights import uniform_weights
from repro.gpusim.counters import CostCounters
from repro.rng.streams import CountingStream
from repro.sampling.base import StepContext
from repro.walks.node2vec import Node2VecSpec
from repro.walks.spec import UniformWalkSpec
from repro.walks.state import WalkerState, WalkQuery


@pytest.fixture
def tiny_graph() -> CSRGraph:
    """The example graph of Fig. 2a: node 0 with neighbours 1-4, weights 3,2,4,1.

    Extra edges give every node an out-edge so walks never dead-end, and give
    node 0 a previous-node candidate for second-order workloads.
    """
    edges = [
        (0, 1), (0, 2), (0, 3), (0, 4),
        (1, 0), (2, 0), (3, 0), (4, 0),
        (1, 2), (2, 3), (3, 4), (4, 1),
    ]
    weights = [3.0, 2.0, 4.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]
    labels = [0, 1, 2, 3, 0, 1, 2, 3, 4, 0, 1, 2]
    return from_edge_list(edges, num_nodes=5, weights=weights, labels=labels, name="fig2a")


@pytest.fixture
def small_graph() -> CSRGraph:
    """A small but non-trivial scale-free graph with uniform [1, 5) weights."""
    graph = barabasi_albert_graph(60, 3, seed=3, name="small")
    graph = graph.with_weights(uniform_weights(graph, seed=3))
    return graph.with_labels(random_edge_labels(graph, num_labels=5, seed=3))


@pytest.fixture
def rng_stream() -> CountingStream:
    return CountingStream.from_seed(1234)


@pytest.fixture
def uniform_spec() -> UniformWalkSpec:
    return UniformWalkSpec()


@pytest.fixture
def node2vec_spec() -> Node2VecSpec:
    return Node2VecSpec(a=2.0, b=0.5)


def make_state(graph: CSRGraph, node: int, prev: int | None = None, step: int = 0) -> WalkerState:
    """Build a walker state sitting on ``node`` with an optional previous node."""
    query = WalkQuery(query_id=0, start_node=node, max_length=10)
    state = WalkerState.start(query)
    if prev is not None:
        state.prev_node = prev
        state.step = step if step else 1
    return state


def make_ctx(
    graph: CSRGraph,
    spec,
    node: int,
    prev: int | None = None,
    seed: int = 0,
    bound_hint: float | None = None,
    sum_hint: float | None = None,
) -> StepContext:
    """Build a ready-to-sample step context for tests."""
    return StepContext(
        graph=graph,
        state=make_state(graph, node, prev),
        spec=spec,
        rng=CountingStream.from_seed(seed),
        counters=CostCounters(),
        bound_hint=bound_hint,
        sum_hint=sum_hint,
    )


@pytest.fixture
def ctx_factory():
    """Expose the context builder to tests as a fixture."""
    return make_ctx


@pytest.fixture
def state_factory():
    return make_state
