"""Benchmark: continuous-batching serving smoke — the load-generator example.

Nightly companion of the ``serving`` entry in ``BENCH_engine.json``: drives
``examples/load_generator.py`` (many tenant-tagged sessions fused into one
shared frontier by the :class:`~repro.service.ServiceScheduler`) at a small
session count and checks the serving-side invariants — every submitted walk
completes, the superstep-clock latency percentiles are ordered and the
weighted tenants all make progress.  The full three-scale sweep with the
gated p99 ceiling runs through ``scripts/bench_engine.py``.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

try:  # pragma: no cover - trivial import guard
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

EXAMPLE = Path(__file__).resolve().parent.parent / "examples" / "load_generator.py"

SESSIONS = 16
QUERIES_PER_SESSION = 6
WALK_LENGTH = 10


def load_generator():
    spec = importlib.util.spec_from_file_location("serving_load_generator", EXAMPLE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_serving_load_smoke(benchmark):
    generator = load_generator()
    metrics = benchmark.pedantic(
        generator.run_load,
        args=(SESSIONS,),
        kwargs={
            "queries_per_session": QUERIES_PER_SESSION,
            "walk_length": WALK_LENGTH,
            "max_inflight_walkers": 64,
        },
        rounds=1,
        iterations=1,
    )
    # Every submitted walk must complete and be accounted to some tenant.
    assert metrics["walks"] == SESSIONS * QUERIES_PER_SESSION
    assert sum(t["completed"] for t in metrics["tenants"].values()) == metrics["walks"]
    # Latency is measured on the shared superstep clock: percentiles are
    # ordered, positive and bounded by the run's total superstep count.
    assert 0 < metrics["p50_latency_ticks"] <= metrics["p99_latency_ticks"]
    assert metrics["p99_latency_ticks"] <= metrics["supersteps"]
    assert metrics["p99_queue_delay_ticks"] >= 0
    assert metrics["aggregate_steps_per_s"] > 0
    # The tenant mix spans weights; every registered tenant made progress
    # (WRR admission never starves a nonzero-weight tenant).
    for tenant in metrics["tenants"].values():
        if tenant["sessions"] > 0:
            assert tenant["completed"] > 0
            assert tenant["steps"] > 0
    print()
    print(
        f"serving smoke: {metrics['sessions']} sessions, "
        f"{metrics['walks']} walks over {metrics['supersteps']} supersteps, "
        f"p50/p99 latency {metrics['p50_latency_ticks']:.0f}/"
        f"{metrics['p99_latency_ticks']:.0f} ticks, "
        f"{metrics['aggregate_steps_per_s']:,.0f} steps/s"
    )
