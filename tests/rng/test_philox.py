"""Tests for the counter-based RNG engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng.philox import PhiloxEngine, philox_uniform


class TestPhiloxUniform:
    def test_outputs_in_unit_interval(self):
        values = philox_uniform(42, np.arange(10_000, dtype=np.uint64))
        assert np.all(values >= 0.0)
        assert np.all(values < 1.0)

    def test_deterministic_for_same_key_and_counter(self):
        assert philox_uniform(7, 123) == philox_uniform(7, 123)

    def test_different_counters_give_different_values(self):
        values = philox_uniform(7, np.arange(1000, dtype=np.uint64))
        assert np.unique(values).size > 990

    def test_different_keys_give_different_streams(self):
        a = philox_uniform(1, np.arange(100, dtype=np.uint64))
        b = philox_uniform(2, np.arange(100, dtype=np.uint64))
        assert not np.allclose(a, b)

    def test_mean_and_variance_close_to_uniform(self):
        values = philox_uniform(99, np.arange(200_000, dtype=np.uint64))
        assert abs(values.mean() - 0.5) < 0.01
        assert abs(values.var() - 1.0 / 12.0) < 0.01


class TestPhiloxEngine:
    def test_same_seed_reproduces_sequence(self):
        a = PhiloxEngine(5).uniform(100)
        b = PhiloxEngine(5).uniform(100)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(PhiloxEngine(1).uniform(50), PhiloxEngine(2).uniform(50))

    def test_scalar_uniform_advances_counter(self):
        engine = PhiloxEngine(3)
        first = engine.uniform()
        second = engine.uniform()
        assert first != second
        assert engine.counter == 2

    def test_vector_then_scalar_continues_stream(self):
        a = PhiloxEngine(3)
        b = PhiloxEngine(3)
        combined = list(a.uniform(5)) + [a.uniform()]
        expected = list(b.uniform(6))
        assert combined == pytest.approx(expected)

    def test_split_streams_are_independent_and_reproducible(self):
        root = PhiloxEngine(11)
        child_a = root.split(0)
        child_b = root.split(1)
        again = PhiloxEngine(11).split(0)
        assert np.array_equal(child_a.uniform(20), again.uniform(20))
        assert not np.allclose(PhiloxEngine(11).split(0).uniform(20), child_b.uniform(20))

    def test_split_does_not_disturb_parent(self):
        root = PhiloxEngine(11)
        before = root.counter
        root.split(3)
        assert root.counter == before

    def test_integers_within_range(self):
        engine = PhiloxEngine(8)
        values = engine.integers(2, 9, size=1000)
        assert values.min() >= 2
        assert values.max() < 9

    def test_integers_cover_full_range(self):
        engine = PhiloxEngine(8)
        values = engine.integers(0, 4, size=2000)
        assert set(np.unique(values)) == {0, 1, 2, 3}

    def test_integers_rejects_empty_range(self):
        with pytest.raises(ValueError):
            PhiloxEngine(1).integers(5, 5)

    def test_exponential_is_positive_with_unit_mean(self):
        values = PhiloxEngine(21).exponential(100_000)
        assert np.all(values >= 0)
        assert abs(values.mean() - 1.0) < 0.02

    def test_uniform_shape_tuple(self):
        values = PhiloxEngine(4).uniform((3, 7))
        assert values.shape == (3, 7)
