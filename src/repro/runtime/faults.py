"""Deterministic fault injection and checkpoint/replay recovery.

The fault-tolerance subsystem of the simulated serving stack.  Three ideas
combine to make failure handling *exactly* reproducible:

* **Seeded fault plans** — a :class:`FaultPlan` is an immutable schedule of
  failure events (permanent device failures at a superstep, transient kernel
  faults, interconnect drops on sharded migration lanes) plus a seed that
  drives every probabilistic recovery decision (how many retries a transient
  fault needs).  The same plan against the same run always produces the same
  failure story.
* **Checkpoints are cheap because state is small** — the complete execution
  state of a frontier run is the walker arrays
  (:meth:`~repro.walks.state.WalkerFrontier.snapshot`), the per-walker RNG
  *counter positions* (the streams are counter-based, so no generator state
  beyond an integer per walker exists) and the accounting accumulators.
  :func:`take_checkpoint`/:func:`restore_checkpoint` capture and rewind all
  of it; the modeled copy-out cost is priced through
  :meth:`~repro.gpusim.device.DeviceSpec.checkpoint_time_ns`.
* **Replay is bit-identical, so recovery is silent** — re-executing a
  superstep consumes exactly the same RNG counters and lands exactly the
  same counts in the same slots as the first execution.  After a permanent
  device failure the run restores the last checkpoint and *replays* the lost
  supersteps without re-applying their side effects (folds, stream chunks —
  those from the first execution are still valid because the replay
  regenerates identical values); only the replayed supersteps' simulated
  time lands in the recovery ledger.  Recovered runs therefore produce
  bit-identical paths, counters and per-query base times to a fault-free
  run — only simulated time differs, surfaced as
  ``result.recovery_time_ns`` / ``result.degraded_devices`` /
  ``result.checkpoints_taken``.

Recovery policies:

* **Transient kernel faults** retry the failed superstep with capped
  exponential backoff.  The retry count is drawn deterministically from the
  plan's seed; because re-execution is bit-identical, a retried superstep is
  a pure time penalty (failed executions plus backoff) — no state changes.
  With ``max_retries`` set, exhausting the budget raises
  :class:`~repro.errors.FaultError`.
* **Permanent device failure** restores the last checkpoint and replays.
  The dead device's walkers are re-partitioned onto the survivors (degraded
  mode); a single-device run promotes a standby replacement instead.  An
  implicit cost-free checkpoint of the *initial* state always exists, so
  recovery never depends on ``checkpoint_interval`` being set — the
  interval only bounds how much work a failure can lose.
* **Interconnect drops** resend the coalesced migration batches of the
  dropped walk-step ordinal: one extra latency plus payload per batch into
  the recovery ledger.  Walker records are pure ``(key, counter, position)``
  state, so the resent batch is identical to the dropped one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FaultError, SimulationError
from repro.gpusim.counters import CostCounters
from repro.gpusim.device import DeviceSpec
from repro.walks.state import FrontierSnapshot, WalkerFrontier

#: Default superstep interval between explicit checkpoints (the bench's
#: ``recovery`` entry sweeps around this point; <10% modeled overhead on the
#: reference workloads, the ceiling ``--max-recovery-overhead`` gates).  0
#: disables explicit checkpoints — recovery then always replays from the
#: implicit initial checkpoint.
DEFAULT_CHECKPOINT_INTERVAL = 8

#: Bytes of one checkpointed walker record: current node, previous node,
#: step counter, max length and path-write cursor (5 x int64), the 128-bit
#: Philox key naming the walker's stream, plus its 64-bit counter position.
#: The path prefix itself is not copied — it is reconstructible on the
#: device that wrote it and only the tail cursor must survive.
WALKER_CHECKPOINT_BYTES = 72

#: Capped exponential backoff schedule for transient-fault retries: retry
#: ``i`` waits ``min(BASE * 2**i, CAP)`` nanoseconds before re-launching.
RETRY_BACKOFF_BASE_NS = 1_000.0
RETRY_BACKOFF_CAP_NS = 64_000.0

#: Modeled latency between a device failing and the runtime detecting it
#: (heartbeat miss + fleet membership update), charged once per failure.
FAILURE_DETECTION_NS = 25_000.0


@dataclass(frozen=True)
class DeviceFailure:
    """Permanent failure of one device during superstep ``superstep``.

    The superstep's results on that device are lost; recovery restores the
    last checkpoint and replays.  ``device`` is interpreted modulo the run's
    device count, so one plan applies meaningfully to any fleet size (a
    single-device run always loses device 0 and promotes a replacement).
    """

    superstep: int
    device: int = 0

    def __post_init__(self) -> None:
        if self.superstep < 0:
            raise SimulationError("fault superstep must be non-negative")
        if self.device < 0:
            raise SimulationError("fault device index must be non-negative")


@dataclass(frozen=True)
class TransientFault:
    """A recoverable kernel fault during superstep ``superstep``.

    The superstep's launch fails and is retried (each retry succeeds with
    the plan's ``retry_success_prob``) with capped exponential backoff.  The
    step-synchronous barrier stalls every device until the retry succeeds,
    so the penalty is counted against the whole run.
    """

    superstep: int

    def __post_init__(self) -> None:
        if self.superstep < 0:
            raise SimulationError("fault superstep must be non-negative")


@dataclass(frozen=True)
class InterconnectDrop:
    """Loss of the coalesced migration batches sent at walk-step ``step``.

    Only meaningful for the sharded placement; the dropped batches are
    resent (one extra interconnect latency plus payload each).  A drop at a
    step ordinal with no migrations is a no-op.
    """

    step: int

    def __post_init__(self) -> None:
        if self.step < 0:
            raise SimulationError("fault step ordinal must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable schedule of failures to inject into one run.

    Attributes
    ----------
    seed:
        Drives every probabilistic recovery decision (transient retry
        counts) through its own ``numpy`` generator — independent of the
        walk RNG, so injecting faults can never perturb the walks.
    device_failures / transient_faults / interconnect_drops:
        The failure events (see the event classes).  Multiple events may
        share a superstep; failures of already-failed devices are ignored.
    retry_success_prob:
        Probability that one transient-fault retry succeeds.  Must be
        positive: every transient fault is then recoverable almost surely,
        which is what makes the chaos invariant (“every generated plan
        recovers bit-identically”) satisfiable by construction.
    max_retries:
        Optional cap on retries per transient fault; exhausting it raises
        :class:`~repro.errors.FaultError`.  ``None`` (default) retries
        until success.
    """

    seed: int = 0
    device_failures: tuple[DeviceFailure, ...] = ()
    transient_faults: tuple[TransientFault, ...] = ()
    interconnect_drops: tuple[InterconnectDrop, ...] = ()
    retry_success_prob: float = 0.7
    max_retries: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "device_failures", tuple(self.device_failures))
        object.__setattr__(self, "transient_faults", tuple(self.transient_faults))
        object.__setattr__(self, "interconnect_drops", tuple(self.interconnect_drops))
        if not 0.0 < self.retry_success_prob <= 1.0:
            raise SimulationError(
                "retry_success_prob must be in (0, 1] — a zero success "
                "probability would make every transient fault unrecoverable"
            )
        if self.max_retries is not None and self.max_retries < 1:
            raise SimulationError("max_retries must be at least 1 (or None)")

    @property
    def empty(self) -> bool:
        return not (
            self.device_failures or self.transient_faults or self.interconnect_drops
        )


@dataclass
class RunCheckpoint:
    """One captured restore point of a frontier run.

    ``ordinal`` is the superstep after which the state was captured (-1 for
    the implicit initial checkpoint).  Every field is a private copy, so a
    checkpoint survives any number of restores.
    """

    ordinal: int
    frontier: FrontierSnapshot
    rng: tuple[np.ndarray, np.ndarray]
    per_query_ns: np.ndarray
    counters: CostCounters
    usage: dict[str, int]
    payload_bytes: int
    extra: dict[str, object] = field(default_factory=dict)


def take_checkpoint(
    ordinal: int,
    frontier: WalkerFrontier,
    pool,
    per_query_ns: np.ndarray,
    aggregate: CostCounters,
    usage: dict[str, int],
) -> RunCheckpoint:
    """Capture a restore point covering walker, RNG and accounting state."""
    live = int(frontier.active_indices().size)
    return RunCheckpoint(
        ordinal=ordinal,
        frontier=frontier.snapshot(),
        rng=pool.snapshot_counters(),
        per_query_ns=per_query_ns.copy(),
        counters=aggregate.copy(),
        usage=dict(usage),
        payload_bytes=live * WALKER_CHECKPOINT_BYTES,
    )


def restore_checkpoint(
    cp: RunCheckpoint,
    frontier: WalkerFrontier,
    pool,
    per_query_ns: np.ndarray,
    aggregate: CostCounters,
    usage: dict[str, int],
) -> None:
    """Rewind a run's mutable state to a checkpoint, in place.

    In place matters: the live ``iter_supersteps`` state (and any observers
    holding references) keep seeing the same objects, so a fresh generator
    over the same triple resumes from the restored point.
    """
    frontier.restore(cp.frontier)
    pool.restore_counters(cp.rng)
    per_query_ns[:] = cp.per_query_ns
    for name in CostCounters._COUNT_FIELDS:
        setattr(aggregate, name, getattr(cp.counters, name))
    usage.clear()
    usage.update(cp.usage)


class FaultRuntime:
    """Mutable per-run fault state: pending events, recovery ledger, tally.

    One instance accompanies one run (or one scheduler fusion group).  The
    drivers consult it at every superstep boundary; all recovery time —
    checkpoint copy-outs, retries, backoff, replayed supersteps, resent
    migration batches — accumulates in ``recovery_ns``, kept strictly apart
    from the placement-invariant per-query base times.
    """

    __slots__ = (
        "device",
        "plan",
        "interval",
        "num_devices",
        "recovery_ns",
        "checkpoints_taken",
        "degraded",
        "_rng",
        "_failures",
        "_transients",
        "_drops",
    )

    def __init__(
        self,
        device: DeviceSpec,
        plan: FaultPlan | None = None,
        checkpoint_interval: int = 0,
        num_devices: int = 1,
    ) -> None:
        if checkpoint_interval < 0:
            raise SimulationError("checkpoint_interval must be non-negative")
        self.device = device
        self.plan = plan
        self.interval = int(checkpoint_interval)
        self.num_devices = int(num_devices)
        self.recovery_ns = 0.0
        self.checkpoints_taken = 0
        self.degraded: list[int] = []
        self._rng = np.random.default_rng(plan.seed) if plan is not None else None
        self._failures: dict[int, list[int]] = {}
        self._transients: dict[int, int] = {}
        self._drops: set[int] = set()
        if plan is not None:
            for failure in plan.device_failures:
                self._failures.setdefault(failure.superstep, []).append(failure.device)
            for fault in plan.transient_faults:
                self._transients[fault.superstep] = (
                    self._transients.get(fault.superstep, 0) + 1
                )
            self._drops = {drop.step for drop in plan.interconnect_drops}

    @property
    def active(self) -> bool:
        """Whether the run needs the resilient superstep path at all."""
        return self.interval > 0 or (self.plan is not None and not self.plan.empty)

    def survivors(self) -> list[int]:
        return [d for d in range(self.num_devices) if d not in self.degraded]

    # -- checkpointing -------------------------------------------------- #
    def checkpoint_due(self, ordinal: int) -> bool:
        """Whether an explicit checkpoint follows superstep ``ordinal``."""
        return self.interval > 0 and (ordinal + 1) % self.interval == 0

    def charge_checkpoint(self, payload_bytes: int) -> None:
        self.recovery_ns += self.device.checkpoint_time_ns(payload_bytes)
        self.checkpoints_taken += 1

    # -- transient faults ----------------------------------------------- #
    def charge_transients(self, ordinal: int, superstep_ns: float) -> None:
        """Price the retries of any transient fault scheduled at ``ordinal``.

        The failed launch plus every failed retry wastes one superstep of
        work; each retry first waits its backoff slot.  Retry counts are
        geometric draws from the plan's seeded generator — deterministic,
        and independent of the walk RNG.
        """
        count = self._transients.pop(ordinal, None)
        if not count:
            return
        plan = self.plan
        for _ in range(count):
            retries = int(self._rng.geometric(plan.retry_success_prob))
            if plan.max_retries is not None and retries > plan.max_retries:
                raise FaultError(
                    f"transient fault at superstep {ordinal} still failing "
                    f"after {plan.max_retries} retries"
                )
            backoff = sum(
                min(RETRY_BACKOFF_BASE_NS * 2.0**i, RETRY_BACKOFF_CAP_NS)
                for i in range(retries)
            )
            self.recovery_ns += retries * superstep_ns + backoff

    # -- permanent failures --------------------------------------------- #
    def fail_devices(self, ordinal: int) -> list[int]:
        """Devices newly lost during superstep ``ordinal`` (now degraded).

        Indices are folded modulo the device count; a device can only die
        once (later failures of the same index are ignored, including the
        replacement promoted by a single-device run).
        """
        pending = self._failures.pop(ordinal, None)
        if not pending:
            return []
        dead: list[int] = []
        for device in pending:
            device %= self.num_devices
            if device not in self.degraded and device not in dead:
                dead.append(device)
        self.degraded.extend(dead)
        return dead

    def charge_failure(self, dead: list[int], cp: RunCheckpoint) -> None:
        """Detection latency plus the checkpoint read-back, per failure."""
        self.recovery_ns += FAILURE_DETECTION_NS * len(dead)
        self.recovery_ns += self.device.checkpoint_time_ns(cp.payload_bytes)

    # -- interconnect drops --------------------------------------------- #
    def charge_interconnect_drop(
        self,
        step_ordinal: int,
        src: np.ndarray,
        dst: np.ndarray,
        payload_bytes: int,
    ) -> None:
        """Resend the coalesced migration batches of a dropped step ordinal.

        ``src``/``dst`` are the per-walker migration endpoints logged at
        ``step_ordinal``; each distinct (src, dst) pair was one coalesced
        batch, resent at one interconnect latency plus its payload.
        """
        if step_ordinal not in self._drops:
            return
        self._drops.discard(step_ordinal)
        if src.size == 0:
            return
        batches = np.unique(src * self.num_devices + dst).size
        self.recovery_ns += batches * self.device.interconnect_latency_ns
        self.recovery_ns += (
            src.size * payload_bytes / self.device.interconnect_bytes_per_ns
        )


def resilient_supersteps(
    engine,
    faults: FaultRuntime,
    frontier: WalkerFrontier,
    pool,
    streams,
    per_query_ns: np.ndarray,
    aggregate: CostCounters,
    usage: dict[str, int],
    track_finished: bool = False,
    on_failure=None,
):
    """The fault-tolerant superstep loop: yields ``(ordinal, report, replayed)``.

    Wraps :func:`~repro.runtime.frontier.iter_supersteps` with the full
    recovery protocol: explicit checkpoints every ``faults.interval``
    supersteps (plus the implicit cost-free checkpoint of the initial
    state), transient-fault retries, and restore-and-replay after permanent
    device failures.  ``on_failure(dead_devices)`` runs once per failure
    event, *before* the restore, so drivers re-partition ownership against
    the state the surviving bookkeeping already reflects.

    Replayed supersteps are yielded with ``replayed=True``: their results
    are bit-identical to the first execution (same RNG counters, same
    slots), so consumers must skip their side effects — the fold/observe
    effects applied during the first execution remain valid — and only the
    replayed makespans are charged to the recovery ledger.
    """
    from repro.runtime.frontier import iter_supersteps

    def fresh_gen():
        return iter_supersteps(
            engine,
            frontier,
            streams,
            per_query_ns,
            aggregate,
            usage,
            track_finished=track_finished,
        )

    checkpoint = take_checkpoint(-1, frontier, pool, per_query_ns, aggregate, usage)
    gen = fresh_gen()
    ordinal = 0
    replay_until = -1
    while True:
        try:
            report = next(gen)
        except StopIteration:
            return
        superstep_ns = float(report.step_ns.max()) if report.step_ns.size else 0.0
        replayed = ordinal <= replay_until
        if replayed:
            faults.recovery_ns += superstep_ns
            yield ordinal, report, True
        else:
            yield ordinal, report, False
            faults.charge_transients(ordinal, superstep_ns)
            dead = faults.fail_devices(ordinal)
            if dead:
                if on_failure is not None:
                    on_failure(dead)
                faults.charge_failure(dead, checkpoint)
                restore_checkpoint(
                    checkpoint, frontier, pool, per_query_ns, aggregate, usage
                )
                gen = fresh_gen()
                replay_until = ordinal
                ordinal = checkpoint.ordinal + 1
                continue
        if faults.checkpoint_due(ordinal):
            checkpoint = take_checkpoint(
                ordinal, frontier, pool, per_query_ns, aggregate, usage
            )
            faults.charge_checkpoint(checkpoint.payload_bytes)
        ordinal += 1


def reassign_owners(
    owner: np.ndarray, dead: list[int], survivors: list[int]
) -> None:
    """Round-robin the dead devices' walkers onto the survivors, in place.

    The degraded-mode re-partitioning of the replicated placement.  With no
    survivors (a single-device run, or every device lost) ownership stays —
    the replacement-device policy: a standby takes over the dead device's
    identity and its walkers never move.
    """
    if not survivors:
        return
    pool = np.asarray(survivors, dtype=np.int64)
    for device in dead:
        idx = np.flatnonzero(owner == device)
        if idx.size:
            owner[idx] = pool[np.arange(idx.size) % pool.size]
