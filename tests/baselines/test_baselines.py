"""Tests for the baseline system models."""

from __future__ import annotations

import dataclasses

import pytest

from repro.baselines.base import BaselineSystem
from repro.baselines.registry import (
    BASELINES,
    CPU_BASELINES,
    GPU_BASELINES,
    baseline_names,
    make_baseline,
)
from repro.errors import BenchmarkError
from repro.graph.datasets import DATASETS
from repro.gpusim.device import A6000
from repro.sampling.alias import AliasSampler
from repro.sampling.its import InverseTransformSampler
from repro.sampling.rejection import RejectionSampler
from repro.sampling.reservoir import ReservoirSampler
from repro.walks.metapath import MetaPathSpec
from repro.walks.node2vec import Node2VecSpec, UnweightedNode2VecSpec
from repro.walks.state import make_queries

SMALL_GPU = A6000.scaled(8 / A6000.parallel_lanes)


def scaled(system: BaselineSystem) -> BaselineSystem:
    if system.is_gpu:
        return dataclasses.replace(system, device=SMALL_GPU)
    return dataclasses.replace(system, device=system.device.scaled(0.25))


class TestRegistry:
    def test_all_paper_baselines_registered(self):
        assert set(BASELINES) == {
            "SOWalker", "ThunderRW", "C-SAW", "NextDoor", "Skywalker", "FlowWalker", "KnightKing",
        }

    def test_platform_filters(self):
        assert set(baseline_names("cpu")) == set(CPU_BASELINES)
        assert set(baseline_names("gpu")) == set(GPU_BASELINES)
        with pytest.raises(BenchmarkError):
            baseline_names("tpu")

    def test_unknown_baseline_rejected(self):
        with pytest.raises(BenchmarkError):
            make_baseline("GraphWalker")

    def test_platforms_match_paper(self):
        for name in ("SOWalker", "ThunderRW", "KnightKing"):
            assert make_baseline(name).platform == "cpu"
        for name in ("C-SAW", "NextDoor", "Skywalker", "FlowWalker"):
            assert make_baseline(name).platform == "gpu"


class TestSamplingStrategies:
    def test_flowwalker_uses_reservoir(self):
        assert isinstance(make_baseline("FlowWalker").sampler_factory(Node2VecSpec()), ReservoirSampler)

    def test_csaw_uses_its(self):
        assert isinstance(make_baseline("C-SAW").sampler_factory(Node2VecSpec()), InverseTransformSampler)

    def test_skywalker_uses_alias(self):
        assert isinstance(make_baseline("Skywalker").sampler_factory(Node2VecSpec()), AliasSampler)

    def test_nextdoor_uses_rejection(self):
        assert isinstance(make_baseline("NextDoor").sampler_factory(Node2VecSpec()), RejectionSampler)

    def test_thunderrw_switches_by_workload(self):
        system = make_baseline("ThunderRW")
        assert isinstance(system.sampler_factory(UnweightedNode2VecSpec()), RejectionSampler)
        assert isinstance(system.sampler_factory(Node2VecSpec()), InverseTransformSampler)


class TestExecution:
    @pytest.mark.parametrize("name", sorted(BASELINES))
    def test_every_baseline_runs_node2vec(self, small_graph, name):
        system = scaled(make_baseline(name))
        queries = make_queries(small_graph.num_nodes, walk_length=3, num_queries=6)
        result = system.run(small_graph, Node2VecSpec(), queries, seed=1)
        assert len(result.paths) == 6
        assert result.time_ms > 0

    def test_cpu_baselines_much_slower_than_gpu(self, small_graph):
        queries = make_queries(small_graph.num_nodes, walk_length=4, num_queries=8)
        gpu_time = scaled(make_baseline("FlowWalker")).run(small_graph, Node2VecSpec(), queries).time_ms
        cpu_time = scaled(make_baseline("ThunderRW")).run(small_graph, Node2VecSpec(), queries).time_ms
        assert cpu_time > 3 * gpu_time

    def test_nextdoor_skips_max_reduce_for_static_bound_workload(self, small_graph):
        system = scaled(make_baseline("NextDoor"))
        queries = make_queries(small_graph.num_nodes, walk_length=4, num_queries=6)
        weighted = system.run(small_graph, Node2VecSpec(), queries)
        unweighted = system.run(small_graph, UnweightedNode2VecSpec(), queries)
        # The unweighted run avoids the per-step weight scan, so it touches
        # far fewer coalesced words per step.
        assert (
            unweighted.counters.coalesced_accesses
            < 0.5 * weighted.counters.coalesced_accesses
        )

    def test_sowalker_pays_block_io_amplification(self, small_graph):
        queries = make_queries(small_graph.num_nodes, walk_length=3, num_queries=6)
        sow = scaled(make_baseline("SOWalker")).run(small_graph, MetaPathSpec(), queries)
        thunder = scaled(make_baseline("ThunderRW")).run(small_graph, MetaPathSpec(), queries)
        assert sow.counters.coalesced_accesses > thunder.counters.coalesced_accesses

    def test_nextdoor_transit_grouping_charged(self, small_graph):
        queries = make_queries(small_graph.num_nodes, walk_length=3, num_queries=6)
        result = scaled(make_baseline("NextDoor")).run(small_graph, Node2VecSpec(), queries)
        assert result.counters.atomic_ops >= 2 * result.total_steps


class TestMemoryModel:
    def test_flowwalker_fits_sk_at_paper_scale(self):
        assert make_baseline("FlowWalker").fits_in_memory(DATASETS["SK"])

    def test_nextdoor_ooms_on_sk_at_paper_scale(self):
        assert not make_baseline("NextDoor").fits_in_memory(DATASETS["SK"])

    def test_csaw_ooms_on_largest_graphs(self):
        csaw = make_baseline("C-SAW")
        assert not csaw.fits_in_memory(DATASETS["SK"])
        assert csaw.fits_in_memory(DATASETS["YT"])

    def test_everyone_fits_on_small_graphs(self):
        for name in GPU_BASELINES:
            assert make_baseline(name).fits_in_memory(DATASETS["YT"]), name

    def test_cpu_systems_have_host_memory(self):
        assert make_baseline("ThunderRW").fits_in_memory(DATASETS["SK"])

    def test_required_memory_grows_with_graph(self):
        system = make_baseline("FlowWalker")
        assert system.required_memory_bytes(DATASETS["SK"]) > system.required_memory_bytes(DATASETS["YT"])
