"""Integration tests: the headline claims of the paper, end to end.

These tests run the full pipeline (compiler → profiler → runtime → kernels →
simulator) on scale-model graphs and assert the *direction* of the paper's
results — who wins, and how trends move — not absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.bench.config import ExperimentConfig
from repro.bench.runner import (
    prepare_graph,
    prepare_queries,
    run_baseline,
    run_flexiwalker,
)

CONFIG = ExperimentConfig(num_queries=48, walk_length=8, datasets=("YT", "EU"))


@pytest.fixture(scope="module")
def eu_weighted():
    graph = prepare_graph("EU", "node2vec", weights="uniform")
    queries = prepare_queries(graph, "node2vec", CONFIG)
    return graph, queries


class TestHeadlineComparisons:
    def test_flexiwalker_beats_best_gpu_baseline_on_weighted_node2vec(self, eu_weighted):
        graph, queries = eu_weighted
        flexi = run_flexiwalker("EU", "node2vec", CONFIG, graph=graph, queries=queries, check_memory=False)
        flow = run_baseline("FlowWalker", "EU", "node2vec", CONFIG, graph=graph, queries=queries, check_memory=False)
        assert flexi.time_ms < flow.time_ms

    def test_flexiwalker_beats_cpu_baselines_by_a_large_margin(self, eu_weighted):
        graph, queries = eu_weighted
        flexi = run_flexiwalker("EU", "node2vec", CONFIG, graph=graph, queries=queries, check_memory=False)
        thunder = run_baseline("ThunderRW", "EU", "node2vec", CONFIG, graph=graph, queries=queries, check_memory=False)
        assert thunder.time_ms > 10 * flexi.time_ms

    def test_table_builders_lose_on_dynamic_walks(self, eu_weighted):
        """ITS / ALS pay per-step auxiliary-structure construction (Fig. 3)."""
        graph, queries = eu_weighted
        flow = run_baseline("FlowWalker", "EU", "node2vec", CONFIG, graph=graph, queries=queries, check_memory=False)
        csaw = run_baseline("C-SAW", "EU", "node2vec", CONFIG, graph=graph, queries=queries, check_memory=False)
        sky = run_baseline("Skywalker", "EU", "node2vec", CONFIG, graph=graph, queries=queries, check_memory=False)
        assert csaw.time_ms > flow.time_ms
        assert sky.time_ms > flow.time_ms

    def test_nextdoor_wins_unweighted_but_collapses_weighted(self):
        """The Fig. 3a vs 3b crossover: a static bound flips the ranking."""
        config = CONFIG
        unweighted = {}
        weighted = {}
        for workload, store in (("node2vec_unweighted", unweighted), ("node2vec", weighted)):
            graph = prepare_graph("EU", workload, weights="uniform")
            queries = prepare_queries(graph, workload, config)
            for system in ("NextDoor", "FlowWalker"):
                run = run_baseline(system, "EU", workload, config, graph=graph, queries=queries, check_memory=False)
                store[system] = run.time_ms
        assert unweighted["NextDoor"] < unweighted["FlowWalker"]
        assert weighted["NextDoor"] > weighted["FlowWalker"]


class TestSkewRobustness:
    def test_erjs_degrades_with_skew_but_ervs_stays_flat(self):
        """Fig. 7a: the fixed kernels' sensitivity to weight skew."""
        times = {}
        for alpha in (1.0, 4.0):
            graph = prepare_graph("EU", "node2vec", weights="powerlaw", alpha=alpha)
            queries = prepare_queries(graph, "node2vec", CONFIG)
            erjs = run_flexiwalker("EU", "node2vec", CONFIG, graph=graph, queries=queries,
                                   weights="powerlaw", alpha=alpha, selection="erjs_only", check_memory=False)
            ervs = run_flexiwalker("EU", "node2vec", CONFIG, graph=graph, queries=queries,
                                   weights="powerlaw", alpha=alpha, selection="ervs_only", check_memory=False)
            times[alpha] = (erjs.time_ms, ervs.time_ms)
        erjs_degradation = times[1.0][0] / times[4.0][0]
        ervs_degradation = times[1.0][1] / times[4.0][1]
        assert erjs_degradation > 1.5
        assert ervs_degradation < 1.5

    def test_adaptive_runtime_tracks_the_better_fixed_kernel(self):
        """Fig. 11: the adaptive runtime is never far behind the best fixed kernel."""
        for alpha in (1.0, 4.0):
            graph = prepare_graph("EU", "node2vec", weights="powerlaw", alpha=alpha)
            queries = prepare_queries(graph, "node2vec", CONFIG)
            runs = {
                policy: run_flexiwalker(
                    "EU", "node2vec", CONFIG, graph=graph, queries=queries,
                    weights="powerlaw", alpha=alpha, selection=policy, check_memory=False,
                ).time_ms
                for policy in ("cost_model", "ervs_only", "erjs_only")
            }
            best_fixed = min(runs["ervs_only"], runs["erjs_only"])
            worst_fixed = max(runs["ervs_only"], runs["erjs_only"])
            # The paper itself notes the runtime component can lose to the
            # best fixed kernel on some skews (Fig. 11 discussion); what it
            # must never do is track the *wrong* kernel.
            assert runs["cost_model"] <= worst_fixed
            assert runs["cost_model"] <= 2.0 * best_fixed

    def test_selection_ratio_shifts_toward_reservoir_under_skew(self):
        """Fig. 14: rejection sampling is chosen less as skew increases."""
        fractions = {}
        for alpha in (1.0, 4.0):
            graph = prepare_graph("EU", "node2vec", weights="powerlaw", alpha=alpha)
            queries = prepare_queries(graph, "node2vec", CONFIG)
            run = run_flexiwalker("EU", "node2vec", CONFIG, graph=graph, queries=queries,
                                  weights="powerlaw", alpha=alpha, check_memory=False)
            fractions[alpha] = run.result.selection_ratio().get("eRJS", 0.0)
        assert fractions[1.0] < fractions[4.0]


class TestExtensionsAndOverheads:
    def test_int8_weights_speed_up_both_systems_and_keep_the_gap(self, eu_weighted):
        """Section 7.2: lower-precision weights cut memory time."""
        graph, queries = eu_weighted
        fp64 = run_flexiwalker("EU", "node2vec", CONFIG, graph=graph, queries=queries,
                               weight_bytes=8, check_memory=False)
        int8 = run_flexiwalker("EU", "node2vec", CONFIG, graph=graph, queries=queries,
                               weight_bytes=1, check_memory=False)
        flow_int8 = run_baseline("FlowWalker", "EU", "node2vec", CONFIG, graph=graph, queries=queries,
                                 weight_bytes=1, check_memory=False)
        assert int8.time_ms < fp64.time_ms
        assert int8.time_ms < flow_int8.time_ms

    def test_profiling_and_preprocessing_overhead_is_small_at_paper_scale(self):
        """Table 3: overheads are a few percent of an 80-step per-node walk."""
        from repro.bench.experiments import table3_overheads

        result = table3_overheads.run_experiment(
            ExperimentConfig(num_queries=48, walk_length=8, datasets=("YT",))
        )
        row = result["rows"][0]
        assert row["overhead_pct_extrapolated"] < 10.0

    def test_multi_gpu_scales(self):
        """Fig. 15: four simulated GPUs give a clear speedup over one."""
        from repro.bench.experiments import fig15_multigpu

        result = fig15_multigpu.run_experiment(
            ExperimentConfig(num_queries=96, walk_length=6, datasets=("EU",))
        )
        row = result["rows"][0]
        assert row["hash_x4"] > 2.0

    def test_gpu_systems_win_energy_per_query(self):
        """Fig. 16: the GPU finishes so much sooner that it wins joules/query."""
        from repro.bench.experiments import fig16_energy

        result = fig16_energy.run_experiment(
            ExperimentConfig(num_queries=32, walk_length=6, datasets=("FS",))
        )
        row = result["rows"][0]
        assert row["FlexiWalker_j_per_query"] < row["KnightKing_j_per_query"]
        assert row["FlexiWalker_max_watts"] > row["KnightKing_max_watts"]
