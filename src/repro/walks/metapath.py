"""MetaPath: schema-constrained walks on edge-labelled graphs.

MetaPath2Vec (Dong et al., 2017) walks a heterogeneous graph following an
ordered schema of edge labels: step ``j`` may only traverse edges whose label
equals ``schema[j]``.  In the weight formulation of the paper this sets the
workload-specific weight ``w`` to 0 or 1, so the transition weight of a
non-matching edge is exactly zero and a node with no matching out-edge ends
the walk.  The paper evaluates with schema ``(0, 1, 2, 3, 4)`` and depth 5.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import WalkSpecError
from repro.graph.csr import CSRGraph
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkerState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sampling.batch import BatchStepContext


class MetaPathSpec(WalkSpec):
    """MetaPath walk following an ordered edge-label schema."""

    name = "metapath"
    is_dynamic = True
    default_walk_length = 5

    def __init__(self, schema: tuple[int, ...] = (0, 1, 2, 3, 4)) -> None:
        if not schema:
            raise WalkSpecError("MetaPath schema must contain at least one label")
        if any(label < 0 for label in schema):
            raise WalkSpecError("schema labels must be non-negative")
        self.schema = tuple(int(label) for label in schema)
        self.default_walk_length = len(self.schema)
        super().__init__()

    def _expected_label(self, state: WalkerState) -> int:
        """Label the current step must follow (wraps for walks past the schema)."""
        return self.schema[state.step % len(self.schema)]

    # ------------------------------------------------------------------ #
    # User code analysed by Flexi-Compiler
    # ------------------------------------------------------------------ #
    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        h_e = graph.weights[edge]
        label = graph.labels[edge]
        want = self.schema[state.step % len(self.schema)]
        if label == want:
            return h_e
        return 0.0

    # ------------------------------------------------------------------ #
    def transition_weights(self, graph: CSRGraph, state: WalkerState) -> np.ndarray:
        if graph.labels is None:
            raise WalkSpecError("MetaPath requires an edge-labelled graph")
        h = graph.edge_weights(state.current_node).astype(np.float64)
        labels = graph.edge_labels(state.current_node)
        want = self._expected_label(state)
        return np.where(labels == want, h, 0.0)

    def transition_weights_batch(self, graph: CSRGraph, batch: BatchStepContext) -> np.ndarray:
        if graph.labels is None:
            raise WalkSpecError("MetaPath requires an edge-labelled graph")
        h = graph.weights[batch.flat_edges].astype(np.float64)
        labels = graph.labels[batch.flat_edges]
        schema = np.asarray(self.schema, dtype=np.int64)
        want = schema[batch.steps % len(self.schema)]
        return np.where(labels == want[batch.seg_ids], h, 0.0)

    # ------------------------------------------------------------------ #
    # Simulator cost hooks: the schema check reads one edge label per probe /
    # the whole label slice per scan.
    # ------------------------------------------------------------------ #
    def probe_cost_words(self, graph: CSRGraph, state: WalkerState) -> int:
        return 1

    def scan_cost_words(self, graph: CSRGraph, state: WalkerState) -> int:
        return graph.degree(state.current_node)

    def probe_cost_words_batch(self, graph: CSRGraph, batch: BatchStepContext) -> np.ndarray:
        return np.ones(batch.size, dtype=np.int64)

    def scan_cost_words_batch(self, graph: CSRGraph, batch: BatchStepContext) -> np.ndarray:
        return batch.degrees.copy()

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info.update({"schema": self.schema})
        return info
