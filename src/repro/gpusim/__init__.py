"""GPU execution simulator.

This package is the substitute for the CUDA/A6000 hardware the paper runs on.
Sampling kernels report what they *did* — coalesced and random global-memory
transactions, random-number generations, warp reductions, rejection retries —
into :class:`~repro.gpusim.counters.CostCounters`; the device model
(:class:`~repro.gpusim.device.DeviceSpec`) converts those counts into
simulated execution time, and the executor
(:class:`~repro.gpusim.executor.KernelExecutor`) models how per-query work is
spread over thousands of GPU threads (including the dynamic query scheduling
of Section 5.3).  The multi-GPU and energy models build on the same numbers to
reproduce Fig. 15 and Fig. 16.
"""

from repro.gpusim.counters import CostCounters, CounterBatch
from repro.gpusim.device import DeviceSpec, A6000, EPYC_9124P
from repro.gpusim.memory import MemoryModel
from repro.gpusim.warp import WarpModel, WARP_SIZE
from repro.gpusim.executor import KernelExecutor, KernelResult
from repro.gpusim.multigpu import (
    PARTITION_POLICIES,
    MultiGPUExecutor,
    MultiGPUResult,
    partition_queries,
)
from repro.gpusim.energy import EnergyModel, EnergyReport

__all__ = [
    "CostCounters",
    "CounterBatch",
    "DeviceSpec",
    "A6000",
    "EPYC_9124P",
    "MemoryModel",
    "WarpModel",
    "WARP_SIZE",
    "KernelExecutor",
    "KernelResult",
    "MultiGPUExecutor",
    "MultiGPUResult",
    "PARTITION_POLICIES",
    "partition_queries",
    "EnergyModel",
    "EnergyReport",
]
