"""Fig. 11 — ablation of the runtime selection component.

Weighted Node2Vec on YT / EU / SK with uniform weights and the Pareto sweep,
comparing FlowWalker (reference), FlexiWalker restricted to a single kernel
(eRVS-only / eRJS-only) and full FlexiWalker with cost-model selection.

Expected shape (paper): eRVS-only is stable but leaves performance on the
table for well-behaved distributions; eRJS-only collapses on skewed weights;
the adaptive runtime tracks the better of the two everywhere (up to 3.37x /
421x over the fixed versions), occasionally losing slightly to the best fixed
kernel on extreme skews.
"""

from __future__ import annotations

from repro.bench.config import ExperimentConfig
from repro.bench.runner import prepare_graph, prepare_queries, run_baseline, run_flexiwalker
from repro.bench.tables import format_table

ALPHAS = (1.0, 2.0, 3.0, 4.0)
DATASETS = ("YT", "EU", "SK")
WORKLOAD = "node2vec"


def _weight_settings() -> list[tuple[str, str, float]]:
    return [("uniform", "uniform", 2.0)] + [(f"alpha={a:g}", "powerlaw", a) for a in ALPHAS]


def run_experiment(config: ExperimentConfig | None = None) -> dict:
    """Execute the runtime-component ablation."""
    config = config or ExperimentConfig.quick()
    datasets = [d for d in DATASETS if d in config.datasets] or list(DATASETS[:2])
    rows: list[dict] = []

    for dataset in datasets:
        for label, scheme, alpha in _weight_settings():
            graph = prepare_graph(dataset, WORKLOAD, weights=scheme, alpha=alpha)
            queries = prepare_queries(graph, WORKLOAD, config)
            common = dict(graph=graph, queries=queries, weights=scheme, alpha=alpha, check_memory=False)
            flow = run_baseline("FlowWalker", dataset, WORKLOAD, config, graph=graph, queries=queries,
                                weights=scheme, alpha=alpha, check_memory=False)
            ervs = run_flexiwalker(dataset, WORKLOAD, config, selection="ervs_only", **common)
            erjs = run_flexiwalker(dataset, WORKLOAD, config, selection="erjs_only", **common)
            adaptive = run_flexiwalker(dataset, WORKLOAD, config, selection="cost_model", **common)
            rows.append(
                {
                    "dataset": dataset,
                    "weights": label,
                    "FlowWalker": flow.cell(),
                    "eRVS-only": ervs.cell(),
                    "eRJS-only": erjs.cell(),
                    "FlexiWalker": adaptive.cell(),
                    "adaptive_vs_worst_fixed": (
                        max(ervs.time_ms, erjs.time_ms) / adaptive.time_ms
                        if adaptive.ok and ervs.ok and erjs.ok
                        else float("nan")
                    ),
                }
            )

    return {
        "rows": rows,
        "config": config,
        "paper_reference": "Figure 11: runtime component ablation (FlowWalker / eRVS-only / eRJS-only / FlexiWalker)",
    }


def format_result(result: dict) -> str:
    headers = ["dataset", "weights", "FlowWalker", "eRVS-only", "eRJS-only", "FlexiWalker", "adaptive_vs_worst_fixed"]
    rows = [[row[h] for h in headers] for row in result["rows"]]
    return format_table(headers, rows, title="Fig. 11 — runtime-component ablation (ms, simulated)")


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_result(run_experiment()))


if __name__ == "__main__":  # pragma: no cover
    main()
