"""Run every paper experiment once and print a consolidated report.

Usage::

    python scripts/run_all_experiments.py            # quick configuration
    python scripts/run_all_experiments.py --full     # every dataset (slow)

The output of this script (one paper-style table per experiment) is what
EXPERIMENTS.md summarises.  Each experiment can also be run individually with
``python -m repro.bench.experiments.<name>``.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.config import ExperimentConfig  # noqa: E402
from repro.bench.experiments import EXPERIMENT_MODULES  # noqa: E402


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run the full dataset sweep (slow)")
    parser.add_argument("--queries", type=int, default=96, help="walk queries per dataset")
    parser.add_argument("--walk-length", type=int, default=10, help="steps per walk")
    args = parser.parse_args()

    if args.full:
        config = ExperimentConfig.full(num_queries=args.queries, walk_length=args.walk_length)
    else:
        config = ExperimentConfig(
            num_queries=args.queries,
            walk_length=args.walk_length,
            datasets=("YT", "CP", "OK", "EU", "SK"),
        )

    print(f"# FlexiWalker reproduction — experiment report")
    print(f"# config: {config}")
    total_start = time.time()
    for name in EXPERIMENT_MODULES:
        module = importlib.import_module(f"repro.bench.experiments.{name}")
        start = time.time()
        result = module.run_experiment(config)
        elapsed = time.time() - start
        print()
        print("=" * 100)
        print(f"## {name}  ({elapsed:.1f}s wall clock)")
        print(f"## {result.get('paper_reference', '')}")
        print("=" * 100)
        print(module.format_result(result))
    print()
    print(f"# total wall clock: {time.time() - total_start:.1f}s")


if __name__ == "__main__":
    main()
