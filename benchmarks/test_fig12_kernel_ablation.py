"""Benchmark: Fig. 12 — per-kernel optimisation ablations (eRVS and eRJS)."""

from __future__ import annotations

from bench_helpers import run_once

from repro.bench.config import ExperimentConfig
from repro.bench.experiments import fig12_kernel_ablation as experiment


def test_fig12_kernel_ablation(benchmark):
    config = ExperimentConfig(num_queries=80, walk_length=8, datasets=("YT", "EU"))
    result = run_once(benchmark, experiment, config)

    # Panel (a): +EXP speeds up the baseline reservoir kernel; +JUMP never
    # gives that gain back (paper: 1.30-1.60x and 1.44-1.82x).
    for row in result["reservoir"]:
        assert row["+EXP_speedup"] > 1.0
        assert row["+JUMP_speedup"] >= row["+EXP_speedup"] * 0.98

    # Panel (b): the estimated bound beats the per-step max reduction, with a
    # much larger margin under uniform weights than under heavy skew.
    rejection = {(r["dataset"], r["weights"]): r["+EstMax_speedup"] for r in result["rejection"]}
    for speedup in rejection.values():
        assert speedup > 1.0
    assert rejection[("EU", "uniform")] > rejection[("EU", "alpha=1")]
