"""Shared sampling-kernel infrastructure: step contexts and the Sampler ABC."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SamplingError
from repro.graph.csr import CSRGraph
from repro.gpusim.counters import CostCounters
from repro.gpusim.warp import WARP_SIZE, WarpModel
from repro.rng.streams import CountingStream
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkerState


@dataclass
class StepContext:
    """Everything a sampling kernel needs to take one walk step.

    Attributes
    ----------
    graph / state / spec:
        The graph, the walker's state, and the workload logic.
    rng:
        The simulated thread's random stream.
    counters:
        Cost counters the kernel must add its operation counts to.
    bound_hint:
        Estimated upper bound on the maximum transition weight of the current
        node, produced by the compiler-generated ``get_weight_max`` helper.
        ``None`` means no bound is available (eRJS then falls back to a max
        reduction, like the baseline).
    sum_hint:
        Estimated sum of transition weights (``get_weight_sum`` helper),
        consumed by the runtime cost model rather than the kernels.
    warp_width:
        Number of cooperating lanes for warp-parallel kernels.
    """

    graph: CSRGraph
    state: WalkerState
    spec: WalkSpec
    rng: CountingStream
    counters: CostCounters = field(default_factory=CostCounters)
    bound_hint: float | None = None
    sum_hint: float | None = None
    warp_width: int = WARP_SIZE

    def warp(self) -> WarpModel:
        """A warp model bound to this step's counters."""
        return WarpModel(self.counters, width=self.warp_width)

    @property
    def degree(self) -> int:
        return self.graph.degree(self.state.current_node)

    def neighbors(self) -> np.ndarray:
        return self.graph.neighbors(self.state.current_node)


def gather_transition_weights(
    ctx: StepContext,
    passes: int = 1,
    coalesced: bool = True,
) -> np.ndarray:
    """Compute the transition weights of the current node and account the cost.

    Parameters
    ----------
    passes:
        How many full passes over the weight list the kernel makes; the
        baseline reservoir kernel reads the weights twice (once for the
        prefix sum, once while sampling) whereas eRVS reads them once.
    coalesced:
        Whether the accesses are warp-coalesced (sequential scans) or
        uncoalesced (per-lane random probes).
    """
    if passes < 1:
        raise SamplingError("passes must be at least 1")
    weights = ctx.spec.transition_weights(ctx.graph, ctx.state)
    degree = int(weights.size)
    if coalesced:
        ctx.counters.coalesced_accesses += degree * passes
    else:
        ctx.counters.random_accesses += degree * passes
    ctx.counters.weight_computations += degree
    # Workload-specific side data needed to evaluate the weights (e.g. the
    # previous node's adjacency list for the dist(v', u) checks, or the edge
    # labels for MetaPath) is read once per scan via a coalesced merge join.
    ctx.counters.coalesced_accesses += ctx.spec.scan_cost_words(ctx.graph, ctx.state)
    return weights


def probe_overhead_words(ctx: StepContext) -> int:
    """Uncoalesced words one rejection trial needs beyond the probed weight."""
    return ctx.spec.probe_cost_words(ctx.graph, ctx.state)


class Sampler(ABC):
    """Base class for next-node sampling kernels.

    A sampler receives a :class:`StepContext` and returns the *node id* of
    the chosen neighbour, or ``None`` when the walk cannot continue (the
    current node has no out-edges or every transition weight is zero, e.g. a
    MetaPath dead end).

    Attributes
    ----------
    name:
        Short kernel tag used in tables and the selection-ratio experiment.
    processing_unit:
        ``"thread"`` for one-lane kernels (rejection sampling) or ``"warp"``
        for warp-cooperative kernels (reservoir, alias, ITS) — this drives
        the concurrent-kernel switching model of Section 5.2.
    """

    name: str = "sampler"
    processing_unit: str = "warp"

    @abstractmethod
    def sample(self, ctx: StepContext) -> int | None:
        """Choose the next node for the walker in ``ctx``."""

    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_nonempty(ctx: StepContext) -> bool:
        """True when the current node has at least one out-edge."""
        return ctx.degree > 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
