"""Smoke tests: every paper experiment runs end-to-end on a tiny configuration.

These tests are about wiring, not numbers: each experiment module must
execute, produce its structured result, and render its paper-style table.
The shape assertions that matter (who wins, trends) are covered in the
integration tests; the full-size runs live in ``benchmarks/``.
"""

from __future__ import annotations

import importlib

import pytest

from repro.bench.config import ExperimentConfig
from repro.bench.experiments import EXPERIMENT_MODULES

TINY = ExperimentConfig(num_queries=10, walk_length=3, datasets=("YT",))


@pytest.mark.parametrize("module_name", EXPERIMENT_MODULES)
def test_experiment_runs_and_formats(module_name):
    module = importlib.import_module(f"repro.bench.experiments.{module_name}")
    result = module.run_experiment(TINY)
    assert isinstance(result, dict)
    assert "paper_reference" in result
    text = module.format_result(result)
    assert isinstance(text, str)
    assert len(text.splitlines()) >= 2


def test_experiment_registry_lists_every_module():
    assert len(EXPERIMENT_MODULES) == 14
    for name in EXPERIMENT_MODULES:
        assert importlib.import_module(f"repro.bench.experiments.{name}")


def test_table2_reports_speedup_summary():
    from repro.bench.experiments import table2_uniform

    result = table2_uniform.run_experiment(TINY)
    summary = result["summary"]
    assert summary["geomean_speedup_over_best_gpu"] > 0
    assert summary["geomean_speedup_over_best_cpu"] > summary["geomean_speedup_over_best_gpu"]


def test_fig14_ratio_fractions_sum_to_one():
    from repro.bench.experiments import fig14_ratio

    result = fig14_ratio.run_experiment(TINY)
    for row in result["rows"]:
        assert row["eRJS_fraction"] + row["eRVS_fraction"] == pytest.approx(1.0)
