"""Tests for the walk workload specifications.

The central invariant: every workload's vectorised ``transition_weights``
must agree exactly with its scalar ``get_weight`` user code, because the
kernels use the former and Flexi-Compiler analyses the latter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WalkSpecError
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.metapath import MetaPathSpec
from repro.walks.node2vec import Node2VecSpec, UnweightedNode2VecSpec
from repro.walks.second_order_pr import SecondOrderPRSpec
from repro.walks.registry import WORKLOADS, make_workload, workload_names
from repro.walks.spec import UniformWalkSpec

from tests.conftest import make_state

ALL_SPECS = [
    UniformWalkSpec(),
    DeepWalkSpec(),
    Node2VecSpec(a=2.0, b=0.5),
    UnweightedNode2VecSpec(a=2.0, b=0.5),
    MetaPathSpec(schema=(0, 1, 2, 3, 4)),
    SecondOrderPRSpec(gamma=0.2),
]


@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
class TestVectorisedMatchesScalar:
    def test_first_step(self, spec, small_graph):
        state = make_state(small_graph, node=0)
        start, stop = small_graph.edge_slice(0)
        scalar = np.array([spec.get_weight(small_graph, state, e) for e in range(start, stop)])
        assert np.allclose(spec.transition_weights(small_graph, state), scalar)

    def test_second_step_with_history(self, spec, small_graph):
        prev = int(small_graph.neighbors(0)[0])
        state = make_state(small_graph, node=0, prev=prev, step=1)
        start, stop = small_graph.edge_slice(0)
        scalar = np.array([spec.get_weight(small_graph, state, e) for e in range(start, stop)])
        assert np.allclose(spec.transition_weights(small_graph, state), scalar)

    def test_weights_are_non_negative(self, spec, small_graph):
        prev = int(small_graph.neighbors(2)[0])
        state = make_state(small_graph, node=2, prev=prev, step=2)
        assert np.all(spec.transition_weights(small_graph, state) >= 0)


class TestNode2Vec:
    def test_invalid_parameters(self):
        with pytest.raises(WalkSpecError):
            Node2VecSpec(a=0.0)
        with pytest.raises(WalkSpecError):
            Node2VecSpec(b=-1.0)

    def test_return_edge_gets_inverse_a(self, tiny_graph):
        spec = Node2VecSpec(a=2.0, b=0.5)
        # Walker went 1 -> 0; the edge back to 1 gets weight h / a.
        state = make_state(tiny_graph, node=0, prev=1, step=1)
        weights = spec.transition_weights(tiny_graph, state)
        neighbors = list(tiny_graph.neighbors(0))
        back_index = neighbors.index(1)
        h = tiny_graph.edge_weights(0)
        assert weights[back_index] == pytest.approx(h[back_index] / 2.0)

    def test_common_neighbor_keeps_weight(self, tiny_graph):
        spec = Node2VecSpec(a=2.0, b=0.5)
        # Walker went 1 -> 0; node 2 is a neighbour of 1, so dist(1, 2) = 1.
        state = make_state(tiny_graph, node=0, prev=1, step=1)
        weights = spec.transition_weights(tiny_graph, state)
        neighbors = list(tiny_graph.neighbors(0))
        idx = neighbors.index(2)
        assert weights[idx] == pytest.approx(tiny_graph.edge_weights(0)[idx])

    def test_distant_neighbor_gets_inverse_b(self, tiny_graph):
        spec = Node2VecSpec(a=2.0, b=0.5)
        # Walker went 1 -> 0; node 4 is NOT a neighbour of 1 (1 -> {0, 2}).
        state = make_state(tiny_graph, node=0, prev=1, step=1)
        weights = spec.transition_weights(tiny_graph, state)
        neighbors = list(tiny_graph.neighbors(0))
        idx = neighbors.index(4)
        assert weights[idx] == pytest.approx(tiny_graph.edge_weights(0)[idx] / 0.5)

    def test_first_step_uses_property_weights(self, tiny_graph):
        spec = Node2VecSpec()
        state = make_state(tiny_graph, node=0)
        assert np.allclose(spec.transition_weights(tiny_graph, state), tiny_graph.edge_weights(0))

    def test_unweighted_variant_ignores_property_weights(self, tiny_graph):
        spec = UnweightedNode2VecSpec(a=2.0, b=0.5)
        state = make_state(tiny_graph, node=0)
        assert np.allclose(spec.transition_weights(tiny_graph, state), 1.0)

    def test_describe_includes_hyperparameters(self):
        info = Node2VecSpec(a=3.0, b=0.25).describe()
        assert info["a"] == 3.0
        assert info["b"] == 0.25


class TestMetaPath:
    def test_only_matching_labels_get_weight(self, tiny_graph):
        spec = MetaPathSpec(schema=(0, 1))
        state = make_state(tiny_graph, node=0)
        weights = spec.transition_weights(tiny_graph, state)
        labels = tiny_graph.edge_labels(0)
        assert np.all((weights > 0) == (labels == 0))

    def test_schema_advances_with_step(self, tiny_graph):
        spec = MetaPathSpec(schema=(0, 1))
        state = make_state(tiny_graph, node=0, prev=1, step=1)
        weights = spec.transition_weights(tiny_graph, state)
        labels = tiny_graph.edge_labels(0)
        assert np.all((weights > 0) == (labels == 1))

    def test_schema_wraps_around(self, tiny_graph):
        spec = MetaPathSpec(schema=(0, 1))
        state = make_state(tiny_graph, node=0, prev=1, step=2)
        labels = tiny_graph.edge_labels(0)
        assert np.all((spec.transition_weights(tiny_graph, state) > 0) == (labels == 0))

    def test_default_walk_length_is_schema_depth(self):
        assert MetaPathSpec(schema=(0, 1, 2)).default_walk_length == 3

    def test_requires_labels(self, small_graph):
        unlabelled = small_graph.with_weights(small_graph.weights)
        unlabelled.labels = None
        spec = MetaPathSpec()
        with pytest.raises(WalkSpecError):
            spec.transition_weights(unlabelled, make_state(unlabelled, node=0))

    def test_empty_schema_rejected(self):
        with pytest.raises(WalkSpecError):
            MetaPathSpec(schema=())

    def test_negative_label_rejected(self):
        with pytest.raises(WalkSpecError):
            MetaPathSpec(schema=(0, -1))


class TestSecondOrderPR:
    def test_gamma_bounds(self):
        with pytest.raises(WalkSpecError):
            SecondOrderPRSpec(gamma=1.5)
        with pytest.raises(WalkSpecError):
            SecondOrderPRSpec(gamma=-0.1)

    def test_linked_neighbors_weighted_higher(self, tiny_graph):
        spec = SecondOrderPRSpec(gamma=0.2)
        state = make_state(tiny_graph, node=0, prev=1, step=1)
        weights = spec.transition_weights(tiny_graph, state)
        h = tiny_graph.edge_weights(0)
        # Normalise out the property weight: linked neighbours (2) must carry
        # a strictly larger workload weight than unlinked ones (3, 4).
        per_edge = weights / h
        neighbors = list(tiny_graph.neighbors(0))
        assert per_edge[neighbors.index(2)] > per_edge[neighbors.index(3)]

    def test_first_step_reduces_to_property_weights(self, tiny_graph):
        spec = SecondOrderPRSpec()
        state = make_state(tiny_graph, node=0)
        assert np.allclose(spec.transition_weights(tiny_graph, state), tiny_graph.edge_weights(0))


class TestRegistry:
    def test_all_paper_workloads_registered(self):
        names = workload_names()
        for expected in ("node2vec", "node2vec_unweighted", "metapath", "metapath_unweighted", "2nd_pr"):
            assert expected in names

    def test_make_workload_returns_fresh_instances(self):
        assert make_workload("node2vec") is not make_workload("node2vec")

    def test_unknown_workload_rejected(self):
        with pytest.raises(WalkSpecError):
            make_workload("pagerank-classic")

    def test_dynamic_only_filter(self):
        dynamic = workload_names(dynamic_only=True)
        assert "deepwalk" not in dynamic
        assert "node2vec" in dynamic

    def test_unweighted_entries_marked(self):
        assert not WORKLOADS["node2vec_unweighted"].weighted
        assert WORKLOADS["node2vec"].weighted

    def test_walk_length_resolution(self):
        spec = make_workload("node2vec")
        assert spec.walk_length() == 80
        assert spec.walk_length(12) == 12
        with pytest.raises(WalkSpecError):
            spec.walk_length(0)
