"""Dynamic graphs through the service: the compaction-identity scenario family.

``WalkService.apply_delta`` interleaved with session waves (and
continuous-batching ticks) must be observationally invisible: a session
opened at version ``v`` produces results bit-identical — paths, counter
totals, per-query base times — to a session on a *fresh* service built from
the freshly-constructed ``CSRGraph`` at version ``v``.  That must hold in
every execution mode the plan can negotiate: batched single-device, fused
multi-device (replicated), sharded, and scheduler-fused.

The scoped-invalidation half of the contract is asserted by identity:
migrating a workload's engine caches across a delta keeps the
``TransitionCache``/``NodeHintTables`` objects (and their untouched-node
entries) alive instead of rebuilding them.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.config import FlexiWalkerConfig
from repro.graph.builders import from_edge_list
from repro.graph.delta import DeltaCSRGraph
from repro.graph.generators import barabasi_albert_graph
from repro.graph.weights import uniform_weights
from repro.gpusim.device import A6000
from repro.service import DeviceFleet, WalkService
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.node2vec import Node2VecSpec
from repro.walks.state import WalkQuery, make_queries

DEVICE = dataclasses.replace(A6000, parallel_lanes=8)

MODE_CONFIGS = {
    "batched": dict(),
    "fused_multi_device": dict(num_devices=3),
    "sharded": dict(num_devices=3, graph_placement="sharded",
                    shard_policy="locality"),
}


def build_graph(seed: int = 0):
    graph = barabasi_albert_graph(40, 3, seed=seed, name="dynamic-svc")
    return graph.with_weights(uniform_weights(graph, seed=seed))


def mutate(service: WalkService, seed: int, adds: int = 12, rems: int = 8) -> int:
    """Apply one valid random delta to a service; returns the new version."""
    rng = np.random.default_rng(seed)
    dynamic = service._dynamic if service._dynamic is not None else DeltaCSRGraph(service.graph)
    n = dynamic.num_nodes
    cand = rng.integers(0, n, size=(10 * adds, 2))
    fresh = np.unique(cand[~dynamic.has_edges(cand[:, 0], cand[:, 1])], axis=0)[:adds]
    edges = dynamic.edge_list()[0]
    take = rng.choice(edges.shape[0], rems, replace=False)
    removals = np.unique(edges[take], axis=0)
    return service.apply_delta(fresh, removals, weights=rng.random(len(fresh)))


def assert_identical(result, expected):
    assert result.paths == expected.paths
    assert np.array_equal(result.per_query_ns, expected.per_query_ns)
    assert result.counters == expected.counters
    assert result.total_steps == expected.total_steps


class TestCompactionIdentityAcrossModes:
    @pytest.mark.parametrize("mode", sorted(MODE_CONFIGS))
    @pytest.mark.parametrize("workload", ["deepwalk", "node2vec"])
    def test_session_after_deltas_matches_fresh_build(self, mode, workload):
        spec = DeepWalkSpec() if workload == "deepwalk" else Node2VecSpec()
        config = FlexiWalkerConfig(device=DEVICE, **MODE_CONFIGS[mode])
        service = WalkService(DeltaCSRGraph(build_graph()), fleet=DeviceFleet(DEVICE, 3))

        # Interleave deltas with session waves: wave at v0, delta, wave at
        # v1 (same session — stays on v0 by contract), delta, new session
        # at v2.
        s0 = service.session(spec, config)
        s0.submit(make_queries(service.graph.num_nodes, walk_length=5,
                               num_queries=12, seed=3))
        r0_first = s0.collect()
        v0_graph = service.graph

        mutate(service, seed=11)
        # The open session keeps executing on its version's snapshot.
        s0.submit([WalkQuery(query_id=100 + i, start_node=i, max_length=5)
                   for i in range(12)])
        assert s0.engine.graph is v0_graph
        s0.collect()
        s0.close()

        mutate(service, seed=12)
        assert service.graph_version == 2

        s2 = service.session(spec, config)
        assert s2.graph_version == 2
        s2.submit(make_queries(service.graph.num_nodes, walk_length=5,
                               num_queries=12, seed=3))
        result = s2.collect()

        # Fresh build at version 2: same edges, brand-new CSR and service.
        edges, weights, _ = service._dynamic.edge_list()
        fresh_graph = from_edge_list(edges, num_nodes=service.graph.num_nodes,
                                     weights=weights, name=service.graph.name)
        fresh_service = WalkService(fresh_graph, fleet=DeviceFleet(DEVICE, 3))
        fresh_session = fresh_service.session(spec, config)
        fresh_session.submit(make_queries(fresh_graph.num_nodes, walk_length=5,
                                          num_queries=12, seed=3))
        assert_identical(result, fresh_session.collect())

    def test_scheduler_fused_sessions_match_fresh_build(self):
        spec = DeepWalkSpec()
        config = FlexiWalkerConfig(device=DEVICE)
        service = WalkService(DeltaCSRGraph(build_graph()), fleet=DeviceFleet(DEVICE, 1))
        scheduler = service.scheduler()

        # Session at v0 starts streaming, a delta lands mid-flight, a v1
        # session joins the same scheduler; both finish on their versions.
        a = scheduler.attach(service.session(spec, config), tenant="a")
        a.submit(make_queries(service.graph.num_nodes, walk_length=6,
                              num_queries=10, seed=5))
        for _ in range(2):
            scheduler.tick()
        v0_graph = service.graph

        mutate(service, seed=21)
        b = scheduler.attach(service.session(spec, config), tenant="b")
        assert (a.graph_version, b.graph_version) == (0, 1)
        b.submit(make_queries(service.graph.num_nodes, walk_length=6,
                              num_queries=10, seed=5))
        scheduler.run_until_idle()
        result_a, result_b = a.collect(), b.collect()
        assert a.engine.graph is v0_graph
        assert b.engine.graph is service.graph

        # a == a fresh v0 service run; b == a fresh v1 service run.
        for result, graph in ((result_a, v0_graph), (result_b, service.graph)):
            edges = np.stack(
                [np.repeat(np.arange(graph.num_nodes, dtype=np.int64), graph.degrees()),
                 graph.indices], axis=1)
            fresh_graph = from_edge_list(edges, num_nodes=graph.num_nodes,
                                         weights=graph.weights, name=graph.name)
            fresh = WalkService(fresh_graph, fleet=DeviceFleet(DEVICE, 1))
            session = fresh.session(spec, config)
            session.submit(make_queries(fresh_graph.num_nodes, walk_length=6,
                                        num_queries=10, seed=5))
            assert_identical(result, session.collect())

    def test_cross_version_sessions_never_fuse(self):
        service = WalkService(DeltaCSRGraph(build_graph()), fleet=DeviceFleet(DEVICE, 1))
        scheduler = service.scheduler()
        config = FlexiWalkerConfig(device=DEVICE)
        a = scheduler.attach(service.session(DeepWalkSpec(), config))
        mutate(service, seed=31)
        b = scheduler.attach(service.session(DeepWalkSpec(), config))
        assert scheduler._entries[id(a)].group is not scheduler._entries[id(b)].group


class TestScopedInvalidationThroughTheService:
    def test_unpinned_caches_migrate_by_object_identity(self):
        spec = DeepWalkSpec()
        config = FlexiWalkerConfig(device=DEVICE)
        service = WalkService(DeltaCSRGraph(build_graph()), fleet=DeviceFleet(DEVICE, 1))

        session = service.session(spec, config)
        session.submit(make_queries(service.graph.num_nodes, walk_length=5,
                                    num_queries=10, seed=7))
        session.collect()
        caches = service.engine_caches(spec)
        transition = caches.transition_cache
        hints = caches.hint_tables
        assert transition is not None
        session.close()  # unpinned: eligible for migration

        mutate(service, seed=41)
        migrated = service.engine_caches(spec)  # resolves at the new version
        assert migrated is caches
        assert migrated.transition_cache is transition  # object identity
        assert migrated.transition_cache.graph is service.graph
        if hints is not None:
            assert migrated.hint_tables is hints

        # The migrated cache serves a new session with bit-identical results
        # to a cold service at the same version.
        warm = service.session(spec, config)
        warm.submit(make_queries(service.graph.num_nodes, walk_length=5,
                                 num_queries=10, seed=7))
        warm_result = warm.collect()

        edges, weights, _ = service._dynamic.edge_list()
        fresh_graph = from_edge_list(edges, num_nodes=service.graph.num_nodes,
                                     weights=weights, name=service.graph.name)
        cold = WalkService(fresh_graph, fleet=DeviceFleet(DEVICE, 1))
        cold_session = cold.session(spec, config)
        cold_session.submit(make_queries(fresh_graph.num_nodes, walk_length=5,
                                         num_queries=10, seed=7))
        assert_identical(warm_result, cold_session.collect())

    def test_pinned_caches_stay_on_their_version(self):
        spec = DeepWalkSpec()
        config = FlexiWalkerConfig(device=DEVICE)
        service = WalkService(DeltaCSRGraph(build_graph()), fleet=DeviceFleet(DEVICE, 1))
        session = service.session(spec, config)
        old_key = service._registry_key(spec)
        old_caches = service.engine_caches(spec)

        mutate(service, seed=51)  # session still open: no migration
        assert service._caches[old_key] is old_caches
        new_caches = service.engine_caches(spec)  # new version builds fresh
        assert new_caches is not old_caches
        session.close()

    def test_repartition_drops_sharded_decompositions(self):
        spec = DeepWalkSpec()
        config = FlexiWalkerConfig(device=DEVICE, num_devices=3,
                                   graph_placement="sharded")
        service = WalkService(DeltaCSRGraph(build_graph()), fleet=DeviceFleet(DEVICE, 3))
        session = service.session(spec, config)
        session.submit(make_queries(service.graph.num_nodes, walk_length=4,
                                    num_queries=8, seed=9))
        session.collect()
        caches = service.engine_caches(spec)
        assert caches.sharded_graphs
        session.close()

        mutate(service, seed=61)
        # default: rebind keeps decompositions (re-owned, not rebuilt)
        assert service.engine_caches(spec) is caches
        assert caches.sharded_graphs
        for sharded in caches.sharded_graphs.values():
            assert sharded.graph is service.graph

        service.apply_delta([], [tuple(service._dynamic.edge_list()[0][0])],
                            repartition=True)
        assert not caches.sharded_graphs  # dropped: next use re-partitions
        assert not caches.ghost_tables
