"""Whole-spec verifier: rule families fire with precise ids and spans.

Every fixture spec lives in ``spec_fixtures.py`` (file-backed, so
``inspect`` resolves real source lines); the tests assert the rule id AND
the reported span against marker comments in that file, so a refactor that
shifts the analyzer's anchoring is caught immediately.
"""

from __future__ import annotations

from pathlib import Path

import spec_fixtures as fx

from repro.analysis import Severity, verify_callable, verify_spec
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.metapath import MetaPathSpec
from repro.walks.node2vec import Node2VecSpec, UnweightedNode2VecSpec
from repro.walks.second_order_pr import SecondOrderPRSpec
from repro.walks.spec import UniformWalkSpec

FIXTURE_FILE = Path(fx.__file__)
FIXTURE_LINES = FIXTURE_FILE.read_text().splitlines()


def mark_line(tag: str) -> int:
    """1-indexed line of the unique ``# MARK: <tag>`` comment."""
    hits = [i + 1 for i, ln in enumerate(FIXTURE_LINES) if f"# MARK: {tag}" in ln]
    assert len(hits) == 1, f"marker {tag!r} must appear exactly once"
    return hits[0]


def only_diag(report, rule):
    matching = [d for d in report.diagnostics if d.rule == rule]
    assert matching, f"expected {rule}, got {[d.rule for d in report.diagnostics]}"
    return matching[0]


class TestBuiltinSpecsAreClean:
    """Zero false positives on every walk spec shipped with the repo."""

    def test_no_errors_or_warnings(self):
        for cls in (
            DeepWalkSpec,
            MetaPathSpec,
            Node2VecSpec,
            UnweightedNode2VecSpec,
            SecondOrderPRSpec,
            UniformWalkSpec,
        ):
            report = verify_spec(cls())
            assert report.diagnostics == (), (
                f"{cls.__name__}: {[d.format() for d in report.diagnostics]}"
            )

    def test_state_free_proof_matches_semantics(self):
        # DeepWalk and uniform walks weight edges by the graph alone; the
        # second-order family genuinely reads walker state on every path.
        assert verify_spec(DeepWalkSpec()).weights_state_free
        assert verify_spec(UniformWalkSpec()).weights_state_free
        assert not verify_spec(Node2VecSpec()).weights_state_free
        assert not verify_spec(MetaPathSpec()).weights_state_free
        assert not verify_spec(SecondOrderPRSpec()).weights_state_free


class TestDeterminismRules:
    def test_module_stream_flagged_with_span(self):
        report = verify_spec(fx.BadRngSpec())
        diag = only_diag(report, "determinism/unseeded-rng")
        assert diag.severity is Severity.ERROR
        assert diag.hook == "get_weight"
        assert diag.span.file == str(FIXTURE_FILE)
        assert diag.span.line == mark_line("bad-rng")

    def test_unseeded_factory_flagged(self):
        diag = only_diag(verify_spec(fx.UnseededFactorySpec()), "determinism/unseeded-rng")
        assert diag.span.line == mark_line("unseeded-factory")

    def test_wall_clock_flagged(self):
        diag = only_diag(verify_spec(fx.WallClockSpec()), "determinism/wall-clock")
        assert diag.severity is Severity.ERROR
        assert diag.span.line == mark_line("wall-clock")

    def test_id_is_error_hash_is_warning(self):
        id_diag = only_diag(verify_spec(fx.IdentitySpec()), "determinism/object-identity")
        assert id_diag.severity is Severity.ERROR
        assert id_diag.span.line == mark_line("identity")
        hash_diag = only_diag(verify_spec(fx.HashSpec()), "determinism/object-identity")
        assert hash_diag.severity is Severity.WARNING
        assert hash_diag.span.line == mark_line("hash")

    def test_weight_hook_writing_self_flagged(self):
        report = verify_spec(fx.MemoSpec())
        diag = only_diag(report, "determinism/pure-hook-writes-self")
        assert diag.severity is Severity.ERROR
        assert diag.span.line == mark_line("memo-write")
        assert "last_edge" in diag.message
        # A mutating hook taints the registry key too: the memo is never
        # reflected in describe() — but the pure-hook rule is the root cause.
        assert report.has_errors

    def test_global_statement_is_warning(self):
        diag = only_diag(verify_spec(fx.GlobalStateSpec()), "determinism/global-state")
        assert diag.severity is Severity.WARNING
        assert diag.span.line == mark_line("global-state")

    def test_closure_over_mutable_callable(self):
        diags = verify_callable(fx.make_selector(), name="selector")
        rules = {d.rule for d in diags}
        assert "determinism/closure-mutable" in rules
        diag = next(d for d in diags if d.rule == "determinism/closure-mutable")
        assert diag.severity is Severity.WARNING
        assert "captured" in diag.message


class TestCacheSafetyRules:
    def test_batch_override_divergence(self):
        report = verify_spec(fx.StatefulBatchSpec())
        diag = only_diag(report, "cache-safety/batch-state-divergence")
        assert diag.severity is Severity.ERROR
        assert diag.hook == "transition_weights_batch"
        assert diag.span.line == mark_line("batch-state")
        assert not report.weights_state_free

    def test_vector_override_divergence(self):
        report = verify_spec(fx.StatefulVectorSpec())
        diag = only_diag(report, "cache-safety/vector-state-divergence")
        assert diag.severity is Severity.ERROR
        assert diag.span.line == mark_line("vector-state")
        assert not report.weights_state_free

    def test_update_batch_without_update(self):
        report = verify_spec(fx.UpdateBatchOnlySpec())
        diag = only_diag(report, "cache-safety/update-batch-divergence")
        assert diag.severity is Severity.ERROR
        assert diag.span.line == mark_line("update-batch-only")
        assert not report.weights_state_free


class TestRegistryKeyRules:
    def test_unkeyed_attribute_flagged_at_read_site(self):
        report = verify_spec(fx.UnkeyedSpec())
        diag = only_diag(report, "registry-keys/unkeyed-attribute")
        assert diag.severity is Severity.ERROR
        assert diag.span.line == mark_line("unkeyed-read")
        assert "bias" in diag.message
        assert "describe" in (diag.fix_hint or "")

    def test_keyed_counterpart_is_clean(self):
        assert verify_spec(fx.KeyedSpec()).diagnostics == ()


class TestSuppression:
    def test_inline_ignore_silences_the_diagnostic(self):
        report = verify_spec(fx.SuppressedRngSpec())
        assert all(d.rule != "determinism/unseeded-rng" for d in report.diagnostics)
        assert not report.has_errors

    def test_suppression_does_not_restore_cache_eligibility(self):
        # StatefulBatchSpec's divergence stays disqualifying even if a user
        # silences the diagnostic — compare against the suppressed-RNG spec,
        # whose weights genuinely are node-only.
        assert verify_spec(fx.SuppressedRngSpec()).weights_state_free


class TestSourceUnavailable:
    def test_exec_defined_spec_degrades_to_warning(self):
        namespace: dict = {}
        exec(  # noqa: S102 - deliberately building a source-less spec
            "from repro.walks.spec import WalkSpec\n"
            "class ReplSpec(WalkSpec):\n"
            "    name = 'repl'\n"
            "    def get_weight(self, graph, state, edge):\n"
            "        return graph.weights[edge]\n",
            namespace,
        )
        report = verify_spec(namespace["ReplSpec"]())
        rules = {d.rule for d in report.diagnostics}
        assert "spec/source-unavailable" in rules
        assert not report.has_errors  # degrades, never hard-fails
        assert not report.weights_state_free  # no proof without source
