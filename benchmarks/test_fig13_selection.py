"""Benchmark: Fig. 13 — sensitivity to the sampling-strategy selection policy."""

from __future__ import annotations

from bench_helpers import run_once

from repro.bench.experiments import fig13_selection as experiment


def test_fig13_selection(benchmark, quick_config):
    result = run_once(benchmark, experiment, quick_config)
    summary = result["summary"]
    # The cost model is at least as good as the degree-threshold policy and
    # not meaningfully worse than random selection (paper: 15.86x over random,
    # 2.66x over degree-based; the scale-model graphs cap the damage a wrong
    # per-step choice can do, which compresses both margins — see
    # EXPERIMENTS.md).
    assert summary["geomean_speedup_vs_degree"] >= 1.0
    assert summary["geomean_speedup_vs_random"] >= 0.9
