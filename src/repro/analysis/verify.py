"""Public entry points of the whole-spec verifier.

:func:`verify_spec` runs all three rule families — determinism,
cache-safety, registry-key soundness — over every overridable hook of a
:class:`~repro.walks.spec.WalkSpec` and returns a structured
:class:`~repro.analysis.diagnostics.SpecReport`.  It never raises: specs
whose source cannot be read degrade to WARNING diagnostics and
conservative verdicts.

Suppression comments (``# repro: ignore[rule-id]``) silence the
*diagnostic* only; they never re-enable an optimisation the proof
declined — ``weights_state_free`` stays conservative regardless, so a
suppressed cache-safety finding cannot reintroduce stale cache rows.
"""

from __future__ import annotations

from repro.analysis.cache_safety import check_cache_safety
from repro.analysis.determinism import check_callable_determinism, check_determinism
from repro.analysis.diagnostics import Diagnostic, SpecReport, filter_suppressed
from repro.analysis.hooks import get_source_line, load_spec_sources
from repro.analysis.registry_keys import check_registry_keys
from repro.walks.spec import WalkSpec


def verify_spec(spec: WalkSpec) -> SpecReport:
    """Statically verify every user-overridable hook of ``spec``."""
    sources = load_spec_sources(spec)
    diagnostics: list[Diagnostic] = list(sources.diagnostics)
    diagnostics.extend(check_determinism(sources))
    cache_verdict = check_cache_safety(spec, sources)
    diagnostics.extend(cache_verdict.diagnostics)
    diagnostics.extend(check_registry_keys(spec, sources))
    diagnostics = filter_suppressed(diagnostics, get_source_line)

    analyzed = tuple(
        dict.fromkeys(source.name for source in sources.hooks if source.context == source.name)
    )
    return SpecReport(
        spec_class=type(spec).__qualname__,
        spec_name=str(getattr(spec, "name", type(spec).__name__)),
        diagnostics=tuple(diagnostics),
        hooks_analyzed=analyzed,
        weights_state_free=cache_verdict.weights_state_free,
    )


def verify_callable(fn, name: str = "") -> tuple[Diagnostic, ...]:
    """Determinism checks for a bare callable (walker selector, hint fn).

    Covers the closure dimension the spec rules cannot: a callable closing
    over a mutable object is flagged ``determinism/closure-mutable``.
    """
    label = name or getattr(fn, "__qualname__", repr(fn))
    diagnostics = check_callable_determinism(fn, label)
    return tuple(filter_suppressed(diagnostics, get_source_line))
