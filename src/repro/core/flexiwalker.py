"""The FlexiWalker facade: compile → profile → select → walk (Fig. 6).

.. deprecated::
    ``FlexiWalker.run`` / ``run_queries`` are legacy spellings kept for
    backward compatibility.  New code should use the session-based service
    API (:mod:`repro.service`), which keeps compiled workloads hot across
    requests, supports incremental query submission and streams results::

        from repro import WalkService, Node2VecSpec, load_dataset, make_queries

        graph = load_dataset("YT", weights="uniform")
        service = WalkService(graph)
        session = service.session(Node2VecSpec())
        session.submit(make_queries(graph.num_nodes, walk_length=80))
        result = session.collect()

    See ``MIGRATION.md`` for the full old → new mapping.

The facade still performs the full pipeline of the paper's Fig. 6 — it is
now a thin shim over a single-session :class:`~repro.service.WalkService`:

1. **Compile time** — Flexi-Compiler analyses the workload's ``get_weight``
   and generates the max/sum estimation helpers plus the per-node
   preprocessing (falling back to eRVS-only when the code is too complex).
2. **Profiling** — two lightweight kernels measure the device's
   rejection-vs-reservoir per-edge cost ratio (Section 5.1).
3. **Runtime** — walk queries are pulled from a dynamic queue, the cost model
   picks eRJS or eRVS per node per step, and the optimised kernels execute on
   the simulated device.

The parity suite (``tests/service/test_session_parity.py``) enforces that
the shim is bit-identical — paths, counters, simulated timings — to the
pre-service engine path.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.config import FlexiWalkerConfig
from repro.errors import ReproError
from repro.graph.csr import CSRGraph
from repro.runtime.engine import WalkRunResult
from repro.service.plan import DeviceFleet
from repro.service.service import WalkService
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkQuery, make_queries

_DEPRECATION_HINT = (
    "is deprecated; open a session on a WalkService instead "
    "(service = WalkService(graph); session = service.session(spec, config); "
    "session.submit(queries); session.collect()) — see MIGRATION.md"
)


class FlexiWalker:
    """End-to-end dynamic random walk framework on the simulated GPU.

    A convenience facade over a single-session :class:`~repro.service.WalkService`:
    construction compiles the workload, profiles the device and negotiates an
    execution plan; each (deprecated) ``run`` call opens a fresh session on
    the shared service, so repeated runs reuse every compiled artifact.

    Parameters
    ----------
    graph:
        The input graph (CSR).
    spec:
        The workload's gather-move-update logic.
    config:
        Pipeline configuration; defaults reproduce the paper's setup
        (cost-model selection, profiling on, overheads accounted).
    """

    def __init__(
        self,
        graph: CSRGraph,
        spec: WalkSpec,
        config: FlexiWalkerConfig | None = None,
    ) -> None:
        self.graph = graph
        self.spec = spec
        self.config = config or FlexiWalkerConfig()

        self.service = WalkService(
            graph, fleet=DeviceFleet(self.config.device, self.config.num_devices)
        )
        session = self.service.session(spec, self.config)

        # Legacy attribute surface (kept stable for downstream code).
        self.compiled = session.compiled
        self.profile = session.profile
        self.cost_model = session.cost_model
        self.selector = session.selector
        self.engine = session.engine
        self.plan = session.plan

    # ------------------------------------------------------------------ #
    def run(
        self,
        walk_length: int | None = None,
        num_queries: int | None = None,
        start_nodes: np.ndarray | None = None,
    ) -> WalkRunResult:
        """Create one query per node (or per requested start) and execute them.

        ``walk_length`` defaults to the workload's paper setting (80 steps,
        or the schema depth for MetaPath).

        .. deprecated:: use ``WalkService.session(...)`` +
           ``submit``/``collect`` instead.
        """
        warnings.warn(f"FlexiWalker.run {_DEPRECATION_HINT}", DeprecationWarning, stacklevel=2)
        length = self.spec.walk_length(walk_length)
        queries = make_queries(
            self.graph.num_nodes,
            walk_length=length,
            num_queries=num_queries,
            start_nodes=start_nodes,
            seed=self.config.seed,
        )
        return self._run_legacy(queries)

    def run_queries(self, queries: list[WalkQuery]) -> WalkRunResult:
        """Execute an explicit batch of walk queries.

        .. deprecated:: use ``WalkService.session(...)`` +
           ``submit``/``collect`` instead.
        """
        warnings.warn(
            f"FlexiWalker.run_queries {_DEPRECATION_HINT}", DeprecationWarning, stacklevel=2
        )
        return self._run_legacy(queries)

    def _run_legacy(self, queries: list[WalkQuery]) -> WalkRunResult:
        """One-shot execution through a fresh session on the shared service.

        The facade's own engine (and with it its selector) is threaded into
        every session, so the pre-service facade semantics hold exactly:
        engine knobs mutated in place (``step_overhead``,
        ``use_transition_cache``, ``scheduling``) affect subsequent runs,
        and stateful selection policies (``random``) keep advancing one
        shared generator across repeated ``run()`` calls instead of
        replaying the same coin flips.
        """
        if not queries:
            raise ReproError("no walk queries to execute")
        session = self.service.session(self.spec, self.config, engine=self.engine)
        session.submit(queries)
        return session.collect()

    # ------------------------------------------------------------------ #
    def describe(self) -> dict[str, object]:
        """Summary of the compiled/pipelined state (used by examples/docs)."""
        return {
            "workload": self.spec.describe(),
            "granularity": self.compiled.granularity.name,
            "compiler_supported": self.compiled.supported,
            "compiler_warnings": list(self.compiled.analysis.warnings),
            "edge_cost_ratio": self.cost_model.edge_cost_ratio,
            "selector": self.selector.name,
            "device": self.config.device.name,
            "execution": self.config.execution,
            "num_devices": self.config.num_devices,
            "partition_policy": self.config.partition_policy,
        }
