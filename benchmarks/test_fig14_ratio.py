"""Benchmark: Fig. 14 — ratio of the chosen sampling method across weight skews."""

from __future__ import annotations

from bench_helpers import run_once

from repro.bench.config import ExperimentConfig
from repro.bench.experiments import fig14_ratio as experiment


def test_fig14_ratio(benchmark):
    config = ExperimentConfig(num_queries=64, walk_length=8, datasets=("YT", "EU", "SK"))
    result = run_once(benchmark, experiment, config)
    # Rejection sampling is selected less as the distribution becomes more
    # skewed: the eRJS fraction at alpha=1 is below the fraction at alpha=4
    # for every dataset.
    by_dataset: dict[str, dict[float, float]] = {}
    for row in result["rows"]:
        by_dataset.setdefault(row["dataset"], {})[row["alpha"]] = row["eRJS_fraction"]
    for dataset, fractions in by_dataset.items():
        assert fractions[1.0] <= fractions[4.0], dataset
