"""Code analyser: dependency checker and flag allocator (Fig. 9b/9c).

The analyser parses the Python source of a walk specification's
``get_weight`` method and extracts the information the code generator needs:

* the **assignment statements** that can influence a return value (the
  dependency checker keeps these so the generated helpers can replay them);
* which of those assignments read **edge-indexed arrays** such as
  ``graph.weights[edge]`` — these are the variables that will be substituted
  with preprocessed per-node MAX/SUM aggregates;
* every **return expression** (the leaves of the simplified syntax tree of
  Fig. 9b);
* the **granularity flag**: PER_STEP when any return expression transitively
  depends on an edge-indexed variable, PER_KERNEL otherwise;
* whether the code contains **unsupported constructs** (data-dependent loops,
  recursion, nested functions, warp intrinsics, ...) in which case the
  framework falls back to eRVS-only mode (Section 7.1) instead of failing.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field

from repro.compiler.flags import BoundGranularity
from repro.walks.spec import WalkSpec

#: Edge arrays whose per-node aggregates the preprocessor can provide.
#: ``indices`` is deliberately absent: a return value built from neighbour
#: *ids* cannot be bounded by an aggregate, so it triggers the fallback.
_AGGREGATABLE_ARRAYS = ("weights", "labels")

#: Names that indicate inter-thread communication in user code; the
#: concurrent RJS/RVS kernel cannot host these (Section 5.2), so they are
#: reported as warnings and force the fallback path.
_WARP_INTRINSIC_NAMES = ("ballot_sync", "shfl_sync", "syncwarp", "syncthreads")


@dataclass(frozen=True)
class EdgeIndexedVariable:
    """A local variable assigned from an edge-indexed graph array."""

    name: str
    source_array: str


@dataclass
class AnalysisResult:
    """Outcome of analysing one ``get_weight`` implementation.

    Attributes
    ----------
    assignments:
        Ordered ``(name, value expression)`` pairs for every simple
        assignment in the function body (the replayable dependency set).
    edge_indexed:
        Variables read from edge-indexed arrays, with their source array.
    return_expressions:
        The AST of every ``return`` expression, in source order.
    return_dependencies:
        For each return expression, the set of local variable names it
        (transitively) depends on.
    granularity:
        PER_KERNEL / PER_STEP flag (see :class:`BoundGranularity`).
    reads_state:
        True when the walker-state parameter is referenced *anywhere* in the
        function body — conditions included, not just return expressions.
        When False, ``get_weight`` is a pure function of ``(graph, edge)``,
        so the transition weight of an edge never changes across steps; the
        runtime uses this to enable cross-superstep transition caching.
    supported:
        False when unsupported constructs were found; the framework then runs
        eRVS-only.
    warnings:
        Human-readable reasons for the fallback (empty when supported).
    argument_names:
        The parameter names of ``get_weight`` in declaration order
        (conventionally ``self, graph, state, edge``).
    """

    assignments: list[tuple[str, ast.expr]] = field(default_factory=list)
    edge_indexed: list[EdgeIndexedVariable] = field(default_factory=list)
    return_expressions: list[ast.expr] = field(default_factory=list)
    return_dependencies: list[set[str]] = field(default_factory=list)
    granularity: BoundGranularity = BoundGranularity.PER_KERNEL
    reads_state: bool = True
    supported: bool = True
    warnings: list[str] = field(default_factory=list)
    argument_names: tuple[str, ...] = ()

    @property
    def edge_indexed_names(self) -> set[str]:
        return {var.name for var in self.edge_indexed}

    def source_array_for(self, name: str) -> str | None:
        for var in self.edge_indexed:
            if var.name == name:
                return var.source_array
        return None


# ---------------------------------------------------------------------- #
# Helpers
# ---------------------------------------------------------------------- #
def _get_weight_ast(spec: WalkSpec) -> ast.FunctionDef | None:
    """Parse the source of ``spec.get_weight`` into a function AST.

    Returns ``None`` when the source is unavailable (REPL/exec-defined
    specs) or does not parse; the caller degrades to eRVS-only with a
    warning instead of failing the whole compile.
    """
    try:
        source = inspect.getsource(spec.get_weight)
    except (OSError, TypeError):
        return None
    try:
        tree = ast.parse(textwrap.dedent(source))
    except SyntaxError:
        return None
    fallback: ast.FunctionDef | None = None
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            if node.name == "get_weight":
                return node
            if fallback is None:
                fallback = node
    # A decorator without functools.wraps leaves only the wrapper's def in
    # the snippet; analysing it is still better than refusing outright.
    return fallback


def _names_in(expr: ast.AST) -> set[str]:
    """All bare variable names referenced inside an expression."""
    return {node.id for node in ast.walk(expr) if isinstance(node, ast.Name)}


def _edge_indexed_source(value: ast.expr, edge_arg: str, graph_arg: str) -> str | None:
    """Detect ``graph.<array>[... edge ...]`` reads; return the array name."""
    if not isinstance(value, ast.Subscript):
        return None
    if edge_arg not in _names_in(value.slice):
        return None
    target = value.value
    if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
        if target.value.id == graph_arg:
            return target.attr
    return None


def _contains_unsupported(func: ast.FunctionDef) -> list[str]:
    """Scan for constructs the code generator cannot reason about."""
    reasons: list[str] = []
    own_name = func.name
    for node in ast.walk(func):
        if isinstance(node, (ast.For, ast.While)):
            reasons.append("loop with a potentially data-dependent exit")
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
            reasons.append("nested function definition")
        elif isinstance(node, ast.Lambda):
            reasons.append("lambda expression")
        elif isinstance(node, (ast.Try, ast.Raise)):
            reasons.append("exception handling")
        elif isinstance(node, ast.Call):
            callee = node.func
            name = callee.attr if isinstance(callee, ast.Attribute) else getattr(callee, "id", "")
            if name == own_name:
                reasons.append("recursive call to get_weight")
            if any(intrinsic in name for intrinsic in _WARP_INTRINSIC_NAMES):
                reasons.append(f"inter-thread communication intrinsic {name!r}")
    return reasons


def _transitive_dependencies(
    expr: ast.expr,
    assignment_map: dict[str, ast.expr],
) -> set[str]:
    """Variables the expression depends on, following assignment chains."""
    seen: set[str] = set()
    frontier = _names_in(expr)
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        if name in assignment_map:
            frontier |= _names_in(assignment_map[name]) - seen
    return seen


# ---------------------------------------------------------------------- #
# Public entry point
# ---------------------------------------------------------------------- #
def analyze_get_weight(spec: WalkSpec) -> AnalysisResult:
    """Analyse ``spec.get_weight`` and return the dependency/flag table."""
    func = _get_weight_ast(spec)
    if func is None:
        # No source, no analysis: stay conservative (reads_state=True keeps
        # the transition cache off) and run eRVS-only.
        result = AnalysisResult()
        result.supported = False
        result.warnings = [
            f"cannot obtain the source of {type(spec).__name__}.get_weight "
            "(REPL/exec-defined spec?); running eRVS-only"
        ]
        return result
    args = tuple(arg.arg for arg in func.args.args)
    # Conventional parameter order: self, graph, state, edge.  Positions are
    # resolved from the declaration so renamed parameters still work.
    graph_arg = args[1] if len(args) > 1 else "graph"
    state_arg = args[2] if len(args) > 2 else "state"
    edge_arg = args[3] if len(args) > 3 else "edge"

    result = AnalysisResult(argument_names=args)
    # Whole-body state usage (branch conditions count: a state-dependent
    # branch makes the *value* state-dependent even when every return
    # expression is state-free).
    result.reads_state = state_arg in _names_in(func)

    reasons = _contains_unsupported(func)
    if reasons:
        result.supported = False
        result.warnings = sorted(set(reasons))

    assignment_map: dict[str, ast.expr] = {}
    # Visit statements in source order so the generated helpers can replay the
    # assignment chain exactly as the user wrote it.  Walrus expressions and
    # augmented assignments join the dependency table like plain assignments:
    # ``x := v`` binds ``v`` and ``x op= v`` rebinds ``x`` to ``x op v``.
    ordered_nodes = sorted(
        (
            n
            for n in ast.walk(func)
            if isinstance(n, (ast.Assign, ast.AugAssign, ast.NamedExpr, ast.Return))
        ),
        key=lambda n: (n.lineno, n.col_offset),
    )

    def record(name: str, value: ast.expr) -> None:
        result.assignments.append((name, value))
        assignment_map[name] = value
        source = _edge_indexed_source(value, edge_arg, graph_arg)
        if source is not None:
            result.edge_indexed.append(EdgeIndexedVariable(name=name, source_array=source))

    for node in ordered_nodes:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            record(node.targets[0].id, node.value)
        elif isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
            record(node.target.id, node.value)
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            name = node.target.id
            expanded = ast.copy_location(
                ast.BinOp(
                    left=ast.copy_location(ast.Name(id=name, ctx=ast.Load()), node),
                    op=node.op,
                    right=node.value,
                ),
                node,
            )
            record(name, expanded)
        elif isinstance(node, ast.Return) and node.value is not None:
            result.return_expressions.append(node.value)

    if not result.return_expressions:
        result.supported = False
        result.warnings.append("get_weight has no return expression")
        return result

    # Flag allocation: PER_STEP when any return value transitively depends on
    # an edge-indexed variable read from an aggregatable array; a dependence
    # on a non-aggregatable edge-indexed read (e.g. graph.indices[edge]) means
    # no bound can be generated at all.
    edge_names = result.edge_indexed_names
    per_step = False
    for expr in result.return_expressions:
        deps = _transitive_dependencies(expr, assignment_map)
        result.return_dependencies.append(deps)
        touched = deps & edge_names
        for name in touched:
            source = result.source_array_for(name)
            if source in _AGGREGATABLE_ARRAYS:
                per_step = True
            else:
                result.supported = False
                result.warnings.append(
                    f"return value depends on non-aggregatable edge array graph.{source}[{edge_arg}]"
                )
    result.granularity = BoundGranularity.PER_STEP if per_step else BoundGranularity.PER_KERNEL
    result.warnings = sorted(set(result.warnings))
    return result
