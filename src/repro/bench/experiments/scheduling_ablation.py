"""Design-choice ablation — dynamic query scheduling (Section 5.3).

FlexiWalker pulls walk queries from a global atomic-counter queue so that a
processing unit grabs new work the moment it finishes, instead of being
assigned a fixed contiguous range up front.  This experiment quantifies that
design choice on the reproduction's simulator: the same per-query work is
replayed under both policies and the makespan, utilisation and load imbalance
are compared.  (This ablation is called out in DESIGN.md; the paper describes
the mechanism but does not plot it separately.)
"""

from __future__ import annotations

import dataclasses

from repro.bench.config import ExperimentConfig
from repro.bench.runner import prepare_graph, prepare_queries, run_flexiwalker, scaled_device_for
from repro.bench.tables import format_table
from repro.gpusim.executor import KernelExecutor

WORKLOAD = "node2vec"


def run_experiment(config: ExperimentConfig | None = None) -> dict:
    """Replay FlexiWalker's per-query work under dynamic vs static scheduling."""
    config = config or ExperimentConfig.quick()
    rows: list[dict] = []

    for dataset in config.datasets:
        graph = prepare_graph(dataset, WORKLOAD, weights="uniform")
        queries = prepare_queries(graph, WORKLOAD, config)
        run = run_flexiwalker(dataset, WORKLOAD, config, graph=graph, queries=queries, check_memory=False)
        per_query_ns = run.result.per_query_ns
        device = scaled_device_for("gpu", len(queries), config.waves)
        executor = KernelExecutor(device)
        # The atomic queue fetches are already part of the per-query times, so
        # the replay isolates purely the assignment policy.
        dynamic = executor.execute(per_query_ns, scheduling="dynamic", queue_atomic_ns=0.0)
        static = executor.execute(per_query_ns, scheduling="static")
        rows.append(
            {
                "dataset": dataset,
                "dynamic_ms": dynamic.time_ms,
                "static_ms": static.time_ms,
                "speedup": static.time_ns / dynamic.time_ns if dynamic.time_ns else float("nan"),
                "dynamic_imbalance": dynamic.load_imbalance,
                "static_imbalance": static.load_imbalance,
            }
        )

    return {
        "rows": rows,
        "config": config,
        "paper_reference": "Section 5.3 design choice: dynamic query scheduling vs static ranges",
    }


def format_result(result: dict) -> str:
    headers = ["dataset", "dynamic_ms", "static_ms", "speedup", "dynamic_imbalance", "static_imbalance"]
    return format_table(
        headers,
        [[row[h] for h in headers] for row in result["rows"]],
        title="Scheduling ablation — dynamic queue vs static ranges",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_result(run_experiment()))


if __name__ == "__main__":  # pragma: no cover
    main()
