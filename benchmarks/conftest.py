"""Shared fixtures for the pytest-benchmark suite.

Each benchmark wraps one experiment module from
:mod:`repro.bench.experiments` (one per table/figure of the paper).  The
experiment configurations below scale the paper's sweeps down to the
synthetic scale-model graphs so the full benchmark suite completes in a few
minutes on a laptop.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

try:  # pragma: no cover - trivial import guard
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.config import ExperimentConfig  # noqa: E402


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    """The standard quick configuration used by most benchmarks."""
    return ExperimentConfig(num_queries=96, walk_length=10, datasets=("YT", "CP", "OK", "EU"))


@pytest.fixture(scope="session")
def small_config() -> ExperimentConfig:
    """A lighter configuration for the widest sweeps (Table 2, Fig. 10)."""
    return ExperimentConfig(num_queries=64, walk_length=8, datasets=("YT", "CP", "OK", "EU"))


@pytest.fixture(scope="session")
def large_graph_config() -> ExperimentConfig:
    """Configuration that includes the larger scale models (EU/AB/TW/SK/FS)."""
    return ExperimentConfig(num_queries=96, walk_length=8, datasets=("EU", "AB", "TW", "SK", "FS"))
