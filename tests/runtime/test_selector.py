"""Tests for the sampling-strategy selection policies."""

from __future__ import annotations

import pytest

from repro.errors import RuntimeSelectionError
from repro.runtime.cost_model import CostModel
from repro.runtime.selector import (
    CostModelSelector,
    DegreeBasedSelector,
    FixedSelector,
    RandomSelector,
)
from repro.sampling.erjs import EnhancedRejectionSampler
from repro.sampling.ervs import EnhancedReservoirSampler
from repro.walks.spec import UniformWalkSpec

from tests.conftest import make_ctx


class TestCostModelSelector:
    def test_prefers_rejection_when_weights_flat(self, tiny_graph):
        selector = CostModelSelector(CostModel(edge_cost_ratio=2.0))
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0, bound_hint=1.0, sum_hint=100.0)
        assert isinstance(selector.select(ctx), EnhancedRejectionSampler)

    def test_prefers_reservoir_when_weights_skewed(self, tiny_graph):
        selector = CostModelSelector(CostModel(edge_cost_ratio=8.0))
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0, bound_hint=50.0, sum_hint=60.0)
        assert isinstance(selector.select(ctx), EnhancedReservoirSampler)

    def test_missing_hints_fall_back_to_reservoir(self, tiny_graph):
        selector = CostModelSelector()
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0)
        assert isinstance(selector.select(ctx), EnhancedReservoirSampler)

    def test_selection_charges_a_small_cost(self, tiny_graph):
        selector = CostModelSelector()
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0, bound_hint=1.0, sum_hint=10.0)
        selector.select(ctx)
        assert ctx.counters.coalesced_accesses == 2
        assert ctx.counters.weight_computations == 2

    def test_default_cost_model_constructed(self):
        assert CostModelSelector().cost_model.edge_cost_ratio > 0


class TestFixedSelector:
    def test_always_returns_the_given_sampler(self, tiny_graph):
        sampler = EnhancedReservoirSampler()
        selector = FixedSelector(sampler)
        for _ in range(3):
            ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0)
            assert selector.select(ctx) is sampler

    def test_name_reflects_sampler(self):
        assert FixedSelector(EnhancedRejectionSampler()).name == "fixed_erjs"


class TestRandomSelector:
    def test_selects_both_kernels_over_many_draws(self, tiny_graph):
        selector = RandomSelector(seed=3)
        seen = set()
        for _ in range(100):
            ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0)
            seen.add(type(selector.select(ctx)).__name__)
        assert seen == {"EnhancedRejectionSampler", "EnhancedReservoirSampler"}

    def test_deterministic_by_seed(self, tiny_graph):
        a = RandomSelector(seed=5)
        b = RandomSelector(seed=5)
        for _ in range(20):
            ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0)
            assert type(a.select(ctx)) is type(b.select(ctx))


class TestDegreeBasedSelector:
    def test_low_degree_uses_reservoir(self, tiny_graph):
        selector = DegreeBasedSelector(threshold=100)
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0)
        assert isinstance(selector.select(ctx), EnhancedReservoirSampler)

    def test_high_degree_uses_rejection(self, tiny_graph):
        selector = DegreeBasedSelector(threshold=2)
        ctx = make_ctx(tiny_graph, UniformWalkSpec(), node=0)
        assert isinstance(selector.select(ctx), EnhancedRejectionSampler)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(RuntimeSelectionError):
            DegreeBasedSelector(threshold=0)


class TestDegreeThresholdRule:
    """The declarative rule path of the base select_batch."""

    def test_degree_selector_exposes_a_rule(self):
        selector = DegreeBasedSelector(threshold=7)
        rule = selector.batch_rule()
        assert rule is not None
        assert rule.threshold == 7
        assert isinstance(rule.above, EnhancedRejectionSampler)
        assert isinstance(rule.below, EnhancedReservoirSampler)

    def test_custom_threshold_selector_gets_vectorised_for_free(self, tiny_graph):
        """A custom selector declaring a rule never touches the scalar bridge."""
        from repro.runtime.selector import DegreeThresholdRule, SamplerSelector

        class MyThresholdSelector(SamplerSelector):
            def __init__(self):
                self._hi = EnhancedRejectionSampler()
                self._lo = EnhancedReservoirSampler()

            def select(self, ctx):  # pragma: no cover - rule path is used
                raise AssertionError("scalar bridge must not run")

            def batch_rule(self):
                return DegreeThresholdRule(
                    threshold=2, above=self._hi, below=self._lo, charge=()
                )

        import numpy as np

        from repro.gpusim.counters import CounterBatch
        from repro.rng.streams import StreamPool
        from repro.sampling.batch import BatchStepContext
        from repro.walks.spec import UniformWalkSpec
        from repro.walks.state import WalkerFrontier, WalkQuery

        queries = [WalkQuery(query_id=i, start_node=i % tiny_graph.num_nodes,
                             max_length=2) for i in range(4)]
        frontier = WalkerFrontier(queries)
        walkers = np.arange(4)
        ctx = BatchStepContext(
            graph=tiny_graph,
            spec=UniformWalkSpec(),
            frontier=frontier,
            walkers=walkers,
            rng=StreamPool(0).batch([0, 1, 2, 3]),
            counters=CounterBatch(4),
            slots=np.arange(4),
        )
        selector = MyThresholdSelector()
        samplers, assignment = selector.select_batch(ctx)
        assert samplers == [selector._hi, selector._lo]
        degrees = ctx.degrees
        assert np.array_equal(assignment, np.where(degrees >= 2, 0, 1))
