"""System runners shared by every experiment.

This module knows how to

* load the right scale-model graph for a (dataset, workload, weight-scheme)
  combination,
* scale the device presets so the scale-model query batches oversubscribe the
  simulated hardware the way the paper-scale batches oversubscribe a real
  A6000 (keeping the GPU-to-CPU parallelism ratio intact),
* run either a baseline system or FlexiWalker on that graph and classify the
  outcome as ``ok`` / ``OOM`` / ``OOT`` exactly like the paper's tables.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.baselines.base import BaselineSystem
from repro.baselines.registry import make_baseline
from repro.bench.config import ExperimentConfig
from repro.core.config import FlexiWalkerConfig
from repro.errors import BenchmarkError
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DATASETS, DatasetSpec, load_dataset
from repro.gpusim.device import A6000, EPYC_9124P, DeviceSpec
from repro.gpusim.memory import MemoryModel
from repro.runtime.engine import WalkRunResult
from repro.service import DeviceFleet, WalkService
from repro.walks.registry import WORKLOADS, make_workload
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkQuery, make_queries

#: Memory model used for FlexiWalker's own OOM check (same footprint class as
#: FlowWalker: CSR plus per-query walker state, no auxiliary per-edge data).
FLEXIWALKER_MEMORY = MemoryModel(graph_overhead=1.0, per_query_bytes=112)


@dataclass
class SystemRun:
    """Outcome of running one system on one (dataset, workload) cell."""

    system: str
    dataset: str
    workload: str
    status: str
    time_ms: float | None
    result: WalkRunResult | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def cell(self) -> str:
        """Table-cell rendering: a time in ms, or the failure tag."""
        if not self.ok:
            return self.status
        return f"{self.time_ms:.4f}"


# ---------------------------------------------------------------------- #
# Device scaling
# ---------------------------------------------------------------------- #
def scaled_device_for(platform: str, num_queries: int, waves: int = 12) -> DeviceSpec:
    """Scale the device presets to the experiment's query count.

    The GPU preset is shrunk so each lane receives ``waves`` queries (the
    paper-scale runs oversubscribe the real device by orders of magnitude);
    the CPU preset is shrunk by the *same factor* so the GPU-to-CPU
    parallelism ratio — the source of the paper's CPU/GPU gap — is preserved.
    """
    if platform not in ("gpu", "cpu"):
        raise BenchmarkError(f"unknown platform {platform!r}")
    target_gpu_lanes = max(2, num_queries // max(waves, 1))
    factor = target_gpu_lanes / A6000.parallel_lanes
    if platform == "gpu":
        return A6000.scaled(factor, name="A6000 (scaled)")
    return EPYC_9124P.scaled(factor, name="EPYC 9124P (scaled)")


# ---------------------------------------------------------------------- #
# Graph / query preparation
# ---------------------------------------------------------------------- #
def prepare_graph(
    dataset: str,
    workload: str,
    weights: str = "uniform",
    alpha: float = 2.0,
) -> CSRGraph:
    """Load the dataset scale-model with the weight scheme a workload needs.

    Unweighted workload variants ignore the property weights (``h = 1``), so
    their graphs are loaded with constant weights regardless of the requested
    scheme — mirroring the paper's (un)weighted configurations.
    """
    entry = WORKLOADS.get(workload)
    if entry is None:
        raise BenchmarkError(f"unknown workload {workload!r}")
    scheme = weights if entry.weighted else "unweighted"
    return load_dataset(dataset, weights=scheme, alpha=alpha)


def prepare_queries(graph: CSRGraph, workload: str, config: ExperimentConfig) -> list[WalkQuery]:
    """Build the query batch for one experiment cell."""
    spec = make_workload(workload)
    length = spec.default_walk_length if workload.startswith("metapath") else config.walk_length
    return make_queries(
        graph.num_nodes,
        walk_length=length,
        num_queries=min(config.num_queries, graph.num_nodes),
        seed=config.seed,
    )


def _classify(
    time_ms: float,
    result: WalkRunResult,
    config: ExperimentConfig,
) -> str:
    if config.oot_limit_ms is not None and time_ms > config.oot_limit_ms:
        return "OOT"
    return "ok"


# ---------------------------------------------------------------------- #
# System runners
# ---------------------------------------------------------------------- #
def run_baseline(
    name: str,
    dataset: str,
    workload: str,
    config: ExperimentConfig,
    graph: CSRGraph | None = None,
    queries: list[WalkQuery] | None = None,
    weights: str = "uniform",
    alpha: float = 2.0,
    weight_bytes: int = 8,
    check_memory: bool = True,
) -> SystemRun:
    """Run one baseline system on one (dataset, workload) cell."""
    system = make_baseline(name)
    graph = prepare_graph(dataset, workload, weights=weights, alpha=alpha) if graph is None else graph
    queries = prepare_queries(graph, workload, config) if queries is None else queries

    dataset_spec: DatasetSpec = DATASETS[dataset.upper()]
    if check_memory and system.is_gpu and not system.fits_in_memory(dataset_spec, len(queries)):
        return SystemRun(system=name, dataset=dataset, workload=workload, status="OOM", time_ms=None)

    device = scaled_device_for(system.platform, len(queries), config.waves)
    system = dataclasses.replace(system, device=device)
    spec = make_workload(workload)
    result = system.run(graph, spec, queries, seed=config.seed, weight_bytes=weight_bytes)
    status = _classify(result.time_ms, result, config)
    return SystemRun(
        system=name,
        dataset=dataset,
        workload=workload,
        status=status,
        time_ms=result.time_ms if status == "ok" else None,
        result=result,
    )


def run_fixed_sampler(
    dataset: str,
    workload: str,
    config: ExperimentConfig,
    sampler,
    label: str,
    use_hints: bool = False,
    graph: CSRGraph | None = None,
    queries: list[WalkQuery] | None = None,
    weights: str = "uniform",
    alpha: float = 2.0,
    weight_bytes: int = 8,
) -> SystemRun:
    """Run a single fixed kernel on the simulated GPU (kernel ablations, Fig. 12).

    ``use_hints`` attaches the compiler-generated bound/sum helpers, which is
    what turns the plain rejection kernel into eRJS.
    """
    from repro.compiler.generator import compile_workload
    from repro.runtime.engine import WalkEngine
    from repro.runtime.selector import FixedSelector

    graph = prepare_graph(dataset, workload, weights=weights, alpha=alpha) if graph is None else graph
    queries = prepare_queries(graph, workload, config) if queries is None else queries
    device = scaled_device_for("gpu", len(queries), config.waves)
    spec = make_workload(workload)
    compiled = compile_workload(spec, graph, device=device) if use_hints else None
    engine = WalkEngine(
        graph=graph,
        spec=spec,
        device=device,
        selector=FixedSelector(sampler),
        compiled=compiled,
        seed=config.seed,
        weight_bytes=weight_bytes,
    )
    result = engine.run(queries)
    status = _classify(result.time_ms, result, config)
    return SystemRun(
        system=label,
        dataset=dataset,
        workload=workload,
        status=status,
        time_ms=result.time_ms if status == "ok" else None,
        result=result,
    )


def run_flexiwalker(
    dataset: str,
    workload: str,
    config: ExperimentConfig,
    graph: CSRGraph | None = None,
    queries: list[WalkQuery] | None = None,
    weights: str = "uniform",
    alpha: float = 2.0,
    selection: str = "cost_model",
    weight_bytes: int = 8,
    degree_threshold: int | None = None,
    check_memory: bool = True,
) -> SystemRun:
    """Run FlexiWalker (or one of its ablated selection policies) on one cell."""
    graph = prepare_graph(dataset, workload, weights=weights, alpha=alpha) if graph is None else graph
    queries = prepare_queries(graph, workload, config) if queries is None else queries

    dataset_spec = DATASETS[dataset.upper()]
    if check_memory and FLEXIWALKER_MEMORY.required_bytes(
        dataset_spec.paper_nodes, dataset_spec.paper_edges, len(queries), weight_bytes=min(weight_bytes, 4)
    ) > A6000.memory_bytes:
        return SystemRun(system="FlexiWalker", dataset=dataset, workload=workload, status="OOM", time_ms=None)

    device = scaled_device_for("gpu", len(queries), config.waves)
    # The degree-based selection baseline uses the paper's fixed threshold of
    # 1000 neighbours unless the caller pins a different one.
    threshold = 1000 if degree_threshold is None else degree_threshold
    fw_config = FlexiWalkerConfig(
        device=device,
        selection=selection,
        degree_threshold=threshold,
        weight_bytes=weight_bytes,
        seed=config.seed,
    )
    spec = make_workload(workload)
    service = WalkService(graph, fleet=DeviceFleet(device, fw_config.num_devices))
    session = service.session(spec, fw_config)
    session.submit(queries)
    result = session.collect()
    status = _classify(result.time_ms, result, config)
    label = "FlexiWalker" if selection == "cost_model" else f"FlexiWalker[{selection}]"
    return SystemRun(
        system=label,
        dataset=dataset,
        workload=workload,
        status=status,
        time_ms=result.time_ms if status == "ok" else None,
        result=result,
    )
