"""Tests for edge labels and schema reachability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import barabasi_albert_graph
from repro.graph.labels import random_edge_labels, schema_reachable_fraction


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(60, 3, seed=2)


class TestRandomEdgeLabels:
    def test_shape_and_range(self, graph):
        labels = random_edge_labels(graph, num_labels=5, seed=1)
        assert labels.shape == (graph.num_edges,)
        assert labels.min() >= 0
        assert labels.max() < 5

    def test_all_labels_appear(self, graph):
        labels = random_edge_labels(graph, num_labels=5, seed=1)
        assert set(np.unique(labels)) == {0, 1, 2, 3, 4}

    def test_deterministic(self, graph):
        assert np.array_equal(
            random_edge_labels(graph, seed=7), random_edge_labels(graph, seed=7)
        )

    def test_invalid_label_count(self, graph):
        with pytest.raises(GraphError):
            random_edge_labels(graph, num_labels=0)


class TestSchemaReachability:
    def test_requires_labels(self, graph):
        with pytest.raises(GraphError):
            schema_reachable_fraction(graph, (0,))

    def test_fraction_between_zero_and_one(self, graph):
        labelled = graph.with_labels(random_edge_labels(graph, num_labels=5, seed=3))
        frac = schema_reachable_fraction(labelled, (0, 1, 2))
        assert 0.0 <= frac <= 1.0

    def test_single_label_schema_on_uniform_labels(self, graph):
        labelled = graph.with_labels(np.zeros(graph.num_edges, dtype=np.int64))
        assert schema_reachable_fraction(labelled, (0,)) == pytest.approx(1.0)
        assert schema_reachable_fraction(labelled, (1,)) == pytest.approx(0.0)

    def test_empty_schema_rejected(self, graph):
        labelled = graph.with_labels(random_edge_labels(graph, seed=1))
        with pytest.raises(GraphError):
            schema_reachable_fraction(labelled, ())
