"""Benchmark: Fig. 10 — power-law and degree-based weight distributions."""

from __future__ import annotations

from bench_helpers import run_once

from repro.bench.config import ExperimentConfig
from repro.bench.experiments import fig10_powerlaw as experiment


def test_fig10_powerlaw(benchmark):
    config = ExperimentConfig(num_queries=64, walk_length=8, datasets=("YT", "EU", "SK"))
    result = run_once(benchmark, experiment, config)
    summary = result["summary"]
    # FlexiWalker wins against both baselines across the sweep, with the
    # larger margin against NextDoor (as in the paper's 26.6x vs 4.37x).
    assert summary["geomean_speedup_over_NextDoor"] > 1.0
    assert summary["geomean_speedup_over_FlowWalker"] > 1.0
    assert summary["geomean_speedup_over_NextDoor"] > summary["geomean_speedup_over_FlowWalker"]
    # NextDoor hits simulated OOM on the SK scale model (paper: OOM on SK).
    sk_cells = [row["NextDoor"] for row in result["rows"] if row["dataset"] == "SK"]
    assert all(cell == "OOM" for cell in sk_cells)
