"""Tests for edge-list and npz graph I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.builders import from_edge_list
from repro.graph.io import load_csr_npz, read_edge_list, save_csr_npz, write_edge_list


@pytest.fixture
def graph():
    return from_edge_list(
        [(0, 1), (0, 2), (1, 2), (2, 0)],
        weights=[1.0, 2.0, 3.0, 4.0],
        labels=[0, 1, 2, 3],
        name="io-test",
    )


class TestEdgeListIO:
    def test_write_then_read_round_trip(self, graph, tmp_path):
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path, weighted=True)
        assert loaded.num_nodes == graph.num_nodes
        assert np.array_equal(loaded.indices, graph.indices)
        assert np.allclose(loaded.weights, graph.weights)

    def test_read_unweighted(self, graph, tmp_path):
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path, include_weights=False)
        loaded = read_edge_list(path)
        assert np.all(loaded.weights == 1.0)

    def test_read_with_labels(self, tmp_path):
        path = tmp_path / "labelled.txt"
        path.write_text("0 1 2.0 3\n1 0 1.5 1\n")
        loaded = read_edge_list(path, weighted=True, labeled=True)
        assert loaded.has_labels
        assert loaded.edge_labels(0)[0] == 3

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "comments.txt"
        path.write_text("# header\n\n0 1\n# another\n1 0\n")
        assert read_edge_list(path).num_edges == 2

    def test_missing_columns_raise(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path, weighted=True)

    def test_non_numeric_raises(self, tmp_path):
        path = tmp_path / "bad2.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mygraph.txt"
        path.write_text("0 1\n")
        assert read_edge_list(path).name == "mygraph"


class TestNpzIO:
    def test_round_trip_preserves_everything(self, graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_csr_npz(graph, path)
        loaded = load_csr_npz(path)
        assert np.array_equal(loaded.indptr, graph.indptr)
        assert np.array_equal(loaded.indices, graph.indices)
        assert np.allclose(loaded.weights, graph.weights)
        assert np.array_equal(loaded.labels, graph.labels)
        assert loaded.name == "io-test"

    def test_round_trip_without_labels(self, tmp_path):
        g = from_edge_list([(0, 1)], num_nodes=2)
        path = tmp_path / "nolabel.npz"
        save_csr_npz(g, path)
        assert load_csr_npz(path).labels is None

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(GraphFormatError):
            load_csr_npz(tmp_path / "does-not-exist.npz")
