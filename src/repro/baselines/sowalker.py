"""SOWalker (Wu et al., ATC 2023): I/O-optimised out-of-core second-order walks.

SOWalker processes graphs larger than host memory by streaming blocks from
disk and maximising the walk work done per loaded block.  Its sampling uses
rejection/inverse-transform strategies on the CPU; the block reload traffic
is modelled as extra sequential accesses proportional to the neighbour lists
touched, which keeps it well behind the in-memory and GPU systems — the
ordering Table 2 reports.
"""

from __future__ import annotations

from repro.baselines.base import BaselineSystem
from repro.compiler.analyzer import analyze_get_weight
from repro.compiler.flags import BoundGranularity
from repro.gpusim.device import EPYC_9124P
from repro.gpusim.memory import MemoryModel
from repro.sampling.base import Sampler, StepContext
from repro.sampling.its import InverseTransformSampler
from repro.sampling.rejection import RejectionSampler
from repro.walks.spec import WalkSpec


def _sampler(spec: WalkSpec) -> Sampler:
    analysis = analyze_get_weight(spec)
    if analysis.supported and analysis.granularity is BoundGranularity.PER_KERNEL:
        return RejectionSampler()
    return InverseTransformSampler()


def _block_io_overhead(ctx: StepContext, sampler: Sampler) -> None:
    """Out-of-core block reload amplification: the neighbour block is re-read
    from the I/O layer before it can be sampled."""
    ctx.counters.coalesced_accesses += 2 * ctx.degree


def make_sowalker() -> BaselineSystem:
    """Build the SOWalker baseline model."""
    return BaselineSystem(
        name="SOWalker",
        platform="cpu",
        device=EPYC_9124P,
        sampler_factory=_sampler,
        description="Out-of-core CPU walk system; block I/O amplification per step",
        memory_model=MemoryModel(graph_overhead=0.3, per_query_bytes=160),
        step_overhead=_block_io_overhead,
        scheduling="static",
        uses_static_bound=True,
    )
