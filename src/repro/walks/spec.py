"""The gather-move-update walk specification interface.

Users of FlexiWalker implement three functions (Section 4.2):

* ``init``        — set workload-specific hyperparameters,
* ``get_weight``  — compute the transition weight of one edge,
* ``update``      — update query-specific parameters after each step.

``get_weight`` receives the graph, the walker state and the *global edge
index* of the candidate edge, and returns the full transition weight
``w̃(v, u) = w(v, u) · h(v, u)`` — exactly the contract of the CUDA API in
Fig. 9a.  Flexi-Compiler statically analyses the Python source of this method
to generate the max/sum estimation helpers used by eRJS and the runtime cost
model.

For execution speed, a spec may also override ``transition_weights`` with a
vectorised implementation that returns the weights of every out-edge of the
current node at once; the default implementation simply loops over
``get_weight``.  Both paths must agree — the test suite checks this for every
built-in workload.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import WalkSpecError
from repro.graph.csr import CSRGraph
from repro.walks.state import WalkerFrontier, WalkerState

if TYPE_CHECKING:  # pragma: no cover - sampling imports walks, not vice versa
    from repro.sampling.batch import BatchStepContext


class WalkSpec(ABC):
    """Base class for dynamic random walk workloads.

    Attributes
    ----------
    name:
        Workload tag used in result tables.
    is_dynamic:
        True when the transition weights depend on walker state (everything
        except DeepWalk here).
    default_walk_length:
        The walk length the paper uses for this workload (80, or the schema
        depth for MetaPath).
    """

    name: str = "walk"
    is_dynamic: bool = True
    default_walk_length: int = 80

    def __init__(self) -> None:
        self.init()

    # ------------------------------------------------------------------ #
    # The user-facing gather-move-update API
    # ------------------------------------------------------------------ #
    def init(self) -> None:  # noqa: B027 (optional override, deliberately empty)
        """Initialise workload-specific hyperparameters (optional override)."""

    @abstractmethod
    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        """Transition weight of the edge at global edge index ``edge``."""

    def update(self, graph: CSRGraph, state: WalkerState, next_node: int) -> None:  # noqa: B027
        """Update query-specific parameters after a step (optional override)."""

    # ------------------------------------------------------------------ #
    # Framework-facing helpers
    # ------------------------------------------------------------------ #
    def transition_weights(self, graph: CSRGraph, state: WalkerState) -> np.ndarray:
        """Weights of every out-edge of the current node (vectorised hook).

        The default implementation loops over :meth:`get_weight`; built-in
        workloads override it with numpy code.  Either way the result is
        parallel to ``graph.neighbors(state.current_node)``.
        """
        start, stop = graph.edge_slice(state.current_node)
        return np.array(
            [self.get_weight(graph, state, e) for e in range(start, stop)],
            dtype=np.float64,
        )

    # ------------------------------------------------------------------ #
    # Batched (frontier) hooks — vectorised across walkers
    # ------------------------------------------------------------------ #
    def transition_weights_batch(self, graph: CSRGraph, batch: BatchStepContext) -> np.ndarray:
        """Weights of every candidate edge of every walker in the frontier.

        Returns one flat ``float64`` array parallel to
        ``batch.neighbors_flat`` (walker ``i``'s weights occupy
        ``batch.offsets[i]:batch.offsets[i + 1]``).  Built-in workloads
        override this with cross-walker numpy code; the default loops over
        :meth:`transition_weights` per walker, which keeps any custom
        workload exact in the batched engine.
        """
        if batch.size == 0:
            return np.zeros(0, dtype=np.float64)
        parts = [
            self.transition_weights(graph, batch.state(i)) for i in range(batch.size)
        ]
        return np.concatenate(parts) if parts else np.zeros(0, dtype=np.float64)

    def static_transition_weights(self, graph: CSRGraph) -> np.ndarray | None:
        """Full-edge transition weights, for state-free workloads only.

        When ``get_weight`` never reads walker state, the weight of an edge
        is a constant of the (graph, spec) pair; a workload may return the
        whole array (parallel to ``graph.indices``) here so the runtime's
        :class:`~repro.sampling.transition_cache.TransitionCache` fills in
        one vectorised pass instead of probing node by node.  The default
        ``None`` keeps the per-node fill path; state-dependent workloads are
        never asked.
        """
        return None

    def probe_cost_words_batch(self, graph: CSRGraph, batch: BatchStepContext) -> np.ndarray:
        """Vectorised :meth:`probe_cost_words` (one entry per walker)."""
        if type(self).probe_cost_words is WalkSpec.probe_cost_words:
            return np.zeros(batch.size, dtype=np.int64)
        return np.array(
            [self.probe_cost_words(graph, batch.state(i)) for i in range(batch.size)],
            dtype=np.int64,
        )

    def scan_cost_words_batch(self, graph: CSRGraph, batch: BatchStepContext) -> np.ndarray:
        """Vectorised :meth:`scan_cost_words` (one entry per walker)."""
        if type(self).scan_cost_words is WalkSpec.scan_cost_words:
            return np.zeros(batch.size, dtype=np.int64)
        return np.array(
            [self.scan_cost_words(graph, batch.state(i)) for i in range(batch.size)],
            dtype=np.int64,
        )

    def update_batch(
        self,
        graph: CSRGraph,
        frontier: WalkerFrontier,
        walkers: np.ndarray,
        next_nodes: np.ndarray,
    ) -> None:
        """Apply :meth:`update` for every advancing walker of a superstep.

        Runs *before* the frontier arrays advance, exactly like the scalar
        engine calls ``update`` before ``state.advance``.  When ``update`` is
        not overridden this is a no-op, so workloads without per-step
        bookkeeping never materialise object-form walker state.
        """
        if type(self).update is WalkSpec.update:
            return
        for walker, nxt in zip(walkers, next_nodes, strict=False):
            self.update(graph, frontier.state_view(int(walker)), int(nxt))

    # ------------------------------------------------------------------ #
    # Cost hooks consumed by the GPU simulator
    # ------------------------------------------------------------------ #
    def probe_cost_words(self, graph: CSRGraph, state: WalkerState) -> int:
        """Extra uncoalesced words read to evaluate ``get_weight`` for ONE edge.

        Rejection-style kernels evaluate the dynamic weight of a single probed
        candidate, which for second-order workloads involves a membership
        check against the previous node's adjacency list (a binary search).
        Static workloads cost nothing beyond the property-weight read.
        """
        return 0

    def scan_cost_words(self, graph: CSRGraph, state: WalkerState) -> int:
        """Extra coalesced words read to evaluate the weights of ALL out-edges.

        Scan-style kernels (reservoir, alias, ITS) evaluate every neighbour's
        weight in one pass; second-order workloads can amortise the
        membership checks with a merge join over the previous node's sorted
        adjacency list, so the extra traffic is that list — read once per
        step, not once per neighbour.
        """
        return 0

    def walk_length(self, requested: int | None = None) -> int:
        """Resolve the walk length (requested value or the workload default)."""
        length = self.default_walk_length if requested is None else int(requested)
        if length < 1:
            raise WalkSpecError("walk length must be at least 1")
        return length

    def describe(self) -> dict[str, object]:
        """Human-readable hyperparameter dump (used in experiment logs)."""
        return {"name": self.name, "dynamic": self.is_dynamic}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class UniformWalkSpec(WalkSpec):
    """A trivially static walk: every edge has weight ``h`` (w = 1).

    Useful as a correctness reference — every sampler must reproduce the
    property-weight distribution exactly on this spec.
    """

    name = "uniform"
    is_dynamic = False

    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        h_e = graph.weights[edge]
        return h_e

    def transition_weights(self, graph: CSRGraph, state: WalkerState) -> np.ndarray:
        return graph.edge_weights(state.current_node).astype(np.float64)

    def transition_weights_batch(self, graph: CSRGraph, batch: BatchStepContext) -> np.ndarray:
        return graph.weights[batch.flat_edges].astype(np.float64)

    def static_transition_weights(self, graph: CSRGraph) -> np.ndarray:
        return graph.weights.astype(np.float64)
