"""C-SAW (Pandey et al., SC 2020): warp-centric inverse-transform sampling on GPUs.

C-SAW selects every next node by building the cumulative distribution of the
transition weights (a warp prefix sum) and inverting a single uniform draw
with a binary search.  The CDF must be rebuilt at every step of a dynamic
walk.  The published implementation also ignores nodes with more than 90 000
neighbours and frequently exhausts GPU memory on large graphs — the paper
scales its runtime for those nodes, and its memory model here reflects the
CDF buffers that cause the OOMs.
"""

from __future__ import annotations

from repro.baselines.base import BaselineSystem
from repro.gpusim.device import A6000
from repro.gpusim.memory import MemoryModel
from repro.sampling.its import InverseTransformSampler
from repro.walks.spec import WalkSpec

#: Degree above which the published implementation skips nodes (kept for
#: documentation; the scale-model graphs never reach it).
HIGH_DEGREE_CUTOFF = 90_000


def _sampler(spec: WalkSpec) -> InverseTransformSampler:
    return InverseTransformSampler()


def make_csaw() -> BaselineSystem:
    """Build the C-SAW baseline model (dynamic-extended, as in the paper)."""
    return BaselineSystem(
        name="C-SAW",
        platform="gpu",
        device=A6000,
        sampler_factory=_sampler,
        description="Warp-centric inverse transform sampling; per-step CDF reconstruction",
        # Per-warp CDF buffers sized by the maximum degree plus per-query
        # state; the buffers are what OOM first on the web-scale graphs.
        memory_model=MemoryModel(graph_overhead=1.0, per_query_bytes=192, auxiliary_per_edge_bytes=8.0),
        scheduling="static",
    )
