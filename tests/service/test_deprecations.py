"""The legacy spellings warn (and still work through the service shim)."""

from __future__ import annotations

import dataclasses
import warnings

import pytest

from repro.core.config import FlexiWalkerConfig
from repro.core.flexiwalker import FlexiWalker
from repro.errors import ServiceError
from repro.core.results import summarize_run
from repro.gpusim.device import A6000
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.state import make_queries

DEVICE = dataclasses.replace(A6000, parallel_lanes=8)
CONFIG = FlexiWalkerConfig(device=DEVICE)


class TestDeprecatedSpellings:
    def test_construction_does_not_warn(self, service_graph):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            FlexiWalker(service_graph, DeepWalkSpec(), CONFIG)

    def test_run_warns_and_points_to_the_service(self, service_graph):
        walker = FlexiWalker(service_graph, DeepWalkSpec(), CONFIG)
        with pytest.warns(DeprecationWarning, match="WalkService"):
            walker.run(walk_length=3, num_queries=4)

    def test_run_queries_warns(self, service_graph):
        walker = FlexiWalker(service_graph, DeepWalkSpec(), CONFIG)
        queries = make_queries(service_graph.num_nodes, walk_length=3, num_queries=4)
        with pytest.warns(DeprecationWarning, match="MIGRATION.md"):
            walker.run_queries(queries)

    def test_summarize_run_warns(self, service_graph):
        walker = FlexiWalker(service_graph, DeepWalkSpec(), CONFIG)
        with pytest.warns(DeprecationWarning):
            result = walker.run(walk_length=3, num_queries=4)
        with pytest.warns(DeprecationWarning, match="summary"):
            summarize_run(result)


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestLegacyStatefulness:
    def test_engine_mutations_affect_subsequent_runs(self, service_graph):
        # Pre-service facade semantics: walker.engine IS the executing
        # engine, so knobs mutated on it (the baseline step-overhead
        # pattern) must keep affecting run() calls through the shim.
        walker = FlexiWalker(service_graph, DeepWalkSpec(), CONFIG)
        calls = []
        walker.engine.step_overhead = lambda ctx, sampler: calls.append(sampler.name)
        result = walker.run(walk_length=3, num_queries=4)
        assert len(calls) == result.total_steps > 0

    def test_random_policy_keeps_drawing_across_runs(self, service_graph):
        # The pre-service facade shared one RandomSelector across run()
        # calls, so repeated runs drew fresh selection coin flips; the shim
        # threads its selector into every session to preserve that.
        config = dataclasses.replace(CONFIG, selection="random")
        from repro.walks.node2vec import Node2VecSpec

        walker = FlexiWalker(service_graph, Node2VecSpec(), config)
        first = walker.run(walk_length=6, num_queries=30)
        second = walker.run(walk_length=6, num_queries=30)
        assert first.paths != second.paths or first.sampler_usage != second.sampler_usage


class TestSummaryWrapper:
    """summarize_run must delegate to WalkRunResult.summary (no drift)."""

    def test_wrapper_and_method_agree(self, service_graph):
        walker = FlexiWalker(service_graph, DeepWalkSpec(), CONFIG)
        with pytest.warns(DeprecationWarning):
            result = walker.run(walk_length=3, num_queries=5)
        with pytest.warns(DeprecationWarning):
            wrapped = summarize_run(result)
        assert wrapped == result.summary()

    def test_summary_reports_key_metrics(self, service_graph):
        walker = FlexiWalker(service_graph, DeepWalkSpec(), CONFIG)
        with pytest.warns(DeprecationWarning):
            result = walker.run(walk_length=3, num_queries=5)
        summary = result.summary()
        for key in (
            "num_queries",
            "time_ms",
            "total_steps",
            "selection_ratio",
            "avg_walk_length",
            "throughput_steps_per_s",
        ):
            assert key in summary
        assert summary["num_queries"] == 5


class TestSubmitOptionsShim:
    """The redesigned submit surface: one keyword-only SubmitOptions.

    Legacy spellings — options passed positionally, or loose scheduling
    keywords — keep working through a deprecation shim.
    """

    def _session(self, service_graph):
        from repro.service import DeviceFleet, WalkService

        service = WalkService(service_graph, fleet=DeviceFleet(DEVICE))
        scheduler = service.scheduler()
        return scheduler.session(DeepWalkSpec(), CONFIG)

    def test_new_spelling_does_not_warn(self, service_graph):
        from repro.service import SubmitOptions

        session = self._session(service_graph)
        queries = make_queries(service_graph.num_nodes, walk_length=3, num_queries=4)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session.submit(queries, options=SubmitOptions(priority=1))
        assert session.pending == 4

    def test_positional_options_warn_and_work(self, service_graph):
        from repro.service import SubmitOptions

        session = self._session(service_graph)
        queries = make_queries(service_graph.num_nodes, walk_length=3, num_queries=4)
        with pytest.warns(DeprecationWarning, match="positionally"):
            session.submit(queries, SubmitOptions(priority=2))
        assert session.collect().paths and len(session.collect().paths) == 4

    def test_loose_keywords_warn_and_work(self, service_graph):
        session = self._session(service_graph)
        queries = make_queries(service_graph.num_nodes, walk_length=3, num_queries=4)
        with pytest.warns(DeprecationWarning, match="loose submit scheduling"):
            session.submit(queries, priority=1, tenant="legacy")
        stats = session._scheduler.tenant_stats()
        assert stats["legacy"].submitted == 4

    def test_conflicting_spellings_raise(self, service_graph):
        from repro.service import SubmitOptions

        session = self._session(service_graph)
        queries = make_queries(service_graph.num_nodes, walk_length=3, num_queries=4)
        with pytest.raises(TypeError, match="both"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                session.submit(queries, SubmitOptions(), options=SubmitOptions())
        with pytest.raises(TypeError, match="unexpected keyword"):
            session.submit(queries, nonsense=True)
        with pytest.raises(TypeError, match="SubmitOptions"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                session.submit(queries, {"priority": 1})

    def test_options_validate(self, service_graph):
        from repro.service import SubmitOptions

        with pytest.raises(ServiceError):
            SubmitOptions(priority=-1)
        with pytest.raises(ServiceError):
            SubmitOptions(deadline_steps=0)
