"""eRJS: FlexiWalker's enhanced rejection sampling kernel (Section 3.3).

The baseline rejection kernel must compute *every* transition weight just to
find the maximum that bounds the proposal's ``y`` axis.  eRJS replaces the
exact maximum with a **theoretical upper bound computed on the fly** from the
workload's structure (``max(w) · max(h)``, where ``max(h)`` comes from a
per-node preprocessing pass and ``max(w)`` from the workload's branch
analysis — both produced by Flexi-Compiler).  Sections 3.3's proof shows the
accepted node's distribution is *identical* for any constant ``c`` that upper
bounds the weights: only the acceptance rate (``Σ w̃ / (degree · c)``)
changes, so a looser bound costs extra trials, never correctness.

When no bound hint is available (the compiler fell back, or the user opted
out) the kernel degrades gracefully to the baseline max-reduction path.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import Sampler, StepContext, gather_transition_weights
from repro.sampling.rejection import run_rejection_trials


class EnhancedRejectionSampler(Sampler):
    """eRJS: rejection sampling against an estimated upper bound."""

    name = "eRJS"
    processing_unit = "thread"

    def __init__(
        self,
        use_estimated_bound: bool = True,
        max_trial_factor: int = 16,
        min_trials: int = 64,
    ) -> None:
        self.use_estimated_bound = bool(use_estimated_bound)
        self.max_trial_factor = int(max_trial_factor)
        self.min_trials = int(min_trials)

    def sample(self, ctx: StepContext) -> int | None:
        if not self._check_nonempty(ctx):
            return None
        degree = ctx.degree

        # The trial loop needs the true weight of each probed candidate; the
        # Python implementation materialises the vector once for speed, but
        # only the per-trial accesses are charged to the counters (on the GPU
        # each trial reads exactly one candidate's data).
        weights = ctx.spec.transition_weights(ctx.graph, ctx.state)

        bound: float | None = None
        if self.use_estimated_bound and ctx.bound_hint is not None and ctx.bound_hint > 0:
            # Estimating the bound touches one preprocessed value per indexed
            # array plus a handful of arithmetic — Fig. 5b.
            bound = float(ctx.bound_hint)
            ctx.counters.random_accesses += 1
            ctx.counters.weight_computations += 1
        else:
            # Fallback: exact maximum via a full scan + max reduction, i.e.
            # the baseline behaviour (Fig. 5a).
            gathered = gather_transition_weights(ctx)
            bound = ctx.warp().reduce_max(gathered)

        if bound <= 0.0:
            return None
        # A bound below the true maximum would clip the distribution; since
        # correctness is non-negotiable (the paper's proof assumes c >= max),
        # widen the bound if the hint was violated.  This can only happen
        # with a user-supplied helper that is not a true upper bound.
        true_max = float(weights.max()) if weights.size else 0.0
        if true_max > bound:
            bound = true_max

        max_trials = max(self.min_trials, self.max_trial_factor * degree)
        choice, _ = run_rejection_trials(ctx, weights, bound, max_trials)
        if choice is None:
            # Either every weight is zero (dead end) or the trial budget was
            # exhausted because the bound is far from the actual weights; in
            # the latter case finish with a direct inversion so the walk
            # still advances from the correct distribution (and charge the
            # full scan that requires).
            total = float(weights.sum())
            if total <= 0.0:
                return None
            ctx.counters.coalesced_accesses += degree
            ctx.counters.weight_computations += degree
            cdf = ctx.warp().prefix_sum(weights)
            u = ctx.rng.uniform()
            ctx.counters.rng_draws += 1
            choice = min(int(np.searchsorted(cdf, u * total, side="right")), degree - 1)
        return int(ctx.neighbors()[choice])
