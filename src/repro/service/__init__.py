"""Session-based service API: compile → plan → execute, decoupled.

The serving surface of the reproduction.  Where the legacy
:class:`~repro.core.flexiwalker.FlexiWalker` facade re-resolves everything on
every one-shot ``run()``, this package keeps a workload *hot*:

* :class:`WalkService` — owns the shared immutable state (graph, compiled
  workloads, profiles, hint tables, transition caches, device fleet);
* :class:`ExecutionPlan` / :func:`negotiate_plan` — backend selection as an
  explicit, auditable negotiation against declared
  :class:`ServiceCapabilities` instead of scattered constructor flags;
* :class:`WalkSession` — per-tenant execution: incremental
  :meth:`~WalkSession.submit` (returning :class:`QueryTicket`\\ s), streaming
  :meth:`~WalkSession.stream` (yielding :class:`WalkChunk`\\ s as walks
  finish) and exact :meth:`~WalkSession.collect`;
* :class:`ServiceScheduler` — cross-session continuous batching: many
  sessions' walkers fused into shared supersteps, with weighted round-robin
  tenant fairness, an SLO priority lane, and in-flight-budget backpressure
  (:class:`~repro.errors.QueueFull`), configured per submission through the
  frozen :class:`SubmitOptions`.

``FlexiWalker.run`` is now a thin deprecated shim over a single-session
service; the parity suite keeps the two bit-identical — as does each
scheduler-attached session's ``collect()``.
"""

from repro.service.plan import (
    BACKENDS,
    DeviceFleet,
    ExecutionPlan,
    ServiceCapabilities,
    declare_capabilities,
    negotiate_plan,
)
from repro.service.scheduler import ServiceScheduler, TenantStats
from repro.service.service import WalkService, build_selector
from repro.service.session import (
    QueryTicket,
    SubmitOptions,
    WalkChunk,
    WalkSession,
)

__all__ = [
    "BACKENDS",
    "DeviceFleet",
    "ExecutionPlan",
    "ServiceCapabilities",
    "declare_capabilities",
    "negotiate_plan",
    "WalkService",
    "build_selector",
    "QueryTicket",
    "SubmitOptions",
    "WalkChunk",
    "WalkSession",
    "ServiceScheduler",
    "TenantStats",
]
