#!/usr/bin/env python
"""Guard the public API surface against accidental breaks.

Two layers of checking:

1. **Structural invariants** — every public module declares ``__all__``,
   every exported name resolves, no private (underscore) name leaks, and
   every exported dataclass is importable from the top-level ``repro``
   namespace.
2. **Snapshot diff** — the computed surface (module -> sorted exports) must
   match the checked-in ``API_SURFACE.json``.  Removing or leaking a symbol
   fails CI; intentional changes are recorded with ``--update``.

Usage::

    PYTHONPATH=src python scripts/check_api_surface.py          # check
    PYTHONPATH=src python scripts/check_api_surface.py --update # re-snapshot

The pytest wrapper (``tests/core/test_public_api.py``) runs the same
functions, so the lint job and the test suite cannot disagree.
"""

from __future__ import annotations

import argparse
import dataclasses
import importlib
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Where the frozen surface lives (checked into the repository).
SNAPSHOT_PATH = REPO_ROOT / "API_SURFACE.json"

#: Every module whose ``__all__`` is a public contract.
PUBLIC_MODULES = (
    "repro",
    "repro.core",
    "repro.runtime",
    "repro.graph",
    "repro.walks",
    "repro.sampling",
    "repro.gpusim",
    "repro.compiler",
    "repro.rng",
    "repro.stats",
    "repro.baselines",
    "repro.bench",
    "repro.service",
    "repro.analysis",
)

#: Dunder names allowed in ``__all__`` despite the no-underscore rule.
ALLOWED_DUNDERS = {"__version__"}


def compute_surface() -> dict[str, list[str]]:
    """Import every public module and return {module: sorted(__all__)}.

    Raises ``AssertionError`` on the structural invariants so callers (the
    CLI and the pytest wrapper) report precise failures.
    """
    surface: dict[str, list[str]] = {}
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", None)
        assert exported is not None, f"{module_name} does not declare __all__"
        assert len(exported) == len(set(exported)), (
            f"{module_name}.__all__ contains duplicates"
        )
        for name in exported:
            assert hasattr(module, name), (
                f"{module_name}.__all__ exports {name!r} but the module "
                "does not define it"
            )
            assert not name.startswith("_") or name in ALLOWED_DUNDERS, (
                f"{module_name}.__all__ leaks private name {name!r}"
            )
        surface[module_name] = sorted(exported)
    return surface


def dataclass_gaps(surface: dict[str, list[str]]) -> list[str]:
    """Public dataclasses exported by a subpackage but not from ``repro``."""
    top_level = set(surface["repro"])
    gaps: list[str] = []
    for module_name, exported in surface.items():
        if module_name == "repro":
            continue
        module = importlib.import_module(module_name)
        for name in exported:
            obj = getattr(module, name)
            if (
                isinstance(obj, type)
                and dataclasses.is_dataclass(obj)
                and name not in top_level
            ):
                gaps.append(f"{module_name}.{name}")
    return gaps


def diff_surface(
    current: dict[str, list[str]], snapshot: dict[str, list[str]]
) -> list[str]:
    """Human-readable differences between the live surface and the snapshot."""
    problems: list[str] = []
    for module_name in sorted(set(snapshot) | set(current)):
        recorded = set(snapshot.get(module_name, ()))
        live = set(current.get(module_name, ()))
        for name in sorted(recorded - live):
            problems.append(f"{module_name}: public symbol {name!r} disappeared")
        for name in sorted(live - recorded):
            problems.append(
                f"{module_name}: new public symbol {name!r} is not in the "
                "snapshot (run scripts/check_api_surface.py --update)"
            )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true", help="rewrite API_SURFACE.json from the live surface"
    )
    args = parser.parse_args()

    surface = compute_surface()

    gaps = dataclass_gaps(surface)
    if gaps:
        print("public dataclasses missing from the top-level namespace:")
        for gap in gaps:
            print(f"  - {gap}")
        return 1

    if args.update:
        SNAPSHOT_PATH.write_text(json.dumps(surface, indent=2) + "\n")
        print(f"wrote {SNAPSHOT_PATH}")
        return 0

    if not SNAPSHOT_PATH.exists():
        print(f"missing snapshot {SNAPSHOT_PATH}; run with --update to create it")
        return 1
    snapshot = json.loads(SNAPSHOT_PATH.read_text())
    problems = diff_surface(surface, snapshot)
    if problems:
        print("API surface drifted from API_SURFACE.json:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    total = sum(len(names) for names in surface.values())
    print(f"API surface OK: {len(surface)} modules, {total} public symbols")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
