"""Benchmark: Fig. 15 — multi-GPU scalability."""

from __future__ import annotations

from bench_helpers import run_once

from repro.bench.experiments import fig15_multigpu as experiment


def test_fig15_multigpu(benchmark, large_graph_config):
    result = run_once(benchmark, experiment, large_graph_config)
    for row in result["rows"]:
        # Speedup grows with the GPU count and reaches a clear multi-GPU gain
        # at four devices (paper geomean: 3.23x).
        assert row["hash_x1"] == 1.0
        assert row["hash_x4"] >= row["hash_x2"] >= 0.95
        assert row["hash_x4"] > 1.8
