"""Multi-GPU execution model (Fig. 15).

The paper scales FlexiWalker to four GPUs by replicating the graph on every
device and partitioning the walk queries across them — hash-based index
mapping of the start nodes, because naive range-based mapping showed lower
scalability.  The multi-GPU executor reproduces exactly that: queries are
partitioned by one of the two policies, each partition runs on its own
simulated device, and the job finishes when the slowest GPU does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.counters import CostCounters
from repro.gpusim.device import DeviceSpec
from repro.gpusim.executor import KernelExecutor, KernelResult


def partition_queries(
    start_nodes: np.ndarray,
    num_gpus: int,
    policy: str = "hash",
) -> list[np.ndarray]:
    """Partition query indices over ``num_gpus`` devices.

    ``"hash"`` assigns query ``i`` to GPU ``hash(start_node[i]) % num_gpus``
    (a cheap multiplicative hash), ``"range"`` slices the query array into
    contiguous equal ranges.
    """
    start_nodes = np.asarray(start_nodes, dtype=np.int64)
    if num_gpus < 1:
        raise SimulationError("need at least one GPU")
    if policy == "hash":
        # Knuth multiplicative hash keeps assignment stable and well spread
        # even when start nodes are consecutive integers.
        hashed = (start_nodes * np.int64(2654435761)) & np.int64(0x7FFFFFFF)
        owner = hashed % num_gpus
    elif policy == "range":
        owner = (np.arange(start_nodes.size) * num_gpus) // max(start_nodes.size, 1)
    else:
        raise SimulationError(f"unknown partition policy {policy!r}")
    return [np.nonzero(owner == g)[0] for g in range(num_gpus)]


@dataclass
class MultiGPUResult:
    """Outcome of a multi-GPU launch."""

    time_ns: float
    per_gpu: list[KernelResult]
    policy: str

    @property
    def time_ms(self) -> float:
        return self.time_ns / 1e6

    def speedup_over(self, single_gpu_time_ns: float) -> float:
        if self.time_ns <= 0:
            return float("inf")
        return single_gpu_time_ns / self.time_ns

    @property
    def load_imbalance(self) -> float:
        """Max-over-mean GPU time; the loss term the paper blames on AB."""
        times = np.array([r.time_ns for r in self.per_gpu])
        if times.size == 0 or times.mean() == 0:
            return 1.0
        return float(times.max() / times.mean())


class MultiGPUExecutor:
    """Runs one walk workload across several replicated-graph GPUs."""

    def __init__(self, device: DeviceSpec, num_gpus: int) -> None:
        if num_gpus < 1:
            raise SimulationError("need at least one GPU")
        self.device = device
        self.num_gpus = num_gpus

    def execute(
        self,
        per_query_ns: np.ndarray,
        start_nodes: np.ndarray,
        policy: str = "hash",
        counters: CostCounters | None = None,
    ) -> MultiGPUResult:
        """Partition queries, run each partition on its own device, take the max."""
        per_query_ns = np.asarray(per_query_ns, dtype=np.float64)
        start_nodes = np.asarray(start_nodes, dtype=np.int64)
        if per_query_ns.shape != start_nodes.shape:
            raise SimulationError("per_query_ns and start_nodes must be parallel arrays")
        partitions = partition_queries(start_nodes, self.num_gpus, policy)
        executor = KernelExecutor(self.device)
        results = [
            executor.execute(per_query_ns[part], counters=counters, scheduling="dynamic")
            for part in partitions
        ]
        makespan = max((r.time_ns for r in results), default=0.0)
        return MultiGPUResult(time_ns=makespan, per_gpu=results, policy=policy)
