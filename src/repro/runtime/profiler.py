"""Profiling kernels that calibrate the cost-model ratio (Section 5.1).

Before the main walk starts, FlexiWalker launches two tiny kernels that each
compute transition weights for a fixed fraction of nodes and a capped number
of their neighbours — one using eRJS-style uncoalesced probes, one using
eRVS-style coalesced scans.  Dividing the measured per-edge costs gives the
``EdgeCost_RJS / EdgeCost_RVS`` ratio of Eq. 11, and because the measurement
runs on the real device it silently absorbs hardware effects such as cache
hit rates.  Here the "device" is the simulator, so the profiler measures the
simulated per-edge cost the same way the real system measures wall-clock
time.

The profiling cost itself is part of the Table 3 overhead study, so the
simulated time of both profiling kernels is reported too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.gpusim.counters import CostCounters
from repro.gpusim.device import DeviceSpec
from repro.rng.streams import CountingStream
from repro.sampling.base import StepContext
from repro.sampling.erjs import EnhancedRejectionSampler
from repro.sampling.ervs import EnhancedReservoirSampler
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkerState, WalkQuery


@dataclass(frozen=True)
class ProfileResult:
    """Outcome of the start-up profiling kernels."""

    edge_cost_rjs: float
    edge_cost_rvs: float
    simulated_time_ns: float
    sampled_nodes: int

    @property
    def edge_cost_ratio(self) -> float:
        if self.edge_cost_rvs <= 0:
            return 1.0
        return self.edge_cost_rjs / self.edge_cost_rvs


def _sample_nodes(graph: CSRGraph, node_fraction: float, max_nodes: int, seed: int) -> np.ndarray:
    """Pick a deterministic sample of non-isolated nodes to profile."""
    degrees = graph.degrees()
    candidates = np.nonzero(degrees > 0)[0]
    if candidates.size == 0:
        return candidates
    target = max(1, min(max_nodes, int(np.ceil(candidates.size * node_fraction))))
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(candidates, size=min(target, candidates.size), replace=False))


def profile_edge_costs(
    graph: CSRGraph,
    spec: WalkSpec,
    device: DeviceSpec,
    node_fraction: float = 0.02,
    max_nodes: int = 64,
    max_neighbors: int = 256,
    seed: int = 0,
) -> ProfileResult:
    """Run the two profiling kernels and return the measured per-edge costs.

    Parameters
    ----------
    node_fraction / max_nodes:
        How many nodes each profiling kernel touches; kept tiny (Section 5.1
        limits both steps and queries) so the overhead stays in the
        sub-percent range of the main walk.
    max_neighbors:
        Cap on the neighbours evaluated per profiled node.
    """
    nodes = _sample_nodes(graph, node_fraction, max_nodes, seed)
    if nodes.size == 0:
        return ProfileResult(
            edge_cost_rjs=device.random_access_ns,
            edge_cost_rvs=device.coalesced_access_ns,
            simulated_time_ns=0.0,
            sampled_nodes=0,
        )

    stream = CountingStream.from_seed(seed + 1)
    rvs_kernel = EnhancedReservoirSampler()
    rjs_kernel = EnhancedRejectionSampler(use_estimated_bound=True)

    rvs_ns = 0.0
    rvs_edges = 0
    rjs_ns = 0.0
    rjs_edges = 0
    total_ns = 0.0

    def profiled_state(node: int) -> WalkerState:
        """A representative walker state: one step of history when possible.

        Dynamic workloads are costlier once a previous node exists (the
        dist(v', u) probes); profiling with history makes the measured
        per-edge costs match what the main walk will actually pay.
        """
        query = WalkQuery(query_id=node, start_node=node, max_length=2)
        state = WalkerState.start(query)
        neighbors = graph.neighbors(node)
        if neighbors.size:
            state.prev_node = int(neighbors[0])
            state.step = 1
        return state

    for node in nodes:
        degree = min(graph.degree(int(node)), max_neighbors)
        if degree == 0:
            continue

        # eRVS-style kernel: one coalesced weight scan.
        counters = CostCounters()
        ctx = StepContext(graph=graph, state=profiled_state(int(node)), spec=spec, rng=stream, counters=counters)
        rvs_kernel.sample(ctx)
        lane_ns = device.lane_time_ns(counters)
        rvs_ns += lane_ns
        rvs_edges += max(counters.coalesced_accesses, 1)
        total_ns += lane_ns

        # eRJS-style kernel: uncoalesced probes against the node's true max
        # (the profiling kernel may use the exact max — it only runs on a
        # handful of nodes).
        state = profiled_state(int(node))
        counters = CostCounters()
        weights = spec.transition_weights(graph, state)
        bound = float(weights.max()) if weights.size else 0.0
        ctx = StepContext(
            graph=graph, state=state, spec=spec, rng=stream, counters=counters, bound_hint=bound
        )
        rjs_kernel.sample(ctx)
        lane_ns = device.lane_time_ns(counters)
        rjs_ns += lane_ns
        rjs_edges += max(counters.rejection_trials, 1)
        total_ns += lane_ns

    edge_cost_rvs = rvs_ns / max(rvs_edges, 1)
    edge_cost_rjs = rjs_ns / max(rjs_edges, 1)
    # Both kernels run concurrently across the sampled nodes on the device.
    parallel_ns = total_ns / max(1, min(device.parallel_lanes, nodes.size))
    return ProfileResult(
        edge_cost_rjs=edge_cost_rjs,
        edge_cost_rvs=edge_cost_rvs,
        simulated_time_ns=parallel_ns,
        sampled_nodes=int(nodes.size),
    )
