"""Tests for the generated preprocessing (per-node MAX/SUM aggregates)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler.preprocess import preprocess_graph
from repro.errors import CompilerError
from repro.graph.builders import from_edge_list
from repro.gpusim.device import A6000


@pytest.fixture
def graph():
    # Node 0 -> {1, 2, 3} with weights 3, 1, 2; node 1 -> {0} with weight 5;
    # node 2 has no out-edges.
    return from_edge_list(
        [(0, 1), (0, 2), (0, 3), (1, 0)],
        num_nodes=4,
        weights=[3.0, 1.0, 2.0, 5.0],
        labels=[0, 1, 2, 3],
    )


class TestAggregates:
    def test_per_node_max(self, graph):
        pre = preprocess_graph(graph)
        assert pre.node_max("weights", 0) == 3.0
        assert pre.node_max("weights", 1) == 5.0

    def test_per_node_sum_and_mean(self, graph):
        pre = preprocess_graph(graph)
        assert pre.node_sum("weights", 0) == 6.0
        assert pre.node_mean("weights", 0) == pytest.approx(2.0)

    def test_isolated_node_aggregates_are_zero(self, graph):
        pre = preprocess_graph(graph)
        assert pre.node_max("weights", 2) == 0.0
        assert pre.node_sum("weights", 2) == 0.0
        assert pre.node_mean("weights", 2) == 0.0

    def test_label_aggregation(self, graph):
        pre = preprocess_graph(graph, arrays=("weights", "labels"))
        assert pre.has_array("labels")
        assert pre.node_max("labels", 0) == 2.0

    def test_missing_labels_raise(self):
        g = from_edge_list([(0, 1)], num_nodes=2)
        with pytest.raises(CompilerError):
            preprocess_graph(g, arrays=("labels",))

    def test_unknown_array_rejected(self, graph):
        with pytest.raises(CompilerError):
            preprocess_graph(graph, arrays=("indices",))

    def test_duplicate_arrays_computed_once(self, graph):
        pre = preprocess_graph(graph, arrays=("weights", "weights"))
        assert pre.counters.coalesced_accesses == graph.num_edges

    def test_aggregates_match_brute_force(self, small_graph):
        pre = preprocess_graph(small_graph)
        for node in range(small_graph.num_nodes):
            w = small_graph.edge_weights(node)
            if w.size:
                assert pre.node_max("weights", node) == pytest.approx(w.max())
                assert pre.node_sum("weights", node) == pytest.approx(w.sum())


class TestCostAccounting:
    def test_counters_track_edge_sweep(self, graph):
        pre = preprocess_graph(graph)
        assert pre.counters.coalesced_accesses == graph.num_edges
        assert pre.counters.reduction_elements == 2 * graph.num_edges

    def test_simulated_time_reported_with_device(self, graph):
        pre = preprocess_graph(graph, device=A6000)
        assert pre.simulated_time_ns > 0

    def test_no_device_no_time(self, graph):
        assert preprocess_graph(graph).simulated_time_ns == 0.0
