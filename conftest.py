"""Repository-level pytest configuration.

Makes the test and benchmark suites runnable even when the package has not
been installed (e.g. on a machine without network access where
``pip install -e .`` cannot resolve its isolated build environment): if
``repro`` is not importable, the ``src/`` layout directory is added to
``sys.path`` directly.
"""

from __future__ import annotations

import sys
from pathlib import Path

try:  # pragma: no cover - trivial import guard
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover - only hit on uninstalled trees
    sys.path.insert(0, str(Path(__file__).resolve().parent / "src"))
