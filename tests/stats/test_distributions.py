"""Tests for distribution statistics and the CV analysis of Fig. 7b."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling.ervs import EnhancedReservoirSampler
from repro.stats.distributions import (
    chi_square_matches,
    chi_square_statistic,
    coefficient_of_variation,
    empirical_transition_distribution,
    weight_sum_cv_histogram,
)
from repro.walks.node2vec import Node2VecSpec
from repro.walks.second_order_pr import SecondOrderPRSpec
from repro.walks.spec import UniformWalkSpec

from tests.conftest import make_state


class TestChiSquare:
    def test_zero_for_perfect_match(self):
        observed = np.array([10.0, 20.0, 30.0])
        assert chi_square_statistic(observed, observed) == 0.0

    def test_positive_for_mismatch(self):
        assert chi_square_statistic(np.array([10.0, 30.0]), np.array([20.0, 20.0])) > 0

    def test_zero_expectation_bins_ignored(self):
        stat = chi_square_statistic(np.array([0.0, 10.0]), np.array([0.0, 10.0]))
        assert stat == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SamplingError):
            chi_square_statistic(np.ones(3), np.ones(4))

    def test_matches_accepts_sampled_data_from_true_distribution(self):
        rng = np.random.default_rng(0)
        p = np.array([0.3, 0.2, 0.4, 0.1])
        counts = np.bincount(rng.choice(4, size=5000, p=p), minlength=4)
        assert chi_square_matches(counts, p)

    def test_matches_rejects_wrong_distribution(self):
        counts = np.array([5000, 0, 0, 0])
        assert not chi_square_matches(counts, np.array([0.25, 0.25, 0.25, 0.25]))

    def test_matches_requires_samples(self):
        with pytest.raises(SamplingError):
            chi_square_matches(np.zeros(3), np.ones(3) / 3)


class TestCoefficientOfVariation:
    def test_constant_values_have_zero_cv(self):
        assert coefficient_of_variation(np.full(10, 3.0)) == 0.0

    def test_cv_definition(self):
        values = np.array([1.0, 3.0])
        assert coefficient_of_variation(values) == pytest.approx(values.std() / values.mean() * 100)

    def test_empty_and_zero_mean(self):
        assert coefficient_of_variation(np.array([])) == 0.0
        assert coefficient_of_variation(np.array([0.0, 0.0])) == 0.0


class TestEmpiricalDistribution:
    def test_counts_sum_to_samples(self, tiny_graph):
        state = make_state(tiny_graph, node=0)
        observed, probabilities = empirical_transition_distribution(
            tiny_graph, UniformWalkSpec(), EnhancedReservoirSampler(), state, num_samples=200,
        )
        assert observed.sum() == 200
        assert probabilities.sum() == pytest.approx(1.0)


class TestWeightSumCVHistogram:
    def test_static_walk_has_no_variation(self, small_graph):
        bins, counts = weight_sum_cv_histogram(small_graph, UniformWalkSpec(), num_nodes=40, seed=1)
        # A static workload's weight sums never change, so every node lands in
        # the lowest CV bin.
        assert counts[0] == counts.sum()

    def test_second_order_pr_shows_runtime_variation(self, small_graph):
        bins, counts = weight_sum_cv_histogram(small_graph, SecondOrderPRSpec(), num_nodes=40, seed=1)
        assert counts[1:].sum() > 0

    def test_histogram_covers_all_sampled_nodes(self, small_graph):
        _, counts = weight_sum_cv_histogram(small_graph, Node2VecSpec(), num_nodes=25, seed=2)
        assert counts.sum() == 25

    def test_bin_edges_returned(self, small_graph):
        bins, counts = weight_sum_cv_histogram(small_graph, Node2VecSpec(), num_nodes=5, bins=(10, 20), seed=3)
        assert list(bins) == [10, 20]
        assert counts.size == 3
