"""FlexiWalker public API.

:class:`~repro.core.flexiwalker.FlexiWalker` is the facade a downstream user
interacts with: give it a graph and a walk specification (the three-function
gather-move-update logic), and it compiles the workload, profiles the device,
wires the runtime selector to the optimised kernels and runs walk queries —
the complete pipeline of Fig. 6.
"""

from repro.core.config import FlexiWalkerConfig
from repro.core.flexiwalker import FlexiWalker
from repro.core.results import summarize_run

__all__ = [
    "FlexiWalker",
    "FlexiWalkerConfig",
    "summarize_run",
]
