"""Kernel executor: maps per-query work onto parallel lanes.

A random-walk kernel launches one query per processing unit (a thread for
rejection sampling, a warp for reservoir sampling) and each unit grabs a new
query from a global queue when it finishes its current one (Section 5.3).
The executor reproduces that behaviour: given the simulated lane-time of each
query it distributes queries over the device's parallel lanes either
**dynamically** (greedy earliest-free-lane, modelling the atomic-counter
queue) or **statically** (contiguous ranges, the naive mapping), and the
kernel's simulated execution time is the makespan — the busiest lane.

This is where load imbalance, the dominant loss term in the paper's multi-GPU
experiment (Fig. 15), enters the model.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.counters import CostCounters
from repro.gpusim.device import DeviceSpec


@dataclass
class KernelResult:
    """Outcome of one simulated kernel launch.

    Attributes
    ----------
    time_ns:
        Simulated wall-clock time of the kernel (makespan over lanes).
    total_work_ns:
        Sum of all per-query lane times (the work a single lane would do).
    lane_times_ns:
        Busy time of each lane that received work.
    num_queries:
        Number of queries executed.
    counters:
        Aggregated operation counts over every query.
    scheduling:
        ``"dynamic"`` or ``"static"``.
    comm_ns:
        Modeled interconnect time charged to this kernel (walker migrations
        in the sharded execution mode).  Already accounted in ``time_ns`` —
        serialised after the lane makespan, or overlapped with compute when
        the kernel was executed with ``comm_overlap=True`` (then only the
        excess beyond the makespan shows up).  0 for replicated/
        single-device kernels.
    recovery_ns:
        Fault-tolerance time charged to this kernel: checkpoint copy-outs,
        transient-fault retries (with backoff) and replay-from-checkpoint
        after a permanent device failure.  Already accounted in ``time_ns``
        — recovery work never overlaps compute in the model.  0 for
        fault-free runs.
    """

    time_ns: float
    total_work_ns: float
    lane_times_ns: np.ndarray
    num_queries: int
    counters: CostCounters = field(default_factory=CostCounters)
    scheduling: str = "dynamic"
    comm_ns: float = 0.0
    recovery_ns: float = 0.0

    @property
    def time_ms(self) -> float:
        return self.time_ns / 1e6

    @property
    def time_s(self) -> float:
        return self.time_ns / 1e9

    @property
    def utilization(self) -> float:
        """Average lane busy-fraction during the kernel (0..1)."""
        if self.time_ns <= 0 or self.lane_times_ns.size == 0:
            return 0.0
        return float(self.lane_times_ns.mean() / self.time_ns)

    @property
    def load_imbalance(self) -> float:
        """Max-over-mean lane time; 1.0 is a perfectly balanced kernel."""
        if self.lane_times_ns.size == 0 or self.lane_times_ns.mean() == 0:
            return 1.0
        return float(self.lane_times_ns.max() / self.lane_times_ns.mean())


class KernelExecutor:
    """Distributes per-query work over the parallel lanes of one device."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device

    # ------------------------------------------------------------------ #
    def execute(
        self,
        per_query_ns: np.ndarray,
        counters: CostCounters | None = None,
        scheduling: str = "dynamic",
        queue_atomic_ns: float | None = None,
        comm_ns: float = 0.0,
        comm_overlap: bool = False,
        recovery_ns: float = 0.0,
    ) -> KernelResult:
        """Simulate one kernel launch.

        Parameters
        ----------
        per_query_ns:
            Simulated lane-time of each query (already priced by the device).
        counters:
            Aggregated counters to attach to the result (optional).
        scheduling:
            ``"dynamic"`` — queries are pulled from a global atomic queue as
            lanes free up (the paper's design); ``"static"`` — queries are
            split into contiguous equal ranges up front.
        queue_atomic_ns:
            Cost of one queue fetch under dynamic scheduling; defaults to the
            device's atomic cost.
        comm_ns:
            Interconnect time to charge onto this kernel (the sharded
            mode's walker-migration traffic, priced by
            :meth:`~repro.gpusim.device.DeviceSpec.migration_time_ns`).
            Recorded on the result and included in its ``time_ns``.
        comm_overlap:
            How ``comm_ns`` combines with compute.  ``False`` (default):
            added after the lane makespan — the conservative no-overlap
            model.  ``True``: communication proceeds concurrently with the
            next steps' compute (double-buffered walker transfers), so the
            kernel time is ``max(makespan, comm_ns)`` — compute hides
            communication up to the makespan and only the excess
            serialises.
        recovery_ns:
            Fault-tolerance time (checkpoints, retries, replay) to charge
            onto this kernel.  Always serialised after compute and
            communication — a restore cannot overlap the work it is about
            to redo.
        """
        per_query_ns = np.asarray(per_query_ns, dtype=np.float64)
        if per_query_ns.ndim != 1:
            raise SimulationError("per_query_ns must be a one-dimensional array")
        if np.any(per_query_ns < 0):
            raise SimulationError("per-query times must be non-negative")
        if comm_ns < 0:
            raise SimulationError("communication time must be non-negative")
        if recovery_ns < 0:
            raise SimulationError("recovery time must be non-negative")
        num_queries = int(per_query_ns.size)
        lanes = min(self.device.parallel_lanes, max(num_queries, 1))

        if num_queries == 0:
            return KernelResult(
                time_ns=float(comm_ns) + float(recovery_ns),
                total_work_ns=0.0,
                lane_times_ns=np.zeros(0),
                num_queries=0,
                counters=counters or CostCounters(),
                scheduling=scheduling,
                comm_ns=float(comm_ns),
                recovery_ns=float(recovery_ns),
            )

        if scheduling == "dynamic":
            atomic = self.device.atomic_ns if queue_atomic_ns is None else queue_atomic_ns
            lane_times = self._dynamic_schedule(per_query_ns, lanes, atomic)
        elif scheduling == "static":
            lane_times = self._static_schedule(per_query_ns, lanes)
        else:
            raise SimulationError(f"unknown scheduling policy {scheduling!r}")

        makespan = float(lane_times.max())
        time_ns = max(makespan, float(comm_ns)) if comm_overlap else makespan + float(comm_ns)
        time_ns += float(recovery_ns)
        return KernelResult(
            time_ns=time_ns,
            total_work_ns=float(per_query_ns.sum()),
            lane_times_ns=lane_times,
            num_queries=num_queries,
            counters=counters or CostCounters(),
            scheduling=scheduling,
            comm_ns=float(comm_ns),
            recovery_ns=float(recovery_ns),
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _dynamic_schedule(per_query_ns: np.ndarray, lanes: int, atomic_ns: float) -> np.ndarray:
        """Earliest-free-lane assignment: models the global query queue.

        Each fetch pays one atomic operation.  Queries are consumed in their
        submission order, exactly like the global-counter queue in
        Section 5.3.
        """
        if lanes >= per_query_ns.size:
            # One query per lane: the queue never makes anybody wait, so the
            # earliest-free-lane assignment is the identity.  Bit-identical
            # to the heap below (lane i serves query i, paying one fetch).
            return per_query_ns + atomic_ns
        heap = [(0.0, lane) for lane in range(lanes)]
        heapq.heapify(heap)
        lane_times = np.zeros(lanes, dtype=np.float64)
        for t in per_query_ns:
            busy, lane = heapq.heappop(heap)
            busy += float(t) + atomic_ns
            lane_times[lane] = busy
            heapq.heappush(heap, (busy, lane))
        return lane_times

    @staticmethod
    def _static_schedule(per_query_ns: np.ndarray, lanes: int) -> np.ndarray:
        """Contiguous range partitioning (the naive, imbalance-prone mapping)."""
        boundaries = np.linspace(0, per_query_ns.size, lanes + 1).astype(int)
        lane_times = np.zeros(lanes, dtype=np.float64)
        for lane in range(lanes):
            lane_times[lane] = per_query_ns[boundaries[lane]:boundaries[lane + 1]].sum()
        return lane_times
