"""Property-based coverage for the continuous-batching admission policy.

The fairness contract of :class:`~repro.service.ServiceScheduler`: under
weighted round-robin admission, a tenant with nonzero weight is never
starved.  Quantitatively, virtual-time weighted fair queuing over unit
walkers guarantees that while tenant ``t`` stays backlogged, between two of
its consecutive admissions every other tenant ``j`` is admitted at most
``ceil(w_j / w_t) + 1`` times — so the gap is bounded by the sum of those
terms, whatever the weights, submission sizes or in-flight budget.  All
work must also drain completely (admitted == submitted == completed).
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FlexiWalkerConfig
from repro.gpusim.device import A6000
from repro.graph.generators import barabasi_albert_graph
from repro.graph.weights import uniform_weights
from repro.service import DeviceFleet, WalkService
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.state import WalkQuery

DEVICE = dataclasses.replace(A6000, parallel_lanes=8)
GRAPH = barabasi_albert_graph(40, 3, seed=5, name="fairness-test")
GRAPH = GRAPH.with_weights(uniform_weights(GRAPH, seed=5))

tenant_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=8),   # weight
        st.integers(min_value=1, max_value=15),  # submitted walkers
    ),
    min_size=2,
    max_size=4,
)


def wrr_gap_bound(weights: dict[str, float], tenant: str) -> int:
    """Max admissions of other tenants between two of ``tenant``'s, while
    ``tenant`` is backlogged (unit-job WFQ bound, one extra per tenant for
    the in-progress virtual slot at each boundary)."""
    w_t = weights[tenant]
    return sum(
        math.ceil(w_j / w_t) + 1 for name, w_j in weights.items() if name != tenant
    )


class TestWrrNeverStarves:
    @settings(max_examples=40, deadline=None)
    @given(
        tenants=tenant_strategy,
        budget=st.integers(min_value=1, max_value=8),
        walk_length=st.integers(min_value=1, max_value=6),
    )
    def test_backlogged_tenant_admission_gap_is_bounded(
        self, tenants, budget, walk_length
    ):
        service = WalkService(GRAPH, fleet=DeviceFleet(DEVICE))
        scheduler = service.scheduler(
            max_inflight_walkers=budget, record_admissions=True
        )
        config = FlexiWalkerConfig(device=DEVICE, seed=3)
        weights = {}
        submitted = {}
        rng = np.random.default_rng(17)
        for index, (weight, count) in enumerate(tenants):
            name = f"tenant{index}"
            weights[name] = float(weight)
            submitted[name] = count
            scheduler.register_tenant(name, weight=float(weight))
            session = scheduler.session(DeepWalkSpec(), config, tenant=name)
            session.submit(
                [
                    WalkQuery(
                        query_id=i,
                        start_node=int(rng.integers(0, GRAPH.num_nodes)),
                        max_length=walk_length,
                    )
                    for i in range(count)
                ]
            )

        # Everyone is backlogged before the first tick; drain completely.
        scheduler.run_until_idle(max_ticks=5000)

        stats = scheduler.tenant_stats()
        for name, count in submitted.items():
            assert stats[name].admitted == count
            assert stats[name].completed == count
            assert stats[name].queued == 0 and stats[name].inflight == 0

        # Admission-order starvation bound, per tenant, while backlogged.
        order = [tenant for _, tenant in scheduler.admissions]
        assert len(order) == sum(submitted.values())
        for name in weights:
            bound = wrr_gap_bound(weights, name)
            remaining = submitted[name]
            gap = 0
            for admitted_tenant in order:
                if admitted_tenant == name:
                    remaining -= 1
                    gap = 0
                    if remaining == 0:
                        break
                else:
                    gap += 1
                    assert gap <= bound, (
                        f"{name} (weight {weights[name]}) waited {gap} "
                        f"admissions while backlogged; bound is {bound}"
                    )
