"""Continuous batching: one fused superstep shared by every attached session.

The step-synchronous frontier is the same execution shape LLM serving stacks
exploit for continuous batching: because every walker owns a counter-based
random stream keyed by its query id, charges its operation counts into its
own slot, and is priced per slot independently of batch size
(:meth:`~repro.gpusim.device.DeviceSpec.lane_times_ns` is elementwise), *who
else* shares a superstep with a walker cannot change its path, counts or
simulated time.  The :class:`ServiceScheduler` turns that invariance into a
multi-tenant execution loop:

* walkers from every attached :class:`~repro.service.session.WalkSession`
  merge into one shared :class:`~repro.walks.state.WalkerFrontier` per
  compatible workload (a *fusion group*: same spec, config and plan);
* newly submitted queries are admitted at superstep boundaries — a fresh
  submission joins the very next superstep instead of waiting for the
  current wave to drain (mid-flight injection via
  :class:`~repro.runtime.frontier.FrontierRun`);
* the fused counters, kernel times and sampler usage are split back out per
  session and tenant exactly, using the per-walker slots and the
  :class:`~repro.runtime.frontier.SuperstepReport` sampler attribution —
  every session's ``collect()`` stays bit-identical to running it alone.

Fairness is weighted round-robin (virtual-time weighted fair queuing) over
per-tenant admission queues, with an SLO lane that is admitted first:
submissions with ``priority > 0`` enter it directly, and queued walkers
whose ``deadline_steps`` aged out are promoted into it.  Backpressure is the
in-flight walker budget (``max_inflight_walkers``) plus optional per-tenant
quotas: a submission that cannot fit raises
:class:`~repro.errors.QueueFull`, or — with
``SubmitOptions(block_on_full=True)`` — runs supersteps until it fits.

Two session shapes cannot attach: scalar-execution plans (nothing to fuse)
and sharded placements (their per-device ledgers are keyed by private
wave-local step ordinals).  The ``selection="random"`` policy attaches but
keeps its documented exemption from bit-exactness: its selector flips coins
from a shared sequential generator, so fused execution interleaves the
draws.

Like the frontier it wraps, the scheduler trades memory for simplicity: a
fusion group's arrays grow monotonically with every admitted walker and are
never compacted, so a scheduler is sized for a workload burst, not an
unbounded service lifetime.
"""

from __future__ import annotations

import dataclasses
import heapq
import time
from collections import deque
from dataclasses import dataclass
from collections.abc import Iterator
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import QueueFull, ServiceError
from repro.gpusim.counters import CostCounters, CounterBatch
from repro.runtime.faults import restore_checkpoint, take_checkpoint
from repro.runtime.frontier import FrontierRun, fold_counters_by_owner, iter_supersteps
from repro.walks.state import WalkQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import FlexiWalkerConfig
    from repro.service.service import WalkService
    from repro.service.session import SubmitOptions, WalkChunk, WalkSession
    from repro.walks.spec import WalkSpec

#: Fairness policies the scheduler implements.
FAIRNESS_POLICIES = ("wrr", "fifo")


@dataclass(frozen=True)
class TenantStats:
    """Accounting snapshot of one tenant, split out of the fused execution.

    ``steps`` and ``lane_time_ns`` are exact per-walker attributions (the
    walker slots of the fused supersteps, folded by owner); the admission
    counters describe the tenant's traffic through the fairness machinery.
    ``dead_letters`` counts walkers dropped before completing — explicit
    cancellation, ``deadline_ticks`` expiry, load shedding, stream
    abandonment or a quarantined fusion group.
    """

    tenant: str
    weight: float
    quota: int | None
    sessions: int
    submitted: int
    admitted: int
    completed: int
    queued: int
    inflight: int
    slo_admitted: int
    steps: int
    lane_time_ns: float
    dead_letters: int = 0


class _TenantState:
    """Mutable per-tenant admission queue + accounting."""

    __slots__ = (
        "name", "weight", "quota", "queue", "vtime", "has_deadlines",
        "sessions", "outstanding", "submitted", "admitted", "completed",
        "slo_admitted", "steps", "lane_ns", "dead_letters",
    )

    def __init__(self, name: str, weight: float, quota: int | None) -> None:
        self.name = name
        self.weight = weight
        self.quota = quota
        self.queue: deque[_Pending] = deque()
        self.vtime = 0.0
        self.has_deadlines = False
        self.sessions = 0
        self.outstanding = 0  # queued + in-flight walkers
        self.submitted = 0
        self.admitted = 0
        self.completed = 0
        self.slo_admitted = 0
        self.steps = 0
        self.lane_ns = 0.0
        self.dead_letters = 0


class _Pending:
    """One queued walker awaiting admission."""

    __slots__ = ("seq", "entry", "tenant", "query", "sub_ord", "enqueue_tick",
                 "deadline_steps")

    def __init__(self, seq, entry, tenant, query, sub_ord, enqueue_tick,
                 deadline_steps) -> None:
        self.seq = seq
        self.entry = entry
        self.tenant = tenant
        self.query = query
        self.sub_ord = sub_ord  # index into the session's _submitted list
        self.enqueue_tick = enqueue_tick
        self.deadline_steps = deadline_steps


class _SessionEntry:
    """Scheduler-side ledger of one attached session."""

    __slots__ = ("session", "tenant", "group", "gidx", "fused_pos", "queries",
                 "sub_ords", "flushed", "queued", "inflight", "chunks",
                 "quarantined")

    def __init__(self, session, tenant: _TenantState, group: _Group) -> None:
        self.session = session
        self.tenant = tenant
        self.group = group
        self.gidx = len(group.sessions)  # this entry's index within the group
        self.fused_pos: list[int] = []   # admission-ordered frontier positions
        self.queries: list[WalkQuery] = []
        self.sub_ords: list[int] = []
        self.flushed = 0
        self.queued = 0
        self.inflight = 0
        self.chunks: deque["WalkChunk"] = deque()
        self.quarantined: str | None = None  # set when the group is poisoned


class _Group:
    """One fusion group: sessions compatible enough to share a frontier."""

    __slots__ = ("key", "engine", "seed", "run", "gen", "sessions", "owner",
                 "tenants", "aggregate", "usage", "track_counts", "counts",
                 "faults", "checkpoint", "ordinal")

    def __init__(self, key, engine, track_counts: bool) -> None:
        self.key = key
        self.engine = engine
        self.seed = engine.seed
        self.run = FrontierRun(engine)
        self.gen = None
        # Fault-tolerance state: the engine's FaultRuntime (None on the
        # fault-free fast path), the last restore point, and the group's
        # logical superstep ordinal (the fault plan's clock).
        self.faults = engine._fault_runtime()
        self.checkpoint = None
        self.ordinal = 0
        self.sessions: list[_SessionEntry] = []
        self.owner = np.zeros(0, dtype=np.int64)     # fused pos -> gidx
        self.tenants: list[_TenantState] = []        # fused pos -> tenant
        # Fused-level sinks required by iter_supersteps; the per-session
        # attribution happens in the scheduler's fold, these are only kept
        # for group-level introspection.
        self.aggregate = CostCounters(bytes_per_weight=engine.weight_bytes)
        self.usage: dict[str, int] = {}
        self.track_counts = track_counts
        self.counts: dict[str, np.ndarray] = (
            {name: np.zeros(0, dtype=np.int64) for name in CostCounters._COUNT_FIELDS}
            if track_counts
            else {}
        )


class ServiceScheduler:
    """Cross-session continuous-batching execution loop.

    Built by :meth:`~repro.service.WalkService.scheduler` (which seeds the
    admission policy from the service's declared
    :class:`~repro.service.plan.ServiceCapabilities`); sessions join via
    :meth:`attach` or the :meth:`session` convenience, after which their
    ``submit``/``stream``/``collect`` transparently ride the shared loop::

        scheduler = service.scheduler(max_inflight_walkers=1024)
        scheduler.register_tenant("batch", weight=1.0)
        scheduler.register_tenant("online", weight=4.0)
        s1 = scheduler.session(DeepWalkSpec(), tenant="online")
        s1.submit(queries, options=SubmitOptions(priority=1))
        result = s1.collect()          # bit-identical to running s1 alone

    One :meth:`tick` = one fused superstep boundary: first admission (SLO
    lane, then the fairness policy, within the in-flight budget), then one
    superstep of every fusion group.
    """

    def __init__(
        self,
        service: WalkService,
        *,
        max_inflight_walkers: int = 0,
        fairness: str = "wrr",
        tenant_quotas: tuple[tuple[str, int], ...] = (),
        default_tenant: str = "default",
        record_admissions: bool = False,
        shed_after_ticks: int | None = None,
    ) -> None:
        if fairness not in FAIRNESS_POLICIES:
            raise ServiceError(
                f"unknown fairness policy {fairness!r}; valid: {FAIRNESS_POLICIES}"
            )
        if max_inflight_walkers < 0:
            raise ServiceError("max_inflight_walkers must be non-negative (0 = unbounded)")
        if shed_after_ticks is not None and shed_after_ticks < 1:
            raise ServiceError("shed_after_ticks must be at least 1 (or None)")
        self.service = service
        self.max_inflight_walkers = int(max_inflight_walkers)
        self.fairness = fairness
        self.default_tenant = default_tenant
        #: Load shedding under sustained backpressure: a walker still queued
        #: after waiting this many ticks is dead-lettered instead of admitted
        #: (``None`` = never shed).  Its ticket reports DeadlineExceeded.
        self.shed_after_ticks = shed_after_ticks
        #: When true, every admission is appended to :attr:`admissions` as
        #: ``(tick, tenant)`` — the fairness property suite audits this log.
        self.record_admissions = record_admissions
        self.admissions: list[tuple[int, str]] = []
        self._tenants: dict[str, _TenantState] = {}
        for name, quota in tenant_quotas:
            self.register_tenant(name, quota=quota)
        self._entries: dict[int, _SessionEntry] = {}  # id(session) -> entry
        self._groups: dict[tuple, _Group] = {}
        self._slo: deque[_Pending] = deque()
        # Hard per-walker deadlines: (expiry_tick, seq, entry, query_id),
        # a heap popped at every tick boundary.
        self._deadlines: list[tuple[int, int, _SessionEntry, int]] = []
        self._quarantined: list[_SessionEntry] = []
        self._seq = 0
        self._tick = 0
        self._vclock = 0.0
        self._inflight = 0
        self._queued = 0
        self._exec_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Tenants and sessions
    # ------------------------------------------------------------------ #
    def register_tenant(
        self, name: str, weight: float = 1.0, quota: int | None = None
    ) -> None:
        """Declare (or reconfigure) a tenant's fair-share weight and quota.

        ``weight`` scales the tenant's admission share under ``wrr``
        fairness; any nonzero weight guarantees the tenant is never starved.
        ``quota`` caps the tenant's outstanding (queued + in-flight)
        walkers; ``None`` means no per-tenant cap.  Unknown tenants named at
        submit or attach time are auto-registered with weight 1.0.
        """
        if weight <= 0:
            raise ServiceError("tenant weight must be positive")
        if quota is not None and quota < 1:
            raise ServiceError("tenant quota must be at least 1 (or None)")
        state = self._tenants.get(name)
        if state is None:
            self._tenants[name] = _TenantState(name, float(weight), quota)
        else:
            state.weight = float(weight)
            state.quota = quota

    def _tenant_state(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            self.register_tenant(name)
            state = self._tenants[name]
        return state

    def attach(self, session: WalkSession, tenant: str | None = None) -> WalkSession:
        """Join a session to the shared loop (before it submits anything).

        The session must belong to this scheduler's service, must not have
        queued or in-flight work yet, and its plan must be fusable: batched
        execution (scalar plans have no superstep to share) on a
        replicated placement (sharded plans key their per-device ledgers by
        private wave-local step ordinals).
        """
        if session.service is not self.service:
            raise ServiceError("session belongs to a different service")
        if session._scheduler is not None:
            raise ServiceError(
                "session is already attached to a scheduler"
                if session._scheduler is self
                else "session is attached to a different scheduler"
            )
        if session.pending or session._wave is not None or session._executed:
            raise ServiceError(
                "attach before submitting: the session already has queued, "
                "in-flight or executed work of its own"
            )
        if session.plan.execution != "batched":
            raise ServiceError(
                "the continuous-batching scheduler fuses frontier supersteps; "
                f"a plan with execution={session.plan.execution!r} cannot attach"
            )
        if session.plan.graph_placement == "sharded":
            raise ServiceError(
                "sharded-placement sessions cannot attach: their per-device "
                "accounting is keyed by wave-local step ordinals, which a "
                "fused cross-session frontier does not preserve"
            )
        if not session.plan.scheduler_fusion:
            raise ServiceError(
                "scheduler fusion was declined for this plan (static "
                "verification found ERROR diagnostics; see plan.reasons); "
                "run the session standalone instead of attaching it"
            )
        tstate = self._tenant_state(tenant if tenant is not None else self.default_tenant)
        group = self._group_for(session)
        entry = _SessionEntry(session, tstate, group)
        group.sessions.append(entry)
        self._entries[id(session)] = entry
        session._scheduler = self
        tstate.sessions += 1
        return session

    def session(
        self,
        spec: WalkSpec,
        config: FlexiWalkerConfig | None = None,
        *,
        tenant: str | None = None,
        backend: str | None = None,
    ) -> WalkSession:
        """Open a service session and attach it in one step."""
        return self.attach(self.service.session(spec, config, backend=backend), tenant)

    def detach(self, session: WalkSession) -> None:
        """Drain the session's outstanding walkers, flush, and release it.

        The session returns to standalone execution; its accumulated
        results stay collectible.
        """
        entry = self._entries.get(id(session))
        if entry is None or session._scheduler is not self:
            raise ServiceError("session is not attached to this scheduler")
        self._check_quarantined(entry)
        while entry.queued + entry.inflight:
            self._checked_tick(entry)
        self._flush(entry)
        session._scheduler = None
        entry.tenant.sessions -= 1
        del self._entries[id(session)]

    def _group_for(self, session: WalkSession) -> _Group:
        from repro.service.service import WalkService

        # Sessions fuse only when nothing observable distinguishes their
        # execution: same workload (structural spec key), same config (seed
        # included — it keys every random stream), same negotiated plan and
        # the same selector kind.  Anything else lands in its own group;
        # groups still advance in lockstep, one superstep per tick.
        key = (
            WalkService._spec_key(session.spec),
            session.graph_version,
            WalkService._canonical(dataclasses.asdict(session.config)),
            WalkService._canonical(session.plan.describe()),
            type(session.selector).__qualname__,
        )
        group = self._groups.get(key)
        if group is None:
            group = _Group(key, session.engine, track_counts=session._track_counts)
            self._groups[key] = group
        return group

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def queued(self) -> int:
        """Walkers waiting in admission queues (all tenants)."""
        return self._queued

    @property
    def inflight(self) -> int:
        """Walkers currently executing in fused frontiers."""
        return self._inflight

    @property
    def pending(self) -> int:
        """Queued + in-flight walkers across every attached session."""
        return self._queued + self._inflight

    @property
    def supersteps(self) -> int:
        """Scheduler ticks executed so far (the latency clock)."""
        return self._tick

    @property
    def exec_seconds(self) -> float:
        """Wall-clock seconds spent inside :meth:`tick` so far."""
        return self._exec_seconds

    @property
    def quarantined(self) -> tuple["WalkSession", ...]:
        """Sessions whose fusion group was quarantined after a crash.

        A quarantined session's results are unreliable (its group died
        mid-superstep); reusing it — submit, stream, collect or detach —
        raises :class:`~repro.errors.ServiceError`.  Every other group
        keeps ticking normally.
        """
        return tuple(e.session for e in self._quarantined)

    @property
    def dead_letters(self) -> int:
        """Walkers dropped before completing, across every tenant."""
        return sum(t.dead_letters for t in self._tenants.values())

    @property
    def recovery_time_ns(self) -> float:
        """Simulated recovery time accumulated by every fusion group."""
        return sum(
            g.faults.recovery_ns for g in self._groups.values() if g.faults is not None
        )

    @property
    def checkpoints_taken(self) -> int:
        """Explicit (charged) checkpoints taken across every fusion group."""
        return sum(
            g.faults.checkpoints_taken
            for g in self._groups.values()
            if g.faults is not None
        )

    @property
    def degraded_devices(self) -> tuple[int, ...]:
        """Devices lost to permanent failures, across every fusion group."""
        dead: set[int] = set()
        for g in self._groups.values():
            if g.faults is not None:
                dead.update(g.faults.degraded)
        return tuple(sorted(dead))

    def tenant_stats(self) -> dict[str, TenantStats]:
        """Exact per-tenant accounting, split out of the fused execution."""
        slo_queued: dict[str, int] = {}
        for p in self._slo:
            slo_queued[p.tenant.name] = slo_queued.get(p.tenant.name, 0) + 1
        stats = {}
        for name, t in sorted(self._tenants.items()):
            queued = len(t.queue) + slo_queued.get(name, 0)
            stats[name] = TenantStats(
                tenant=name,
                weight=t.weight,
                quota=t.quota,
                sessions=t.sessions,
                submitted=t.submitted,
                admitted=t.admitted,
                completed=t.completed,
                queued=queued,
                inflight=t.outstanding - queued,
                slo_admitted=t.slo_admitted,
                steps=t.steps,
                lane_time_ns=t.lane_ns,
                dead_letters=t.dead_letters,
            )
        return stats

    def describe(self) -> dict[str, object]:
        """Summary of the scheduler's state (for logs and examples)."""
        return {
            "fairness": self.fairness,
            "max_inflight_walkers": self.max_inflight_walkers,
            "default_tenant": self.default_tenant,
            "tenants": sorted(self._tenants),
            "sessions": len(self._entries),
            "fusion_groups": len(self._groups),
            "supersteps": self._tick,
            "queued": self._queued,
            "inflight": self._inflight,
            "quarantined_sessions": len(self._quarantined),
            "dead_letters": self.dead_letters,
        }

    # ------------------------------------------------------------------ #
    # The execution loop
    # ------------------------------------------------------------------ #
    def tick(self) -> int:
        """One superstep boundary: expire, admit, advance every fusion group.

        Crash-safe: a group whose superstep raises is quarantined — its
        sessions' outstanding walkers are dead-lettered and the group is
        removed — instead of wedging every tenant behind the poisoned
        frontier.  Returns the number of walker-steps executed across all
        (surviving) groups.
        """
        started = time.perf_counter()  # repro: ignore[internal/wall-clock]
        self._shed_overdue()
        self._expire_deadlines()
        self._admit()
        steps = 0
        participants: list[tuple[_SessionEntry, int]] = []
        for group in list(self._groups.values()):
            try:
                steps += self._advance_group(group, participants)
            except Exception as exc:  # noqa: BLE001 - quarantine, don't wedge
                self._quarantine_group(group, exc)
        self._tick += 1
        elapsed = time.perf_counter() - started  # repro: ignore[internal/wall-clock]
        self._exec_seconds += elapsed
        if steps:
            # Wall time is shared; attribute it to sessions by their share
            # of this tick's walker-steps (informational, like a solo
            # session's wall-clock bookkeeping).
            for entry, share in participants:
                entry.session._exec_seconds += elapsed * (share / steps)
        return steps

    def run_until_idle(self, max_ticks: int | None = None) -> int:
        """Tick until no queued or in-flight work remains; total steps run."""
        total = 0
        ticks = 0
        while self.pending:
            if max_ticks is not None and ticks >= max_ticks:
                raise ServiceError(
                    f"scheduler still has {self.pending} pending walkers "
                    f"after {max_ticks} ticks"
                )
            total += self.tick()
            ticks += 1
        return total

    def _checked_tick(self, entry: _SessionEntry) -> int:
        """Tick with a no-progress guard for drain loops."""
        before = (self._queued, self._inflight, len(entry.session._path_by_qid))
        steps = self.tick()
        after = (self._queued, self._inflight, len(entry.session._path_by_qid))
        if steps == 0 and before == after and entry.queued + entry.inflight:
            raise ServiceError(
                "scheduler made no progress while the session still has "
                "pending walkers (internal invariant violation)"
            )  # pragma: no cover - defensive
        return steps

    def _stream_session(self, session: WalkSession) -> Iterator["WalkChunk"]:
        """Drive the shared loop, yielding this session's chunks.

        Other sessions' completions buffer on their own entries (their
        streams pick them up).  Returns — after flushing the session's
        finalised accounting — when the session has no pending work.

        Dropping the iterator mid-stream (breaking out of the only
        reference to it) abandons the session's remaining walkers: they
        are cancelled so the in-flight budget and tenant quota headroom
        they held is released immediately, instead of leaking until some
        other session's stream happens to drain them.
        """
        entry = self._entries[id(session)]
        self._check_quarantined(entry)
        try:
            while True:
                while entry.chunks:
                    yield entry.chunks.popleft()
                if entry.queued + entry.inflight == 0:
                    break
                self._checked_tick(entry)
        except GeneratorExit:
            self._abandon(entry)
            raise
        self._flush(entry)

    def _session_pending(self, session: WalkSession) -> int:
        entry = self._entries[id(session)]
        return entry.queued + entry.inflight

    # ------------------------------------------------------------------ #
    # Robustness: cancellation, deadlines, shedding, quarantine
    # ------------------------------------------------------------------ #
    def _drop_pending(self, p: _Pending, reason: str) -> None:
        """Dead-letter one still-queued walker (caller removes it from its lane)."""
        p.entry.session._cancelled_ids[p.query.query_id] = reason
        p.tenant.outstanding -= 1
        p.tenant.dead_letters += 1
        p.entry.queued -= 1
        self._queued -= 1

    def _cancel_queries(self, session, query_ids, reason: str) -> int:
        entry = self._entries.get(id(session))
        if entry is None:
            raise ServiceError("session is not attached to this scheduler")
        return sum(1 for qid in query_ids if self._cancel_query(entry, int(qid), reason))

    def _cancel_query(self, entry: _SessionEntry, qid: int, reason: str) -> bool:
        """Drop one unfinished walker, queued or in flight; False if done.

        In-flight walkers are terminated in the fused frontier; the walk
        prefix they already executed stays in the accounting (it really
        ran) but the ticket reports the walk as dropped.  Either way the
        in-flight budget and tenant quota headroom are released now.
        """
        session = entry.session
        if qid in session._path_by_qid or qid in session._cancelled_ids:
            return False
        if qid not in session._claimed_ids:
            pending = self._pop_pending(entry, qid)
            if pending is None:  # pragma: no cover - defensive
                return False
            self._drop_pending(pending, reason)
            return True
        frontier = entry.group.run.frontier
        for i, query in enumerate(entry.queries):
            if query.query_id == qid:
                pos = entry.fused_pos[i]
                break
        else:  # pragma: no cover - claimed ids always have an entry slot
            return False
        frontier.terminate(np.array([pos], dtype=np.int64))
        session._path_by_qid[qid] = list(frontier.path(pos))
        session._cancelled_ids[qid] = reason
        # A restore from a pre-cancellation checkpoint would resurrect the
        # terminated walker; rebase the group's restore point on the
        # post-cancellation state instead.
        if entry.group.faults is not None:
            entry.group.checkpoint = None
        tenant = entry.group.tenants[pos]
        tenant.outstanding -= 1
        tenant.dead_letters += 1
        entry.inflight -= 1
        self._inflight -= 1
        return True

    def _pop_pending(self, entry: _SessionEntry, qid: int) -> _Pending | None:
        """Remove one queued walker from whichever admission lane holds it."""
        lanes = [self._slo]
        lanes.extend(t.queue for t in self._tenants.values())
        for lane in lanes:
            for p in lane:
                if p.entry is entry and p.query.query_id == qid:
                    lane.remove(p)
                    return p
        return None

    def _expire_deadlines(self) -> None:
        """Cancel walkers whose hard ``deadline_ticks`` has passed."""
        while self._deadlines and self._deadlines[0][0] <= self._tick:
            _, _, entry, qid = heapq.heappop(self._deadlines)
            if entry.quarantined is None:
                self._cancel_query(entry, qid, reason="deadline")

    def _shed_overdue(self) -> None:
        """Shed queued walkers that outwaited ``shed_after_ticks``.

        The load-shedding valve under sustained backpressure: when
        admission cannot keep up, the oldest queued walkers are
        dead-lettered instead of growing the queues without bound.
        """
        if self.shed_after_ticks is None or not self._queued:
            return
        self._slo = self._shed_lane(self._slo)
        for tenant in self._tenants.values():
            if tenant.queue:
                tenant.queue = self._shed_lane(tenant.queue)

    def _shed_lane(self, lane: deque) -> deque:
        keep: deque[_Pending] = deque()
        for p in lane:
            if self._tick - p.enqueue_tick >= self.shed_after_ticks:
                self._drop_pending(p, reason="shed")
            else:
                keep.append(p)
        return keep

    def _check_quarantined(self, entry: _SessionEntry) -> None:
        if entry.quarantined is not None:
            raise ServiceError(
                "session was quarantined after its fusion group crashed "
                f"({entry.quarantined}); its results are not recoverable"
            )

    def _quarantine_group(self, group: _Group, exc: BaseException) -> None:
        """Contain a poisoned fusion group instead of wedging every tenant.

        The group is removed from the loop and every walker its sessions
        still had outstanding — queued or in flight — is dead-lettered,
        releasing the budget and quota headroom they held.  The sessions
        are marked quarantined: any further use raises
        :class:`~repro.errors.ServiceError` naming the original crash.
        Sessions in *other* groups are untouched.
        """
        self._groups.pop(group.key, None)
        message = f"{type(exc).__name__}: {exc}"
        for entry in group.sessions:
            if entry.quarantined is not None:
                continue
            session = entry.session
            self._slo = self._drop_entry_pendings(self._slo, entry)
            for tenant in self._tenants.values():
                if tenant.queue:
                    tenant.queue = self._drop_entry_pendings(tenant.queue, entry)
            for i, query in enumerate(entry.queries):
                qid = query.query_id
                if qid in session._path_by_qid or qid in session._cancelled_ids:
                    continue
                session._cancelled_ids[qid] = "quarantined"
                tenant = group.tenants[entry.fused_pos[i]]
                tenant.outstanding -= 1
                tenant.dead_letters += 1
                entry.inflight -= 1
                self._inflight -= 1
            entry.quarantined = message
            self._quarantined.append(entry)

    def _drop_entry_pendings(self, lane: deque, entry: _SessionEntry) -> deque:
        keep: deque[_Pending] = deque()
        for p in lane:
            if p.entry is entry:
                self._drop_pending(p, reason="quarantined")
            else:
                keep.append(p)
        return keep

    def _abandon(self, entry: _SessionEntry) -> None:
        """Release an abandoned session's outstanding walkers (dropped stream)."""
        if entry.quarantined is not None:
            return
        session = entry.session
        unfinished = [
            q.query_id
            for q in session._submitted
            if q.query_id not in session._path_by_qid
            and q.query_id not in session._cancelled_ids
        ]
        for qid in unfinished:
            self._cancel_query(entry, qid, reason="abandoned")

    # ------------------------------------------------------------------ #
    # Admission: backpressure, fairness, mid-flight injection
    # ------------------------------------------------------------------ #
    def _reserve_capacity(
        self, session: WalkSession, count: int, options: SubmitOptions
    ) -> None:
        """Backpressure gate, run before the submission mutates anything.

        Two independent limits: a submission arriving while the in-flight
        walker budget is *exhausted* (every execution slot occupied) is
        refused — new work may only queue while the loop still has room to
        make progress on it; and a tenant's outstanding (queued + in-flight)
        walkers may never exceed its quota, which is what bounds a single
        tenant's queue memory.  ``block_on_full`` turns both refusals into
        blocking admission: supersteps run until completions free capacity
        (bounded by ``block_timeout`` wall-clock seconds when set).
        """
        entry = self._entries[id(session)]
        self._check_quarantined(entry)
        tenant = self._submit_tenant(entry, options)
        budget = self.max_inflight_walkers
        if tenant.quota is not None and count > tenant.quota:
            raise QueueFull(
                f"submission of {count} walkers can never fit tenant "
                f"{tenant.name!r}'s quota of {tenant.quota}"
            )

        def fits() -> bool:
            if budget and self._inflight >= budget:
                return False
            if tenant.quota is not None and tenant.outstanding + count > tenant.quota:
                return False
            return True

        give_up = (
            None
            if options.block_timeout is None
            else time.monotonic() + options.block_timeout  # repro: ignore[internal/wall-clock]
        )
        while not fits():
            if not options.block_on_full:
                raise QueueFull(
                    f"in-flight walker budget exhausted ({self._inflight}/"
                    f"{budget or 'unbounded'} in flight, tenant {tenant.name!r} "
                    f"outstanding {tenant.outstanding}, quota {tenant.quota}); "
                    "submit with SubmitOptions(block_on_full=True) to wait, "
                    "or drain first"
                )
            if give_up is not None and time.monotonic() >= give_up:  # repro: ignore[internal/wall-clock]
                raise QueueFull(
                    f"blocking admission timed out after {options.block_timeout:g}s "
                    f"({self._inflight} walkers still in flight, tenant "
                    f"{tenant.name!r} outstanding {tenant.outstanding}, "
                    f"quota {tenant.quota})"
                )
            # Blocking admission: run supersteps until completions free
            # capacity.  Progress is guaranteed — walkers are in flight (or
            # queued behind a nonempty frontier) whenever this loop runs.
            self.tick()

    def _submit_tenant(self, entry: _SessionEntry, options: SubmitOptions) -> _TenantState:
        if options.tenant is None:
            return entry.tenant
        return self._tenant_state(options.tenant)

    def _enqueue(
        self,
        session: WalkSession,
        queries: list[WalkQuery],
        options: SubmitOptions,
    ) -> None:
        """Stage validated queries into the admission queues."""
        entry = self._entries[id(session)]
        tenant = self._submit_tenant(entry, options)
        base = len(session._submitted) - len(queries)
        for i, query in enumerate(queries):
            session._enqueue_step_by_qid[query.query_id] = self._tick
            pending = _Pending(
                seq=self._seq,
                entry=entry,
                tenant=tenant,
                query=query,
                sub_ord=base + i,
                enqueue_tick=self._tick,
                deadline_steps=options.deadline_steps,
            )
            self._seq += 1
            if options.deadline_ticks is not None:
                heapq.heappush(
                    self._deadlines,
                    (self._tick + options.deadline_ticks, pending.seq, entry,
                     query.query_id),
                )
            if options.priority > 0:
                self._slo.append(pending)
            else:
                tenant.queue.append(pending)
                if options.deadline_steps is not None:
                    tenant.has_deadlines = True
        count = len(queries)
        tenant.submitted += count
        tenant.outstanding += count
        entry.queued += count
        self._queued += count

    def _admit(self) -> None:
        """Admit queued walkers into their fusion groups, budget permitting.

        Order: deadline promotions first, then the SLO lane (FIFO), then
        the fairness policy — ``wrr`` picks the backlogged tenant with the
        smallest virtual time (one walker per pick, virtual time advanced
        by ``1/weight``), ``fifo`` follows global submission order.
        """
        if not self._queued:
            return
        # Queued walkers whose deadline aged out jump to the SLO lane.
        for tenant in self._tenants.values():
            if tenant.has_deadlines and tenant.queue:
                remaining: deque[_Pending] = deque()
                for p in tenant.queue:
                    if (
                        p.deadline_steps is not None
                        and self._tick - p.enqueue_tick >= p.deadline_steps
                    ):
                        self._slo.append(p)
                    else:
                        remaining.append(p)
                tenant.queue = remaining
                tenant.has_deadlines = any(
                    p.deadline_steps is not None for p in remaining
                )

        budget = (
            None
            if self.max_inflight_walkers == 0
            else self.max_inflight_walkers - self._inflight
        )
        admitted: list[_Pending] = []

        def room() -> bool:
            return budget is None or budget - len(admitted) > 0

        while self._slo and room():
            p = self._slo.popleft()
            p.tenant.slo_admitted += 1
            admitted.append(p)
        if self.fairness == "fifo":
            while room():
                backlogged = [t for t in self._tenants.values() if t.queue]
                if not backlogged:
                    break
                tenant = min(backlogged, key=lambda t: t.queue[0].seq)
                admitted.append(tenant.queue.popleft())
        else:  # wrr: virtual-time weighted fair queuing over unit walkers
            while room():
                backlogged = [t for t in self._tenants.values() if t.queue]
                if not backlogged:
                    break
                tenant = min(backlogged, key=lambda t: (t.vtime, t.name))
                # Catch the virtual clock up for tenants that sat idle, so a
                # returning tenant gets its fair share, not a stale burst.
                tenant.vtime = max(tenant.vtime, self._vclock)
                self._vclock = tenant.vtime
                tenant.vtime += 1.0 / tenant.weight
                admitted.append(tenant.queue.popleft())
        if not admitted:
            return
        if self.record_admissions:
            self.admissions.extend((self._tick, p.tenant.name) for p in admitted)

        by_group: dict[int, list[_Pending]] = {}
        groups: dict[int, _Group] = {}
        for p in admitted:
            gid = id(p.entry.group)
            by_group.setdefault(gid, []).append(p)
            groups[gid] = p.entry.group
        for gid, batch in by_group.items():
            self._apply_admission(groups[gid], batch)

    def _apply_admission(self, group: _Group, batch: list[_Pending]) -> None:
        """Inject one group's admitted walkers into its fused frontier."""
        queries = [p.query for p in batch]
        positions, _fetch_ns = group.run.admit(queries, group.seed)
        k = len(batch)
        group.owner = np.concatenate(
            [group.owner, np.array([p.entry.gidx for p in batch], dtype=np.int64)]
        )
        group.tenants.extend(p.tenant for p in batch)
        if group.track_counts:
            for name in CostCounters._COUNT_FIELDS:
                group.counts[name] = np.concatenate(
                    [group.counts[name], np.zeros(k, dtype=np.int64)]
                )
            group.counts["atomic_ops"][positions] = 1

        # Per-session fetch accounting: one queue atomic per admitted
        # walker, exactly as a solo wave launch charges it (lane pricing is
        # per-slot, so splitting a launch across admissions changes nothing).
        per_entry: dict[int, int] = {}
        for pos, p in zip(positions, batch, strict=False):
            entry = p.entry
            entry.fused_pos.append(int(pos))
            entry.queries.append(p.query)
            entry.sub_ords.append(p.sub_ord)
            entry.queued -= 1
            entry.inflight += 1
            entry.session._claimed_ids.add(p.query.query_id)
            entry.session._start_step_by_qid[p.query.query_id] = self._tick
            p.tenant.admitted += 1
            per_entry[entry.gidx] = per_entry.get(entry.gidx, 0) + 1
        for gidx, count in per_entry.items():
            fetch = CounterBatch(count, bytes_per_weight=group.engine.weight_bytes)
            fetch.atomic_ops += 1
            group.sessions[gidx].session._aggregate.merge(fetch.totals())
        self._queued -= k
        self._inflight += k
        # Admission grew the frontier, so the group's restore point no
        # longer matches its state; a fresh (cost-free) boundary snapshot
        # is taken before the next superstep runs.
        if group.faults is not None:
            group.checkpoint = None

    # ------------------------------------------------------------------ #
    # Superstep execution and exact per-session attribution
    # ------------------------------------------------------------------ #
    def _advance_group(
        self, group: _Group, participants: list[tuple[_SessionEntry, int]]
    ) -> int:
        run = group.run
        if group.gen is None:
            if run.frontier.active_indices().size == 0:
                return 0
            group.gen = self._group_gen(group)
        faults = group.faults
        if faults is not None and group.checkpoint is None:
            # Admission boundary (or group birth): a cost-free snapshot,
            # the fused analogue of the implicit initial checkpoint.
            group.checkpoint = take_checkpoint(
                group.ordinal - 1, run.frontier, run.pool, run.per_query_ns,
                group.aggregate, group.usage,
            )
        try:
            report = next(group.gen)
        except StopIteration:
            group.gen = None
            return 0
        self._fold(group, report, participants)
        if faults is not None:
            self._recover_group(group, report)
        group.ordinal += 1
        return report.steps

    def _group_gen(self, group: _Group):
        run = group.run
        return iter_supersteps(
            group.engine,
            run.frontier,
            run.streams,
            run.per_query_ns,
            group.aggregate,
            group.usage,
            track_finished=True,
            run=run,
        )

    def _recover_group(self, group: _Group, report) -> None:
        """Apply the fault plan at one fused superstep boundary.

        The scheduler-fused counterpart of
        :func:`~repro.runtime.faults.resilient_supersteps`: transient
        faults are a pure (deterministic) time penalty; a permanent
        device failure restores the group's checkpoint and silently
        replays the lost supersteps *within this tick* — admissions only
        land at tick boundaries, so replaying across ticks would let new
        walkers join mid-replay and change the replayed supersteps.
        Replayed supersteps regenerate bit-identical state, so the folds
        already applied stay valid and only the replayed makespans are
        charged to the recovery ledger.
        """
        run = group.run
        faults = group.faults
        ordinal = group.ordinal
        superstep_ns = float(report.step_ns.max()) if report.step_ns.size else 0.0
        faults.charge_transients(ordinal, superstep_ns)
        dead = faults.fail_devices(ordinal)
        if dead:
            faults.charge_failure(dead, group.checkpoint)
            restore_checkpoint(
                group.checkpoint, run.frontier, run.pool, run.per_query_ns,
                group.aggregate, group.usage,
            )
            group.gen = self._group_gen(group)
            for replay_ordinal in range(group.checkpoint.ordinal + 1, ordinal + 1):
                replay = next(group.gen)
                faults.recovery_ns += (
                    float(replay.step_ns.max()) if replay.step_ns.size else 0.0
                )
                if faults.checkpoint_due(replay_ordinal):
                    group.checkpoint = take_checkpoint(
                        replay_ordinal, run.frontier, run.pool, run.per_query_ns,
                        group.aggregate, group.usage,
                    )
                    faults.charge_checkpoint(group.checkpoint.payload_bytes)
        elif faults.checkpoint_due(ordinal):
            group.checkpoint = take_checkpoint(
                ordinal, run.frontier, run.pool, run.per_query_ns,
                group.aggregate, group.usage,
            )
            faults.charge_checkpoint(group.checkpoint.payload_bytes)

    def _fold(
        self,
        group: _Group,
        report,
        participants: list[tuple[_SessionEntry, int]],
    ) -> None:
        """Split one fused superstep back out per session and tenant.

        Integer counts fold exactly under any grouping (bincount of
        per-walker integers); per-walker float times accumulate in each
        walker's own slot in walk order, identical to a solo run — which is
        why the per-session results stay bit-identical.
        """
        engine = group.engine
        if group.track_counts and report.active.size:
            for name in CostCounters._COUNT_FIELDS:
                column = getattr(report.counters, name)
                if column.any():
                    group.counts[name][report.active] += column

        steps_by: dict[int, int] = {}
        tick_counters: dict[int, CostCounters] = {}
        if report.active.size:
            owners = group.owner[report.active]
            present = np.unique(owners)
            compact = np.searchsorted(present, owners)
            folded = [
                CostCounters(bytes_per_weight=engine.weight_bytes) for _ in present
            ]
            fold_counters_by_owner(compact, report.counters, folded, present.size)
            step_counts = np.bincount(compact, minlength=present.size)
            lane_ns = np.bincount(
                compact, weights=report.step_ns, minlength=present.size
            )
            for j, gidx in enumerate(present):
                entry = group.sessions[int(gidx)]
                session = entry.session
                session._aggregate.merge(folded[j])
                session._total_steps += int(step_counts[j])
                entry.tenant.steps += int(step_counts[j])
                entry.tenant.lane_ns += float(lane_ns[j])
                steps_by[int(gidx)] = int(step_counts[j])
                tick_counters[int(gidx)] = folded[j]
                participants.append((entry, int(step_counts[j])))
            # Sampler usage, attributed per session through the report's
            # kernel assignment (key set matches solo runs: a sampler is
            # recorded only for sessions whose walkers executed it).
            if report.assignment is not None:
                for pos, name in enumerate(report.sampler_names):
                    mask = report.assignment == pos
                    if not mask.any():
                        continue
                    used = np.bincount(compact[mask], minlength=present.size)
                    for j, gidx in enumerate(present):
                        if used[j]:
                            usage = group.sessions[int(gidx)].session._usage
                            usage[name] = usage.get(name, 0) + int(used[j])

        if report.finished.size == 0:
            return
        finished_by: dict[int, list[int]] = {}
        for i in report.finished:
            finished_by.setdefault(int(group.owner[i]), []).append(int(i))
        frontier = group.run.frontier
        for gidx, fused in finished_by.items():
            entry = group.sessions[gidx]
            session = entry.session
            paths = tuple(tuple(frontier.path(i)) for i in fused)
            query_ids = tuple(frontier.queries[i].query_id for i in fused)
            for qid, path in zip(query_ids, paths, strict=False):
                session._path_by_qid[qid] = list(path)
            count = len(fused)
            entry.inflight -= count
            self._inflight -= count
            for i in fused:
                tenant = group.tenants[i]
                tenant.outstanding -= 1
                tenant.completed += 1
            chunk = session._emit(
                query_ids,
                paths,
                steps=steps_by.get(gidx, 0),
                counters=tick_counters.get(
                    gidx, CostCounters(bytes_per_weight=engine.weight_bytes)
                ),
                superstep=self._tick,
            )
            entry.chunks.append(chunk)

    # ------------------------------------------------------------------ #
    # Finalisation
    # ------------------------------------------------------------------ #
    def _flush(self, entry: _SessionEntry) -> None:
        """Move an idle session's finished accounting into its collect state.

        Appends one submission-ordered accounting chunk covering every
        walker admitted since the previous flush — the scheduled analogue
        of a solo wave's finalisation, producing the same
        ``_paths``/``_ns_chunks``/``_count_chunks`` layout ``collect()``
        re-prices.  Only legal when the session has nothing queued or in
        flight (its admitted-so-far set is then exactly its submitted-so-far
        set, so submission order is recoverable).
        """
        self._check_quarantined(entry)
        start, end = entry.flushed, len(entry.fused_pos)
        if start == end:
            return
        if entry.queued + entry.inflight:  # pragma: no cover - defensive
            raise ServiceError("cannot flush a session with pending walkers")
        session = entry.session
        group = entry.group
        order = sorted(range(start, end), key=lambda i: entry.sub_ords[i])
        fused = np.array([entry.fused_pos[i] for i in order], dtype=np.int64)
        session._paths.extend(
            session._path_by_qid[entry.queries[i].query_id] for i in order
        )
        session._ns_chunks.append(group.run.per_query_ns[fused])
        if session._track_counts:
            for name in CostCounters._COUNT_FIELDS:
                session._count_chunks[name].append(group.counts[name][fused])
        session._executed += end - start
        entry.flushed = end

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServiceScheduler(sessions={len(self._entries)}, "
            f"fairness={self.fairness!r}, "
            f"max_inflight_walkers={self.max_inflight_walkers}, "
            f"pending={self.pending})"
        )
