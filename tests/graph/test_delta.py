"""Unit tests for the delta-CSR overlay (dynamic graphs).

The overlay's load-bearing invariants:

* ``compact()`` is bit-identical to building the same edge set from scratch
  with ``from_edge_list`` — indptr, indices, weights and labels;
* the merged-adjacency view agrees with the compacted CSR for every node;
* delta semantics are strict (duplicate adds, phantom removals, node-range
  violations all raise);
* the incremental CSR cache repairs equal a from-scratch rebuild;
* scoped rebinds of derived structures preserve untouched state by identity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.builders import from_edge_list
from repro.graph.delta import DeltaCSRGraph, GraphDelta
from repro.graph.invalidation import (
    DeltaInvalidation,
    graph_version,
    invalidation_for,
    repair_csr_caches,
)
from repro.graph.sharded import ShardedCSRGraph
from repro.sampling.transition_cache import TransitionCache
from repro.walks.deepwalk import DeepWalkSpec


def base_graph(n: int = 30, m: int = 120, seed: int = 0, labeled: bool = False):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(m, 2))
    labels = rng.integers(0, 4, size=m) if labeled else None
    return from_edge_list(
        edges, num_nodes=n, weights=rng.random(m), labels=labels, deduplicate=True
    )


def some_delta(dynamic: DeltaCSRGraph, seed: int = 1, adds: int = 10, rems: int = 6):
    """Valid (additions, removals) pair against the given version."""
    rng = np.random.default_rng(seed)
    n = dynamic.num_nodes
    cand = rng.integers(0, n, size=(8 * adds, 2))
    fresh = np.unique(cand[~dynamic.has_edges(cand[:, 0], cand[:, 1])], axis=0)[:adds]
    edges = dynamic.edge_list()[0]
    take = rng.choice(edges.shape[0], min(rems, edges.shape[0]), replace=False)
    removals = np.unique(edges[take], axis=0)
    return fresh, removals


class TestConstruction:
    def test_version_zero_is_the_base(self):
        g = base_graph()
        d = DeltaCSRGraph(g)
        assert d.version == 0 and d.delta is None
        assert d.num_nodes == g.num_nodes and d.num_edges == g.num_edges
        assert d.snapshot() is g  # no copy until the first delta
        assert d.compact() is g

    def test_base_must_be_csr(self):
        with pytest.raises(GraphError):
            DeltaCSRGraph("not a graph")

    def test_graph_version_helper(self):
        g = base_graph()
        d = DeltaCSRGraph(g)
        assert graph_version(g) == 0
        assert graph_version(d) == 0
        assert graph_version(d.apply_delta([], [tuple(d.edge_list()[0][0])])) == 1


class TestApplyDelta:
    def test_versions_are_immutable_and_monotonic(self):
        d0 = DeltaCSRGraph(base_graph())
        adds, rems = some_delta(d0)
        d1 = d0.apply_delta(adds, rems, weights=np.ones(len(adds)))
        assert (d0.version, d1.version) == (0, 1)
        assert d0.num_delta_edges == 0  # parent untouched
        d2 = d1.apply_delta(*some_delta(d1, seed=2))
        assert d2.version == 2
        assert d1.num_edges == d0.num_edges + len(adds) - rems.shape[0]

    def test_added_edges_are_visible_and_removed_edges_are_not(self):
        d0 = DeltaCSRGraph(base_graph())
        adds, rems = some_delta(d0)
        d1 = d0.apply_delta(adds, rems)
        assert d1.has_edges(adds[:, 0], adds[:, 1]).all()
        assert not d1.has_edges(rems[:, 0], rems[:, 1]).any()
        # the parent version still sees the old edge set
        assert d0.has_edges(rems[:, 0], rems[:, 1]).all()
        assert not d0.has_edges(adds[:, 0], adds[:, 1]).any()

    def test_duplicate_addition_rejected(self):
        d0 = DeltaCSRGraph(base_graph())
        live = tuple(d0.edge_list()[0][0])
        with pytest.raises(GraphError, match="already exists"):
            d0.apply_delta([live])

    def test_phantom_removal_rejected(self):
        d0 = DeltaCSRGraph(base_graph())
        adds, _ = some_delta(d0)
        with pytest.raises(GraphError, match="does not exist"):
            d0.apply_delta([], [tuple(adds[0])])

    def test_add_and_remove_same_edge_rejected(self):
        d0 = DeltaCSRGraph(base_graph())
        adds, _ = some_delta(d0)
        with pytest.raises(GraphError, match="add and remove"):
            d0.apply_delta([tuple(adds[0])], [tuple(adds[0])])

    def test_out_of_range_node_rejected(self):
        d0 = DeltaCSRGraph(base_graph())
        with pytest.raises(GraphError, match="outside"):
            d0.apply_delta([(0, d0.num_nodes)])

    def test_labels_required_iff_base_labeled(self):
        labeled = DeltaCSRGraph(base_graph(labeled=True))
        adds, _ = some_delta(labeled)
        with pytest.raises(GraphError, match="labels"):
            labeled.apply_delta(adds)
        plain = DeltaCSRGraph(base_graph())
        adds2, _ = some_delta(plain)
        with pytest.raises(GraphError, match="no edge labels"):
            plain.apply_delta(adds2, labels=np.zeros(len(adds2), dtype=np.int64))

    def test_graph_delta_pass_through(self):
        d0 = DeltaCSRGraph(base_graph())
        adds, rems = some_delta(d0)
        d1 = d0.apply_delta(adds, rems)
        again = d0.apply_delta(d1.delta)
        assert isinstance(d1.delta, GraphDelta)
        assert np.array_equal(again.compact().indices, d1.compact().indices)
        with pytest.raises(GraphError, match="not both"):
            d0.apply_delta(d1.delta, rems)

    def test_touched_sets(self):
        d0 = DeltaCSRGraph(base_graph())
        adds, rems = some_delta(d0)
        d1 = d0.apply_delta(adds, rems)
        expect = np.unique(np.concatenate([adds[:, 0], rems[:, 0]]))
        assert np.array_equal(d1.delta.touched_nodes, expect)
        expect_dst = np.unique(np.concatenate([adds[:, 1], rems[:, 1]]))
        assert np.array_equal(d1.delta.touched_destinations, expect_dst)


class TestMergedView:
    @pytest.mark.parametrize("labeled", [False, True])
    def test_merged_adjacency_matches_compacted(self, labeled):
        d0 = DeltaCSRGraph(base_graph(labeled=labeled))
        adds, rems = some_delta(d0)
        labels = np.arange(len(adds), dtype=np.int64) if labeled else None
        d1 = d0.apply_delta(adds, rems, labels=labels)
        compacted = d1.compact()
        nodes = np.arange(d1.num_nodes, dtype=np.int64)
        indptr, indices, weights, lbl = d1.merged_adjacency(nodes)
        assert np.array_equal(indptr, compacted.indptr)
        assert np.array_equal(indices, compacted.indices)
        assert np.array_equal(weights, compacted.weights)
        if labeled:
            assert np.array_equal(lbl, compacted.labels)
        else:
            assert lbl is None

    def test_per_node_accessors(self):
        d0 = DeltaCSRGraph(base_graph())
        d1 = d0.apply_delta(*some_delta(d0))
        c = d1.compact()
        assert np.array_equal(d1.degrees(), np.diff(c.indptr))
        for v in range(d1.num_nodes):
            assert d1.degree(v) == c.degree(v)
            assert np.array_equal(d1.neighbors(v), c.neighbors(v))
            assert np.array_equal(d1.edge_weights(v), c.edge_weights(v))

    def test_footprint_grows_with_the_overlay(self):
        d0 = DeltaCSRGraph(base_graph())
        d1 = d0.apply_delta(*some_delta(d0))
        assert d1.memory_footprint_bytes() > d0.memory_footprint_bytes()


class TestCompaction:
    @pytest.mark.parametrize("labeled", [False, True])
    def test_compact_bit_identical_to_fresh_build(self, labeled):
        d = DeltaCSRGraph(base_graph(labeled=labeled))
        for seed in (1, 2, 3):
            labels = None
            adds, rems = some_delta(d, seed=seed)
            if labeled:
                labels = np.arange(len(adds), dtype=np.int64) + seed
            d = d.apply_delta(adds, rems, labels=labels)
        compacted = d.compact()
        edges, weights, labels = d.edge_list()
        fresh = from_edge_list(
            edges, num_nodes=d.num_nodes, weights=weights, labels=labels
        )
        assert np.array_equal(compacted.indptr, fresh.indptr)
        assert np.array_equal(compacted.indices, fresh.indices)
        assert np.array_equal(compacted.weights, fresh.weights)
        if labeled:
            assert np.array_equal(compacted.labels, fresh.labels)

    def test_compact_with_parallel_base_edges(self):
        # A multigraph base: compaction must keep parallel copies in base
        # order (stable sort), exactly like from_edge_list does.
        edges = [(0, 1), (0, 1), (0, 2), (1, 0), (1, 0)]
        weights = [1.0, 2.0, 3.0, 4.0, 5.0]
        g = from_edge_list(edges, num_nodes=3, weights=weights)
        d = DeltaCSRGraph(g).apply_delta([(2, 0)], [(0, 2)])
        compacted = d.compact()
        fresh = from_edge_list(*d.edge_list()[:1], num_nodes=3, weights=d.edge_list()[1])
        assert np.array_equal(compacted.indices, fresh.indices)
        assert np.array_equal(compacted.weights, fresh.weights)
        # removing a multi-edge removes all parallel copies
        d2 = DeltaCSRGraph(g).apply_delta([], [(0, 1)])
        assert d2.num_edges == 3 and not d2.has_edge(0, 1)

    def test_snapshot_is_cached(self):
        d = DeltaCSRGraph(base_graph())
        d1 = d.apply_delta(*some_delta(d))
        assert d1.snapshot() is d1.snapshot()


class TestCSRCacheRepair:
    def test_repaired_caches_equal_fresh_rebuild(self):
        g = base_graph()
        g._edge_keys()            # materialise both caches on the old snapshot
        g.in_degrees()
        d = DeltaCSRGraph(g)
        d1 = d.apply_delta(*some_delta(d))
        new = d1.compact()
        record = invalidation_for(d1)
        assert isinstance(record, DeltaInvalidation)
        assert (record.old_version, record.new_version) == (0, 1)
        repair_csr_caches(g, new, record)
        scratch = from_edge_list(*d1.edge_list()[:1], num_nodes=g.num_nodes,
                                 weights=d1.edge_list()[1])
        assert np.array_equal(new._edge_key_cache, scratch._edge_keys())
        assert np.array_equal(new._in_degree_cache, scratch.in_degrees())

    def test_in_degree_repair_is_lazy_when_never_built(self):
        # apply_delta's own validation materialises the base edge-key cache
        # (has_edges routes through it), but the in-degree cache is only
        # built on demand — a delta must not force that O(E) pass.
        g = base_graph()
        d1 = DeltaCSRGraph(g).apply_delta(*some_delta(DeltaCSRGraph(g)))
        new = d1.compact()
        repair_csr_caches(g, new, invalidation_for(d1))
        assert new._in_degree_cache is None
        scratch = from_edge_list(*d1.edge_list()[:1], num_nodes=g.num_nodes)
        assert np.array_equal(new._edge_key_cache, scratch._edge_keys())

    def test_invalidation_for_requires_a_delta(self):
        with pytest.raises(ValueError):
            invalidation_for(DeltaCSRGraph(base_graph()))


class TestScopedRebinds:
    def test_transition_cache_untouched_entries_survive(self):
        g = base_graph(n=40, m=200, seed=4)
        d = DeltaCSRGraph(g)
        d1 = d.apply_delta(*some_delta(d, seed=5))
        record = invalidation_for(d1)
        new = d1.compact()

        cache = TransitionCache(g, DeepWalkSpec())
        everything = np.arange(g.num_nodes)
        cache.ensure_weights(everything)
        cache.ensure_cdf(everything)
        cache.ensure_alias(everything)
        fills = (cache.weight_fills, cache.cdf_fills, cache.alias_fills)
        totals = cache._totals

        cache.rebind(new, record.touched_nodes)
        assert cache.graph is new
        assert cache._totals is totals  # per-node arrays keep identity
        assert (cache.weight_fills, cache.cdf_fills, cache.alias_fills) == fills
        untouched = np.setdiff1d(everything, record.touched_nodes)
        assert cache._have_weights[untouched].all()
        assert not cache._have_weights[record.touched_nodes].any()

        # after lazy refill, content equals a from-scratch cache
        fresh = TransitionCache(new, DeepWalkSpec())
        for c in (cache, fresh):
            c.ensure_weights(everything); c.ensure_cdf(everything); c.ensure_alias(everything)
        assert np.array_equal(cache._weights, fresh._weights)
        assert np.array_equal(cache._cdf, fresh._cdf)
        assert np.array_equal(cache._alias_prob, fresh._alias_prob)
        assert np.array_equal(cache._alias_idx, fresh._alias_idx)
        assert np.array_equal(cache._totals, fresh._totals)

    @pytest.mark.parametrize("policy", ["contiguous", "degree_balanced", "locality"])
    def test_sharded_rebind_reuses_untouched_shards(self, policy):
        g = base_graph(n=40, m=200, seed=6)
        d = DeltaCSRGraph(g)
        d1 = d.apply_delta(*some_delta(d, seed=7))
        record = invalidation_for(d1)
        new = d1.compact()

        sharded = ShardedCSRGraph.build(g, 4, policy)
        rebound = sharded.rebind(new, record.touched_nodes)
        assert rebound.owner_map is sharded.owner_map
        assert rebound.graph is new
        affected = set(np.unique(sharded.owner_map[record.touched_nodes]).tolist())
        for old_shard, new_shard in zip(sharded.shards, rebound.shards, strict=False):
            if old_shard.shard_id in affected:
                assert new_shard is not old_shard
            else:
                assert new_shard is old_shard  # object identity
        # content equals a from-scratch decomposition over the same owner map
        scratch = ShardedCSRGraph(new, sharded.owner_map, 4, policy)
        for a, b in zip(rebound.shards, scratch.shards, strict=False):
            assert np.array_equal(a.indptr, b.indptr)
            assert np.array_equal(a.indices, b.indices)
            assert np.array_equal(a.weights, b.weights)
        assert np.array_equal(rebound.shard_edge_counts(), scratch.shard_edge_counts())
        assert rebound.remote_edge_fraction() == scratch.remote_edge_fraction()
