"""Property-based contracts for the delta-CSR overlay subsystem.

Three invariants, hunted across randomly generated delta chains:

1. **Compaction identity** — after any sequence of valid deltas,
   ``DeltaCSRGraph.compact()`` is bit-identical (indptr, indices, weights,
   labels) to a *fresh* ``from_edge_list`` build of the surviving edge
   multiset, tracked independently in plain Python.
2. **Scoped invalidation** — rebinding a filled ``TransitionCache`` /
   ``NodeHintTables`` across one delta keeps untouched-node entries alive
   (flags set, values carried bit-for-bit, per-node arrays object-identical)
   while clearing exactly the touched rows; lazily refilled post-rebind
   state matches a scratch build on the new version.
3. **Version monotonicity under the scheduler** — interleaving
   ``apply_delta`` with session attaches and continuous-batching ticks
   advances ``service.graph_version`` by exactly one per delta, sessions
   keep the version they were opened at for life, and cross-version
   sessions never share a fused scheduler group.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.generator import compile_workload
from repro.core.config import FlexiWalkerConfig
from repro.graph.builders import from_edge_list
from repro.graph.delta import DeltaCSRGraph
from repro.graph.generators import barabasi_albert_graph
from repro.graph.invalidation import invalidation_for
from repro.graph.labels import random_edge_labels
from repro.graph.weights import uniform_weights
from repro.gpusim.device import A6000
from repro.runtime.frontier import NodeHintTables
from repro.sampling.transition_cache import TransitionCache
from repro.service import DeviceFleet, WalkService
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.state import make_queries

DEVICE = dataclasses.replace(A6000, parallel_lanes=8)


def build_graph(seed: int, labeled: bool):
    graph = barabasi_albert_graph(20 + (seed % 5) * 8, 3, seed=seed,
                                  name=f"delta-prop-{seed}")
    graph = graph.with_weights(uniform_weights(graph, seed=seed))
    if labeled:
        graph = graph.with_labels(random_edge_labels(graph, num_labels=4, seed=seed))
    return graph


def random_delta(dynamic: DeltaCSRGraph, seed: int, adds: int, rems: int):
    """A valid (additions, removals, weights, labels) draw for this version."""
    rng = np.random.default_rng(seed)
    n = dynamic.num_nodes
    cand = rng.integers(0, n, size=(12 * max(adds, 1), 2))
    fresh = np.unique(cand[~dynamic.has_edges(cand[:, 0], cand[:, 1])], axis=0)[:adds]
    live = dynamic.edge_list()[0]
    take = rng.choice(live.shape[0], min(rems, live.shape[0]), replace=False)
    removals = np.unique(live[take], axis=0)
    weights = rng.random(len(fresh))
    labels = rng.integers(0, 4, size=len(fresh)) if dynamic.has_labels else None
    return fresh, removals, weights, labels


class TestCompactionIdentity:
    @settings(max_examples=25, deadline=None)
    @given(
        graph_seed=st.integers(min_value=0, max_value=40),
        labeled=st.booleans(),
        delta_seeds=st.lists(st.integers(min_value=0, max_value=10_000),
                             min_size=1, max_size=4),
        adds=st.integers(min_value=0, max_value=14),
        rems=st.integers(min_value=0, max_value=8),
    )
    def test_compact_equals_fresh_build_of_tracked_edges(
        self, graph_seed, labeled, delta_seeds, adds, rems
    ):
        base = build_graph(graph_seed, labeled)
        dynamic = DeltaCSRGraph(base)

        # Independent Python-side mirror of the surviving edge multiset.
        src = np.repeat(np.arange(base.num_nodes, dtype=np.int64), base.degrees())
        dst = base.indices.copy()
        wgt = base.weights.copy()
        lbl = base.labels.copy() if labeled else None

        for i, seed in enumerate(delta_seeds):
            additions, removals, weights, labels = random_delta(
                dynamic, seed, adds, rems
            )
            dynamic = dynamic.apply_delta(additions, removals,
                                          weights=weights, labels=labels)
            assert dynamic.version == i + 1
            if len(removals):
                keys = src * base.num_nodes + dst
                gone = removals[:, 0] * base.num_nodes + removals[:, 1]
                keep = ~np.isin(keys, gone)
                src, dst, wgt = src[keep], dst[keep], wgt[keep]
                if labeled:
                    lbl = lbl[keep]
            if len(additions):
                src = np.concatenate([src, additions[:, 0]])
                dst = np.concatenate([dst, additions[:, 1]])
                wgt = np.concatenate([wgt, weights])
                if labeled:
                    lbl = np.concatenate([lbl, labels])

        fresh = from_edge_list(np.stack([src, dst], axis=1),
                               num_nodes=base.num_nodes, weights=wgt,
                               labels=lbl, name=base.name)
        compacted = dynamic.compact()
        assert np.array_equal(compacted.indptr, fresh.indptr)
        assert np.array_equal(compacted.indices, fresh.indices)
        assert np.array_equal(compacted.weights, fresh.weights)
        if labeled:
            assert np.array_equal(compacted.labels, fresh.labels)
        else:
            assert compacted.labels is None
        assert compacted.num_edges == len(src)


class TestScopedInvalidation:
    @settings(max_examples=20, deadline=None)
    @given(
        graph_seed=st.integers(min_value=0, max_value=40),
        delta_seed=st.integers(min_value=0, max_value=10_000),
        adds=st.integers(min_value=1, max_value=12),
        rems=st.integers(min_value=1, max_value=8),
    )
    def test_untouched_entries_survive_a_delta(
        self, graph_seed, delta_seed, adds, rems
    ):
        base = build_graph(graph_seed, labeled=False)
        spec = DeepWalkSpec()
        dynamic = DeltaCSRGraph(base)
        old_graph = dynamic.snapshot()
        everything = np.arange(base.num_nodes, dtype=np.int64)

        cache = TransitionCache(old_graph, spec)
        cache.ensure_weights(everything)
        cache.ensure_cdf(everything)
        cache.ensure_alias(everything)
        hints = NodeHintTables(compile_workload(spec, old_graph), old_graph)
        hints.lookup(everything)

        old_indptr = old_graph.indptr
        old_weights = cache._weights.copy()
        old_cdf = cache._cdf.copy()
        old_totals = cache._totals.copy()
        old_bounds, old_sums = hints.bounds, hints.sums
        saved_bounds, saved_sums = old_bounds.copy(), old_sums.copy()
        have_weights, have_cdf = cache._have_weights, cache._have_cdf

        additions, removals, weights, _ = random_delta(dynamic, delta_seed,
                                                       adds, rems)
        dynamic = dynamic.apply_delta(additions, removals, weights=weights)
        record = invalidation_for(dynamic)
        new_graph = dynamic.snapshot()
        touched = record.touched_nodes
        untouched = np.setdiff1d(everything, touched)

        cache.rebind(new_graph, touched)
        new_compiled = compile_workload(spec, new_graph)
        hints.rebind(new_graph, touched, compiled=new_compiled)

        # Per-node flag / hint arrays keep object identity; only the
        # touched rows were cleared.
        assert cache._have_weights is have_weights
        assert cache._have_cdf is have_cdf
        assert hints.bounds is old_bounds and hints.sums is old_sums
        assert bool(np.all(cache._have_weights[untouched]))
        assert bool(np.all(cache._have_cdf[untouched]))
        assert bool(np.all(hints._computed[untouched]))
        if touched.size:
            assert not np.any(cache._have_weights[touched])
            assert not np.any(cache._have_cdf[touched])
            assert not np.any(cache._have_alias[touched])
            assert not np.any(hints._computed[touched])
            assert np.all(cache._totals[touched] == 0.0)

        # Untouched values were carried bit-for-bit into the new layout.
        new_indptr = new_graph.indptr
        for node in untouched.tolist():
            old_slice = slice(old_indptr[node], old_indptr[node + 1])
            new_slice = slice(new_indptr[node], new_indptr[node + 1])
            assert np.array_equal(cache._weights[new_slice], old_weights[old_slice])
            assert np.array_equal(cache._cdf[new_slice], old_cdf[old_slice])
        assert np.array_equal(cache._totals[untouched], old_totals[untouched])
        assert np.array_equal(hints.bounds[untouched], saved_bounds[untouched],
                              equal_nan=True)
        assert np.array_equal(hints.sums[untouched], saved_sums[untouched],
                              equal_nan=True)

        # Lazy refill converges to a scratch build on the new version.
        cache.ensure_weights(everything)
        cache.ensure_cdf(everything)
        scratch = TransitionCache(new_graph, spec)
        scratch.ensure_weights(everything)
        scratch.ensure_cdf(everything)
        assert np.array_equal(cache._weights, scratch._weights)
        assert np.array_equal(cache._cdf, scratch._cdf)
        assert np.array_equal(cache._totals, scratch._totals)
        fresh_hints = NodeHintTables(new_compiled, new_graph)
        assert all(
            np.array_equal(got, want, equal_nan=True)
            for got, want in zip(hints.lookup(everything),
                                 fresh_hints.lookup(everything), strict=False)
        )


class TestVersionMonotonicityUnderTheScheduler:
    @settings(max_examples=15, deadline=None)
    @given(
        graph_seed=st.integers(min_value=0, max_value=40),
        ops=st.lists(st.sampled_from(["delta", "attach", "tick"]),
                     min_size=3, max_size=9),
        delta_seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_versions_advance_by_one_and_sessions_keep_theirs(
        self, graph_seed, ops, delta_seed
    ):
        service = WalkService(DeltaCSRGraph(build_graph(graph_seed, labeled=False)),
                              fleet=DeviceFleet(DEVICE, 1))
        scheduler = service.scheduler()
        config = FlexiWalkerConfig(device=DEVICE)
        sessions: list[tuple[object, int]] = []
        expected_version = 0

        for i, op in enumerate(ops):
            if op == "delta":
                additions, removals, weights, _ = random_delta(
                    service._dynamic, delta_seed + i, adds=6, rems=4
                )
                new_version = service.apply_delta(additions, removals,
                                                  weights=weights)
                expected_version += 1
                assert new_version == expected_version
            elif op == "attach":
                session = scheduler.attach(
                    service.session(DeepWalkSpec(), config), tenant=f"t{i}"
                )
                session.submit(make_queries(service.graph.num_nodes,
                                            walk_length=3, num_queries=4,
                                            seed=i))
                assert session.graph_version == expected_version
                sessions.append((session, expected_version))
            else:
                scheduler.tick()
            assert service.graph_version == expected_version

        scheduler.run_until_idle()
        for session, opened_at in sessions:
            assert session.graph_version == opened_at  # immutable for life
            assert len(session.collect().paths) == 4

        # Cross-version sessions never share a fused group.
        for a, va in sessions:
            for b, vb in sessions:
                if va != vb:
                    assert (scheduler._entries[id(a)].group
                            is not scheduler._entries[id(b)].group)
        for session, _ in sessions:
            session.close()
