"""Counting RNG streams and per-thread stream pools.

The number of random numbers generated is one of the explicit cost terms in
the paper (Section 3.2: the baseline reservoir kernel draws one uniform per
neighbour, eRVS's jump technique draws far fewer).  ``CountingStream`` wraps a
:class:`~repro.rng.philox.PhiloxEngine` and records every draw so kernels can
report exact RNG counts to the GPU simulator's cost counters.

Because the generator is counter-based, a stream's state is just the pair
``(key, counter)``.  :class:`StreamPool` therefore keeps the state of every
stream it owns in parallel numpy arrays; the per-walker stream objects the
scalar paths hand around (:class:`PooledStream`) are views into those arrays,
and the batched engine's cross-stream draws (:meth:`BatchStreams.uniform_flat`)
reserve counters for thousands of streams with a handful of vectorised array
operations instead of one Python call per stream.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.rng.philox import PhiloxEngine, derive_child_keys, philox_uniform

_MASK64 = (1 << 64) - 1


class CountingStream:
    """RNG stream that counts how many variates have been drawn.

    The count is the number of *variates*, not the number of calls, because a
    vectorised call drawing ``n`` uniforms corresponds to ``n`` cuRAND calls
    on the GPU.
    """

    __slots__ = ("_engine", "draws")

    def __init__(self, engine: PhiloxEngine) -> None:
        self._engine = engine
        self.draws = 0

    @classmethod
    def from_seed(cls, seed: int, stream: int = 0) -> CountingStream:
        return cls(PhiloxEngine(seed, stream))

    def reset_count(self) -> None:
        self.draws = 0

    def uniform(self, size: int | tuple[int, ...] | None = None) -> np.ndarray | float:
        self.draws += 1 if size is None else int(np.prod(size))
        return self._engine.uniform(size)

    def integers(self, low: int, high: int, size: int | None = None) -> np.ndarray | int:
        self.draws += 1 if size is None else int(size)
        return self._engine.integers(low, high, size)

    def exponential(self, size: int | None = None) -> np.ndarray | float:
        self.draws += 1 if size is None else int(size)
        return self._engine.exponential(size)

    def split(self, index: int) -> CountingStream:
        """Derive an independent child stream with its own counter."""
        return CountingStream(self._engine.split(index))

    @property
    def philox_key(self) -> np.uint64:
        """The underlying engine key (used by :class:`BatchStreams`)."""
        return self._engine.key

    def reserve(self, n: int) -> np.uint64:
        """Claim ``n`` draws (counting them) and return the start counter.

        The values that correspond to the claimed counters are exactly what
        ``uniform(n)`` would have produced; :class:`BatchStreams` uses this to
        generate them for many streams in one vectorised Philox evaluation.
        """
        self.draws += int(n)
        return self._engine.reserve(int(n))


class PooledStream(CountingStream):
    """A :class:`CountingStream` whose state lives in a :class:`StreamPool`.

    The pool keeps ``(key, counter, draws)`` for every stream in parallel
    arrays so batched draws never have to touch per-stream Python objects;
    this class is the scalar view over one slot of those arrays.  Every draw
    produces bit-identical values to a plain ``CountingStream`` with the same
    key (the Philox formulas are replayed term for term), so the scalar
    engine, the scalar-fallback bridges and the vectorised frontier paths all
    advance literally the same state.
    """

    __slots__ = ("_pool", "_slot")

    def __init__(self, pool: StreamPool, slot: int) -> None:
        self._pool = pool
        self._slot = int(slot)

    # -- counter/draw state lives in the pool arrays -------------------- #
    @property
    def draws(self) -> int:  # type: ignore[override]
        return int(self._pool._draws[self._slot])

    def reset_count(self) -> None:
        self._pool._draws[self._slot] = 0

    @property
    def philox_key(self) -> np.uint64:
        return np.uint64(self._pool._keys[self._slot])

    def _take(self, n: int) -> int:
        """Claim ``n`` counters (tallying the draws) and return the start."""
        pool = self._pool
        start = int(pool._counters[self._slot])
        pool._counters[self._slot] = np.uint64((start + n) & _MASK64)
        pool._draws[self._slot] += n
        return start

    def reserve(self, n: int) -> np.uint64:
        return np.uint64(self._take(int(n)))

    # -- draw methods (replaying the PhiloxEngine formulas exactly) ----- #
    def uniform(self, size: int | tuple[int, ...] | None = None) -> np.ndarray | float:
        key = self._pool._keys[self._slot]
        if size is None:
            return float(philox_uniform(key, np.uint64(self._take(1))))
        n = int(np.prod(size))
        start = self._take(n)
        with np.errstate(over="ignore"):
            counters = np.uint64(start) + np.arange(n, dtype=np.uint64)
        return philox_uniform(key, counters).reshape(size)

    def integers(self, low: int, high: int, size: int | None = None) -> np.ndarray | int:
        if high <= low:
            raise ValueError(f"empty integer range [{low}, {high})")
        span = high - low
        u = self.uniform(size)
        if size is None:
            return low + int(u * span)
        return (low + np.floor(np.asarray(u) * span)).astype(np.int64)

    def exponential(self, size: int | None = None) -> np.ndarray | float:
        u = self.uniform(size)
        if size is None:
            return -float(np.log1p(-u))
        return -np.log1p(-np.asarray(u))

    def split(self, index: int) -> CountingStream:
        child = PhiloxEngine.__new__(PhiloxEngine)
        child._key = np.uint64(derive_child_keys(self.philox_key, np.array([index]))[0])
        child._counter = np.uint64(0)
        return CountingStream(child)


class BatchStreams:
    """Vectorised draws from many counting streams at once.

    Because the underlying generator is counter-based, the variates a stream
    *would* produce are a pure function of ``(key, counter)``: drawing
    ``counts[i]`` values from stream ``i`` for every ``i`` simultaneously is
    one broadcasted Philox evaluation, and each per-stream sub-sequence is
    bit-identical to what sequential ``stream.uniform(counts[i])`` calls
    would have returned.  This is what lets the batched walk engine replay
    the scalar engine's per-walker randomness exactly while running the whole
    frontier through a single numpy expression.

    Two backings exist: batches minted by :meth:`StreamPool.batch` operate
    directly on the pool's state arrays (counter reservation is a fancy-index
    add — no per-stream Python work at all), while batches built from a list
    of standalone :class:`CountingStream` objects reserve through each object
    so external streams observe their draws.
    """

    __slots__ = ("streams", "_keys", "_pool", "_slots", "_threads")

    def __init__(self, streams: Sequence[CountingStream]) -> None:
        self.streams = list(streams)
        self._keys = np.array([s.philox_key for s in self.streams], dtype=np.uint64)
        self._pool = None
        self._slots = None
        self._threads = None

    @classmethod
    def _from_pool(cls, pool: StreamPool, threads: np.ndarray, slots: np.ndarray) -> BatchStreams:
        self = cls.__new__(cls)
        self.streams = None
        self._pool = pool
        self._slots = slots
        self._threads = threads
        self._keys = pool._keys[slots]
        return self

    def __len__(self) -> int:
        return len(self._slots) if self._pool is not None else len(self.streams)

    def subset(self, indices: np.ndarray) -> BatchStreams:
        """A view over a subset of the streams (shared stream state)."""
        idx = np.asarray(indices, dtype=np.int64)
        if self._pool is not None:
            return BatchStreams._from_pool(self._pool, self._threads[idx], self._slots[idx])
        sub = BatchStreams.__new__(BatchStreams)
        sub.streams = [self.streams[int(i)] for i in idx]
        sub._keys = self._keys[idx]
        sub._pool = None
        sub._slots = None
        sub._threads = None
        return sub

    def stream(self, index: int) -> CountingStream:
        """The underlying scalar stream at position ``index``."""
        if self._pool is not None:
            return self._pool.stream(int(self._threads[int(index)]))
        return self.streams[int(index)]

    def uniform_flat(self, counts: np.ndarray) -> np.ndarray:
        """Draw ``counts[i]`` uniforms from stream ``i``, concatenated.

        Stream ``i``'s draws occupy ``out[offsets[i]:offsets[i + 1]]`` where
        ``offsets = concatenate([[0], cumsum(counts)])``, in the same order
        ``stream.uniform(counts[i])`` would have produced them.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.size != len(self):
            raise ValueError("counts must have one entry per stream")
        total = int(counts.sum())
        if total == 0:
            return np.zeros(0, dtype=np.float64)
        if self._pool is not None and np.unique(self._slots).size == self._slots.size:
            # Pool-backed with unique slots (the engine's case — walker
            # streams are keyed by unique query ids): reserve every stream's
            # counters with one fancy-index update, then evaluate Philox once
            # for all draws.  Duplicate slots (the same stream listed twice)
            # need sequential reservation and take the per-stream loop below.
            pool = self._pool
            starts = pool._counters[self._slots].copy()
            with np.errstate(over="ignore"):
                pool._counters[self._slots] = starts + counts.astype(np.uint64)
            pool._draws[self._slots] += counts
        else:
            starts = np.zeros(counts.size, dtype=np.uint64)
            for i, c in enumerate(counts):
                if c > 0:
                    starts[i] = self.stream(i).reserve(int(c))
        offsets = np.concatenate(([0], np.cumsum(counts)))
        seg = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
        local = (np.arange(total, dtype=np.int64) - offsets[:-1][seg]).astype(np.uint64)
        with np.errstate(over="ignore"):
            ctrs = starts[seg] + local
        return philox_uniform(self._keys[seg], ctrs)

    def uniform_each(self) -> np.ndarray:
        """One uniform per stream (the vectorised form of ``uniform()``)."""
        return self.uniform_flat(np.ones(len(self), dtype=np.int64))


class AdoptedStreamPool:
    """Per-walker stream state adopted from many sessions' derivations.

    Continuous batching fuses walkers from many sessions into one shared
    frontier.  Each admitted walker must keep exactly the stream its home
    session's ``StreamPool(seed)`` would have minted for its query id — the
    same derived child key, counter starting at zero — so the fused run
    replays every solo run's randomness bit for bit.

    Two sessions may legitimately submit the same query id, so unlike
    :class:`StreamPool` this pool never shares slots: every adopted walker
    owns a fresh ``(key, counter, draws)`` slot, exactly like two separate
    solo sessions would.  Slot numbers are frontier positions, which keeps
    the :meth:`BatchStreams.uniform_flat` vectorised fast path (it requires
    unique slots) on for the whole fused frontier.
    """

    def __init__(self) -> None:
        self._keys = np.zeros(0, dtype=np.uint64)
        self._counters = np.zeros(0, dtype=np.uint64)
        self._draws = np.zeros(0, dtype=np.int64)
        self._views: dict[int, PooledStream] = {}

    def __len__(self) -> int:
        return int(self._keys.size)

    def adopt(self, seed: int, query_ids: Sequence[int]) -> np.ndarray:
        """Append one stream per query id, derived as ``StreamPool(seed)``
        would derive it, and return the new slot numbers."""
        ids = np.asarray([int(q) for q in query_ids], dtype=np.int64)
        start = len(self)
        if ids.size:
            new_keys = derive_child_keys(PhiloxEngine(seed).key, ids)
            self._keys = np.concatenate([self._keys, new_keys])
            self._counters = np.concatenate(
                [self._counters, np.zeros(ids.size, dtype=np.uint64)]
            )
            self._draws = np.concatenate([self._draws, np.zeros(ids.size, dtype=np.int64)])
        return np.arange(start, start + ids.size, dtype=np.int64)

    def stream(self, slot: int) -> CountingStream:
        """The (cached) scalar stream view over one adopted slot."""
        slot = int(slot)
        existing = self._views.get(slot)
        if existing is None:
            if not 0 <= slot < len(self):
                raise IndexError(f"adopted pool has no slot {slot}")
            existing = PooledStream(self, slot)
            self._views[slot] = existing
        return existing

    def batch_all(self) -> BatchStreams:
        """Bundle every adopted stream, indexed by frontier position."""
        slots = np.arange(len(self), dtype=np.int64)
        return BatchStreams._from_pool(self, slots, slots)

    def snapshot_counters(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of every slot's ``(counter, draws)`` state.

        Keys are derived, immutable and re-derivable, so counter positions
        are the *entire* RNG state a checkpoint has to capture: restoring
        them replays every subsequent draw bit for bit.
        """
        return self._counters.copy(), self._draws.copy()

    def restore_counters(self, snap: tuple[np.ndarray, np.ndarray]) -> None:
        """Rewind every slot to a :meth:`snapshot_counters` state."""
        counters, draws = snap
        if counters.size != self._counters.size:
            raise ValueError(
                f"counter snapshot covers {counters.size} slots but the pool "
                f"holds {self._counters.size}"
            )
        self._counters[:] = counters
        self._draws[:] = draws

    @property
    def total_draws(self) -> int:
        return int(self._draws.sum())


class StreamPool:
    """A pool of independent streams, one per simulated GPU thread.

    GPU kernels assign one cuRAND state per thread.  The pool mirrors this by
    deriving one child stream per thread index on demand, but stores every
    stream's ``(key, counter, draws)`` in parallel arrays: scalar access goes
    through cached :class:`PooledStream` views, and :meth:`batch` hands the
    batched engine a :class:`BatchStreams` that reserves counters for the
    whole frontier with vectorised array updates.
    """

    def __init__(self, seed: int) -> None:
        self._root = PhiloxEngine(seed)
        self._slot_of: dict[int, int] = {}
        self._views: dict[int, PooledStream] = {}
        self._keys = np.zeros(0, dtype=np.uint64)
        self._counters = np.zeros(0, dtype=np.uint64)
        self._draws = np.zeros(0, dtype=np.int64)

    def _ensure_slots(self, thread_indices: Sequence[int]) -> np.ndarray:
        """Slot of every requested thread, minting missing streams in bulk.

        A thread index repeated within one request resolves to the *same*
        slot, exactly like repeated :meth:`stream` calls share one stream.
        """
        slot_of = self._slot_of
        missing: list[int] = []
        for thread in thread_indices:
            if thread not in slot_of:
                # Reserve the slot number immediately so a duplicate later in
                # this very request maps to the same stream.
                slot_of[thread] = len(slot_of)
                missing.append(thread)
        if missing:
            new_keys = derive_child_keys(self._root.key, np.asarray(missing, dtype=np.int64))
            self._keys = np.concatenate([self._keys, new_keys])
            self._counters = np.concatenate(
                [self._counters, np.zeros(len(missing), dtype=np.uint64)]
            )
            self._draws = np.concatenate([self._draws, np.zeros(len(missing), dtype=np.int64)])
        return np.array([slot_of[thread] for thread in thread_indices], dtype=np.int64)

    def stream(self, thread_index: int) -> CountingStream:
        """Return the (cached) stream view owned by ``thread_index``."""
        thread_index = int(thread_index)
        existing = self._views.get(thread_index)
        if existing is None:
            slot = int(self._ensure_slots([thread_index])[0])
            existing = PooledStream(self, slot)
            self._views[thread_index] = existing
        return existing

    def batch(self, thread_indices: Sequence[int]) -> BatchStreams:
        """Bundle the streams of many threads for vectorised draws."""
        threads = np.asarray([int(i) for i in thread_indices], dtype=np.int64)
        slots = self._ensure_slots([int(i) for i in threads])
        return BatchStreams._from_pool(self, threads, slots)

    def snapshot_counters(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of every slot's ``(counter, draws)`` state (see
        :meth:`AdoptedStreamPool.snapshot_counters`)."""
        return self._counters.copy(), self._draws.copy()

    def restore_counters(self, snap: tuple[np.ndarray, np.ndarray]) -> None:
        """Rewind every slot to a :meth:`snapshot_counters` state."""
        counters, draws = snap
        if counters.size != self._counters.size:
            raise ValueError(
                f"counter snapshot covers {counters.size} slots but the pool "
                f"holds {self._counters.size}"
            )
        self._counters[:] = counters
        self._draws[:] = draws

    @property
    def total_draws(self) -> int:
        """Total variates drawn across every stream in the pool."""
        return int(self._draws.sum())

    def reset_counts(self) -> None:
        self._draws[:] = 0
