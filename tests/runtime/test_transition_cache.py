"""Cross-superstep transition-cache parity and activation rules.

The :class:`~repro.sampling.transition_cache.TransitionCache` is a pure
host-side acceleration: for workloads whose ``get_weight`` never reads walker
state, per-node weights / CDFs / alias tables are computed once per
(graph, spec) and reused across supersteps, devices and repeated runs.  These
tests enforce the two halves of that claim: cached and uncached execution are
*bit-identical* (paths, per-kernel usage, counter totals, per-query simulated
times) for every kernel x workload, and the cache only ever activates for
workloads the analyser proved node-only.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.compiler.generator import compile_workload
from repro.graph.generators import barabasi_albert_graph
from repro.graph.labels import random_edge_labels
from repro.graph.weights import uniform_weights
from repro.gpusim.device import A6000
from repro.runtime.engine import WalkEngine
from repro.runtime.selector import CostModelSelector, FixedSelector
from repro.sampling.alias import AliasSampler
from repro.sampling.erjs import EnhancedRejectionSampler
from repro.sampling.ervs import EnhancedReservoirSampler
from repro.sampling.its import InverseTransformSampler
from repro.sampling.rejection import RejectionSampler
from repro.sampling.reservoir import ReservoirSampler
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.metapath import MetaPathSpec
from repro.walks.node2vec import Node2VecSpec
from repro.walks.second_order_pr import SecondOrderPRSpec
from repro.walks.spec import UniformWalkSpec
from repro.walks.state import make_queries

DEVICE = dataclasses.replace(A6000, parallel_lanes=8)

SPEC_FACTORIES = {
    "deepwalk": DeepWalkSpec,
    "node2vec": Node2VecSpec,
    "metapath": lambda: MetaPathSpec(schema=(0, 1, 2)),
    "2nd_pr": SecondOrderPRSpec,
}

KERNELS = {
    "eRVS": EnhancedReservoirSampler,
    "eRJS": EnhancedRejectionSampler,
    "ITS": InverseTransformSampler,
    "ALS": AliasSampler,
    "RJS": RejectionSampler,
    "RVS": ReservoirSampler,
}

#: Workloads whose weights are a pure function of the current node.
NODE_ONLY = {"deepwalk"}


def labeled_graph(num_nodes: int, seed: int):
    graph = barabasi_albert_graph(num_nodes, 3, seed=seed, name=f"cache-{seed}")
    graph = graph.with_weights(uniform_weights(graph, seed=seed))
    return graph.with_labels(random_edge_labels(graph, num_labels=5, seed=seed))


def run_cached_and_uncached(graph, spec, selector_factory, seed=0, walk_length=6,
                            num_queries=24):
    compiled = compile_workload(spec, graph)
    queries = make_queries(graph.num_nodes, walk_length=walk_length,
                           num_queries=num_queries, seed=seed)
    results = []
    for cached in (True, False):
        engine = WalkEngine(
            graph=graph, spec=spec, device=DEVICE, seed=seed,
            selector=selector_factory(), compiled=compiled,
            selection_overhead=True, warp_switch_overhead=True,
            use_transition_cache=cached,
        )
        # Two runs through the same engine: the second exercises the
        # cache-warm path (and, uncached, the recompute path).
        engine.run(queries)
        results.append((engine, engine.run(queries)))
    return results


def assert_parity(cached, uncached):
    assert cached.paths == uncached.paths
    assert cached.sampler_usage == uncached.sampler_usage
    assert cached.total_steps == uncached.total_steps
    assert cached.counters.as_dict() == uncached.counters.as_dict()
    assert np.array_equal(cached.per_query_ns, uncached.per_query_ns)
    assert cached.kernel.time_ns == uncached.kernel.time_ns


class TestCachedVsUncachedParity:
    @pytest.mark.parametrize("workload", sorted(SPEC_FACTORIES))
    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_every_kernel_every_workload(self, workload, kernel):
        graph = labeled_graph(50, seed=11)
        spec = SPEC_FACTORIES[workload]()
        (engine_c, cached), (_, uncached) = run_cached_and_uncached(
            graph, spec, lambda: FixedSelector(KERNELS[kernel]())
        )
        assert_parity(cached, uncached)
        # The cache may only exist for node-only workloads, and when it does
        # it must actually have been consulted.
        cache = engine_c._transition_cache()
        if workload in NODE_ONLY:
            assert cache is not None
            assert cache.lookups > 0
        else:
            assert cache is None

    @pytest.mark.parametrize("workload", sorted(SPEC_FACTORIES))
    def test_cost_model_selection(self, workload):
        graph = labeled_graph(60, seed=7)
        spec = SPEC_FACTORIES[workload]()
        (_, cached), (_, uncached) = run_cached_and_uncached(
            graph, spec, CostModelSelector
        )
        assert_parity(cached, uncached)


class TestActivationRules:
    def test_deepwalk_is_node_only(self):
        graph = labeled_graph(30, seed=3)
        compiled = compile_workload(DeepWalkSpec(), graph)
        assert compiled.weights_node_only
        assert not compiled.analysis.reads_state

    def test_uniform_spec_is_node_only(self):
        graph = labeled_graph(30, seed=3)
        compiled = compile_workload(UniformWalkSpec(), graph)
        assert compiled.weights_node_only

    @pytest.mark.parametrize("factory", [
        Node2VecSpec, SecondOrderPRSpec, lambda: MetaPathSpec(schema=(0, 1))
    ])
    def test_state_reading_workloads_are_not(self, factory):
        graph = labeled_graph(30, seed=3)
        compiled = compile_workload(factory(), graph)
        assert compiled.analysis.reads_state
        assert not compiled.weights_node_only

    def test_update_override_disables_the_cache(self):
        class CountingDeepWalk(DeepWalkSpec):
            def update(self, graph, state, next_node):
                state.params["visits"] = state.params.get("visits", 0) + 1

        graph = labeled_graph(30, seed=3)
        compiled = compile_workload(CountingDeepWalk(), graph)
        # get_weight itself is state-free, but the update hook could feed
        # state back through self — the conservative gate must refuse.
        assert not compiled.analysis.reads_state
        assert not compiled.weights_node_only

    def test_engine_flag_disables_the_cache(self):
        graph = labeled_graph(30, seed=5)
        spec = DeepWalkSpec()
        engine = WalkEngine(
            graph=graph, spec=spec, device=DEVICE,
            compiled=compile_workload(spec, graph), use_transition_cache=False,
        )
        assert engine._transition_cache() is None


class TestCacheSharing:
    def test_shared_across_runs_and_device_clones(self):
        graph = labeled_graph(40, seed=9)
        spec = DeepWalkSpec()
        engine = WalkEngine(
            graph=graph, spec=spec, device=DEVICE,
            compiled=compile_workload(spec, graph),
        )
        queries = make_queries(graph.num_nodes, walk_length=5, seed=0)
        engine.run(queries)
        cache = engine._transition_cache()
        fills_after_first = cache.weight_fills
        assert fills_after_first > 0
        engine.run(queries)
        # A repeated run re-reads the cache; nothing is recomputed.
        assert cache.weight_fills == fills_after_first
        clone = engine.with_devices(4, partition_policy="hash")
        result = clone.run(queries)
        assert clone._transition_cache() is cache
        assert cache.weight_fills == fills_after_first
        assert result.num_devices == 4

    def test_bulk_fill_covers_the_whole_graph_at_once(self):
        graph = labeled_graph(40, seed=13)
        spec = DeepWalkSpec()
        engine = WalkEngine(
            graph=graph, spec=spec, device=DEVICE,
            compiled=compile_workload(spec, graph),
        )
        engine.run(make_queries(graph.num_nodes, walk_length=3, seed=0))
        cache = engine._transition_cache()
        # DeepWalk provides static_transition_weights, so the first touch
        # fills every node in one vectorised pass.
        assert cache.weight_fills == graph.num_nodes
        assert np.array_equal(
            cache._weights, graph.weights.astype(np.float64)
        )
