"""The walk engine: executes a batch of walk queries on the simulated GPU.

One engine instance binds together a graph, a workload specification, a
device model, a sampling-strategy selector and (optionally) the
compiler-generated estimation helpers.  Running a batch of queries produces
the walks themselves *and* the simulated execution profile: per-query lane
times, aggregated operation counters, the kernel makespan from the executor,
and the per-kernel selection statistics behind Fig. 14.

The same engine class also powers the baseline framework models
(:mod:`repro.baselines`): a baseline is simply an engine with a fixed
selector, its own device preset and a per-step framework-overhead hook.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from repro.compiler.generator import CompiledWorkload
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.gpusim.counters import CostCounters
from repro.gpusim.device import A6000, DeviceSpec
from repro.gpusim.executor import KernelExecutor, KernelResult
from repro.gpusim.multigpu import PARTITION_POLICIES, occupied_load_imbalance
from repro.rng.streams import StreamPool
from repro.runtime.profiler import ProfileResult
from repro.runtime.scheduler import DynamicQueryQueue, validate_queries
from repro.runtime.selector import FixedSelector, SamplerSelector
from repro.sampling.base import Sampler, StepContext, is_dead_end
from repro.sampling.ervs import EnhancedReservoirSampler
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkerState, WalkQuery

#: Valid execution modes of :class:`WalkEngine`.
EXECUTION_MODES = ("batched", "scalar")

#: Valid graph placements of a multi-device run: ``"replicated"`` copies the
#: whole graph onto every device and partitions the queries (Fig. 15);
#: ``"sharded"`` partitions the graph into per-device node-range shards and
#: migrates walkers across the interconnect instead.
GRAPH_PLACEMENTS = ("replicated", "sharded")


class EngineCaches:
    """Shared, lazily-built per-(graph, spec) engine caches.

    The caches — the per-node compiler hint tables, the cross-superstep
    :class:`~repro.sampling.transition_cache.TransitionCache` and the
    :class:`~repro.graph.sharded.ShardedCSRGraph` decompositions (keyed by
    shard count and policy) — are pure functions of the (graph, spec) pair,
    so every engine bound to the same pair may share one holder: the clones
    minted by :meth:`WalkEngine.with_devices` do, and the service layer
    (:mod:`repro.service`) hands one holder to every session of the same
    workload.  Keeping them in a separate mutable object (instead of plain
    engine attributes) is what makes the sharing order-independent: a cache
    built *after* the engines split is still seen by all of them.
    """

    __slots__ = ("hint_tables", "transition_cache", "sharded_graphs", "ghost_tables")

    def __init__(self) -> None:
        self.hint_tables = None
        self.transition_cache = None
        self.sharded_graphs: dict[tuple[int, str], object] = {}
        # Ghost caches keyed by (num_devices, shard_policy, budget_bytes,
        # weight_bytes) — pure functions of the decomposition + budget.
        self.ghost_tables: dict[tuple[int, str, int, int], object] = {}

#: Signature of the per-step framework-overhead hook used by baseline models:
#: it receives the step context and the kernel that ran, and may add counts.
StepOverhead = Callable[[StepContext, Sampler], None]


@dataclass
class WalkRunResult:
    """Everything produced by one simulated walk-kernel run.

    A multi-device run (``num_devices > 1``) is still *one* result: paths,
    per-query times and counter totals are placement-invariant (each walker
    owns a counter-based stream keyed by its query id), so they are reported
    in submission order exactly like a single-device run.  What the
    placement does change is captured in ``device_kernels`` — one
    :class:`~repro.gpusim.executor.KernelResult` per simulated device — and
    ``kernel`` then holds the aggregate view whose ``time_ns`` is the
    makespan over devices.

    Graph-sharded runs (``graph_placement == "sharded"``) additionally
    report the modeled communication: ``per_query_comm_ns`` (interconnect
    time each walk spent migrating between shards — kept *separate* from
    the placement-invariant base times in ``per_query_ns``),
    ``comm_time_ns`` (total interconnect time) and ``remote_steps`` (steps
    whose sampled destination was owned by another shard).
    """

    paths: list[list[int]]
    per_query_ns: np.ndarray
    counters: CostCounters
    kernel: KernelResult
    sampler_usage: dict[str, int] = field(default_factory=dict)
    total_steps: int = 0
    profile: ProfileResult | None = None
    preprocess_time_ns: float = 0.0
    wall_clock_s: float = 0.0
    num_devices: int = 1
    partition_policy: str | None = None
    device_kernels: list[KernelResult] = field(default_factory=list)
    graph_placement: str = "replicated"
    shard_policy: str | None = None
    per_query_comm_ns: np.ndarray | None = None
    comm_time_ns: float = 0.0
    remote_steps: int = 0
    ghost_hits: int = 0
    migration_batches: int = 0
    degraded_devices: tuple[int, ...] = ()
    recovery_time_ns: float = 0.0
    checkpoints_taken: int = 0
    #: Compiler fallback reasons (``AnalysisResult.warnings``): non-empty
    #: when the workload ran eRVS-only because get_weight could not be
    #: specialised.  Surfaced here so the degradation is visible at the
    #: result layer, not just as a one-shot CompilerWarning.
    compiler_warnings: tuple[str, ...] = ()

    @property
    def time_ms(self) -> float:
        """Simulated main walk execution time (excludes profiling/preprocessing).

        For multi-device runs this is the makespan: the slowest device's
        kernel time.
        """
        return self.kernel.time_ms

    @property
    def makespan_ns(self) -> float:
        """Simulated completion time over all devices (== ``kernel.time_ns``)."""
        return self.kernel.time_ns

    @property
    def device_times_ns(self) -> np.ndarray:
        """Per-device kernel times (a single-element array for one device)."""
        if self.device_kernels:
            return np.array([k.time_ns for k in self.device_kernels], dtype=np.float64)
        return np.array([self.kernel.time_ns], dtype=np.float64)

    @property
    def load_imbalance(self) -> float:
        """Max-over-mean device time across *occupied* devices (Fig. 15).

        Computed by :func:`repro.gpusim.multigpu.occupied_load_imbalance`
        (idle devices are excluded); 1.0 for single-device runs.
        """
        return occupied_load_imbalance(self.device_kernels)

    @property
    def remote_edge_ratio(self) -> float:
        """Fraction of executed steps that crossed a shard boundary.

        The headline statistic of the sharded bench experiment; 0.0 for
        replicated and single-device runs (no boundary exists to cross).
        """
        if self.total_steps == 0:
            return 0.0
        return self.remote_steps / self.total_steps

    @property
    def comm_time_ms(self) -> float:
        """Modeled interconnect time in milliseconds (0 unless sharded)."""
        return self.comm_time_ns / 1e6

    @property
    def ghost_hit_ratio(self) -> float:
        """Boundary crossings served by a local ghost copy instead of a
        migration (0.0 when no crossing happened or no ghost cache ran)."""
        crossings = self.ghost_hits + self.remote_steps
        if crossings == 0:
            return 0.0
        return self.ghost_hits / crossings

    @property
    def throughput_steps_per_s(self) -> float:
        """Simulated walk steps executed per *wall-clock* second.

        The observable behind the engine's performance work: simulated
        quantities (``time_ms``, counters) are identical across execution
        modes by design, so host-side throughput is how a speedup of the
        simulator itself shows up.  0.0 when no wall-clock was recorded.
        """
        if self.wall_clock_s <= 0.0:
            return 0.0
        return self.total_steps / self.wall_clock_s

    @property
    def overhead_ms(self) -> float:
        """Simulated profiling + preprocessing time (Table 3)."""
        profile_ns = self.profile.simulated_time_ns if self.profile else 0.0
        return (profile_ns + self.preprocess_time_ns) / 1e6

    @property
    def total_time_ms(self) -> float:
        return self.time_ms + self.overhead_ms

    @property
    def start_nodes(self) -> np.ndarray:
        return np.array([path[0] for path in self.paths], dtype=np.int64)

    def selection_ratio(self) -> dict[str, float]:
        """Fraction of steps handled by each kernel (the Fig. 14 metric)."""
        total = sum(self.sampler_usage.values())
        if total == 0:
            return {}
        return {name: count / total for name, count in sorted(self.sampler_usage.items())}

    def average_walk_length(self) -> float:
        if not self.paths:
            return 0.0
        return float(np.mean([len(p) - 1 for p in self.paths]))

    def summary(self) -> dict[str, object]:
        """Condense the run into the quantities reported in the paper's tables.

        Returns a plain dictionary (easy to print, compare or serialise) with
        the simulated execution time, the profiling/preprocessing overhead,
        walk statistics and the kernel-selection ratio.  The module-level
        :func:`repro.core.results.summarize_run` is a deprecated wrapper over
        this method.
        """
        lengths = np.array([len(path) - 1 for path in self.paths], dtype=np.int64)
        return {
            "num_queries": len(self.paths),
            "total_steps": self.total_steps,
            "avg_walk_length": float(lengths.mean()) if lengths.size else 0.0,
            "min_walk_length": int(lengths.min()) if lengths.size else 0,
            "max_walk_length": int(lengths.max()) if lengths.size else 0,
            "time_ms": self.time_ms,
            "overhead_ms": self.overhead_ms,
            "total_time_ms": self.total_time_ms,
            "utilization": self.kernel.utilization,
            "load_imbalance": self.kernel.load_imbalance,
            "num_devices": self.num_devices,
            "device_load_imbalance": self.load_imbalance,
            "graph_placement": self.graph_placement,
            "remote_edge_ratio": self.remote_edge_ratio,
            "comm_time_ms": self.comm_time_ms,
            "ghost_hit_ratio": self.ghost_hit_ratio,
            "migration_batches": self.migration_batches,
            "degraded_devices": list(self.degraded_devices),
            "recovery_time_ms": self.recovery_time_ns / 1e6,
            "checkpoints_taken": self.checkpoints_taken,
            "selection_ratio": self.selection_ratio(),
            "memory_accesses": self.counters.total_memory_accesses,
            "rng_draws": self.counters.rng_draws,
            "rejection_trials": self.counters.rejection_trials,
            "wall_clock_s": self.wall_clock_s,
            "throughput_steps_per_s": self.throughput_steps_per_s,
            "compiler_warnings": list(self.compiler_warnings),
        }


class WalkEngine:
    """Simulated execution of dynamic random walks on one device.

    Parameters
    ----------
    graph / spec:
        The graph and the workload logic.
    device:
        Device cost model (defaults to the A6000 preset).
    selector:
        Sampling-strategy selection policy; defaults to eRVS-only, which is
        also the automatic fallback when no compiled workload is supplied.
    compiled:
        Output of :func:`repro.compiler.compile_workload`; provides the
        max/sum estimation helpers.  When absent (or unsupported) the engine
        runs without bound hints, exactly like the paper's fallback mode.
    warp_width:
        Cooperative width for warp kernels (32 on NVIDIA hardware).
    weight_bytes:
        Stored width of property weights (8 = float64; 1 models the INT8
        extension of Section 7.2).
    scheduling:
        Query-to-lane scheduling policy, ``"dynamic"`` (global queue) or
        ``"static"``.
    selection_overhead:
        Charge the per-step cost of evaluating the selection rule (disabled
        for baseline models, which have no runtime selection).
    warp_switch_overhead:
        Charge the ballot/shuffle cost of the concurrent RJS/RVS kernel
        (Section 5.2) whenever a warp-cooperative kernel runs.
    step_overhead:
        Optional per-step hook for baseline framework overheads.
    execution:
        ``"batched"`` (default) runs the step-synchronous frontier loop that
        vectorises each superstep across all active walkers;``"scalar"``
        keeps the original one-query-at-a-time interpreter.  Both modes
        produce identical paths, counter totals and simulated timings for a
        fixed seed policy (the parity suite enforces this), so the scalar
        mode exists purely as the executable specification the batched
        engine is checked against.
    num_devices:
        Number of replicated-graph devices the query batch is partitioned
        over (Fig. 15).  Each device runs its own frontier/queue instance of
        the selected execution mode; walker randomness is keyed by query id,
        so placement never changes any walk — only the makespan.
    partition_policy:
        Query-to-device mapping: ``"hash"`` (the paper's choice),
        ``"range"`` (contiguous slices) or ``"balanced"`` (greedy
        longest-processing-time packing by start-node degree).  Only
        meaningful for replicated placement — sharded runs route each
        walker to the shard owning its current node instead.
    graph_placement:
        ``"replicated"`` (default, the Fig. 15 model: the whole graph on
        every device) or ``"sharded"`` (the graph split into per-device
        node-range shards; walkers migrate across the modeled interconnect
        when a step crosses a shard boundary).  Sharding needs
        ``num_devices > 1`` to mean anything and the batched execution
        mode; paths, counters and per-query base times stay bit-identical
        to the replicated run either way.
    shard_policy:
        Node decomposition used when ``graph_placement="sharded"``:
        ``"contiguous"`` (equal node ranges), ``"degree_balanced"``
        (edge-count-balanced boundaries) or ``"locality"`` (streaming
        LDG-style cut-minimising partitioner).
    ghost_cache_bytes:
        Per-shard byte budget for ghost copies of the hottest remote
        nodes' adjacency slices (sharded placement only; 0 disables).
        Steps landing on a ghosted remote hub are served locally instead
        of migrating — base times stay bit-identical, only the modeled
        interconnect traffic (and ``ghost_hit_ratio``) changes.
    use_transition_cache:
        Enable the cross-superstep :class:`TransitionCache` for workloads the
        compiler classified as node-only (``weights_node_only``): per-node
        flattened weights, CDFs and alias tables are computed once per
        (graph, spec) and shared across supersteps, devices and repeated
        ``run`` calls.  Host-side only — paths, counter totals and simulated
        timings are identical either way (the cache parity suite enforces
        it); the flag exists so those tests can run both configurations.
    caches:
        Optional shared :class:`EngineCaches` holder.  Engines bound to the
        same (graph, spec) pair may pass the same holder so hint tables and
        the transition cache are built once and seen by all of them; by
        default every engine gets a private holder.
    checkpoint_interval:
        Take a walker-state checkpoint every this many supersteps (0, the
        default, disables explicit checkpointing; recovery then replays
        from the implicit cost-free checkpoint of the initial state).
        Checkpoint copy-outs are priced by
        :meth:`~repro.gpusim.device.DeviceSpec.checkpoint_time_ns` and
        surface as ``WalkRunResult.recovery_time_ns``.  Batched execution
        only.
    fault_plan:
        Optional :class:`~repro.runtime.faults.FaultPlan` of deterministic
        injected faults (device failures, transient kernel faults,
        interconnect drops).  Recovery is silent replay from the last
        checkpoint: paths, counters and per-query base times stay
        bit-identical to the fault-free run — only simulated time (and the
        ``degraded_devices`` roster after a permanent failure) changes.
        Batched execution only.
    """

    def __init__(
        self,
        graph: CSRGraph,
        spec: WalkSpec,
        device: DeviceSpec = A6000,
        selector: SamplerSelector | None = None,
        compiled: CompiledWorkload | None = None,
        seed: int = 0,
        warp_width: int = 32,
        weight_bytes: int = 8,
        scheduling: str = "dynamic",
        selection_overhead: bool = False,
        warp_switch_overhead: bool = False,
        step_overhead: StepOverhead | None = None,
        execution: str = "batched",
        num_devices: int = 1,
        partition_policy: str = "hash",
        graph_placement: str = "replicated",
        shard_policy: str = "contiguous",
        ghost_cache_bytes: int = 0,
        use_transition_cache: bool = True,
        caches: EngineCaches | None = None,
        checkpoint_interval: int = 0,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        from repro.graph.sharded import SHARD_POLICIES

        if execution not in EXECUTION_MODES:
            raise SimulationError(
                f"unknown execution mode {execution!r}; valid: {EXECUTION_MODES}"
            )
        if num_devices < 1:
            raise SimulationError("num_devices must be at least 1")
        if partition_policy not in PARTITION_POLICIES:
            raise SimulationError(
                f"unknown partition policy {partition_policy!r}; valid: {PARTITION_POLICIES}"
            )
        if graph_placement not in GRAPH_PLACEMENTS:
            raise SimulationError(
                f"unknown graph placement {graph_placement!r}; valid: {GRAPH_PLACEMENTS}"
            )
        if shard_policy not in SHARD_POLICIES:
            raise SimulationError(
                f"unknown shard policy {shard_policy!r}; valid: {SHARD_POLICIES}"
            )
        if graph_placement == "sharded" and execution != "batched":
            raise SimulationError(
                "sharded graph placement requires the batched execution mode"
            )
        if ghost_cache_bytes < 0:
            raise SimulationError("ghost_cache_bytes must be non-negative")
        if checkpoint_interval < 0:
            raise SimulationError("checkpoint_interval must be non-negative")
        if execution == "scalar" and (
            checkpoint_interval > 0 or (fault_plan is not None and not fault_plan.empty)
        ):
            raise SimulationError(
                "fault injection and checkpointing require the batched execution mode"
            )
        self.graph = graph
        self.spec = spec
        self.device = device
        self.selector = selector or FixedSelector(EnhancedReservoirSampler())
        self.compiled = compiled
        self.seed = seed
        self.warp_width = int(warp_width)
        self.weight_bytes = int(weight_bytes)
        self.scheduling = scheduling
        self.selection_overhead = bool(selection_overhead)
        self.warp_switch_overhead = bool(warp_switch_overhead)
        self.step_overhead = step_overhead
        self.execution = execution
        self.num_devices = int(num_devices)
        self.partition_policy = partition_policy
        self.graph_placement = graph_placement
        self.shard_policy = shard_policy
        self.ghost_cache_bytes = int(ghost_cache_bytes)
        self.use_transition_cache = bool(use_transition_cache)
        self.caches = caches if caches is not None else EngineCaches()
        self.checkpoint_interval = int(checkpoint_interval)
        self.fault_plan = fault_plan

    # ------------------------------------------------------------------ #
    def run(
        self,
        queries: list[WalkQuery],
        profile: ProfileResult | None = None,
    ) -> WalkRunResult:
        """Execute every query and return walks plus the simulated profile."""
        started = time.perf_counter()  # repro: ignore[internal/wall-clock]
        if self.num_devices > 1 and self.graph_placement == "sharded":
            from repro.runtime.frontier import run_sharded

            result = run_sharded(self, queries, profile)
        elif self.num_devices > 1:
            from repro.runtime.frontier import run_multi_device

            result = run_multi_device(self, queries, profile)
        elif self.execution == "batched":
            from repro.runtime.frontier import run_batched

            result = run_batched(self, queries, profile)
        else:
            result = self._run_scalar(queries, profile)
        result.wall_clock_s = time.perf_counter() - started  # repro: ignore[internal/wall-clock]
        if self.compiled is not None and not self.compiled.analysis.supported:
            result.compiler_warnings = tuple(self.compiled.analysis.warnings)
        return result

    def with_devices(
        self,
        num_devices: int,
        partition_policy: str | None = None,
        graph_placement: str | None = None,
        shard_policy: str | None = None,
        ghost_cache_bytes: int | None = None,
    ) -> WalkEngine:
        """A copy of this engine re-targeted at a different device count.

        Shares the graph, spec, selector, compiled workload and the
        :class:`EngineCaches` holder (all placement-invariant), so re-running
        the same queries under several device counts, partition policies or
        graph placements — the Fig. 15 and sharded sweeps — costs no
        re-compilation, and a hint table, transition cache or shard
        decomposition built by either engine (before *or* after the clone)
        is seen by both.
        """
        from repro.graph.sharded import SHARD_POLICIES

        clone = copy.copy(self)
        if num_devices < 1:
            raise SimulationError("num_devices must be at least 1")
        policy = self.partition_policy if partition_policy is None else partition_policy
        if policy not in PARTITION_POLICIES:
            raise SimulationError(
                f"unknown partition policy {policy!r}; valid: {PARTITION_POLICIES}"
            )
        placement = self.graph_placement if graph_placement is None else graph_placement
        if placement not in GRAPH_PLACEMENTS:
            raise SimulationError(
                f"unknown graph placement {placement!r}; valid: {GRAPH_PLACEMENTS}"
            )
        shards = self.shard_policy if shard_policy is None else shard_policy
        if shards not in SHARD_POLICIES:
            raise SimulationError(
                f"unknown shard policy {shards!r}; valid: {SHARD_POLICIES}"
            )
        if placement == "sharded" and self.execution != "batched":
            raise SimulationError(
                "sharded graph placement requires the batched execution mode"
            )
        ghost = self.ghost_cache_bytes if ghost_cache_bytes is None else ghost_cache_bytes
        if ghost < 0:
            raise SimulationError("ghost_cache_bytes must be non-negative")
        clone.num_devices = int(num_devices)
        clone.partition_policy = policy
        clone.graph_placement = placement
        clone.shard_policy = shards
        clone.ghost_cache_bytes = int(ghost)
        return clone

    def _fault_runtime(self, num_devices: int | None = None):
        """The per-run fault-tolerance runtime, or ``None`` on the fast path.

        Returns ``None`` whenever no fault plan is configured and explicit
        checkpointing is off, which keeps every existing driver on its
        original superstep loop — fault tolerance costs nothing unless it is
        asked for.  A fresh :class:`~repro.runtime.faults.FaultRuntime` is
        minted per run (it holds mutable per-run ledgers).
        """
        plan = self.fault_plan
        if (plan is None or plan.empty) and self.checkpoint_interval == 0:
            return None
        from repro.runtime.faults import FaultRuntime

        return FaultRuntime(
            self.device,
            plan=plan,
            checkpoint_interval=self.checkpoint_interval,
            num_devices=num_devices if num_devices is not None else self.num_devices,
        )

    def _sharded_graph(self):
        """The cached shard decomposition for this engine's count/policy.

        Keyed by ``(num_devices, shard_policy)`` on the shared
        :class:`EngineCaches` holder, so repeated runs, device clones and
        sibling sessions of the same workload split the graph once.
        """
        from repro.graph.sharded import ShardedCSRGraph

        key = (self.num_devices, self.shard_policy)
        sharded = self.caches.sharded_graphs.get(key)
        if sharded is None:
            sharded = ShardedCSRGraph.build(
                self.graph, self.num_devices, policy=self.shard_policy
            )
            self.caches.sharded_graphs[key] = sharded
        return sharded

    def _ghost_cache(self):
        """The cached ghost-node cache of this engine's sharded setup.

        ``None`` when no budget is configured; otherwise keyed by
        ``(num_devices, shard_policy, budget, weight_bytes)`` on the shared
        :class:`EngineCaches` holder so sibling engines/sessions build the
        degree ranking once.
        """
        if self.ghost_cache_bytes <= 0:
            return None
        key = (
            self.num_devices,
            self.shard_policy,
            self.ghost_cache_bytes,
            self.weight_bytes,
        )
        ghost = self.caches.ghost_tables.get(key)
        if ghost is None:
            ghost = self._sharded_graph().ghost_cache(
                self.ghost_cache_bytes, weight_bytes=self.weight_bytes
            )
            self.caches.ghost_tables[key] = ghost
        return ghost

    def _node_hint_tables(self):
        """Cached lazily-filled hint tables (node-only compiled workloads)."""
        if self.caches.hint_tables is None:
            from repro.runtime.frontier import NodeHintTables

            self.caches.hint_tables = NodeHintTables(self.compiled, self.graph)
        return self.caches.hint_tables

    def _transition_cache(self):
        """The engine's cross-superstep transition cache, or ``None``.

        Only node-only workloads (``compiled.weights_node_only``) qualify;
        the cache is created once and shared — through the
        :class:`EngineCaches` holder — across supersteps, repeated ``run``
        calls, the device clones minted by :meth:`with_devices` and every
        session the service layer binds to the same (graph, spec) pair,
        whichever of them happens to build it first.
        """
        if not self.use_transition_cache:
            return None
        if self.compiled is None or not self.compiled.weights_node_only:
            return None
        if self.caches.transition_cache is None:
            from repro.sampling.transition_cache import TransitionCache

            self.caches.transition_cache = TransitionCache(self.graph, self.spec)
        return self.caches.transition_cache

    # ------------------------------------------------------------------ #
    def _scalar_walk(
        self,
        query: WalkQuery,
        stream,
        usage: dict[str, int],
        start_ns: float = 0.0,
    ) -> tuple[list[int], float, CostCounters, int]:
        """Interpret one query to completion (the scalar per-walk kernel).

        Returns ``(path, simulated_ns, counter_totals, steps)`` where the
        simulated time accumulates per-step costs *onto* ``start_ns``
        (normally the already-priced queue-fetch cost) in step order — the
        same float association the batched engine uses, so the value is
        bit-identical however the surrounding loop batches queries.  This is
        the property both :meth:`_run_scalar` and the session layer's wave
        execution rely on.
        """
        state = WalkerState.start(query)
        query_ns = float(start_ns)
        query_counters = CostCounters(bytes_per_weight=self.weight_bytes)
        steps = 0
        hints_available = self.compiled is not None and self.compiled.supported

        while not state.finished:
            if is_dead_end(self.graph, state.current_node):
                break
            counters = CostCounters(bytes_per_weight=self.weight_bytes)
            ctx = StepContext(
                graph=self.graph,
                state=state,
                spec=self.spec,
                rng=stream,
                counters=counters,
                warp_width=self.warp_width,
            )
            if hints_available:
                ctx.bound_hint = self.compiled.bound_hint(self.graph, state)
                ctx.sum_hint = self.compiled.sum_hint(self.graph, state)
                if self.selection_overhead:
                    # Reading the two preprocessed aggregates feeding the
                    # estimation helpers, plus their arithmetic.
                    counters.coalesced_accesses += 2
                    counters.weight_computations += 2

            sampler = self.selector.select(ctx)
            if self.warp_switch_overhead and sampler.processing_unit == "warp":
                # The concurrent kernel votes (__ballot_sync) and shares
                # the query parameters (__shfl_sync) before the warp
                # switches into the cooperative mode.
                counters.warp_syncs += 1

            next_node = sampler.sample(ctx)
            if self.step_overhead is not None:
                self.step_overhead(ctx, sampler)

            usage[sampler.name] = usage.get(sampler.name, 0) + 1
            steps += 1
            query_ns += self.device.lane_time_ns(counters)
            query_counters.merge(counters)

            if next_node is None:
                break
            self.spec.update(self.graph, state, next_node)
            state.advance(next_node)

        return state.path, query_ns, query_counters, steps

    def _run_scalar(
        self,
        queries: list[WalkQuery],
        profile: ProfileResult | None = None,
    ) -> WalkRunResult:
        """One-query-at-a-time reference interpreter (``execution="scalar"``)."""
        validate_queries(queries, self.graph.num_nodes)
        pool = StreamPool(self.seed)
        queue = DynamicQueryQueue(queries)

        paths: list[list[int]] = []
        per_query_ns = np.zeros(len(queries), dtype=np.float64)
        aggregate = CostCounters(bytes_per_weight=self.weight_bytes)
        usage: dict[str, int] = {}
        total_steps = 0

        while True:
            fetch_counters = CostCounters(bytes_per_weight=self.weight_bytes)
            query = queue.fetch(fetch_counters)
            if query is None:
                break
            stream = pool.stream(query.query_id)
            fetch_ns = self.device.lane_time_ns(fetch_counters)
            aggregate.merge(fetch_counters)

            path, query_ns, query_counters, steps = self._scalar_walk(
                query, stream, usage, start_ns=fetch_ns
            )
            aggregate.merge(query_counters)
            total_steps += steps

            # Queries are fetched in submission order, so the position in the
            # result arrays is simply how many walks have finished so far.
            per_query_ns[len(paths)] = query_ns
            paths.append(path)

        executor = KernelExecutor(self.device)
        kernel = executor.execute(per_query_ns, counters=aggregate, scheduling=self.scheduling)
        return WalkRunResult(
            paths=paths,
            per_query_ns=per_query_ns,
            counters=aggregate,
            kernel=kernel,
            sampler_usage=usage,
            total_steps=total_steps,
            profile=profile,
            preprocess_time_ns=(
                self.compiled.preprocessing_time_ns if self.compiled is not None else 0.0
            ),
        )
