"""Random number generation substrate.

The CUDA implementation of FlexiWalker relies on cuRAND for per-thread random
streams.  This package provides the pure-Python/numpy substitute: a
counter-based (Philox-style) generator with cheap stream splitting so that
every simulated GPU thread can own an independent, reproducible stream, plus
an accounting wrapper that counts how many random numbers each kernel drew
(one of the costs the eRVS jump optimisation is designed to reduce).
"""

from repro.rng.philox import PhiloxEngine, philox_uniform
from repro.rng.streams import BatchStreams, CountingStream, StreamPool

__all__ = [
    "PhiloxEngine",
    "philox_uniform",
    "CountingStream",
    "StreamPool",
    "BatchStreams",
]
