"""Define a brand-new dynamic walk workload and watch the runtime adapt.

FlexiWalker's extensibility claim is that a user only writes the
gather-move-update logic (``init`` / ``get_weight`` / ``update``) and the
framework does the rest: Flexi-Compiler analyses the code and generates the
bound-estimation helpers, Flexi-Runtime picks eRJS or eRVS per node per step,
and the optimised kernels execute it.

The custom workload here is a *repulsive* walk: edges leading back to any
recently visited node are down-weighted by a user hyperparameter, so the walk
is pushed away from where it has been (useful for coverage-oriented sampling,
e.g. crawling or landmark selection).  The example

1. shows what Flexi-Compiler inferred about the workload,
2. runs it under three weight distributions of increasing skew, and
3. prints how the kernel-selection ratio shifts from rejection sampling
   toward reservoir sampling as the skew grows — the behaviour behind the
   paper's Fig. 14.
"""

from __future__ import annotations

from repro import WalkService, WalkSpec, load_dataset, make_queries
from repro.graph.csr import CSRGraph
from repro.walks.state import WalkerState


class RepulsiveWalkSpec(WalkSpec):
    """Down-weights edges that return to recently visited nodes."""

    name = "repulsive"
    is_dynamic = True
    default_walk_length = 40

    def __init__(self, repulsion: float = 4.0, memory: int = 4) -> None:
        self.repulsion = float(repulsion)
        self.memory = int(memory)
        super().__init__()

    # --- user code analysed by Flexi-Compiler ---------------------------
    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        h_e = graph.weights[edge]
        post = graph.indices[edge]
        if post in state.params.get("recent", ()):
            return h_e / self.repulsion
        return h_e

    def update(self, graph: CSRGraph, state: WalkerState, next_node: int) -> None:
        recent = list(state.params.get("recent", ()))
        recent.append(state.current_node)
        state.params["recent"] = tuple(recent[-self.memory:])

    def describe(self) -> dict[str, object]:
        # Reporting every hyperparameter lets the service share compiled
        # artifacts between sessions of equal-parameter instances.
        return {**super().describe(), "repulsion": self.repulsion, "memory": self.memory}


def run_for(weights: str, alpha: float = 2.0) -> None:
    graph = load_dataset("EU", weights=weights, alpha=alpha)
    session = WalkService(graph).session(RepulsiveWalkSpec())
    info = session.describe()
    session.submit(make_queries(graph.num_nodes, walk_length=20, num_queries=300))
    result = session.collect()
    label = weights if weights != "powerlaw" else f"powerlaw(alpha={alpha:g})"
    revisit = sum(len(p) - len(set(p)) for p in result.paths) / max(sum(len(p) for p in result.paths), 1)
    print(f"{label:22s}  time {result.time_ms:8.4f} ms   selection {result.selection_ratio()}   "
          f"revisit fraction {revisit:.3f}")
    return info


def main() -> None:
    graph = load_dataset("EU", weights="uniform")
    info = WalkService(graph).session(RepulsiveWalkSpec()).describe()
    print("Flexi-Compiler analysis of the custom workload:")
    print(f"  supported: {info['compiler_supported']}, bound granularity: {info['granularity']}, "
          f"warnings: {info['compiler_warnings']}")
    print(f"  profiled EdgeCost ratio: {info['edge_cost_ratio']:.2f}")
    print()
    print("Runtime adaptation across property-weight skew:")
    run_for("uniform")
    run_for("powerlaw", alpha=2.0)
    run_for("powerlaw", alpha=1.0)
    print()
    print("As the weights get heavier-tailed, Flexi-Runtime dispatches fewer steps "
          "to rejection sampling — the same trend as Fig. 14 of the paper.")


if __name__ == "__main__":
    main()
