"""Unit coverage for the fault-tolerance runtime (:mod:`repro.runtime.faults`).

The chaos property suite (``tests/properties/test_property_faults.py``)
asserts the headline invariant — bit-identical recovery under generated
fault schedules; this module pins down the mechanism piece by piece:
checkpoint capture/rewind, the checkpoint cadence, transient-retry pricing
and exhaustion, degraded-mode bookkeeping, the scalar-mode rejection, and
the plan-negotiation declines.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.config import FlexiWalkerConfig
from repro.errors import FaultError, ReproError, SimulationError
from repro.gpusim.counters import CostCounters
from repro.gpusim.device import A6000
from repro.graph.generators import barabasi_albert_graph
from repro.graph.labels import random_edge_labels
from repro.graph.weights import uniform_weights
from repro.rng.streams import StreamPool
from repro.runtime.engine import WalkEngine
from repro.runtime.faults import (
    DEFAULT_CHECKPOINT_INTERVAL,
    FAILURE_DETECTION_NS,
    DeviceFailure,
    FaultPlan,
    FaultRuntime,
    InterconnectDrop,
    TransientFault,
    reassign_owners,
    restore_checkpoint,
    take_checkpoint,
)
from repro.runtime.frontier import iter_supersteps
from repro.service import WalkService, negotiate_plan
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.metapath import MetaPathSpec
from repro.walks.state import WalkQuery, WalkerFrontier

DEVICE = dataclasses.replace(A6000, parallel_lanes=8)
GRAPH = barabasi_albert_graph(50, 3, seed=9, name="faults-test")
GRAPH = GRAPH.with_weights(uniform_weights(GRAPH, seed=9))
LABELED = GRAPH.with_labels(random_edge_labels(GRAPH, num_labels=4, seed=9))

WALK_LENGTH = 10


def queries(count=10, length=WALK_LENGTH):
    return [
        WalkQuery(query_id=i, start_node=i % GRAPH.num_nodes, max_length=length)
        for i in range(count)
    ]


def run(spec=None, graph=None, plan=None, interval=0, **kwargs):
    engine = WalkEngine(
        graph=graph if graph is not None else GRAPH,
        spec=spec if spec is not None else DeepWalkSpec(),
        device=DEVICE,
        fault_plan=plan,
        checkpoint_interval=interval,
        **kwargs,
    )
    return engine.run(queries())


def assert_bit_identical(result, reference):
    assert result.paths == reference.paths
    assert np.array_equal(result.per_query_ns, reference.per_query_ns)
    for name in CostCounters._COUNT_FIELDS:
        assert getattr(result.counters, name) == getattr(reference.counters, name)


class TestFaultPlanValidation:
    def test_negative_superstep_rejected(self):
        with pytest.raises(SimulationError):
            DeviceFailure(superstep=-1)
        with pytest.raises(SimulationError):
            TransientFault(superstep=-2)
        with pytest.raises(SimulationError):
            InterconnectDrop(step=-1)

    def test_zero_retry_success_prob_rejected(self):
        with pytest.raises(SimulationError, match="retry_success_prob"):
            FaultPlan(retry_success_prob=0.0)

    def test_max_retries_floor(self):
        with pytest.raises(SimulationError, match="max_retries"):
            FaultPlan(max_retries=0)

    def test_empty(self):
        assert FaultPlan().empty
        assert not FaultPlan(transient_faults=(TransientFault(superstep=0),)).empty

    def test_event_lists_coerced_to_tuples(self):
        plan = FaultPlan(device_failures=[DeviceFailure(superstep=1)])
        assert isinstance(plan.device_failures, tuple)


class TestCheckpointRoundtrip:
    def _drive(self, engine, frontier, pool, streams, per_ns, aggregate, usage, n):
        gen = iter_supersteps(engine, frontier, streams, per_ns, aggregate, usage)
        reports = []
        for _ in range(n):
            reports.append(next(gen))
        return reports

    def test_restore_rewinds_walkers_rng_and_accounting(self):
        engine = WalkEngine(graph=GRAPH, spec=DeepWalkSpec(), device=DEVICE)
        batch = queries()
        pool = StreamPool(engine.seed)
        frontier = WalkerFrontier(batch)
        streams = pool.batch([q.query_id for q in batch])
        per_ns = np.zeros(len(batch))
        aggregate = CostCounters(bytes_per_weight=engine.weight_bytes)
        usage: dict[str, int] = {}

        self._drive(engine, frontier, pool, streams, per_ns, aggregate, usage, 3)
        cp = take_checkpoint(2, frontier, pool, per_ns, aggregate, usage)
        assert cp.ordinal == 2
        assert cp.payload_bytes == int(frontier.active_indices().size) * 72

        # Advance past the checkpoint, then rewind and re-advance: the
        # replay must land on bit-identical state (counter-based streams).
        first = self._drive(engine, frontier, pool, streams, per_ns, aggregate, usage, 2)
        after_ns = per_ns.copy()
        restore_checkpoint(cp, frontier, pool, per_ns, aggregate, usage)
        assert not np.array_equal(per_ns, after_ns)
        replay = self._drive(engine, frontier, pool, streams, per_ns, aggregate, usage, 2)
        assert np.array_equal(per_ns, after_ns)
        for a, b in zip(first, replay, strict=False):
            assert np.array_equal(a.active, b.active)
            assert a.steps == b.steps

    def test_metapath_state_survives_roundtrip(self):
        """MetaPath walkers carry schema-position state; a failure mid-walk
        must replay it bit-identically too."""
        reference = run(spec=MetaPathSpec(), graph=LABELED)
        plan = FaultPlan(seed=3, device_failures=(DeviceFailure(superstep=2),))
        recovered = run(spec=MetaPathSpec(), graph=LABELED, plan=plan,
                        interval=DEFAULT_CHECKPOINT_INTERVAL)
        assert_bit_identical(recovered, reference)
        assert recovered.degraded_devices == (0,)

    def test_pool_snapshot_size_mismatch_rejected(self):
        pool = StreamPool(7)
        pool.batch([0, 1, 2])
        snap = pool.snapshot_counters()
        other = StreamPool(7)
        other.batch([0, 1])
        with pytest.raises(ValueError, match="slots"):
            other.restore_counters(snap)


class TestCheckpointCadence:
    @pytest.mark.parametrize("interval", [2, 3, 4, 8])
    def test_checkpoints_taken_matches_interval(self, interval):
        result = run(interval=interval)
        # DeepWalk runs exactly WALK_LENGTH supersteps; a checkpoint lands
        # after every `interval`-th one.
        assert result.checkpoints_taken == WALK_LENGTH // interval
        assert result.recovery_time_ns > 0  # the modeled copy-out cost

    def test_zero_interval_means_no_explicit_checkpoints(self):
        result = run()
        assert result.checkpoints_taken == 0
        assert result.recovery_time_ns == 0.0
        assert result.degraded_devices == ()

    def test_checkpointing_is_pure_time_overhead(self):
        assert_bit_identical(run(interval=2), run())


class TestTransientFaults:
    def test_retries_priced_into_recovery_ledger(self):
        plan = FaultPlan(seed=5, transient_faults=(TransientFault(superstep=1),))
        result = run(plan=plan)
        reference = run()
        assert_bit_identical(result, reference)
        assert result.recovery_time_ns > 0
        assert result.degraded_devices == ()

    def test_exhausted_retries_raise_fault_error(self):
        # With a vanishingly small per-retry success probability the seeded
        # geometric draw exceeds any one-retry budget.
        plan = FaultPlan(
            seed=0,
            transient_faults=(TransientFault(superstep=1),),
            retry_success_prob=1e-9,
            max_retries=1,
        )
        with pytest.raises(FaultError, match="still failing"):
            run(plan=plan)

    def test_retry_story_is_seed_deterministic(self):
        plan = FaultPlan(seed=21, transient_faults=(TransientFault(superstep=0),),
                         retry_success_prob=0.4)
        assert run(plan=plan).recovery_time_ns == run(plan=plan).recovery_time_ns


class TestPermanentFailures:
    def test_failure_replays_from_last_checkpoint(self):
        plan = FaultPlan(seed=2, device_failures=(DeviceFailure(superstep=7),))
        result = run(plan=plan, interval=3)
        assert_bit_identical(result, run())
        assert result.degraded_devices == (0,)
        # Detection latency is always part of the bill.
        assert result.recovery_time_ns > FAILURE_DETECTION_NS

    def test_device_index_folds_modulo_fleet(self):
        runtime = FaultRuntime(
            DEVICE,
            plan=FaultPlan(device_failures=(DeviceFailure(superstep=0, device=5),)),
            num_devices=2,
        )
        assert runtime.fail_devices(0) == [1]
        assert runtime.survivors() == [0]
        assert runtime.fail_devices(0) == []  # consumed

    def test_reassign_owners_round_robins_onto_survivors(self):
        owner = np.array([0, 0, 1, 0, 2], dtype=np.int64)
        reassign_owners(owner, dead=[0], survivors=[1, 2])
        assert owner.tolist() == [1, 2, 1, 1, 2]

    def test_reassign_without_survivors_keeps_ownership(self):
        owner = np.array([0, 0, 0], dtype=np.int64)
        reassign_owners(owner, dead=[0], survivors=[])
        assert owner.tolist() == [0, 0, 0]


class TestScalarModeRejected:
    def test_engine_rejects_scalar_faults(self):
        with pytest.raises(SimulationError, match="batched"):
            WalkEngine(graph=GRAPH, spec=DeepWalkSpec(), device=DEVICE,
                       execution="scalar", checkpoint_interval=2)
        with pytest.raises(SimulationError, match="batched"):
            WalkEngine(graph=GRAPH, spec=DeepWalkSpec(), device=DEVICE,
                       execution="scalar",
                       fault_plan=FaultPlan(
                           transient_faults=(TransientFault(superstep=0),)
                       ))

    def test_config_rejects_scalar_faults(self):
        with pytest.raises(ReproError, match="batched"):
            FlexiWalkerConfig(execution="scalar", checkpoint_interval=2)
        with pytest.raises(ReproError, match="batched"):
            FlexiWalkerConfig(
                execution="scalar",
                fault_plan=FaultPlan(
                    transient_faults=(TransientFault(superstep=0),)
                ),
            )


class TestNegotiation:
    @pytest.fixture(scope="class")
    def capabilities(self):
        return WalkService(GRAPH).capabilities()

    def test_scalar_backend_declines_checkpointing(self, capabilities):
        plan = negotiate_plan(
            capabilities,
            FlexiWalkerConfig(checkpoint_interval=4),
            backend="scalar",
        )
        assert plan.checkpoint_interval == 0
        assert any("checkpointing declined" in r for r in plan.reasons)

    def test_service_without_checkpointing_declines(self, capabilities):
        plan = negotiate_plan(
            dataclasses.replace(capabilities, checkpointing=False),
            FlexiWalkerConfig(checkpoint_interval=4),
        )
        assert plan.checkpoint_interval == 0
        assert any("not offered" in r for r in plan.reasons)

    def test_batched_service_grants_checkpointing(self, capabilities):
        plan = negotiate_plan(
            capabilities,
            FlexiWalkerConfig(checkpoint_interval=4),
        )
        assert plan.checkpoint_interval == 4
        assert any("checkpointing granted" in r for r in plan.reasons)

    def test_session_honours_negotiated_interval(self):
        service = WalkService(GRAPH)
        session = service.session(
            DeepWalkSpec(), FlexiWalkerConfig(checkpoint_interval=5)
        )
        session.submit(queries())
        result = session.collect()
        assert result.checkpoints_taken == WALK_LENGTH // 5
