"""Alias sampling (ALS), the strategy of Skywalker.

Alias sampling answers a weighted choice in O(1) random numbers *after*
building an alias table in O(degree).  For static walks the table is built
once per node and reused forever, which is why Skywalker is competitive
there; for dynamic walks the table must be rebuilt at every step — the
"repetitive auxiliary data structure construction" overhead Fig. 3 exposes.

The construction here is Vose's algorithm, which is numerically robust and
exactly preserves the target distribution.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import (
    Sampler,
    StepContext,
    all_weights_zero,
    gather_transition_weights,
)
from repro.sampling.batch import BatchStepContext, segment_any_positive


def build_alias_table(weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vose alias-table construction.

    Returns ``(prob, alias)`` arrays of length ``n`` such that drawing a
    uniform column ``i`` and accepting it with probability ``prob[i]`` (else
    taking ``alias[i]``) reproduces the normalised weight distribution.
    """
    weights = np.asarray(weights, dtype=np.float64)
    n = weights.size
    if n == 0:
        return np.zeros(0), np.zeros(0, dtype=np.int64)
    total = weights.sum()
    if total <= 0:
        # Degenerate: caller must detect the all-zero case before sampling.
        return np.zeros(n), np.arange(n, dtype=np.int64)
    scaled = weights * (n / total)
    prob = np.zeros(n, dtype=np.float64)
    alias = np.zeros(n, dtype=np.int64)
    small = [i for i in range(n) if scaled[i] < 1.0]
    large = [i for i in range(n) if scaled[i] >= 1.0]
    scaled = scaled.copy()
    while small and large:
        s = small.pop()
        l = large.pop()
        prob[s] = scaled[s]
        alias[s] = l
        scaled[l] = (scaled[l] + scaled[s]) - 1.0
        if scaled[l] < 1.0:
            small.append(l)
        else:
            large.append(l)
    for i in large:
        prob[i] = 1.0
        alias[i] = i
    for i in small:
        prob[i] = 1.0
        alias[i] = i
    return prob, alias


class AliasSampler(Sampler):
    """Per-step alias-table sampling (Skywalker's strategy, Fig. 2b)."""

    name = "ALS"
    processing_unit = "warp"

    def sample(self, ctx: StepContext) -> int | None:
        if not self._check_nonempty(ctx):
            return None
        weights = gather_transition_weights(ctx)
        degree = weights.size
        if all_weights_zero(weights):
            return None

        # Building the table: a mean reduction plus redistributing every
        # element into the prob/alias arrays.
        warp = ctx.warp()
        warp.reduce_sum(weights)
        ctx.counters.table_builds += 2 * degree
        prob, alias = build_alias_table(weights)

        # Sampling: two random numbers forming a 2D lookup coordinate.
        u_col = ctx.rng.uniform()
        u_acc = ctx.rng.uniform()
        ctx.counters.rng_draws += 2
        ctx.counters.random_accesses += 1  # table lookup
        column = min(int(u_col * degree), degree - 1)
        choice = column if u_acc < prob[column] else int(alias[column])
        return int(ctx.neighbors()[choice])

    # ------------------------------------------------------------------ #
    def _sample_batch_nonempty(self, batch: BatchStepContext, out: np.ndarray) -> np.ndarray:
        """Frontier-wide ALS: vectorised gather/draws, per-walker Vose builds.

        The alias-table construction is inherently sequential (Vose's
        small/large worklists), so it stays a per-walker core; the weight
        gather, the two uniforms per walker and all cost accounting are
        vectorised across the frontier.
        """
        degrees = batch.degrees
        weights = batch.gather_weights()
        live = np.nonzero(segment_any_positive(weights, degrees))[0]
        if live.size == 0:
            return out

        batch.charge("reduction_elements", degrees[live], live)
        batch.charge("table_builds", 2 * degrees[live], live)
        counts = np.zeros(batch.size, dtype=np.int64)
        counts[live] = 2
        uniforms = batch.rng.uniform_flat(counts)
        batch.charge("rng_draws", 2, live)
        batch.charge("random_accesses", 1, live)

        cache = batch.transition_cache
        if cache is not None:
            # Node-only workload: the Vose tables are run-wide constants
            # served by the transition cache (built once per node, like
            # Skywalker's static-walk tables), so the whole partition reduces
            # to two gathers and a vectorised accept test.
            live_nodes = batch.current[live]
            prob_flat, alias_flat = cache.alias_arrays(live_nodes)
            lo = batch.graph.indptr[live_nodes]
            degree = degrees[live]
            u_col = uniforms[0::2]
            u_acc = uniforms[1::2]
            column = np.minimum((u_col * degree).astype(np.int64), degree - 1)
            accept = u_acc < prob_flat[lo + column]
            choice = np.where(accept, column, alias_flat[lo + column])
            out[live] = batch.graph.indices[lo + choice]
            return out

        for j, i in enumerate(live):
            lo, hi = int(batch.offsets[i]), int(batch.offsets[i + 1])
            degree = hi - lo
            prob, alias = build_alias_table(weights[lo:hi])
            u_col, u_acc = float(uniforms[2 * j]), float(uniforms[2 * j + 1])
            column = min(int(u_col * degree), degree - 1)
            choice = column if u_acc < prob[column] else int(alias[column])
            out[i] = batch.neighbors_flat[lo + choice]
        return out
