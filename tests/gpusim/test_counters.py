"""Tests for cost counters."""

from __future__ import annotations

from repro.gpusim.counters import CostCounters


class TestCostCounters:
    def test_starts_at_zero(self):
        c = CostCounters()
        assert all(v == 0 for v in c.as_dict().values())

    def test_merge_adds_counts(self):
        a = CostCounters(coalesced_accesses=3, rng_draws=2)
        b = CostCounters(coalesced_accesses=1, random_accesses=5)
        a.merge(b)
        assert a.coalesced_accesses == 4
        assert a.random_accesses == 5
        assert a.rng_draws == 2

    def test_merge_returns_self(self):
        a = CostCounters()
        assert a.merge(CostCounters()) is a

    def test_add_operator_does_not_mutate_operands(self):
        a = CostCounters(rng_draws=1)
        b = CostCounters(rng_draws=2)
        c = a + b
        assert c.rng_draws == 3
        assert a.rng_draws == 1
        assert b.rng_draws == 2

    def test_copy_is_independent(self):
        a = CostCounters(warp_syncs=4)
        b = a.copy()
        b.warp_syncs += 1
        assert a.warp_syncs == 4

    def test_reset_clears_counts_but_not_weight_width(self):
        c = CostCounters(coalesced_accesses=7, bytes_per_weight=1)
        c.reset()
        assert c.coalesced_accesses == 0
        assert c.bytes_per_weight == 1

    def test_total_memory_accesses(self):
        c = CostCounters(coalesced_accesses=3, random_accesses=4)
        assert c.total_memory_accesses == 7

    def test_merge_does_not_touch_bytes_per_weight(self):
        a = CostCounters(bytes_per_weight=1)
        a.merge(CostCounters(bytes_per_weight=8))
        assert a.bytes_per_weight == 1

    def test_as_dict_lists_all_count_fields(self):
        d = CostCounters().as_dict()
        assert "coalesced_accesses" in d
        assert "bytes_per_weight" not in d
