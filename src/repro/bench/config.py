"""Experiment configuration shared by every benchmark."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BenchmarkError
from repro.graph.datasets import dataset_names


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs that scale an experiment between "quick" and "full" runs.

    The paper launches one 80-step query per node of billion-edge graphs;
    the reproduction keeps the same *structure* but scales query counts and
    walk lengths so each experiment completes in seconds on a laptop.  All
    scale factors live here so every experiment is consistent.

    Attributes
    ----------
    num_queries:
        Walk queries per dataset (subsampled start nodes).
    walk_length:
        Steps per walk for the long workloads (MetaPath always uses its
        schema depth).
    datasets:
        Dataset tags included in the experiment.
    waves:
        How many queries each simulated processing lane should receive on the
        GPU — the device presets are scaled down to
        ``num_queries / waves`` lanes so the scale-model runs are as
        oversubscribed as the paper-scale runs.
    oot_limit_ms:
        Simulated-time limit after which a run is reported as OOT
        (``None`` disables the limit).
    seed:
        Base seed for graphs, queries and kernels.
    """

    num_queries: int = 96
    walk_length: int = 10
    datasets: tuple[str, ...] = ("YT", "CP", "OK", "EU")
    waves: int = 12
    oot_limit_ms: float | None = None
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_queries < 1:
            raise BenchmarkError("num_queries must be at least 1")
        if self.walk_length < 1:
            raise BenchmarkError("walk_length must be at least 1")
        if self.waves < 1:
            raise BenchmarkError("waves must be at least 1")
        unknown = [d for d in self.datasets if d.upper() not in dataset_names()]
        if unknown:
            raise BenchmarkError(f"unknown datasets in config: {unknown}")

    @classmethod
    def quick(cls, **overrides) -> ExperimentConfig:
        """The default configuration used by the pytest benchmarks."""
        return cls(**overrides)

    @classmethod
    def full(cls, **overrides) -> ExperimentConfig:
        """A larger configuration covering every dataset (slower)."""
        defaults = dict(
            num_queries=256,
            walk_length=20,
            datasets=tuple(dataset_names()),
        )
        defaults.update(overrides)
        return cls(**defaults)
