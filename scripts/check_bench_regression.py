#!/usr/bin/env python
"""CI perf-regression gate for the walk-engine microbenchmark.

Compares a freshly measured ``bench_engine.py`` report against the committed
``BENCH_engine.json`` baseline and fails (exit code 1) when the batched
engine's speedup over the scalar engine dropped by more than the allowed
fraction — the backstop that keeps the vectorised hot path from silently
regressing toward the interpreter.  Also re-checks the simulated-time parity
flag: a speedup obtained by breaking simulation equivalence is not a speedup.

Usage::

    python scripts/bench_engine.py --output BENCH_engine.new.json
    python scripts/check_bench_regression.py \
        --baseline BENCH_engine.json --current BENCH_engine.new.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_speedup(path: Path) -> float:
    report = json.loads(path.read_text())
    speedup = report.get("speedup")
    if not isinstance(speedup, (int, float)) or speedup <= 0:
        raise SystemExit(f"{path}: no positive 'speedup' field (got {speedup!r})")
    return float(speedup)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, default=Path("BENCH_engine.json"),
                        help="committed baseline report")
    parser.add_argument("--current", type=Path, required=True,
                        help="freshly measured report to gate")
    parser.add_argument("--max-drop", type=float, default=0.30,
                        help="allowed fractional speedup drop (default: 0.30)")
    args = parser.parse_args()
    if not 0 <= args.max_drop < 1:
        parser.error("--max-drop must be in [0, 1)")

    baseline = load_speedup(args.baseline)
    current_report = json.loads(args.current.read_text())
    current = load_speedup(args.current)

    if current_report.get("simulated_time_parity") is not True:
        print("FAIL: current report lost scalar/batched simulated-time parity")
        return 1

    floor = baseline * (1.0 - args.max_drop)
    verdict = "ok" if current >= floor else "REGRESSION"
    print(f"baseline speedup: {baseline:.2f}x")
    print(f"current speedup:  {current:.2f}x (allowed floor: {floor:.2f}x)")
    print(f"verdict: {verdict}")
    if current < floor:
        print(
            f"FAIL: batched-engine speedup dropped more than "
            f"{args.max_drop:.0%} below the committed baseline"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
