"""Benchmark: Fig. 16 — energy efficiency comparison."""

from __future__ import annotations

from bench_helpers import run_once

from repro.bench.experiments import fig16_energy as experiment


def test_fig16_energy(benchmark, large_graph_config):
    result = run_once(benchmark, experiment, large_graph_config)
    for row in result["rows"]:
        # FlexiWalker is the most energy-efficient system per query even
        # though the GPU draws more power than the CPU baselines.
        assert row["FlexiWalker_j_per_query"] < row["KnightKing_j_per_query"]
        assert row["FlexiWalker_j_per_query"] < row["ThunderRW_j_per_query"]
        assert row["FlexiWalker_j_per_query"] <= row["FlowWalker_j_per_query"]
        assert row["FlexiWalker_max_watts"] > row["ThunderRW_max_watts"]
