"""Inverse transform sampling (ITS), the strategy of C-SAW.

ITS builds the normalised cumulative distribution of the transition weights
with a prefix sum, then inverts one uniform random number through a binary
search (Fig. 2c).  As with alias sampling, the auxiliary structure (the CDF)
must be rebuilt at every step of a dynamic walk, which is the overhead the
paper's design-space study rules out.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import Sampler, StepContext, gather_transition_weights


class InverseTransformSampler(Sampler):
    """Per-step CDF construction + binary-search inversion (C-SAW, Fig. 2c)."""

    name = "ITS"
    processing_unit = "warp"

    def sample(self, ctx: StepContext) -> int | None:
        if not self._check_nonempty(ctx):
            return None
        weights = gather_transition_weights(ctx)
        degree = weights.size
        total = float(weights.sum())
        if total <= 0.0:
            return None

        warp = ctx.warp()
        cdf = warp.prefix_sum(weights)
        # Storing the normalised prefix sums is an extra write per element.
        ctx.counters.table_builds += degree

        u = ctx.rng.uniform()
        ctx.counters.rng_draws += 1
        target = u * total
        # First index whose cumulative weight strictly exceeds the target;
        # "right" side guarantees zero-weight slots (flat CDF segments) are
        # never selected.
        choice = int(np.searchsorted(cdf, target, side="right"))
        choice = min(choice, degree - 1)
        # Binary search over the stored CDF: ~log2(degree) probes.
        ctx.counters.random_accesses += max(1, int(np.ceil(np.log2(max(degree, 2)))))
        return int(ctx.neighbors()[choice])
