"""Graph substrate: CSR storage, builders, generators, weights, datasets.

All walk kernels in this library operate on :class:`~repro.graph.csr.CSRGraph`,
the same compressed-sparse-row layout GPU random-walk frameworks use
(row-pointer + column-index arrays, with parallel arrays for edge property
weights and edge labels).
"""

from repro.graph.csr import CSRGraph
from repro.graph.delta import DeltaCSRGraph, GraphDelta
from repro.graph.invalidation import (
    DeltaInvalidation,
    graph_version,
    invalidation_for,
    repair_csr_caches,
)
from repro.graph.sharded import (
    SHARD_POLICIES,
    GhostNodeCache,
    GraphShard,
    ShardedCSRGraph,
    locality_owner_map,
)
from repro.graph.builders import from_edge_list, from_adjacency, to_undirected
from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    rmat_graph,
    star_graph,
    cycle_graph,
    complete_graph,
)
from repro.graph.weights import (
    uniform_weights,
    powerlaw_weights,
    degree_based_weights,
    constant_weights,
    quantize_weights_int8,
    dequantize_weights_int8,
)
from repro.graph.labels import random_edge_labels, schema_reachable_fraction
from repro.graph.datasets import DatasetSpec, DATASETS, load_dataset, dataset_names
from repro.graph.io import read_edge_list, write_edge_list, save_csr_npz, load_csr_npz

__all__ = [
    "CSRGraph",
    "DeltaCSRGraph",
    "GraphDelta",
    "DeltaInvalidation",
    "graph_version",
    "invalidation_for",
    "repair_csr_caches",
    "ShardedCSRGraph",
    "GraphShard",
    "GhostNodeCache",
    "SHARD_POLICIES",
    "locality_owner_map",
    "from_edge_list",
    "from_adjacency",
    "to_undirected",
    "barabasi_albert_graph",
    "erdos_renyi_graph",
    "rmat_graph",
    "star_graph",
    "cycle_graph",
    "complete_graph",
    "uniform_weights",
    "powerlaw_weights",
    "degree_based_weights",
    "constant_weights",
    "quantize_weights_int8",
    "dequantize_weights_int8",
    "random_edge_labels",
    "schema_reachable_fraction",
    "DatasetSpec",
    "DATASETS",
    "load_dataset",
    "dataset_names",
    "read_edge_list",
    "write_edge_list",
    "save_csr_npz",
    "load_csr_npz",
]
