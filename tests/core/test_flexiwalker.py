"""Tests for the FlexiWalker facade (the end-to-end pipeline of Fig. 6).

This module deliberately exercises the deprecated one-shot spellings
(``FlexiWalker.run`` / ``run_queries`` / ``summarize_run``) — it is the
legacy-shim suite, so it opts out of the suite-wide
``error::DeprecationWarning`` filter.  The warnings themselves are asserted
in ``tests/service/test_deprecations.py``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import FlexiWalkerConfig
from repro.core.flexiwalker import FlexiWalker
from repro.core.results import summarize_run
from repro.errors import CompilerWarning, ReproError
from repro.graph.csr import CSRGraph
from repro.gpusim.device import A6000
from repro.walks.metapath import MetaPathSpec
from repro.walks.node2vec import Node2VecSpec, UnweightedNode2VecSpec
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkerState, make_queries

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

SMALL_DEVICE = dataclasses.replace(A6000, parallel_lanes=8)
CONFIG = FlexiWalkerConfig(device=SMALL_DEVICE)


class TestPipelineAssembly:
    def test_compiles_profiles_and_selects(self, small_graph):
        walker = FlexiWalker(small_graph, Node2VecSpec(), CONFIG)
        info = walker.describe()
        assert info["compiler_supported"]
        assert info["granularity"] == "PER_STEP"
        assert info["selector"] == "cost_model"
        assert info["edge_cost_ratio"] > 1.0

    def test_profiling_can_be_disabled(self, small_graph):
        config = dataclasses.replace(CONFIG, run_profiling=False)
        walker = FlexiWalker(small_graph, Node2VecSpec(), config)
        assert walker.profile is None
        assert walker.cost_model.edge_cost_ratio == pytest.approx(SMALL_DEVICE.random_to_coalesced_ratio)

    def test_selection_policies_build_matching_selectors(self, small_graph):
        for policy, expected in [
            ("cost_model", "cost_model"),
            ("ervs_only", "fixed_ervs"),
            ("erjs_only", "fixed_erjs"),
            ("random", "random"),
            ("degree", "degree_based"),
        ]:
            config = dataclasses.replace(CONFIG, selection=policy)
            assert FlexiWalker(small_graph, Node2VecSpec(), config).selector.name == expected

    def test_unsupported_workload_forces_ervs_only(self, small_graph):
        class LoopSpec(WalkSpec):
            name = "loop"

            def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
                h_e = graph.weights[edge]
                total = 0.0
                while total < h_e:
                    total += 1.0
                return total

        with pytest.warns(CompilerWarning):
            walker = FlexiWalker(small_graph, LoopSpec(), CONFIG)
        assert walker.selector.name == "fixed_ervs"
        result = walker.run(walk_length=3, num_queries=5)
        assert set(result.sampler_usage) == {"eRVS"}


class TestRunning:
    def test_run_defaults_to_one_query_per_node(self, small_graph):
        walker = FlexiWalker(small_graph, Node2VecSpec(), CONFIG)
        result = walker.run(walk_length=3)
        assert len(result.paths) == small_graph.num_nodes

    def test_run_with_subsampled_queries(self, small_graph):
        walker = FlexiWalker(small_graph, Node2VecSpec(), CONFIG)
        result = walker.run(walk_length=3, num_queries=7)
        assert len(result.paths) == 7

    def test_metapath_uses_schema_depth_by_default(self, small_graph):
        walker = FlexiWalker(small_graph, MetaPathSpec(schema=(0, 1, 2)), CONFIG)
        result = walker.run(num_queries=5)
        assert all(len(path) - 1 <= 3 for path in result.paths)

    def test_empty_query_batch_rejected(self, small_graph):
        walker = FlexiWalker(small_graph, Node2VecSpec(), CONFIG)
        with pytest.raises(ReproError):
            walker.run_queries([])

    def test_walks_follow_graph_edges(self, small_graph):
        walker = FlexiWalker(small_graph, Node2VecSpec(), CONFIG)
        result = walker.run(walk_length=4, num_queries=10)
        for path in result.paths:
            for src, dst in zip(path, path[1:], strict=False):
                assert small_graph.has_edge(src, dst)

    def test_overheads_reported(self, small_graph):
        walker = FlexiWalker(small_graph, Node2VecSpec(), CONFIG)
        result = walker.run(walk_length=3, num_queries=5)
        assert result.overhead_ms > 0
        assert result.total_time_ms > result.time_ms

    def test_per_kernel_workload_has_no_preprocess_time(self, small_graph):
        walker = FlexiWalker(small_graph, UnweightedNode2VecSpec(), CONFIG)
        result = walker.run(walk_length=3, num_queries=5)
        assert result.preprocess_time_ns == 0.0

    def test_summary_contains_key_metrics(self, small_graph):
        walker = FlexiWalker(small_graph, Node2VecSpec(), CONFIG)
        summary = summarize_run(walker.run(walk_length=3, num_queries=5))
        for key in ("time_ms", "total_steps", "selection_ratio", "avg_walk_length"):
            assert key in summary
        assert summary["num_queries"] == 5

    def test_deterministic_given_seed(self, small_graph):
        config = dataclasses.replace(CONFIG, seed=42)
        a = FlexiWalker(small_graph, Node2VecSpec(), config).run(walk_length=4, num_queries=6)
        b = FlexiWalker(small_graph, Node2VecSpec(), config).run(walk_length=4, num_queries=6)
        assert a.paths == b.paths
