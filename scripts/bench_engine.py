#!/usr/bin/env python
"""Microbenchmark: scalar vs batched walk-engine wall clock.

Runs the quickstart workload (weighted Node2Vec on the YT scale model, one
query per node) through both execution modes of the walk engine and reports
host wall-clock time plus simulated-steps-per-second throughput.  Emits
``BENCH_engine.json`` next to the repository root so the numbers form a
trackable perf trajectory.

Usage::

    PYTHONPATH=src python scripts/bench_engine.py [--walk-length 20] [--repeats 3]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import FlexiWalker, FlexiWalkerConfig, Node2VecSpec, load_dataset  # noqa: E402


def bench_mode(graph, spec, mode: str, walk_length: int, repeats: int) -> dict[str, float]:
    """Best-of-N wall clock for one execution mode (pipeline built once)."""
    walker = FlexiWalker(graph, spec, FlexiWalkerConfig(execution=mode))
    walker.run(walk_length=walk_length)  # warm-up (hint tables, caches)
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = walker.run(walk_length=walk_length)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best["wall_clock_s"]:
            best = {
                "wall_clock_s": elapsed,
                "steps_per_s": result.total_steps / elapsed,
                "total_steps": result.total_steps,
                "simulated_time_ms": result.time_ms,
            }
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    def positive_int(value: str) -> int:
        parsed = int(value)
        if parsed < 1:
            raise argparse.ArgumentTypeError(f"must be at least 1, got {parsed}")
        return parsed

    parser.add_argument("--dataset", default="YT", help="dataset tag (default: YT)")
    parser.add_argument("--walk-length", type=positive_int, default=20)
    parser.add_argument("--repeats", type=positive_int, default=3)
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_engine.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args()

    graph = load_dataset(args.dataset, weights="uniform")
    spec = Node2VecSpec(a=2.0, b=0.5)
    print(f"benchmarking on {graph} (walk_length={args.walk_length}, "
          f"one query per node, best of {args.repeats})")

    report = {
        "dataset": args.dataset,
        "workload": "node2vec",
        "walk_length": args.walk_length,
        "num_queries": graph.num_nodes,
    }
    for mode in ("scalar", "batched"):
        report[mode] = bench_mode(graph, spec, mode, args.walk_length, args.repeats)
        print(f"  {mode:>7}: {report[mode]['wall_clock_s']:.3f}s wall, "
              f"{report[mode]['steps_per_s']:,.0f} steps/s")

    speedup = report["scalar"]["wall_clock_s"] / report["batched"]["wall_clock_s"]
    report["speedup"] = speedup
    # Both modes must simulate the same execution; a drift here means the
    # batched engine broke parity, which invalidates the comparison.
    parity = report["scalar"]["simulated_time_ms"] == report["batched"]["simulated_time_ms"]
    report["simulated_time_parity"] = parity
    print(f"  speedup: {speedup:.1f}x (simulated-time parity: {parity})")

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0 if parity else 1


if __name__ == "__main__":
    raise SystemExit(main())
