"""Sampling kernels.

Four *base* sampling methods appear in prior GPU walk frameworks (Section 2.2):
alias sampling (Skywalker), inverse-transform sampling (C-SAW), rejection
sampling (NextDoor) and reservoir sampling (FlowWalker).  FlexiWalker's first
contribution is a pair of optimised kernels — **eRJS** (rejection sampling
with an estimated upper bound instead of a max reduction) and **eRVS**
(reservoir sampling with exponential keys instead of prefix sums, plus the
jump technique for random-number generation) — implemented here alongside
faithful reproductions of the four baselines.

Every kernel draws the next node from the *exact* target distribution
``p(u) = w̃(v, u) / Σ w̃(v, ·)`` (verified by chi-square tests in the test
suite) and records its operation counts into the step's
:class:`~repro.gpusim.counters.CostCounters` so the GPU simulator can price
it.
"""

from repro.sampling.base import (
    Sampler,
    StepContext,
    all_weights_zero,
    gather_transition_weights,
    is_dead_end,
)
from repro.sampling.batch import BatchStepContext, BufferArena
from repro.sampling.transition_cache import TransitionCache
from repro.sampling.alias import AliasSampler
from repro.sampling.its import InverseTransformSampler
from repro.sampling.rejection import RejectionSampler
from repro.sampling.reservoir import ReservoirSampler
from repro.sampling.erjs import EnhancedRejectionSampler
from repro.sampling.ervs import EnhancedReservoirSampler
from repro.sampling.registry import SAMPLERS, make_sampler, sampler_names

__all__ = [
    "Sampler",
    "StepContext",
    "BatchStepContext",
    "BufferArena",
    "TransitionCache",
    "gather_transition_weights",
    "is_dead_end",
    "all_weights_zero",
    "AliasSampler",
    "InverseTransformSampler",
    "RejectionSampler",
    "ReservoirSampler",
    "EnhancedRejectionSampler",
    "EnhancedReservoirSampler",
    "SAMPLERS",
    "make_sampler",
    "sampler_names",
]
