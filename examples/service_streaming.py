"""The serving API end to end: one service, many sessions, streamed results.

The session-based API is what turns this reproduction from a benchmark
harness into a servable system: a :class:`~repro.service.WalkService` keeps
the expensive shared state hot — the CSR graph, compiled workloads, device
profiles, per-node hint tables and transition caches — while every tenant
talks to its own lightweight :class:`~repro.service.WalkSession`.

This example demonstrates the three capabilities the one-shot facade never
had:

1. **Incremental submission** — queries are enqueued in batches while the
   session runs, each batch tracked by a :class:`~repro.service.QueryTicket`;
2. **Streaming** — ``stream()`` yields walks per superstep as they finish,
   instead of one terminal blob;
3. **Multi-tenancy** — a DeepWalk and a Node2Vec session share one service
   (and the DeepWalk session's transition cache is built exactly once,
   however many sessions run that workload).

``collect()`` at the end still returns the exact aggregate result — bit
identical to what the legacy one-shot run would have produced for the same
queries (the parity suite enforces this).
"""

from __future__ import annotations

from repro import (
    DeepWalkSpec,
    DeviceFleet,
    FlexiWalkerConfig,
    Node2VecSpec,
    WalkService,
    load_dataset,
    make_queries,
)
from repro.gpusim import A6000


def main() -> None:
    # 1. One service per graph.  The fleet declares the simulated hardware;
    #    sessions negotiate their execution plan against it.
    graph = load_dataset("YT", weights="uniform")
    device = A6000.scaled(96 / A6000.parallel_lanes, name="A6000 (scaled)")
    service = WalkService(graph, fleet=DeviceFleet(device, count=4))
    print(f"service: {service.describe()}")

    # 2. Open a session.  session() compiles the workload (cached on the
    #    service), profiles the device and negotiates an ExecutionPlan; the
    #    plan records *why* each backend choice was made.
    config = FlexiWalkerConfig(device=device)
    session = service.session(Node2VecSpec(a=2.0, b=0.5), config)
    print("negotiated plan:", session.plan.describe())

    # 3. Submit incrementally.  Queries execute in submission order; each
    #    submit returns a ticket you can poll.
    queries = make_queries(graph.num_nodes, walk_length=20)
    first = session.submit(queries[: len(queries) // 2])
    print(f"ticket {first.ticket_id}: {len(first.query_ids)} walks {first.status}")

    # 4. Stream.  Chunks arrive per superstep with the walks that finished
    #    in it; more work can be submitted mid-stream.
    chunks = 0
    walks_seen = 0
    second = None
    for chunk in session.stream():
        chunks += 1
        walks_seen += len(chunk)
        if second is None:
            # New queries enqueued *while the session is streaming*.
            second = session.submit(queries[len(queries) // 2 :])
        if chunk.sequence < 3:
            print(
                f"  chunk {chunk.sequence}: superstep {chunk.superstep}, "
                f"{len(chunk)} walks done, {chunk.pending} pending "
                f"(first walk: {list(chunk.paths[0])[:6]}...)"
            )
    print(f"streamed {walks_seen} walks in {chunks} chunks; "
          f"tickets: first={first.status}, second={second.status}")

    # 5. Collect the exact aggregate — identical to a one-shot run.
    result = session.collect()
    print(f"simulated kernel time: {result.time_ms:.4f} ms "
          f"(+{result.overhead_ms:.4f} ms profiling/preprocessing)")
    print(f"kernel selection ratio: {result.selection_ratio()}")

    # 6. Multi-tenancy: a second workload on the same service reuses the
    #    graph and the service registries; every DeepWalk session shares the
    #    service-owned cache holder (hint tables + transition cache), so the
    #    expensive per-workload structures are built exactly once.
    deep = service.session(DeepWalkSpec(), config)
    deep.submit(queries)
    deep_result = deep.collect()
    print(f"deepwalk tenant: {deep_result.time_ms:.4f} ms simulated, "
          f"transition cache shared: "
          f"{deep.engine.caches is service.engine_caches(DeepWalkSpec())}")
    print(f"service after serving: {service.describe()}")


if __name__ == "__main__":
    main()
