"""Counter-based (Philox-style) random number generation.

cuRAND's default generator on the GPU is Philox4x32-10: a counter-based
generator whose output depends only on ``(key, counter)``.  That property is
what makes per-thread streams cheap — each thread derives a unique key and
never needs to share state.  We reproduce the same contract here with a
simplified two-round Philox-like bijection implemented with numpy's uint64
arithmetic.  The generator is *statistically adequate* for random-walk
sampling (it passes uniformity and independence smoke tests in the test
suite) and, more importantly for the reproduction, it is deterministic,
splittable, and cheap to vectorise.
"""

from __future__ import annotations

import numpy as np

# Multipliers/Weyl constants borrowed from the Philox/SplitMix literature.
_PHILOX_M0 = np.uint64(0xD2B74407B1CE6E93)
_GOLDEN_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)

# 2**-53 — converts the top 53 bits of a uint64 into a double in [0, 1).
_U64_TO_UNIT = float(2.0**-53)


def _mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: a high-quality 64-bit bijection."""
    with np.errstate(over="ignore"):
        x = (x ^ (x >> np.uint64(30))) * _MIX_1
        x = (x ^ (x >> np.uint64(27))) * _MIX_2
        x = x ^ (x >> np.uint64(31))
    return x


def _philox_round(counter: np.ndarray, key: np.ndarray) -> np.ndarray:
    """One multiply-mix round keyed by ``key`` (counter-based bijection)."""
    with np.errstate(over="ignore"):
        x = counter * _PHILOX_M0
        x ^= key
    return _mix64(x)


def philox_uniform(key: int | np.ndarray, counter: int | np.ndarray) -> np.ndarray:
    """Return uniform(0, 1) doubles for the given key/counter pairs.

    Both arguments broadcast against each other, so a single key with a
    vector of counters produces one independent stream, and a vector of keys
    with a scalar counter produces one draw per stream.
    """
    key_arr = np.asarray(key, dtype=np.uint64)
    counter_arr = np.asarray(counter, dtype=np.uint64)
    with np.errstate(over="ignore"):
        keyed = _philox_round(counter_arr + _GOLDEN_GAMMA, _mix64(key_arr))
    return (keyed >> np.uint64(11)).astype(np.float64) * _U64_TO_UNIT


def derive_child_keys(parent_key: int | np.uint64, indices: np.ndarray) -> np.ndarray:
    """Child keys of :meth:`PhiloxEngine.split`, for many indices at once.

    ``derive_child_keys(engine.key, [i])[0] == engine.split(i).key`` — the
    stream pool uses this to mint thousands of per-walker streams in one
    vectorised expression instead of one ``split`` call each.
    """
    idx = np.asarray(indices, dtype=np.uint64)
    with np.errstate(over="ignore"):
        return _mix64(np.uint64(parent_key) + (idx + np.uint64(1)) * _GOLDEN_GAMMA)


class PhiloxEngine:
    """A counter-based generator with an explicit key and running counter.

    Parameters
    ----------
    seed:
        Base seed.  Two engines created with the same seed generate the same
        sequence of draws.
    stream:
        Stream index.  Engines with the same seed but different streams are
        statistically independent (the stream participates in the key).
    """

    __slots__ = ("_key", "_counter")

    def __init__(self, seed: int, stream: int = 0) -> None:
        with np.errstate(over="ignore"):
            key = _mix64(np.uint64(seed & 0xFFFFFFFFFFFFFFFF)) + np.uint64(stream) * _GOLDEN_GAMMA
        self._key = np.uint64(key)
        self._counter = np.uint64(0)

    @property
    def counter(self) -> int:
        """Number of 64-bit outputs consumed so far."""
        return int(self._counter)

    @property
    def key(self) -> np.uint64:
        """The stream key (exposed so batched draws can be vectorised)."""
        return self._key

    def reserve(self, n: int) -> np.uint64:
        """Advance the counter by ``n`` draws and return its previous value.

        This is the primitive behind cross-stream vectorised generation: a
        caller that knows ``(key, start_counter)`` can reproduce the exact
        values ``uniform(n)`` would have returned, for many engines at once,
        with a single :func:`philox_uniform` call.
        """
        start = self._counter
        with np.errstate(over="ignore"):
            self._counter += np.uint64(n)
        return start

    def split(self, index: int) -> PhiloxEngine:
        """Derive an independent child engine (cheap stream splitting)."""
        child = PhiloxEngine.__new__(PhiloxEngine)
        with np.errstate(over="ignore"):
            child._key = _mix64(self._key + np.uint64(index + 1) * _GOLDEN_GAMMA)
        child._counter = np.uint64(0)
        return child

    def uniform(self, size: int | tuple[int, ...] | None = None) -> np.ndarray | float:
        """Draw uniform(0, 1) doubles, advancing the counter."""
        if size is None:
            value = philox_uniform(self._key, self._counter)
            with np.errstate(over="ignore"):
                self._counter += np.uint64(1)
            return float(value)
        n = int(np.prod(size))
        counters = self._counter + np.arange(n, dtype=np.uint64)
        with np.errstate(over="ignore"):
            self._counter += np.uint64(n)
        values = philox_uniform(self._key, counters)
        return values.reshape(size)

    def integers(self, low: int, high: int, size: int | None = None) -> np.ndarray | int:
        """Draw integers uniformly from ``[low, high)``."""
        if high <= low:
            raise ValueError(f"empty integer range [{low}, {high})")
        span = high - low
        u = self.uniform(size)
        if size is None:
            return low + int(u * span)
        return (low + np.floor(np.asarray(u) * span)).astype(np.int64)

    def exponential(self, size: int | None = None) -> np.ndarray | float:
        """Draw standard exponential variates (used by the eRVS jump)."""
        u = self.uniform(size)
        if size is None:
            return -float(np.log1p(-u))
        return -np.log1p(-np.asarray(u))
