"""Property-based invariants of the streaming locality partitioner.

``locality_owner_map`` is a greedy heuristic, but three things about it are
hard guarantees the sharded runtime builds on: the output is a *partition*
(every node owned by exactly one in-range shard), it respects the same
per-shard node capacity the contiguous split uses (no extra device
head-room), and it never cuts more edges than the contiguous split of the
same graph (the builder keeps the better of the two).  Hypothesis sweeps
graph shapes and shard counts hunting for violations.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import (
    barabasi_albert_graph,
    cycle_graph,
    star_graph,
)
from repro.graph.sharded import (
    ShardedCSRGraph,
    locality_owner_map,
)


def _cut(graph, owner_map):
    degrees = graph.indptr[1:] - graph.indptr[:-1]
    source_owner = np.repeat(owner_map, degrees)
    return int(np.count_nonzero(source_owner != owner_map[graph.indices]))


def _build_graph(kind: str, size: int, seed: int):
    if kind == "ba":
        return barabasi_albert_graph(max(size, 8), 3, seed=seed)
    if kind == "star":
        return star_graph(max(size - 1, 2))
    return cycle_graph(max(size, 2))


class TestLocalityOwnerMap:
    @settings(max_examples=60, deadline=None)
    @given(
        kind=st.sampled_from(["ba", "star", "cycle"]),
        size=st.integers(min_value=4, max_value=120),
        seed=st.integers(min_value=0, max_value=50),
        num_shards=st.integers(min_value=1, max_value=8),
    )
    def test_partition_capacity_and_cut_invariants(
        self, kind, size, seed, num_shards
    ):
        graph = _build_graph(kind, size, seed)
        owner = locality_owner_map(graph, num_shards)

        # Every node is owned exactly once, by an in-range shard.
        assert owner.shape == (graph.num_nodes,)
        assert owner.dtype == np.int64
        assert owner.min() >= 0
        assert owner.max() < num_shards

        # No shard exceeds the contiguous split's node capacity.
        capacity = -(-graph.num_nodes // num_shards)
        assert np.bincount(owner, minlength=num_shards).max() <= capacity

        # The cut never regresses past the trivial contiguous split.
        contiguous = ShardedCSRGraph.build(graph, num_shards, "contiguous")
        assert _cut(graph, owner) <= _cut(graph, contiguous.owner_map)

    @settings(max_examples=25, deadline=None)
    @given(
        size=st.integers(min_value=8, max_value=100),
        seed=st.integers(min_value=0, max_value=50),
        num_shards=st.integers(min_value=2, max_value=6),
    )
    def test_builder_agrees_with_the_standalone_partitioner(
        self, size, seed, num_shards
    ):
        graph = barabasi_albert_graph(size, 3, seed=seed)
        sharded = ShardedCSRGraph.build(graph, num_shards, "locality")
        assert np.array_equal(
            sharded.owner_map, locality_owner_map(graph, num_shards)
        )
        # The static cut the decomposition reports is the owner map's cut.
        assert sharded.remote_edge_fraction() == (
            _cut(graph, sharded.owner_map) / graph.num_edges
        )

    def test_single_shard_is_the_zero_map(self):
        graph = barabasi_albert_graph(30, 3, seed=1)
        assert not locality_owner_map(graph, 1).any()

    def test_deterministic_across_calls(self):
        graph = barabasi_albert_graph(60, 3, seed=5)
        assert np.array_equal(
            locality_owner_map(graph, 4), locality_owner_map(graph, 4)
        )
