"""File-backed WalkSpec fixtures for the static-analysis tests.

The verifier resolves diagnostics to real source spans via
``inspect.getsourcelines``, so these specs must live in an importable file
(heredoc/exec-defined specs degrade to ``spec/source-unavailable``).  Each
class seeds exactly one rule family; the tests assert both the rule id and
the reported span, so keep the marker lines (tagged ``# MARK: ...``) stable
when editing.
"""

from __future__ import annotations

import random
import time

import numpy as np

from repro.walks.spec import WalkSpec


class BadRngSpec(WalkSpec):
    """determinism/unseeded-rng: draws from the module-level random stream."""

    name = "fixture_bad_rng"

    def get_weight(self, graph, state, edge):
        return random.random() * graph.weights[edge]  # MARK: bad-rng


class UnseededFactorySpec(WalkSpec):
    """determinism/unseeded-rng: constructs a generator with no seed."""

    name = "fixture_unseeded_factory"

    def get_weight(self, graph, state, edge):
        rng = np.random.default_rng()  # MARK: unseeded-factory
        return float(rng.random()) + graph.weights[edge]


class WallClockSpec(WalkSpec):
    """determinism/wall-clock: weight depends on host time."""

    name = "fixture_wall_clock"

    def get_weight(self, graph, state, edge):
        return graph.weights[edge] * (time.time() % 1.0)  # MARK: wall-clock


class IdentitySpec(WalkSpec):
    """determinism/object-identity (ERROR): id() is a process address."""

    name = "fixture_identity"

    def get_weight(self, graph, state, edge):
        return float(id(state) % 7)  # MARK: identity


class HashSpec(WalkSpec):
    """determinism/object-identity (WARNING): hash() may be randomised."""

    name = "fixture_hash"

    def get_weight(self, graph, state, edge):
        return float(hash(state) % 7)  # MARK: hash


class MemoSpec(WalkSpec):
    """determinism/pure-hook-writes-self: a weight hook that mutates."""

    name = "fixture_memo"

    def get_weight(self, graph, state, edge):
        self.last_edge = edge  # MARK: memo-write
        return graph.weights[edge]


class GlobalStateSpec(WalkSpec):
    """determinism/global-state (WARNING): hook declares a global."""

    name = "fixture_global"

    def get_weight(self, graph, state, edge):
        global _GLOBAL_COUNTER  # MARK: global-state  # noqa: PLW0603
        return graph.weights[edge]


class StatefulBatchSpec(WalkSpec):
    """cache-safety/batch-state-divergence: the latent-cache-gap regression.

    ``get_weight`` is state-free (so the scalar proof alone would declare the
    weights node-only and enable the TransitionCache), but the batch override
    re-weights the edge back to the previous node — a per-walker signal the
    cache rows cannot represent.
    """

    name = "fixture_stateful_batch"

    def get_weight(self, graph, state, edge):
        return graph.weights[edge]

    def transition_weights_batch(self, graph, batch):
        w = graph.weights[batch.flat_edges].astype(np.float64)
        w[batch.neighbors_flat == batch.prev[batch.seg_ids]] *= 10.0  # MARK: batch-state
        return w


class StatefulVectorSpec(WalkSpec):
    """cache-safety/vector-state-divergence: scalar-free, vector stateful."""

    name = "fixture_stateful_vector"

    def get_weight(self, graph, state, edge):
        return graph.weights[edge]

    def transition_weights(self, graph, state):
        h = graph.edge_weights(state.current_node).astype(np.float64)
        if state.step % 2:  # MARK: vector-state
            return h * 2.0
        return h


class UpdateBatchOnlySpec(WalkSpec):
    """cache-safety/update-batch-divergence: batch mutation without scalar."""

    name = "fixture_update_batch_only"
    is_dynamic = True

    def get_weight(self, graph, state, edge):
        return graph.weights[edge]

    def update_batch(self, graph, frontier, indices, next_nodes):  # MARK: update-batch-only
        pass


class UnkeyedSpec(WalkSpec):
    """registry-keys/unkeyed-attribute: ``bias`` shapes weights, not keys."""

    name = "fixture_unkeyed"

    def __init__(self, bias: float = 2.0) -> None:
        self.bias = float(bias)
        super().__init__()

    def get_weight(self, graph, state, edge):
        return graph.weights[edge] * self.bias  # MARK: unkeyed-read


class KeyedSpec(WalkSpec):
    """Clean counterpart of UnkeyedSpec: ``bias`` is reflected in describe()."""

    name = "fixture_keyed"

    def __init__(self, bias: float = 2.0) -> None:
        self.bias = float(bias)
        super().__init__()

    def get_weight(self, graph, state, edge):
        return graph.weights[edge] * self.bias

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info["bias"] = self.bias
        return info


class SuppressedRngSpec(WalkSpec):
    """Same defect as BadRngSpec, silenced with an inline suppression."""

    name = "fixture_suppressed_rng"

    def get_weight(self, graph, state, edge):
        return random.random() * graph.weights[edge]  # repro: ignore[determinism/unseeded-rng]


def make_selector():
    """A hint callable closing over a mutable list (determinism/closure-mutable)."""
    captured = [1, 2]

    def selector(n):
        return captured[0] + n

    return selector
