"""The walk service: long-lived shared state behind many walk sessions.

``WalkService(graph)`` is the serving-shaped entry point this reproduction
grew toward: one service instance owns everything that is immutable across
requests — the CSR graph, the per-workload compiled artifacts, profiling
results, per-node hint tables and cross-superstep transition caches, and the
simulated :class:`~repro.service.plan.DeviceFleet` — and hands out
lightweight :class:`~repro.service.session.WalkSession` objects that carry
only per-tenant run state.  Compile once, profile once, serve many::

    service = WalkService(graph, fleet=DeviceFleet(A6000, count=4))
    n2v = service.session(Node2VecSpec())
    deep = service.session(DeepWalkSpec())       # shares the service caches
    ticket = n2v.submit(make_queries(graph.num_nodes, walk_length=20))
    for chunk in n2v.stream():
        ...                                      # walks as they finish
    result = n2v.collect()                       # exact aggregate

Two sessions over the *same* workload (same spec class and hyperparameters)
share one compiled workload, one profile, one hint table and one transition
cache; sessions over different workloads share the service and the graph.
Sharing is keyed by ``spec.describe()`` — custom workloads should report
every behaviour-affecting hyperparameter there.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import TYPE_CHECKING

import numpy as np

from repro.compiler.generator import CompiledWorkload, compile_workload
from repro.core.config import FlexiWalkerConfig
from repro.errors import ServiceError
from repro.graph.csr import CSRGraph
from repro.graph.delta import DeltaCSRGraph
from repro.graph.invalidation import (
    invalidation_for,
    rebind_engine_caches,
    repair_csr_caches,
)
from repro.runtime.cost_model import CostModel
from repro.runtime.engine import EngineCaches, WalkEngine
from repro.runtime.profiler import ProfileResult, profile_edge_costs
from repro.runtime.selector import (
    CostModelSelector,
    DegreeBasedSelector,
    FixedSelector,
    RandomSelector,
    SamplerSelector,
)
from repro.sampling.erjs import EnhancedRejectionSampler
from repro.sampling.ervs import EnhancedReservoirSampler
from repro.service.plan import (
    DeviceFleet,
    ExecutionPlan,
    ServiceCapabilities,
    declare_capabilities,
    negotiate_plan,
)
from repro.service.session import WalkSession
from repro.walks.spec import WalkSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.scheduler import ServiceScheduler

#: Default cap on the per-workload registries (compiled artifacts, profiles,
#: engine caches).  Each distinct ``spec.describe()`` key holds hint tables
#: and transition caches that can reach O(graph) size, so an unbounded
#: registry is a memory leak in a long-lived multi-tenant service.
DEFAULT_MAX_CACHED_WORKLOADS = 128


def build_selector(
    config: FlexiWalkerConfig,
    cost_model: CostModel,
    compiled: CompiledWorkload | None = None,
) -> SamplerSelector:
    """Construct the runtime selector a config asks for.

    Applies the paper's Section 7.1 safety rule: an unsupported workload
    (compiler fallback) must never run eRJS, whatever the configured policy
    says, so every policy that could pick it collapses to eRVS-only.
    """
    policy = config.selection
    if policy == "cost_model":
        selector: SamplerSelector = CostModelSelector(cost_model)
    elif policy == "ervs_only":
        selector = FixedSelector(EnhancedReservoirSampler())
    elif policy == "erjs_only":
        selector = FixedSelector(EnhancedRejectionSampler())
    elif policy == "random":
        selector = RandomSelector(seed=config.seed)
    elif policy == "degree":
        selector = DegreeBasedSelector(threshold=config.degree_threshold)
    else:  # pragma: no cover - FlexiWalkerConfig validates the policy
        raise ServiceError(f"unknown selection policy {policy!r}")
    if (
        compiled is not None
        and not compiled.supported
        and policy in ("cost_model", "erjs_only", "degree", "random")
    ):
        selector = FixedSelector(EnhancedReservoirSampler())
    return selector


class WalkService:
    """Shared immutable state plus compile/profile/cache registries.

    Parameters
    ----------
    graph:
        The input graph, shared by every session: a frozen
        :class:`~repro.graph.csr.CSRGraph`, or a
        :class:`~repro.graph.delta.DeltaCSRGraph` to serve a **dynamic**
        graph.  Either way ``service.graph`` is the compacted CSR snapshot
        of the *current* version (the bare CSR at version 0 — a frozen
        caller pays nothing), and :meth:`apply_delta` advances it.
    fleet:
        The simulated devices available to sessions (one A6000 by default).
    max_cached_workloads:
        LRU cap on each per-workload registry (compiled workloads,
        profiles, engine caches).  A long-lived service seeing an unbounded
        stream of distinct workload hyperparameters evicts the
        least-recently-used entries instead of growing forever; an evicted
        workload simply re-compiles (and re-profiles, re-builds its caches)
        on its next use.  ``None`` disables the cap.
    max_inflight_walkers:
        Default in-flight walker budget of schedulers built by
        :meth:`scheduler` (0 = unbounded) — the backpressure knob of the
        continuous-batching loop, recorded in the declared
        :class:`~repro.service.plan.ServiceCapabilities`.
    fairness:
        Default admission fairness policy of schedulers built by
        :meth:`scheduler` (``"wrr"`` weighted round-robin or ``"fifo"``).
    tenant_quotas:
        Default per-tenant outstanding-walker quotas of schedulers built by
        :meth:`scheduler`, as ``(tenant, quota)`` pairs.
    strict_verification:
        When True, :meth:`session` (and every other negotiation) rejects
        specs whose static verification (:func:`repro.analysis.verify_spec`)
        carries ERROR diagnostics, instead of the default degraded mode
        (run without transition caching or scheduler fusion).
    """

    def __init__(
        self,
        graph: CSRGraph | DeltaCSRGraph,
        fleet: DeviceFleet | None = None,
        max_cached_workloads: int | None = DEFAULT_MAX_CACHED_WORKLOADS,
        max_inflight_walkers: int = 0,
        fairness: str = "wrr",
        tenant_quotas: tuple[tuple[str, int], ...] = (),
        strict_verification: bool = False,
    ) -> None:
        if max_cached_workloads is not None and max_cached_workloads < 1:
            raise ServiceError("max_cached_workloads must be at least 1 (or None)")
        if isinstance(graph, DeltaCSRGraph):
            self._dynamic: DeltaCSRGraph | None = graph
            self.graph = graph.snapshot()
        else:
            self._dynamic = None
            self.graph = graph
        self.fleet = fleet if fleet is not None else DeviceFleet()
        self.max_cached_workloads = max_cached_workloads
        self._capabilities = declare_capabilities(
            self.fleet,
            max_inflight_walkers=max_inflight_walkers,
            fairness=fairness,
            tenant_quotas=tenant_quotas,
            strict_verification=strict_verification,
        )
        self._compiled: OrderedDict[tuple, CompiledWorkload] = OrderedDict()
        self._profiles: OrderedDict[tuple, ProfileResult] = OrderedDict()
        self._caches: OrderedDict[tuple, EngineCaches] = OrderedDict()
        # Registry keys pinned by open sessions (refcounted): the LRU must
        # never evict an entry a live session still executes against —
        # version-keying multiplies distinct keys, so eviction pressure is
        # real even for a handful of workloads.  Sessions unpin on garbage
        # collection (weakref.finalize) or explicit close().
        self._pins: dict[tuple, int] = {}
        self._sessions_created = 0

    @property
    def graph_version(self) -> int:
        """Current graph version served to *new* sessions (0 when static)."""
        return 0 if self._dynamic is None else self._dynamic.version

    @property
    def dynamic_graph(self) -> DeltaCSRGraph | None:
        """The live delta overlay, or ``None`` while the service is static.

        Becomes non-``None`` after the first :meth:`apply_delta` (or when the
        service was constructed over a :class:`~repro.graph.DeltaCSRGraph`).
        Use it for overlay introspection — ``edge_list()``, ``compact()``,
        ``memory_footprint_bytes`` — never to mutate the graph behind the
        service's back: updates must go through :meth:`apply_delta`.
        """
        return self._dynamic

    def _registry_get(self, registry: OrderedDict, key: tuple):
        """LRU lookup: a hit moves the entry to the most-recent end."""
        value = registry.get(key)
        if value is not None:
            registry.move_to_end(key)
        return value

    def _registry_put(self, registry: OrderedDict, key: tuple, value) -> None:
        """LRU insert: evicts the least-recently-used *unpinned* entries.

        Entries pinned by an open session are skipped — evicting one would
        strand a session mid-run (its engine shares the cache holder) and
        rebuild state the session is guaranteed to touch again.  When every
        entry is pinned the registry temporarily overshoots the cap; it
        shrinks back as sessions close.
        """
        registry[key] = value
        registry.move_to_end(key)
        if self.max_cached_workloads is not None:
            while len(registry) > self.max_cached_workloads:
                for candidate in registry:
                    # The entry being inserted is exempt too: it is about to
                    # be used (and usually pinned) by the caller.
                    if candidate != key and self._pins.get(candidate, 0) == 0:
                        del registry[candidate]
                        break
                else:
                    break

    def _pin(self, keys: tuple[tuple, ...]) -> None:
        for key in keys:
            self._pins[key] = self._pins.get(key, 0) + 1

    def _unpin(self, keys: tuple[tuple, ...]) -> None:
        for key in keys:
            count = self._pins.get(key, 0) - 1
            if count > 0:
                self._pins[key] = count
            else:
                self._pins.pop(key, None)

    # ------------------------------------------------------------------ #
    def capabilities(self) -> ServiceCapabilities:
        """What this service can execute (consumed by plan negotiation)."""
        return self._capabilities

    def describe(self) -> dict[str, object]:
        """Summary of the service's shared state (for logs and examples)."""
        return {
            "graph": repr(self.graph),
            "graph_version": self.graph_version,
            "device": self.fleet.device.name,
            "num_devices": self.fleet.count,
            "backends": list(self._capabilities.backends),
            "compiled_workloads": len(self._compiled),
            "profiled_workloads": len(self._profiles),
            "max_cached_workloads": self.max_cached_workloads,
            "sessions_created": self._sessions_created,
            "max_inflight_walkers": self._capabilities.max_inflight_walkers,
            "fairness": self._capabilities.fairness,
            "tenant_quotas": dict(self._capabilities.tenant_quotas),
        }

    # ------------------------------------------------------------------ #
    # Compile / profile stages (cached per workload)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _canonical(value):
        """Hashable structural form of a describe() value.

        ``repr`` is not safe here: numpy truncates large arrays (two
        different weight vectors would collide on one cache key) and
        default object reprs embed ids (equal hyperparameters would never
        share).  Containers and arrays are therefore canonicalised by
        *content*; anything else falls back to ``repr`` as a best effort.
        """
        canonical = WalkService._canonical
        if isinstance(value, np.ndarray):
            return ("ndarray", value.shape, value.dtype.str, value.tobytes())
        if isinstance(value, dict):
            return ("dict", tuple(sorted((str(k), canonical(v)) for k, v in value.items())))
        if isinstance(value, (list, tuple)):
            return ("seq", tuple(canonical(v) for v in value))
        if isinstance(value, (set, frozenset)):
            return ("set", tuple(sorted(repr(canonical(v)) for v in value)))
        if isinstance(value, (bool, int, float, complex, str, bytes, type(None))):
            return value
        return repr(value)

    @staticmethod
    def _spec_key(spec: WalkSpec) -> tuple:
        """Structural cache key of a workload: class identity + hyperparameters."""
        return (
            type(spec).__module__,
            type(spec).__qualname__,
            WalkService._canonical(spec.describe()),
        )

    def _registry_key(self, spec: WalkSpec) -> tuple:
        """Workload registry key: structural spec key + current graph version.

        Version-keying is what lets in-flight sessions finish on the version
        they started on while new submits see the new edges: a session opened
        before an :meth:`apply_delta` keeps resolving (and pinning) its
        original key, a session opened after resolves the new one.
        """
        return (*self._spec_key(spec), self.graph_version)

    def compile(self, spec: WalkSpec) -> CompiledWorkload:
        """Compile a workload against this service's graph and device (cached)."""
        key = self._registry_key(spec)
        compiled = self._registry_get(self._compiled, key)
        if compiled is None:
            compiled = compile_workload(spec, self.graph, device=self.fleet.device)
            self._registry_put(self._compiled, key, compiled)
        return compiled

    def profile(self, spec: WalkSpec, seed: int = 0) -> ProfileResult:
        """Run (or reuse) the start-up profiling kernels for a workload."""
        key = (*self._registry_key(spec), seed)
        result = self._registry_get(self._profiles, key)
        if result is None:
            result = profile_edge_costs(self.graph, spec, self.fleet.device, seed=seed)
            self._registry_put(self._profiles, key, result)
        return result

    def engine_caches(self, spec: WalkSpec) -> EngineCaches:
        """The shared hint-table/transition-cache holder of a workload."""
        key = self._registry_key(spec)
        caches = self._registry_get(self._caches, key)
        if caches is None:
            caches = EngineCaches()
            self._registry_put(self._caches, key, caches)
        return caches

    # ------------------------------------------------------------------ #
    # Dynamic graphs
    # ------------------------------------------------------------------ #
    def apply_delta(
        self,
        additions,
        removals=(),
        *,
        weights=None,
        labels=None,
        repartition: bool = False,
    ) -> int:
        """Fold an edge delta into the service's graph; returns the new version.

        A static service wraps its CSR in a
        :class:`~repro.graph.delta.DeltaCSRGraph` on the first delta, so any
        service is dynamic on demand.  The call is the versioned
        invalidation protocol end to end:

        * ``service.graph`` becomes the compacted snapshot of the new
          version (CSR topology caches repaired incrementally from the old
          snapshot's, per :mod:`repro.graph.invalidation`);
        * every **unpinned** engine-cache holder keyed at the previous
          current version migrates to the new version key via the scoped
          rebind contracts — untouched-node entries survive by object
          identity, the workload is recompiled against the new snapshot;
        * holders pinned by in-flight sessions stay at their version key
          untouched: those sessions finish on the graph they started on,
          and only :meth:`session` calls made after this point see the new
          edges (new sessions of a migrated workload share the migrated
          caches).

        ``repartition=True`` additionally drops migrated holders' sharded
        decompositions instead of rebinding them, so the next sharded use
        re-partitions against the compacted graph.
        """
        if self._dynamic is None:
            self._dynamic = DeltaCSRGraph(self.graph)
        old_graph = self.graph
        old_version = self._dynamic.version
        self._dynamic = self._dynamic.apply_delta(
            additions, removals, weights=weights, labels=labels
        )
        new_graph = self._dynamic.snapshot()
        record = invalidation_for(self._dynamic)
        repair_csr_caches(old_graph, new_graph, record)
        self.graph = new_graph

        for key in [k for k in self._caches if k[-1] == old_version]:
            if self._pins.get(key, 0):
                continue
            caches = self._caches.pop(key)
            spec = None
            if caches.transition_cache is not None:
                spec = caches.transition_cache.spec
            elif caches.hint_tables is not None:
                spec = caches.hint_tables._compiled.spec
            compiled = self.compile(spec) if spec is not None else None
            rebind_engine_caches(
                caches, new_graph, record, compiled=compiled, repartition=repartition
            )
            self._registry_put(self._caches, (*key[:-1], self._dynamic.version), caches)
        return self._dynamic.version

    # ------------------------------------------------------------------ #
    # Session creation (plan + execute stages)
    # ------------------------------------------------------------------ #
    def session(
        self,
        spec: WalkSpec,
        config: FlexiWalkerConfig | None = None,
        backend: str | None = None,
        selector: SamplerSelector | None = None,
        engine: WalkEngine | None = None,
    ) -> WalkSession:
        """Open a walk session: compile, negotiate a plan, bind an engine.

        Parameters
        ----------
        spec:
            The workload's gather-move-update logic.
        config:
            Session knobs (selection policy, seed, overheads, requested
            execution/device count).  Defaults to the paper's setup on this
            service's fleet device.  The config's ``device`` must be the
            fleet's device — the service owns the hardware; configure the
            fleet instead of the session to change it.
        backend:
            Explicit backend request (see :data:`repro.service.BACKENDS`);
            by default the backend is negotiated from the config.
        selector:
            Pre-built runtime selector to reuse instead of constructing one
            from the config.  Stateful selectors (the ``random`` policy's
            shared generator) carry their state across the sessions that
            share them — this is how the legacy facade keeps repeated
            ``run()`` calls drawing fresh selection coin flips.
        engine:
            Pre-built :class:`~repro.runtime.engine.WalkEngine` to execute
            on instead of constructing one from the plan.  Used by the
            legacy facade so engine-level knobs its callers mutate in place
            (``step_overhead``, ``use_transition_cache``, ``scheduling``)
            keep affecting subsequent runs; the engine must target this
            service's graph and fleet device.
        """
        if config is None:
            config = FlexiWalkerConfig(device=self.fleet.device)
        if config.device != self.fleet.device:
            detail = (
                "different device"
                if config.device.name != self.fleet.device.name
                else "same name, different parameters"
            )
            raise ServiceError(
                f"session config requests device {config.device.name!r} but the "
                f"service fleet runs {self.fleet.device.name!r} ({detail}); "
                "configure the DeviceFleet instead"
            )

        compiled = self.compile(spec)
        plan = negotiate_plan(
            self._capabilities,
            config,
            compiled,
            backend=backend,
            graph_footprint_bytes=self.graph.memory_footprint_bytes(config.weight_bytes),
        )

        profile = self.profile(spec, seed=config.seed) if config.run_profiling else None
        ratio = (
            profile.edge_cost_ratio
            if profile is not None
            else config.device.random_to_coalesced_ratio
        )
        cost_model = CostModel(edge_cost_ratio=max(ratio, 1e-6))
        if engine is not None:
            if engine.graph is not self.graph:
                raise ServiceError("a reused engine must target the service's graph")
            if engine.device != self.fleet.device:
                raise ServiceError(
                    f"a reused engine must target the fleet device "
                    f"{self.fleet.device.name!r}, not {engine.device.name!r}"
                )
            selector = engine.selector
        else:
            if selector is None:
                selector = build_selector(config, cost_model, compiled)
            engine = WalkEngine(
                graph=self.graph,
                spec=spec,
                device=self.fleet.device,
                selector=selector,
                compiled=compiled,
                seed=config.seed,
                warp_width=config.warp_width,
                weight_bytes=config.weight_bytes,
                scheduling=plan.scheduling,
                selection_overhead=config.selection_overhead and config.selection == "cost_model",
                warp_switch_overhead=config.warp_switch_overhead,
                execution=plan.execution,
                num_devices=plan.num_devices,
                partition_policy=plan.partition_policy,
                graph_placement=plan.graph_placement,
                shard_policy=plan.shard_policy or config.shard_policy,
                ghost_cache_bytes=plan.ghost_cache_bytes,
                use_transition_cache=plan.use_transition_cache,
                caches=self.engine_caches(spec),
                checkpoint_interval=plan.checkpoint_interval,
                fault_plan=config.fault_plan,
            )
        self._sessions_created += 1
        session = WalkSession(
            service=self,
            spec=spec,
            config=config,
            plan=plan,
            compiled=compiled,
            profile=profile,
            cost_model=cost_model,
            selector=selector,
            engine=engine,
            graph_version=self.graph_version,
        )
        # Pin the session's registry entries for its lifetime: the LRU may
        # not evict (and apply_delta may not migrate) state a live session
        # executes against.  finalize fires on collection, so even an
        # abandoned session releases its pins.
        pinned = (self._registry_key(spec),)
        if config.run_profiling:
            pinned = (*pinned, (*self._registry_key(spec), config.seed))
        self._pin(pinned)
        session._unpin_finalizer = weakref.finalize(session, self._unpin, pinned)
        return session

    def plan_for(
        self,
        spec: WalkSpec,
        config: FlexiWalkerConfig | None = None,
        backend: str | None = None,
    ) -> ExecutionPlan:
        """Negotiate (without opening a session) the plan a session would get."""
        if config is None:
            config = FlexiWalkerConfig(device=self.fleet.device)
        return negotiate_plan(
            self._capabilities,
            config,
            self.compile(spec),
            backend=backend,
            graph_footprint_bytes=self.graph.memory_footprint_bytes(config.weight_bytes),
        )

    def scheduler(
        self,
        *,
        max_inflight_walkers: int | None = None,
        fairness: str | None = None,
        tenant_quotas: tuple[tuple[str, int], ...] | None = None,
        default_tenant: str = "default",
        record_admissions: bool = False,
        shed_after_ticks: int | None = None,
    ) -> ServiceScheduler:
        """Build a continuous-batching scheduler over this service.

        Admission-policy knobs default to what the service's declared
        :class:`~repro.service.plan.ServiceCapabilities` record (the
        ``max_inflight_walkers``/``fairness``/``tenant_quotas`` the service
        was constructed with); pass overrides to deviate for one scheduler.
        Sessions join via :meth:`ServiceScheduler.attach` or
        :meth:`ServiceScheduler.session`.
        """
        from repro.service.scheduler import ServiceScheduler

        capabilities = self._capabilities
        return ServiceScheduler(
            self,
            max_inflight_walkers=(
                capabilities.max_inflight_walkers
                if max_inflight_walkers is None
                else max_inflight_walkers
            ),
            fairness=capabilities.fairness if fairness is None else fairness,
            tenant_quotas=(
                capabilities.tenant_quotas if tenant_quotas is None else tenant_quotas
            ),
            default_tenant=default_tenant,
            record_admissions=record_admissions,
            shed_after_ticks=shed_after_ticks,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WalkService(graph={self.graph!r}, device={self.fleet.device.name!r}, "
            f"num_devices={self.fleet.count})"
        )
