"""Fig. 16 — energy efficiency.

Weighted Node2Vec on the configured large datasets, comparing KnightKing and
ThunderRW (CPU), FlowWalker (GPU) and FlexiWalker.  For each system the
experiment reports joules per query and the maximum power draw, derived from
the simulated execution time and the device power envelopes.

Expected shape (paper): the GPU systems draw more watts but finish so much
sooner that FlexiWalker is the most energy-efficient overall (up to 10.15x
fewer joules/query than KnightKing) while drawing 1.18x less peak power than
FlowWalker.
"""

from __future__ import annotations

import dataclasses

from repro.baselines.registry import make_baseline
from repro.bench.config import ExperimentConfig
from repro.bench.runner import prepare_graph, prepare_queries, run_flexiwalker, scaled_device_for
from repro.bench.tables import format_table
from repro.gpusim.energy import EnergyModel
from repro.walks.registry import make_workload

WORKLOAD = "node2vec"
DATASETS = ("FS", "AB", "UK", "TW", "SK")
SYSTEMS = ("KnightKing", "ThunderRW", "FlowWalker")


def run_experiment(config: ExperimentConfig | None = None) -> dict:
    """Measure joules/query and max watts for the energy comparison."""
    config = config or ExperimentConfig.quick()
    datasets = [d for d in DATASETS if d in config.datasets] or list(config.datasets[:2])
    rows: list[dict] = []

    for dataset in datasets:
        graph = prepare_graph(dataset, WORKLOAD, weights="uniform")
        queries = prepare_queries(graph, WORKLOAD, config)
        row: dict[str, object] = {"dataset": dataset}

        for name in SYSTEMS:
            system = make_baseline(name)
            device = scaled_device_for(system.platform, len(queries), config.waves)
            system = dataclasses.replace(system, device=device)
            result = system.run(graph, make_workload(WORKLOAD), queries, seed=config.seed)
            report = EnergyModel(device).report(result.kernel)
            row[f"{name}_j_per_query"] = report.joules_per_query
            row[f"{name}_max_watts"] = report.max_watts

        flexi = run_flexiwalker(dataset, WORKLOAD, config, graph=graph, queries=queries, check_memory=False)
        device = scaled_device_for("gpu", len(queries), config.waves)
        report = EnergyModel(device).report(flexi.result.kernel)
        row["FlexiWalker_j_per_query"] = report.joules_per_query
        row["FlexiWalker_max_watts"] = report.max_watts
        rows.append(row)

    return {
        "rows": rows,
        "config": config,
        "paper_reference": "Figure 16: energy efficiency (joules/query and max watts)",
    }


def format_result(result: dict) -> str:
    headers = ["dataset"]
    for name in (*SYSTEMS, "FlexiWalker"):
        headers += [f"{name}_j_per_query", f"{name}_max_watts"]
    return format_table(
        headers,
        [[row[h] for h in headers] for row in result["rows"]],
        title="Fig. 16 — energy efficiency (simulated)",
        float_format="{:.3e}",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_result(run_experiment()))


if __name__ == "__main__":  # pragma: no cover
    main()
