"""Property-based tests for the sampling kernels (hypothesis).

The invariants here hold for *any* non-negative weight vector:

* every kernel returns an index whose weight is strictly positive;
* kernels never return anything when every weight is zero;
* the alias table always redistributes the exact probability mass;
* the Efraimidis–Spirakis keys are monotone in the weight for a fixed
  uniform draw (the property that makes the argmax formulation correct);
* the cost model's selection rule agrees with comparing the two cost
  expressions it is derived from.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builders import from_edge_list
from repro.rng.streams import CountingStream
from repro.runtime.cost_model import CostModel
from repro.sampling.alias import build_alias_table
from repro.sampling.base import StepContext
from repro.sampling.ervs import exponential_race_keys
from repro.sampling.registry import make_sampler
from repro.gpusim.counters import CostCounters
from repro.walks.spec import UniformWalkSpec
from repro.walks.state import WalkerState, WalkQuery

weight_vectors = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=24,
)

SAMPLER_NAMES = ["ALS", "ITS", "RJS", "RVS", "eRJS", "eRVS"]


def _context_for_weights(weights, seed=0, bound=None):
    """A star-shaped context: node 0's out-edges carry the given weights."""
    n = len(weights)
    edges = [(0, i + 1) for i in range(n)] + [(i + 1, 0) for i in range(n)]
    graph = from_edge_list(edges, num_nodes=n + 1, weights=list(weights) + [1.0] * n)
    state = WalkerState.start(WalkQuery(query_id=0, start_node=0, max_length=2))
    return graph, StepContext(
        graph=graph,
        state=state,
        spec=UniformWalkSpec(),
        rng=CountingStream.from_seed(seed),
        counters=CostCounters(),
        bound_hint=bound,
    )


@settings(max_examples=40, deadline=None)
@given(weights=weight_vectors, name=st.sampled_from(SAMPLER_NAMES), seed=st.integers(0, 1000))
def test_samplers_only_choose_positive_weight_neighbors(weights, name, seed):
    graph, ctx = _context_for_weights(weights, seed=seed, bound=max(weights) if max(weights) > 0 else None)
    chosen = make_sampler(name).sample(ctx)
    if sum(weights) == 0:
        assert chosen is None
    else:
        assert chosen is not None
        # Neighbour i+1 carries weights[i].
        assert weights[int(chosen) - 1] > 0


@settings(max_examples=50, deadline=None)
@given(weights=weight_vectors)
def test_alias_table_conserves_probability_mass(weights):
    w = np.asarray(weights)
    prob, alias = build_alias_table(w)
    if w.sum() == 0:
        return
    n = w.size
    mass = prob.copy()
    for i in range(n):
        if prob[i] < 1.0:
            mass[alias[i]] += 1.0 - prob[i]
    assert np.allclose(mass / n, w / w.sum(), atol=1e-9)


@settings(max_examples=80, deadline=None)
@given(
    u=st.floats(min_value=1e-6, max_value=1.0 - 1e-6),
    w_small=st.floats(min_value=0.01, max_value=50.0),
    w_delta=st.floats(min_value=0.01, max_value=50.0),
)
def test_exponential_keys_monotone_in_weight(u, w_small, w_delta):
    keys = exponential_race_keys(
        np.array([w_small, w_small + w_delta]), np.array([u, u])
    )
    assert keys[1] >= keys[0]


@settings(max_examples=80, deadline=None)
@given(
    ratio=st.floats(min_value=0.5, max_value=64.0),
    degree=st.integers(min_value=1, max_value=10_000),
    max_w=st.floats(min_value=1e-3, max_value=1e3),
    mean_w=st.floats(min_value=1e-3, max_value=1e3),
)
def test_cost_model_rule_matches_cost_comparison(ratio, degree, max_w, mean_w):
    model = CostModel(edge_cost_ratio=ratio)
    max_weight = max(max_w, mean_w)
    sum_weight = mean_w * degree
    prefer = model.prefer_rjs(max_weight, sum_weight)
    assert prefer == (model.cost_rjs(degree, max_weight, sum_weight) < model.cost_rvs(degree))
