"""Benchmark: Table 3 — profiling and preprocessing overhead of FlexiWalker."""

from __future__ import annotations

from bench_helpers import run_once

from repro.bench.experiments import table3_overheads as experiment


def test_table3_overheads(benchmark, quick_config):
    result = run_once(benchmark, experiment, quick_config)
    for row in result["rows"]:
        assert row["profile_ms"] > 0
        assert row["preprocess_ms"] > 0
        # At the paper's per-node, 80-step setting the overheads amount to a
        # few percent of the walk time (paper: 0.46%-3.98%).
        assert row["overhead_pct_extrapolated"] < 10.0
