"""Table 3 — profiling and preprocessing overhead of FlexiWalker.

For every configured dataset the experiment reports the simulated time of the
start-up profiling kernels (Section 5.1) and of the compiler-generated
preprocessing pass (per-node MAX/SUM aggregates), and compares their sum to
the main weighted-Node2Vec walk time.

Expected shape (paper): the combined overhead is a fraction of a percent to a
few percent of the walk time (0.46%–3.98%), and both artefacts are reusable
across runs on the same graph/workload.
"""

from __future__ import annotations

from repro.bench.config import ExperimentConfig
from repro.bench.runner import prepare_graph, prepare_queries, run_flexiwalker
from repro.bench.tables import format_table

WORKLOAD = "node2vec"


def run_experiment(config: ExperimentConfig | None = None) -> dict:
    """Measure profiling + preprocessing overhead relative to the walk time."""
    config = config or ExperimentConfig.quick()
    rows: list[dict] = []

    for dataset in config.datasets:
        graph = prepare_graph(dataset, WORKLOAD, weights="uniform")
        queries = prepare_queries(graph, WORKLOAD, config)
        run = run_flexiwalker(dataset, WORKLOAD, config, graph=graph, queries=queries, check_memory=False)
        result = run.result
        profile_ms = (result.profile.simulated_time_ns / 1e6) if result.profile else 0.0
        preprocess_ms = result.preprocess_time_ns / 1e6
        total_overhead = profile_ms + preprocess_ms
        # The paper walks every node for 80 steps; the quick configuration
        # subsamples queries and shortens walks, so the overhead percentage is
        # also reported against the walk time extrapolated to the paper's
        # per-node, 80-step setting (the overheads themselves do not grow).
        walk_steps = max(1, len(queries)) * max(1, config.walk_length)
        paper_steps = graph.num_nodes * 80
        extrapolated_walk_ms = result.time_ms * paper_steps / walk_steps
        rows.append(
            {
                "dataset": dataset,
                "profile_ms": profile_ms,
                "preprocess_ms": preprocess_ms,
                "total_overhead_ms": total_overhead,
                "walk_ms": result.time_ms,
                "overhead_pct_of_walk": 100.0 * total_overhead / result.time_ms if result.time_ms else 0.0,
                "overhead_pct_extrapolated": (
                    100.0 * total_overhead / extrapolated_walk_ms if extrapolated_walk_ms else 0.0
                ),
            }
        )

    return {
        "rows": rows,
        "config": config,
        "paper_reference": "Table 3: profile/preprocessing time vs walk time (paper: 0.46%-3.98%)",
    }


def format_result(result: dict) -> str:
    headers = [
        "dataset", "profile_ms", "preprocess_ms", "total_overhead_ms", "walk_ms",
        "overhead_pct_of_walk", "overhead_pct_extrapolated",
    ]
    return format_table(
        headers,
        [[row[h] for h in headers] for row in result["rows"]],
        title="Table 3 — profiling and preprocessing overhead (simulated)",
        float_format="{:.5f}",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_result(run_experiment()))


if __name__ == "__main__":  # pragma: no cover
    main()
