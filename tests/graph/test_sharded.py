"""ShardedCSRGraph: builder policies, ownership lookup, memory accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.generators import barabasi_albert_graph, star_graph
from repro.graph.labels import random_edge_labels
from repro.graph.sharded import SHARD_POLICIES, ShardedCSRGraph


def skewed_graph(num_nodes: int = 50, seed: int = 7) -> CSRGraph:
    # Scale-model shape: low node ids get the highest degrees.
    return barabasi_albert_graph(num_nodes, 3, seed=seed, name="sharded-test")


class TestBuild:
    @pytest.mark.parametrize("policy", SHARD_POLICIES)
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
    def test_shards_cover_every_node_and_edge_exactly_once(self, policy, num_shards):
        graph = skewed_graph()
        sharded = ShardedCSRGraph.build(graph, num_shards, policy)
        assert sharded.num_shards == num_shards
        assert sharded.boundaries[0] == 0
        assert sharded.boundaries[-1] == graph.num_nodes
        assert sum(s.num_nodes for s in sharded.shards) == graph.num_nodes
        assert sum(s.num_edges for s in sharded.shards) == graph.num_edges
        # Reassembling the per-shard slices reproduces the parent arrays.
        assert np.array_equal(
            np.concatenate([s.indices for s in sharded.shards]), graph.indices
        )
        assert np.array_equal(
            np.concatenate([s.weights for s in sharded.shards]), graph.weights
        )

    def test_local_indptr_is_rebased(self):
        graph = skewed_graph()
        sharded = ShardedCSRGraph.build(graph, 3, "contiguous")
        for shard in sharded.shards:
            assert shard.indptr[0] == 0
            assert shard.indptr[-1] == shard.num_edges
            # Each local row matches the parent's neighbour list.
            for local in range(shard.num_nodes):
                node = shard.node_start + local
                nbrs = shard.indices[shard.indptr[local]:shard.indptr[local + 1]]
                assert np.array_equal(nbrs, graph.neighbors(node))

    def test_degree_balanced_beats_contiguous_on_skew(self):
        graph = skewed_graph(num_nodes=120)
        contiguous = ShardedCSRGraph.build(graph, 4, "contiguous")
        balanced = ShardedCSRGraph.build(graph, 4, "degree_balanced")

        def imbalance(sharded):
            counts = sharded.shard_edge_counts().astype(float)
            return counts.max() / counts.mean()

        assert imbalance(balanced) <= imbalance(contiguous)

    def test_labels_slice_along(self):
        graph = skewed_graph()
        graph = graph.with_labels(random_edge_labels(graph, num_labels=4, seed=1))
        sharded = ShardedCSRGraph.build(graph, 2, "contiguous")
        assert all(s.labels is not None for s in sharded.shards)
        assert np.array_equal(
            np.concatenate([s.labels for s in sharded.shards]), graph.labels
        )

    def test_invalid_arguments(self):
        graph = skewed_graph()
        with pytest.raises(GraphError):
            ShardedCSRGraph.build(graph, 0)
        with pytest.raises(GraphError):
            ShardedCSRGraph.build(graph, 2, policy="random")


class TestOwner:
    @pytest.mark.parametrize("policy", SHARD_POLICIES)
    def test_owner_matches_shard_ranges(self, policy):
        graph = skewed_graph()
        sharded = ShardedCSRGraph.build(graph, 4, policy)
        nodes = np.arange(graph.num_nodes)
        owners = sharded.owner(nodes)
        for shard in sharded.shards:
            mask = owners == shard.shard_id
            assert np.array_equal(np.nonzero(mask)[0], nodes[shard.owns(nodes)])

    def test_empty_shards_never_own(self):
        # More shards than nodes: the star graph has hub 0 plus leaves.
        graph = star_graph(4)
        sharded = ShardedCSRGraph.build(graph, 7, "degree_balanced")
        owners = sharded.owner(np.arange(graph.num_nodes))
        for shard in sharded.shards:
            if shard.num_nodes == 0:
                assert not np.any(owners == shard.shard_id)
        # Every node still has exactly one owner in range.
        assert owners.min() >= 0
        assert owners.max() < sharded.num_shards

    def test_owner_rejects_out_of_range_nodes(self):
        sharded = ShardedCSRGraph.build(skewed_graph(), 2)
        with pytest.raises(GraphError):
            sharded.owner(np.array([999]))


class TestMemoryAccounting:
    def test_shard_footprints_cover_the_replicated_footprint(self):
        graph = skewed_graph()
        sharded = ShardedCSRGraph.build(graph, 4, "degree_balanced")
        total = sharded.memory_footprint_bytes()
        # Sharding duplicates one indptr entry per extra shard, nothing else.
        assert total == graph.memory_footprint_bytes() + 8 * (sharded.num_shards - 1)
        assert sharded.max_shard_footprint_bytes() < graph.memory_footprint_bytes()
        assert sharded.max_shard_footprint_bytes() == max(
            s.memory_footprint_bytes() for s in sharded.shards
        )

    def test_weight_bytes_scales_like_the_parent(self):
        graph = skewed_graph()
        sharded = ShardedCSRGraph.build(graph, 2)
        delta = sharded.memory_footprint_bytes(8) - sharded.memory_footprint_bytes(1)
        assert delta == graph.num_edges * 7

    def test_describe_reports_the_decomposition(self):
        sharded = ShardedCSRGraph.build(skewed_graph(), 4, "degree_balanced")
        described = sharded.describe()
        assert described["num_shards"] == 4
        assert described["policy"] == "degree_balanced"
        assert 0.0 <= described["remote_edge_fraction"] <= 1.0
        assert described["edge_balance"] >= 1.0

    def test_remote_edge_fraction_zero_for_single_shard(self):
        sharded = ShardedCSRGraph.build(skewed_graph(), 1)
        assert sharded.remote_edge_fraction() == 0.0
