"""Benchmark: Section 5.3 ablation — dynamic query scheduling vs static ranges."""

from __future__ import annotations

from bench_helpers import run_once

from repro.bench.experiments import scheduling_ablation as experiment


def test_scheduling_ablation(benchmark, quick_config):
    result = run_once(benchmark, experiment, quick_config)
    for row in result["rows"]:
        # The dynamic queue never loses to static ranges and keeps the lanes
        # better balanced.
        assert row["speedup"] >= 0.99
        assert row["dynamic_imbalance"] <= row["static_imbalance"] * 1.01
