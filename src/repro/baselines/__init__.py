"""Baseline random-walk systems (Section 6.1).

The paper compares FlexiWalker against six published systems — two CPU-based
(ThunderRW, SOWalker) and four GPU-based (C-SAW, NextDoor, Skywalker,
FlowWalker) — plus KnightKing in the energy study.  Each baseline here is a
model of that system: its published sampling strategy running on the shared
walk engine, its platform's device preset, its framework-specific per-step
overheads, and its device-memory footprint model (which is what reproduces
the OOM outcomes on the paper-scale graphs).
"""

from repro.baselines.base import BaselineSystem
from repro.baselines.registry import (
    BASELINES,
    CPU_BASELINES,
    GPU_BASELINES,
    make_baseline,
    baseline_names,
)

__all__ = [
    "BaselineSystem",
    "BASELINES",
    "CPU_BASELINES",
    "GPU_BASELINES",
    "make_baseline",
    "baseline_names",
]
