"""Second-order PageRank: degree-aware second-order proximity walks.

Second-order PageRank (Wu et al., 2016) biases the walk toward neighbours of
the previously visited node and scales weights by node degrees (Eq. 3 of the
paper).  With ``maxd = max(d(v), d(v'))`` and decay ``gamma``:

* ``dist(v', u) == 1``:   ``w = ((1 - gamma)/d(v) + gamma/d(v')) * maxd``
* otherwise:              ``w = ((1 - gamma)/d(v)) * maxd``

The degree terms make the transition-weight *sum* of a node fluctuate heavily
across steps (Fig. 7b), which is what motivates per-step kernel selection.
The paper evaluates with ``gamma = 0.2``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import WalkSpecError
from repro.graph.csr import CSRGraph
from repro.walks.node2vec import _prev_degrees, _second_order_bias
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkerState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sampling.batch import BatchStepContext


class SecondOrderPRSpec(WalkSpec):
    """Second-order PageRank walk specification."""

    name = "2nd_pr"
    is_dynamic = True
    default_walk_length = 80

    def __init__(self, gamma: float = 0.2) -> None:
        if not 0.0 <= gamma <= 1.0:
            raise WalkSpecError("gamma must lie in [0, 1]")
        self.gamma = float(gamma)
        super().__init__()

    # ------------------------------------------------------------------ #
    # User code analysed by Flexi-Compiler
    # ------------------------------------------------------------------ #
    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        h_e = graph.weights[edge]
        post = graph.indices[edge]
        if state.prev_node < 0:
            return h_e
        d_cur = graph.degree(state.current_node)
        d_prev = graph.degree(state.prev_node)
        maxd = d_cur if d_cur > d_prev else d_prev
        if graph.has_edge(state.prev_node, post):
            return ((1.0 - self.gamma) / d_cur + self.gamma / d_prev) * maxd * h_e
        return ((1.0 - self.gamma) / d_cur) * maxd * h_e

    # ------------------------------------------------------------------ #
    def transition_weights(self, graph: CSRGraph, state: WalkerState) -> np.ndarray:
        h = graph.edge_weights(state.current_node).astype(np.float64)
        if state.prev_node < 0:
            return h.copy()
        neighbors = graph.neighbors(state.current_node)
        d_cur = graph.degree(state.current_node)
        d_prev = graph.degree(state.prev_node)
        if d_cur == 0:
            return np.zeros(0, dtype=np.float64)
        maxd = float(max(d_cur, d_prev))
        base = (1.0 - self.gamma) / d_cur
        bonus = self.gamma / d_prev if d_prev > 0 else 0.0
        prev_neighbors = graph.neighbors(state.prev_node)
        w = np.full(neighbors.size, base, dtype=np.float64)
        if prev_neighbors.size:
            pos = np.searchsorted(prev_neighbors, neighbors)
            pos = np.clip(pos, 0, prev_neighbors.size - 1)
            linked = prev_neighbors[pos] == neighbors
            w[linked] = base + bonus
        return w * maxd * h

    def transition_weights_batch(self, graph: CSRGraph, batch: BatchStepContext) -> np.ndarray:
        """Frontier-wide Eq. 3: per-walker degree terms expanded per edge."""
        h = graph.weights[batch.flat_edges].astype(np.float64)
        has_prev, linked = _second_order_bias(graph, batch)
        d_cur = batch.degrees
        d_prev = _prev_degrees(graph, batch.prev)
        maxd = np.maximum(d_cur, d_prev).astype(np.float64)
        # Degree-0 walkers have no flat entries, so the clamped divisor below
        # only suppresses the divide warning; the value is never read.
        base = (1.0 - self.gamma) / np.maximum(d_cur, 1)
        bonus = np.where(d_prev > 0, self.gamma / np.maximum(d_prev, 1), 0.0)
        seg = batch.seg_ids
        w = base[seg].copy()
        w[linked] = (base + bonus)[seg][linked]
        factor = w * maxd[seg]
        factor[~has_prev] = 1.0
        return factor * h

    # ------------------------------------------------------------------ #
    # Simulator cost hooks: like Node2Vec, dist(v', u) is a membership probe,
    # plus the two degree lookups.
    # ------------------------------------------------------------------ #
    def probe_cost_words(self, graph: CSRGraph, state: WalkerState) -> int:
        if state.prev_node < 0:
            return 0
        d_prev = graph.degree(state.prev_node)
        return 2 + int(np.ceil(np.log2(d_prev + 2)))

    def scan_cost_words(self, graph: CSRGraph, state: WalkerState) -> int:
        if state.prev_node < 0:
            return 0
        return 2 + graph.degree(state.prev_node)

    def probe_cost_words_batch(self, graph: CSRGraph, batch: BatchStepContext) -> np.ndarray:
        prev = batch.prev
        d_prev = _prev_degrees(graph, prev)
        words = 2 + np.ceil(np.log2(d_prev + 2)).astype(np.int64)
        return np.where(prev < 0, 0, words)

    def scan_cost_words_batch(self, graph: CSRGraph, batch: BatchStepContext) -> np.ndarray:
        prev = batch.prev
        d_prev = _prev_degrees(graph, prev)
        return np.where(prev < 0, 0, 2 + d_prev)

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info.update({"gamma": self.gamma})
        return info
