"""Code generator: builds the runtime helper functions from the analysis table.

Mirrors Fig. 9d of the paper.  Given the analysis result for a workload's
``get_weight``:

* ``preprocess``       — per-node MAX/SUM aggregates of every edge-indexed
  array the return values depend on (delegated to
  :mod:`repro.compiler.preprocess`);
* ``get_weight_max``   — estimates an upper bound on the maximum transition
  weight of the current node by replaying the kept assignment statements with
  edge-indexed variables bound to their per-node MAX aggregate and taking the
  max over every return expression;
* ``get_weight_sum``   — estimates the transition-weight sum by binding
  edge-indexed variables to their per-node SUM aggregate, averaging the
  return expressions (and multiplying by the degree in the PER_KERNEL case
  where no per-edge data is involved), following Eq. (12).

The helpers are ordinary Python callables built from compiled AST fragments
of the user's own code, which is the Python analogue of the C++ snippets the
CUDA implementation splices into its kernels.
"""

from __future__ import annotations

import ast
import warnings
from dataclasses import dataclass, field
from types import CodeType

from repro.errors import CompilerWarning
from repro.analysis.diagnostics import SpecReport
from repro.analysis.verify import verify_spec
from repro.compiler.analyzer import AnalysisResult, analyze_get_weight
from repro.compiler.flags import BoundGranularity
from repro.compiler.preprocess import PreprocessResult, preprocess_graph
from repro.graph.csr import CSRGraph
from repro.gpusim.device import DeviceSpec
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkerState, WalkQuery

import numpy as np


def _compile_expr(expr: ast.expr) -> CodeType:
    """Compile one expression AST node into an evaluable code object."""
    wrapper = ast.Expression(body=expr)
    ast.fix_missing_locations(wrapper)
    return compile(wrapper, filename="<flexi-compiler>", mode="eval")


@dataclass
class GeneratedHelpers:
    """The compiled helper machinery for one workload.

    The raw compiled fragments are kept private; users interact through
    :meth:`estimate_max` and :meth:`estimate_sum`, which correspond to the
    generated ``get_weight_max()`` / ``get_weight_sum()`` functions.
    """

    spec: WalkSpec
    analysis: AnalysisResult
    _assignment_code: list[tuple[str, CodeType]] = field(default_factory=list)
    _return_code: list[CodeType] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._assignment_code = [
            (name, _compile_expr(expr)) for name, expr in self.analysis.assignments
        ]
        self._return_code = [_compile_expr(expr) for expr in self.analysis.return_expressions]
        self._globals = getattr(self.spec.get_weight, "__globals__", {})
        args = self.analysis.argument_names
        self._self_arg = args[0] if len(args) > 0 else "self"
        self._graph_arg = args[1] if len(args) > 1 else "graph"
        self._state_arg = args[2] if len(args) > 2 else "state"
        self._edge_arg = args[3] if len(args) > 3 else "edge"

    # ------------------------------------------------------------------ #
    def _evaluate_returns(
        self,
        graph: CSRGraph,
        state: WalkerState,
        substitutions: dict[str, float],
    ) -> list[float]:
        """Replay assignments and evaluate every reachable return expression.

        Assignments whose evaluation fails (e.g. they need the previous node
        before the first step) simply leave their variable unbound; any
        return expression that then fails to evaluate is skipped — exactly
        the graceful behaviour needed so the surviving branches still yield a
        valid estimate.
        """
        env: dict[str, object] = {
            self._self_arg: self.spec,
            self._graph_arg: graph,
            self._state_arg: state,
            self._edge_arg: None,
        }
        for name, code in self._assignment_code:
            if name in substitutions:
                env[name] = substitutions[name]
                continue
            try:
                env[name] = eval(code, self._globals, env)  # noqa: S307 - user walk code
            except Exception:
                env.pop(name, None)
        values: list[float] = []
        for code in self._return_code:
            try:
                values.append(float(eval(code, self._globals, env)))  # noqa: S307
            except Exception:
                continue
        return values

    def _substitutions(self, pre: PreprocessResult | None, node: int, kind: str) -> dict[str, float]:
        """Bind edge-indexed variables to the node's preprocessed aggregate."""
        if pre is None:
            return {}
        mapping: dict[str, float] = {}
        for var in self.analysis.edge_indexed:
            if pre.has_array(var.source_array):
                if kind == "max":
                    mapping[var.name] = pre.node_max(var.source_array, node)
                else:
                    mapping[var.name] = pre.node_sum(var.source_array, node)
        return mapping

    # ------------------------------------------------------------------ #
    def estimate_max(
        self,
        graph: CSRGraph,
        state: WalkerState,
        pre: PreprocessResult | None,
    ) -> float | None:
        """``get_weight_max()``: upper bound on the node's max transition weight."""
        subs = self._substitutions(pre, state.current_node, kind="max")
        values = self._evaluate_returns(graph, state, subs)
        if not values:
            return None
        return max(values)

    def estimate_sum(
        self,
        graph: CSRGraph,
        state: WalkerState,
        pre: PreprocessResult | None,
    ) -> float | None:
        """``get_weight_sum()``: estimate of the node's transition-weight sum."""
        subs = self._substitutions(pre, state.current_node, kind="sum")
        values = self._evaluate_returns(graph, state, subs)
        if not values:
            return None
        estimate = sum(values) / len(values)
        if self.analysis.granularity is BoundGranularity.PER_KERNEL:
            # No per-edge data was involved, so the averaged branch value is a
            # per-edge weight; emulate the sum by multiplying by the degree.
            estimate *= graph.degree(state.current_node)
        return estimate

    # ------------------------------------------------------------------ #
    # Vectorised (many-nodes-at-once) evaluation for node-only hints
    # ------------------------------------------------------------------ #
    def _substitutions_nodes(
        self, pre: PreprocessResult | None, nodes: np.ndarray, kind: str
    ) -> dict[str, np.ndarray]:
        """Array form of :meth:`_substitutions`: one aggregate per node."""
        if pre is None:
            return {}
        mapping: dict[str, np.ndarray] = {}
        for var in self.analysis.edge_indexed:
            if pre.has_array(var.source_array):
                agg = pre.aggregates[f"{var.source_array}_{kind}"]
                mapping[var.name] = agg[nodes].astype(np.float64)
        return mapping

    def _evaluate_returns_nodes(
        self,
        graph: CSRGraph,
        nodes: np.ndarray,
        substitutions: dict[str, np.ndarray],
    ) -> list[np.ndarray] | None:
        """Replay the return expressions with *arrays* bound per node.

        Node-only hints never read walker state through any expression that
        matters, so binding the edge-indexed variables to per-node aggregate
        arrays evaluates every pending node in one pass.  The replay is
        all-or-nothing: *any* exception — a numpy floating-point signal where
        the scalar path would have raised per node, an array-truth-value
        error from a ternary or builtin ``min``/``max``, anything — returns
        ``None`` so the caller re-evaluates per node with the exact scalar
        semantics.  Skipping a failing expression here instead would silently
        change the surviving-expression set relative to the scalar helpers
        and break the batched engine's hint parity.
        """
        env: dict[str, object] = {
            self._self_arg: self.spec,
            self._graph_arg: graph,
            # The scalar helpers evaluate against a probe walker state; bind
            # the same shape so state-touching assignments that the node-only
            # returns never consume still evaluate instead of aborting.
            self._state_arg: WalkerState(
                query=WalkQuery(query_id=0, start_node=0, max_length=1), current_node=0
            ),
            self._edge_arg: None,
        }
        values: list[np.ndarray] = []
        try:
            with np.errstate(divide="raise", invalid="raise", over="raise"):
                for name, code in self._assignment_code:
                    if name in substitutions:
                        env[name] = substitutions[name]
                        continue
                    env[name] = eval(code, self._globals, env)  # noqa: S307 - user walk code
                for code in self._return_code:
                    value = np.asarray(eval(code, self._globals, env), dtype=np.float64)  # noqa: S307
                    if value.ndim != 0 and value.shape != nodes.shape:
                        # An array-valued return the scalar helpers would have
                        # rejected via float() — or a stray broadcastable shape
                        # that would silently mean something else per node.
                        raise ValueError(
                            f"return expression shape {value.shape} is not "
                            f"per-node ({nodes.shape})"
                        )
                    values.append(value)
        except Exception:
            return None
        return values

    def estimate_hints_nodes(
        self,
        graph: CSRGraph,
        nodes: np.ndarray,
        pre: PreprocessResult | None,
        per_kernel: bool,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Vectorised ``(get_weight_max, get_weight_sum)`` for many nodes.

        Returns ``(bounds, sums)`` float64 arrays with ``NaN`` marking "no
        estimate" (the array form of the scalar ``None``), or ``None`` when
        the vectorised replay is unsafe and the caller must evaluate per node.
        """
        max_values = self._evaluate_returns_nodes(
            graph, nodes, self._substitutions_nodes(pre, nodes, "max")
        )
        if max_values is None:
            return None
        sum_values = self._evaluate_returns_nodes(
            graph, nodes, self._substitutions_nodes(pre, nodes, "sum")
        )
        if sum_values is None:
            return None

        bounds = np.full(nodes.size, np.nan, dtype=np.float64)
        if max_values:
            acc = np.array(np.broadcast_to(max_values[0], nodes.shape), dtype=np.float64)
            for value in max_values[1:]:
                acc = np.maximum(acc, value)
            bounds = acc
        sums = np.full(nodes.size, np.nan, dtype=np.float64)
        if sum_values:
            # Mirror `sum(values) / len(values)` term for term (same
            # accumulation order, same zero start value).
            acc = np.zeros(nodes.shape, dtype=np.float64)
            for value in sum_values:
                acc = acc + value
            estimate = acc / len(sum_values)
            if per_kernel:
                estimate = estimate * (graph.indptr[nodes + 1] - graph.indptr[nodes])
            sums = np.broadcast_to(estimate, nodes.shape).astype(np.float64)
        return bounds, sums


@dataclass
class CompiledWorkload:
    """A workload bundled with its compiled helpers and preprocessed data.

    This is the artefact Flexi-Runtime consumes: it exposes per-step
    ``bound_hint`` / ``sum_hint`` estimates and remembers whether the compiler
    had to fall back to eRVS-only mode.
    """

    spec: WalkSpec
    analysis: AnalysisResult
    helpers: GeneratedHelpers | None
    preprocessed: PreprocessResult | None
    #: Whole-spec verifier verdict (all hooks, all rule families); None only
    #: for hand-built bundles that bypassed :func:`compile_workload`.
    report: SpecReport | None = None
    _static_bound: float | None = None
    _static_bound_known: bool = False

    @property
    def supported(self) -> bool:
        """False when the analyser flagged unsupported constructs (Section 7.1)."""
        return self.analysis.supported and self.helpers is not None

    @property
    def granularity(self) -> BoundGranularity:
        return self.analysis.granularity

    @property
    def preprocessing_time_ns(self) -> float:
        return self.preprocessed.simulated_time_ns if self.preprocessed else 0.0

    @property
    def hints_node_only(self) -> bool:
        """True when the hints are a pure function of the current node.

        The generated helpers replay the workload's return expressions with
        edge-indexed variables bound to *per-node* aggregates, so when no
        return expression transitively reads the walker state, ``bound_hint``
        / ``sum_hint`` depend only on ``state.current_node`` — and the
        batched engine may precompute them once per node instead of
        re-evaluating the helpers per walker per step.  Workloads whose
        returns do read state (e.g. the degree terms of second-order
        PageRank) report False and fall back to per-walker evaluation.
        """
        if not self.supported:
            return False
        args = self.analysis.argument_names
        state_arg = args[2] if len(args) > 2 else "state"
        return all(state_arg not in deps for deps in self.analysis.return_dependencies)

    @property
    def weights_node_only(self) -> bool:
        """True when every transition weight is a pure function of the edge.

        Stricter than :attr:`hints_node_only`: the walker state must not be
        referenced *anywhere* in ``get_weight`` (a state-dependent branch
        changes the value even when the return expressions are state-free),
        and neither ``update`` nor ``update_batch`` may be overridden (an
        update hook could feed state back through ``self``).  On top of the
        scalar proof, the whole-spec :attr:`report` must agree that every
        *override* weight path (``transition_weights``,
        ``transition_weights_batch``) is state-free too — the batched engine
        samples from those, so a state-reading override would be served
        stale rows from a cache the scalar proof alone would have allowed.
        When True, the weight of an edge never changes across steps,
        walkers, supersteps or devices — the soundness condition for the
        runtime's cross-superstep
        :class:`~repro.sampling.transition_cache.TransitionCache`.
        """
        if not self.supported or self.analysis.reads_state:
            return False
        if type(self.spec).update is not WalkSpec.update:
            return False
        if type(self.spec).update_batch is not WalkSpec.update_batch:
            return False
        return self.report is None or self.report.weights_state_free

    # ------------------------------------------------------------------ #
    def bound_hint(self, graph: CSRGraph, state: WalkerState) -> float | None:
        """Estimated max-weight upper bound for the walker's current node."""
        if not self.supported:
            return None
        if self.granularity is BoundGranularity.PER_KERNEL:
            if not self._static_bound_known:
                self._static_bound = self.helpers.estimate_max(graph, state, self.preprocessed)
                self._static_bound_known = True
            return self._static_bound
        return self.helpers.estimate_max(graph, state, self.preprocessed)

    def sum_hint(self, graph: CSRGraph, state: WalkerState) -> float | None:
        """Estimated transition-weight sum for the walker's current node."""
        if not self.supported:
            return None
        return self.helpers.estimate_sum(graph, state, self.preprocessed)

    def hint_nodes(self, graph: CSRGraph, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(bound, sum)`` hints for many nodes at once (node-only hints).

        Only meaningful when :attr:`hints_node_only`; ``NaN`` encodes the
        scalar ``None``.  The vectorised replay is attempted first and the
        exact per-node scalar evaluation is used whenever it bails, so the
        returned values always match what :meth:`bound_hint` /
        :meth:`sum_hint` would have produced node by node.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        bounds = np.full(nodes.size, np.nan, dtype=np.float64)
        sums = np.full(nodes.size, np.nan, dtype=np.float64)
        if not self.supported or nodes.size == 0:
            return bounds, sums
        vectorised = self.helpers.estimate_hints_nodes(
            graph,
            nodes,
            self.preprocessed,
            per_kernel=self.granularity is BoundGranularity.PER_KERNEL,
        )
        if vectorised is not None:
            return vectorised
        probe = WalkerState(
            query=WalkQuery(query_id=0, start_node=0, max_length=1), current_node=0
        )
        for j in range(nodes.size):
            probe.current_node = int(nodes[j])
            bound = self.bound_hint(graph, probe)
            if bound is not None:
                bounds[j] = bound
            total = self.sum_hint(graph, probe)
            if total is not None:
                sums[j] = total
        return bounds, sums


def compile_workload(
    spec: WalkSpec,
    graph: CSRGraph,
    device: DeviceSpec | None = None,
) -> CompiledWorkload:
    """Run the full Flexi-Compiler pipeline for one workload on one graph.

    On success the returned bundle carries helper callables and preprocessed
    per-node aggregates; when the analysis finds unsupported constructs a
    :class:`CompilerWarning` is emitted and the bundle reports
    ``supported = False`` so the runtime uses eRVS exclusively.
    """
    analysis = analyze_get_weight(spec)
    report = verify_spec(spec)
    if not analysis.supported:
        warnings.warn(
            "Flexi-Compiler could not specialise "
            f"{type(spec).__name__}.get_weight ({'; '.join(analysis.warnings)}); "
            "falling back to eRVS-only execution",
            CompilerWarning,
            stacklevel=2,
        )
        return CompiledWorkload(
            spec=spec, analysis=analysis, helpers=None, preprocessed=None, report=report
        )

    needed_arrays = tuple(
        dict.fromkeys(
            var.source_array
            for var, deps in (
                (v, d)
                for v in analysis.edge_indexed
                for d in analysis.return_dependencies
                if v.name in d
            )
        )
    )
    preprocessed = (
        preprocess_graph(graph, arrays=needed_arrays, device=device) if needed_arrays else None
    )
    helpers = GeneratedHelpers(spec=spec, analysis=analysis)
    return CompiledWorkload(
        spec=spec,
        analysis=analysis,
        helpers=helpers,
        preprocessed=preprocessed,
        report=report,
    )
