"""Benchmark: Fig. 15 — multi-GPU scalability (real multi-device engine)."""

from __future__ import annotations

from bench_helpers import run_once

from repro.bench.config import ExperimentConfig
from repro.bench.experiments import fig15_multigpu as experiment


def test_fig15_multigpu(benchmark):
    # EU and AB are the skewed scale models (hubs at low node ids, the
    # paper's worst-case for range mapping); the full five-dataset sweep
    # lives in the tier-2 workflow.  fig15 always runs one query per node
    # (num_queries is documented as ignored), so only walk_length and the
    # dataset choice bound this benchmark's cost.
    config = ExperimentConfig(num_queries=96, walk_length=8, datasets=("EU", "AB"))
    result = run_once(benchmark, experiment, config)
    for row in result["rows"]:
        # Speedup grows with the GPU count and reaches a clear multi-GPU gain
        # at four devices (paper geomean: 3.23x).
        assert row["hash_x1"] == 1.0
        assert row["hash_x4"] >= row["hash_x2"] >= 0.95
        assert row["hash_x4"] > 1.8
        # The paper's Fig. 15 finding: on skewed starts hash mapping beats
        # contiguous range mapping, which piles the hub walks onto device 0.
        assert row["hash_x4"] >= row["range_x4"]
        # The degree-aware LPT extension also reaches a clear multi-GPU gain.
        assert row["balanced_x4"] > 1.8
