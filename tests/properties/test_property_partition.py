"""Property-based coverage for multi-device query partitioning.

Whatever the policy, the partitions must be a *partition* in the
mathematical sense — every query index assigned to exactly one device —
because the multi-device engine's parity guarantee rests on it (a dropped
index loses a walk, a duplicated one double-consumes a random stream).  The
hash policy additionally promises determinism and rough balance on uniform
start nodes; the balanced policy promises loads within the classic
longest-processing-time bound of optimum.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.gpusim.multigpu import PARTITION_POLICIES, partition_queries

starts_strategy = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=0, max_size=200
).map(lambda xs: np.array(xs, dtype=np.int64))


class TestEveryIndexAssignedExactlyOnce:
    @settings(max_examples=60, deadline=None)
    @given(
        starts=starts_strategy,
        num_gpus=st.integers(min_value=1, max_value=12),
        policy=st.sampled_from(PARTITION_POLICIES),
        cost_seed=st.integers(min_value=0, max_value=100),
    )
    def test_partitions_form_a_permutation(self, starts, num_gpus, policy, cost_seed):
        costs = np.random.default_rng(cost_seed).uniform(0, 10, size=starts.size)
        parts = partition_queries(starts, num_gpus, policy=policy, costs=costs)
        assert len(parts) == num_gpus
        combined = (
            np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
        )
        assert np.array_equal(np.sort(combined), np.arange(starts.size))


class TestHashPolicy:
    @settings(max_examples=40, deadline=None)
    @given(starts=starts_strategy, num_gpus=st.integers(min_value=1, max_value=8))
    def test_hash_deterministic(self, starts, num_gpus):
        a = partition_queries(starts, num_gpus, policy="hash")
        b = partition_queries(starts, num_gpus, policy="hash")
        for x, y in zip(a, b, strict=False):
            assert np.array_equal(x, y)

    @pytest.mark.parametrize("num_gpus", [2, 4, 8])
    def test_hash_balanced_within_2x_on_uniform_starts(self, num_gpus):
        starts = np.arange(4096, dtype=np.int64)
        parts = partition_queries(starts, num_gpus, policy="hash")
        ideal = starts.size / num_gpus
        sizes = np.array([p.size for p in parts])
        assert sizes.max() <= 2 * ideal
        assert sizes.min() >= ideal / 2

    def test_hash_depends_on_start_node_not_position(self):
        """Queries with equal start nodes land on the same device."""
        starts = np.array([7, 7, 7, 13, 13], dtype=np.int64)
        parts = partition_queries(starts, 4, policy="hash")
        for part in parts:
            assert np.unique(starts[part]).size <= 1


class TestBalancedPolicy:
    @settings(max_examples=40, deadline=None)
    @given(
        cost_seed=st.integers(min_value=0, max_value=1000),
        size=st.integers(min_value=1, max_value=150),
        num_gpus=st.integers(min_value=1, max_value=8),
    )
    def test_balanced_within_lpt_bound(self, cost_seed, size, num_gpus):
        costs = np.random.default_rng(cost_seed).uniform(0.1, 100, size=size)
        parts = partition_queries(
            np.arange(size, dtype=np.int64), num_gpus, policy="balanced", costs=costs
        )
        loads = np.array([costs[p].sum() for p in parts])
        # Graham's bound for greedy LPT: makespan <= (4/3 - 1/(3m)) * OPT,
        # and OPT >= max(total/m, largest single item).
        opt_lower = max(costs.sum() / num_gpus, costs.max())
        assert loads.max() <= (4 / 3) * opt_lower + 1e-9


class TestInvalidInputs:
    @settings(max_examples=20, deadline=None)
    @given(policy=st.text(min_size=1, max_size=12).filter(lambda s: s not in PARTITION_POLICIES))
    def test_unknown_policy_raises(self, policy):
        with pytest.raises(SimulationError):
            partition_queries(np.arange(4), 2, policy=policy)

    @settings(max_examples=20, deadline=None)
    @given(num_gpus=st.integers(min_value=-5, max_value=0))
    def test_non_positive_gpu_count_raises(self, num_gpus):
        with pytest.raises(SimulationError):
            partition_queries(np.arange(4), num_gpus)
