"""Experiment modules, one per table/figure of the paper's evaluation.

Each module exposes

* ``run_experiment(config=None) -> dict`` — executes the experiment and
  returns structured results (rows, headers, summary statistics);
* ``format_result(result) -> str`` — renders the result as the paper-style
  table; and
* ``main()`` — runs and prints it, so every experiment is directly runnable
  with ``python -m repro.bench.experiments.<name>``.

The mapping between modules and paper items is recorded in DESIGN.md's
per-experiment index and in EXPERIMENTS.md.
"""

EXPERIMENT_MODULES = (
    "fig03_sampling_comparison",
    "fig07_sensitivity",
    "table2_uniform",
    "fig10_powerlaw",
    "fig11_runtime_ablation",
    "fig12_kernel_ablation",
    "fig13_selection",
    "fig14_ratio",
    "table3_overheads",
    "fig15_multigpu",
    "fig15_sharded",
    "fig16_energy",
    "int8_extension",
    "scheduling_ablation",
)

__all__ = ["EXPERIMENT_MODULES"]
