"""Edge property weight initialisers.

Following the paper's evaluation setup (Section 6.1 and 6.2), graphs without
intrinsic weights get synthetic property weights drawn from one of three
families:

* **uniform** — random reals in ``[1, 5)`` (the setting of Table 2);
* **power-law** — Pareto-distributed weights with shape ``alpha`` from 1.0 to
  4.0 (Fig. 10, Fig. 11, Fig. 14), lower ``alpha`` meaning heavier skew;
* **degree-based** — weight of edge ``(v, u)`` proportional to the degree of
  the destination node ``u`` (Fig. 10, rightmost group).

Section 7.2's low-precision extension stores property weights as INT8; the
quantise/dequantise helpers model that path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph


def constant_weights(graph: CSRGraph, value: float = 1.0) -> np.ndarray:
    """All edges share the same property weight (the unweighted setting)."""
    if value <= 0:
        raise GraphError("constant weight must be positive")
    return np.full(graph.num_edges, float(value), dtype=np.float64)


def uniform_weights(graph: CSRGraph, low: float = 1.0, high: float = 5.0, seed: int = 0) -> np.ndarray:
    """Random real weights from ``[low, high)`` — the paper's uniform setting."""
    if high <= low:
        raise GraphError("high must exceed low")
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, size=graph.num_edges)


def powerlaw_weights(graph: CSRGraph, alpha: float = 2.0, seed: int = 0, shift: float = 1.0) -> np.ndarray:
    """Pareto(``alpha``)-distributed weights (``np.random.pareto`` + shift).

    Matches the paper's initialisation for the skewness experiments; smaller
    ``alpha`` gives a heavier tail, i.e. occasional very large weights that
    blow up rejection sampling's effective maximum.
    """
    if alpha <= 0:
        raise GraphError("alpha must be positive")
    rng = np.random.default_rng(seed)
    return rng.pareto(alpha, size=graph.num_edges) + shift


def degree_based_weights(graph: CSRGraph, scale: float = 1.0) -> np.ndarray:
    """Weight of each edge proportional to the destination node's out-degree.

    High-degree hubs attract proportionally more probability mass, which is
    the hardest setting in Fig. 10 (all systems slow down, some fail).
    """
    if scale <= 0:
        raise GraphError("scale must be positive")
    degs = graph.degrees().astype(np.float64)
    # Destination degree + 1 so sink nodes still get non-zero weight.
    return scale * (degs[graph.indices] + 1.0)


def quantize_weights_int8(weights: np.ndarray) -> tuple[np.ndarray, float]:
    """Quantise float weights to INT8 codes, returning ``(codes, scale)``.

    Values map linearly onto ``[0, 127]``; the scale factor recovers the
    original magnitude on dequantisation.  This models the Section 7.2
    low-precision storage extension which trades precision for a 8x smaller
    memory footprint and proportionally lower bandwidth demand.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.size == 0:
        return np.zeros(0, dtype=np.int8), 1.0
    if np.any(weights < 0):
        raise GraphError("INT8 quantisation expects non-negative weights")
    max_w = float(weights.max())
    scale = max_w / 127.0 if max_w > 0 else 1.0
    codes = np.clip(np.round(weights / scale), 0, 127).astype(np.int8)
    return codes, scale


def dequantize_weights_int8(codes: np.ndarray, scale: float) -> np.ndarray:
    """Recover float weights from INT8 codes produced by the quantiser."""
    return codes.astype(np.float64) * float(scale)
