"""Tests for edge property-weight initialisers and INT8 quantisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import barabasi_albert_graph
from repro.graph.weights import (
    constant_weights,
    degree_based_weights,
    dequantize_weights_int8,
    powerlaw_weights,
    quantize_weights_int8,
    uniform_weights,
)


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(80, 3, seed=4)


class TestWeightSchemes:
    def test_constant_weights(self, graph):
        w = constant_weights(graph, 2.5)
        assert w.shape == (graph.num_edges,)
        assert np.all(w == 2.5)

    def test_constant_weights_must_be_positive(self, graph):
        with pytest.raises(GraphError):
            constant_weights(graph, 0.0)

    def test_uniform_weights_range(self, graph):
        w = uniform_weights(graph, low=1.0, high=5.0, seed=1)
        assert w.min() >= 1.0
        assert w.max() < 5.0

    def test_uniform_weights_invalid_range(self, graph):
        with pytest.raises(GraphError):
            uniform_weights(graph, low=5.0, high=1.0)

    def test_uniform_weights_deterministic(self, graph):
        assert np.array_equal(uniform_weights(graph, seed=3), uniform_weights(graph, seed=3))

    def test_powerlaw_lower_alpha_is_more_skewed(self, graph):
        heavy = powerlaw_weights(graph, alpha=1.0, seed=2)
        light = powerlaw_weights(graph, alpha=4.0, seed=2)
        assert heavy.max() / heavy.mean() > light.max() / light.mean()

    def test_powerlaw_positive(self, graph):
        assert np.all(powerlaw_weights(graph, alpha=2.0) >= 1.0)

    def test_powerlaw_invalid_alpha(self, graph):
        with pytest.raises(GraphError):
            powerlaw_weights(graph, alpha=0.0)

    def test_degree_based_weights_track_destination_degree(self, graph):
        w = degree_based_weights(graph)
        degrees = graph.degrees()
        assert np.allclose(w, degrees[graph.indices] + 1.0)

    def test_degree_based_scale_must_be_positive(self, graph):
        with pytest.raises(GraphError):
            degree_based_weights(graph, scale=0.0)


class TestInt8Quantisation:
    def test_round_trip_error_bounded(self, graph):
        w = uniform_weights(graph, seed=5)
        codes, scale = quantize_weights_int8(w)
        recovered = dequantize_weights_int8(codes, scale)
        assert np.max(np.abs(recovered - w)) <= scale / 2 + 1e-12

    def test_codes_within_int8_range(self, graph):
        codes, _ = quantize_weights_int8(powerlaw_weights(graph, alpha=1.0, seed=6))
        assert codes.dtype == np.int8
        assert codes.min() >= 0
        assert codes.max() <= 127

    def test_empty_input(self):
        codes, scale = quantize_weights_int8(np.array([]))
        assert codes.size == 0
        assert scale == 1.0

    def test_negative_weights_rejected(self):
        with pytest.raises(GraphError):
            quantize_weights_int8(np.array([-1.0, 2.0]))

    def test_all_zero_weights(self):
        codes, scale = quantize_weights_int8(np.zeros(5))
        assert np.all(dequantize_weights_int8(codes, scale) == 0.0)
