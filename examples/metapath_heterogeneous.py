"""MetaPath walks on a heterogeneous (edge-labelled) graph.

Heterogeneous information networks — bibliographic graphs
(author → paper → venue), e-commerce graphs (user → item → category) —
constrain which edge types a walk may follow, via a *schema*.  MetaPath2Vec
walks such graphs schema-step by schema-step; because the admissible edge set
changes at every step, the transition weights are inherently dynamic and the
precomputation tricks of static-walk systems do not apply.

This example builds a synthetic three-layer "user → item → tag" graph with
typed edges, runs MetaPath walks under the schema (user-buys-item,
item-has-tag, tag-labels-item, item-bought-by-user) and mines simple
co-purchase statistics from the resulting paths.  It also shows the dead-end
behaviour: walks stop early when a node has no edge matching the schema.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro import MetaPathSpec, WalkService
from repro.graph.builders import from_edge_list
from repro.walks.state import make_queries

# Edge-type labels of the synthetic heterogeneous graph.
USER_BUYS_ITEM = 0
ITEM_HAS_TAG = 1
TAG_LABELS_ITEM = 2
ITEM_BOUGHT_BY_USER = 3

NUM_USERS = 150
NUM_ITEMS = 80
NUM_TAGS = 12


def build_hetero_graph(seed: int = 0):
    """A user/item/tag graph with typed, weighted edges."""
    rng = np.random.default_rng(seed)
    users = np.arange(NUM_USERS)
    items = NUM_USERS + np.arange(NUM_ITEMS)
    tags = NUM_USERS + NUM_ITEMS + np.arange(NUM_TAGS)

    edges, weights, labels = [], [], []

    # Users buy a handful of items each; purchase counts become edge weights.
    for user in users:
        for item in rng.choice(items, size=rng.integers(2, 8), replace=False):
            count = float(rng.integers(1, 5))
            edges.append((int(user), int(item))); weights.append(count); labels.append(USER_BUYS_ITEM)
            edges.append((int(item), int(user))); weights.append(count); labels.append(ITEM_BOUGHT_BY_USER)

    # Items carry one to three tags.
    for item in items:
        for tag in rng.choice(tags, size=rng.integers(1, 4), replace=False):
            edges.append((int(item), int(tag))); weights.append(1.0); labels.append(ITEM_HAS_TAG)
            edges.append((int(tag), int(item))); weights.append(1.0); labels.append(TAG_LABELS_ITEM)

    total = NUM_USERS + NUM_ITEMS + NUM_TAGS
    return from_edge_list(edges, num_nodes=total, weights=weights, labels=labels, name="user-item-tag")


def main() -> None:
    graph = build_hetero_graph()
    print(f"heterogeneous graph: {graph}")

    # The schema says: follow a purchase, then a tag, then back to an item
    # carrying that tag, then back to a user who bought it.
    schema = (USER_BUYS_ITEM, ITEM_HAS_TAG, TAG_LABELS_ITEM, ITEM_BOUGHT_BY_USER)
    spec = MetaPathSpec(schema=schema)

    session = WalkService(graph).session(spec)
    print("pipeline:", session.describe())

    # Walks start from every user node.
    queries = make_queries(graph.num_nodes, walk_length=len(schema), start_nodes=np.arange(NUM_USERS))
    session.submit(queries)
    result = session.collect()

    completed = [p for p in result.paths if len(p) - 1 == len(schema)]
    print(f"{len(result.paths)} walks launched, {len(completed)} completed the full schema, "
          f"{result.time_ms:.4f} ms simulated")

    # "Users related through a shared tag" — the last node of a completed
    # schema walk is another user reachable through tag space.
    related = Counter((path[0], path[-1]) for path in completed if path[0] != path[-1])
    print("sample related-user pairs via tags:", related.most_common(5))

    # Dead ends are expected: a user whose items carry no outgoing tag edge of
    # the right type terminates early, exactly like the CUDA implementation.
    early = len(result.paths) - len(completed)
    print(f"{early} walks stopped early at a schema dead end")


if __name__ == "__main__":
    main()
