#!/usr/bin/env python
"""Lint src/repro against the repository's internal invariants.

Thin CLI over ``repro.analysis.lint_paths``, which enforces the contracts
the test suite cannot express file-by-file:

- no unseeded RNG construction or module-level random streams inside
  ``src/repro`` (determinism is load-bearing for replay and caching);
- no code outside ``graph/invalidation.py`` touches the derived-cache
  internals (``_edge_key_cache``/``_in_degree_cache``/``TransitionCache``
  private buffers) except their owning modules;
- no wall-clock calls outside bench/ and scripts/ (simulated time only).

Exit code is non-zero iff any ERROR diagnostic is found, and every finding
prints its rule id, so the CI lint job pinpoints the violated invariant.

Usage::

    PYTHONPATH=src python scripts/lint_internal.py            # lint src/repro
    PYTHONPATH=src python scripts/lint_internal.py src tests  # explicit paths
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import Severity, lint_paths  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        default=[str(REPO_ROOT / "src" / "repro")],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--warnings-as-errors",
        action="store_true",
        help="fail on WARNING diagnostics too",
    )
    args = parser.parse_args()

    diagnostics = lint_paths([Path(p) for p in args.paths])
    for diag in diagnostics:
        print(diag.format())

    threshold = Severity.WARNING if args.warnings_as_errors else Severity.ERROR
    failing = [d for d in diagnostics if d.severity >= threshold]
    if failing:
        rules = ", ".join(sorted({d.rule for d in failing}))
        print(f"internal lint FAILED: {len(failing)} finding(s) [{rules}]")
        return 1
    scope = ", ".join(args.paths)
    print(f"internal lint OK: no invariant violations in {scope}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
