#!/usr/bin/env python
"""Microbenchmark: scalar vs batched walk-engine wall clock, per workload.

Runs the scale-model YT dataset through both execution modes of the walk
engine for three workloads — DeepWalk (static, transition-cache eligible),
weighted Node2Vec (the quickstart workload) and MetaPath — and reports host
wall-clock time plus simulated-steps-per-second throughput for each.  Emits a
multi-entry ``BENCH_engine.json`` next to the repository root so the numbers
form a trackable per-workload perf trajectory
(``scripts/check_bench_regression.py`` gates every entry in CI).

Usage::

    PYTHONPATH=src python scripts/bench_engine.py [--walk-length 20] \
        [--repeats 3] [--workloads deepwalk node2vec metapath]
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from contextlib import contextmanager
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro import DeviceFleet, FlexiWalkerConfig, WalkService, load_dataset, make_queries  # noqa: E402
from repro.graph.labels import random_edge_labels  # noqa: E402
from repro.walks.deepwalk import DeepWalkSpec  # noqa: E402
from repro.walks.metapath import MetaPathSpec  # noqa: E402
from repro.walks.node2vec import Node2VecSpec  # noqa: E402

#: The benchmark schema version (single-entry reports were version 1).
SCHEMA_VERSION = 2

#: Workload tag -> (spec factory, walk length override; None = CLI/default).
WORKLOADS = {
    "deepwalk": (DeepWalkSpec, None),
    "node2vec": (lambda: Node2VecSpec(a=2.0, b=0.5), None),
    "metapath": (MetaPathSpec, 5),
}

#: The entry the README quickstart (and the headline speedup) refers to.
QUICKSTART = "node2vec"

#: Devices of the replicated-vs-sharded multi-device comparison entry.
SHARD_DEVICES = 4

#: Shard decomposition of the sharded entry: the locality partitioner plus a
#: per-shard ghost cache of half the graph footprint — the configuration the
#: sharded mode is expected to serve big graphs with.
SHARD_POLICY = "locality"
GHOST_BUDGET_FRACTION = 2  # per-shard budget = footprint // this

#: Checkpoint intervals of the fault-tolerance entry's overhead sweep.  The
#: headline ``recovery_overhead`` (gated by ``--max-recovery-overhead``) is
#: the one at the runtime's default interval.
RECOVERY_INTERVALS = (2, 4, 8, 16)

#: The dynamic-graph entry: deltas applied between successive walk waves at
#: each update rate of the sweep (0 = the static reference), the number of
#: walk waves per rate, and the (+additions, -removals) shape of one delta.
DELTA_RATES = (0, 2, 8)
DELTA_WAVES = 3
DELTA_CHANGES = (24, 8)

#: The serving entry: session counts of the continuous-batching load sweep
#: (at least three scales so the trajectory shows how fused throughput and
#: tail latency react to load), plus the fixed per-session shape and the
#: in-flight walker budget that makes queueing — and therefore the p99
#: ticket latency — actually observable at the top scale.
SERVING_SESSION_COUNTS = (4, 16, 64)
SERVING_QUERIES_PER_SESSION = 8
SERVING_WALK_LENGTH = 10
SERVING_MAX_INFLIGHT = 256


@contextmanager
def no_gc():
    """Keep the cyclic garbage collector out of the timed windows.

    Same methodology as :mod:`timeit`: collect once up front, then disable
    the collector so its pauses do not land inside whichever measurement
    happens to allocate past a generation threshold.
    """
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def bench_mode(graph, spec, mode: str, walk_length: int, repeats: int) -> dict[str, float]:
    """Best-of-N wall clock for one execution mode (service compiled once)."""
    service = WalkService(graph)
    config = FlexiWalkerConfig(execution=mode)

    def one_run():
        session = service.session(spec, config)
        session.submit(make_queries(graph.num_nodes, walk_length=walk_length))
        return session.collect()

    one_run()  # warm-up (profile, hint tables, transition caches)
    best = None
    with no_gc():
        for _ in range(repeats):
            started = time.perf_counter()
            result = one_run()
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best["wall_clock_s"]:
                best = {
                    "wall_clock_s": elapsed,
                    "steps_per_s": result.total_steps / elapsed,
                    "total_steps": result.total_steps,
                    "simulated_time_ms": result.time_ms,
                }
    return best


def bench_workload(graph, name: str, walk_length: int, repeats: int) -> dict[str, object]:
    """Scalar + batched measurements and the derived speedup for one workload."""
    factory, fixed_length = WORKLOADS[name]
    length = fixed_length if fixed_length is not None else walk_length
    spec = factory()
    entry: dict[str, object] = {
        "workload": name,
        "walk_length": length,
        "num_queries": graph.num_nodes,
    }
    for mode in ("scalar", "batched"):
        entry[mode] = bench_mode(graph, spec, mode, length, repeats)
        print(f"  {name:>9} {mode:>7}: {entry[mode]['wall_clock_s']:.3f}s wall, "
              f"{entry[mode]['steps_per_s']:,.0f} steps/s")
    entry["speedup"] = entry["scalar"]["wall_clock_s"] / entry["batched"]["wall_clock_s"]
    # Both modes must simulate the same execution; a drift here means the
    # batched engine broke parity, which invalidates the comparison.
    entry["simulated_time_parity"] = (
        entry["scalar"]["simulated_time_ms"] == entry["batched"]["simulated_time_ms"]
    )
    print(f"  {name:>9} speedup: {entry['speedup']:.1f}x "
          f"(simulated-time parity: {entry['simulated_time_parity']})")
    return entry


def bench_sharded(graph, walk_length: int, repeats: int) -> dict[str, object]:
    """Replicated-vs-sharded multi-device entry.

    Both placements run the same fused superstep loop; the sharded mode adds
    the per-superstep shard accounting (ownership lookups, migration
    charges, per-device task logs), so this entry's ``speedup`` tracks the
    host-side overhead of that accounting — the regression gate keeps the
    sharded driver from becoming pathologically slower than the replicated
    path.  ``simulated_time_parity`` here means *base-time* parity: walks
    and per-query base times must be bit-identical across the placements
    (only the modeled communication term and makespan may differ).
    """
    spec = DeepWalkSpec()
    service = WalkService(graph, fleet=DeviceFleet(count=SHARD_DEVICES))
    ghost_budget = graph.memory_footprint_bytes() // GHOST_BUDGET_FRACTION
    entry: dict[str, object] = {
        "workload": "sharded",
        "walk_length": walk_length,
        "num_queries": graph.num_nodes,
        "num_devices": SHARD_DEVICES,
        "shard_policy": SHARD_POLICY,
        "ghost_cache_bytes": ghost_budget,
    }
    configs = {
        mode: FlexiWalkerConfig(
            num_devices=SHARD_DEVICES,
            graph_placement=mode,
            shard_policy=SHARD_POLICY,
            ghost_cache_bytes=ghost_budget if mode == "sharded" else 0,
        )
        for mode in ("replicated", "sharded")
    }

    def one_run(mode):
        session = service.session(spec, configs[mode])
        session.submit(make_queries(graph.num_nodes, walk_length=walk_length))
        return session.collect()

    collected = {}
    best: dict[str, dict[str, float] | None] = {mode: None for mode in configs}
    for mode in configs:  # warm-up (profile, hint tables, shard decomposition)
        one_run(mode)
    # The two placements run the same ~tens-of-ms loop and differ by a
    # couple of percent, so the repeats are interleaved (drift hits both
    # modes, not whichever is measured second) and the within-repeat order
    # alternates (neither mode always inherits the other's cache state).
    order = list(configs)
    with no_gc():
        for repeat in range(repeats):
            for mode in order if repeat % 2 == 0 else reversed(order):
                started = time.perf_counter()
                result = one_run(mode)
                elapsed = time.perf_counter() - started
                if best[mode] is None or elapsed < best[mode]["wall_clock_s"]:
                    best[mode] = {
                        "wall_clock_s": elapsed,
                        "steps_per_s": result.total_steps / elapsed,
                        "total_steps": result.total_steps,
                        "simulated_time_ms": result.time_ms,
                    }
                collected[mode] = result
    for mode in configs:
        entry[mode] = best[mode]
        print(f"  {'sharded':>9} {mode:>10}: {best[mode]['wall_clock_s']:.3f}s wall, "
              f"{best[mode]['steps_per_s']:,.0f} steps/s")
    entry["speedup"] = (
        entry["replicated"]["wall_clock_s"] / entry["sharded"]["wall_clock_s"]
    )
    # Sharding must not perturb any walk or base time — only the modeled
    # communication term and the makespan are allowed to differ.
    entry["simulated_time_parity"] = bool(
        collected["replicated"].paths == collected["sharded"].paths
        and np.array_equal(
            collected["replicated"].per_query_ns, collected["sharded"].per_query_ns
        )
    )
    entry["remote_edge_ratio"] = collected["sharded"].remote_edge_ratio
    entry["ghost_hit_ratio"] = collected["sharded"].ghost_hit_ratio
    entry["migration_batches"] = collected["sharded"].migration_batches
    print(f"  {'sharded':>9} overhead: {entry['speedup']:.2f}x replicated/sharded wall "
          f"(base-time parity: {entry['simulated_time_parity']}, "
          f"remote-edge ratio: {entry['remote_edge_ratio']:.3f}, "
          f"ghost-hit ratio: {entry['ghost_hit_ratio']:.3f})")
    return entry


def bench_recovery(graph, walk_length: int) -> dict[str, object]:
    """Fault-tolerance entry: modeled checkpoint overhead vs interval.

    Runs the DeepWalk workload fault-free, then with superstep
    checkpointing at each interval of ``RECOVERY_INTERVALS``, and reports
    the *simulated-time* overhead of each — a deterministic number (the
    checkpoint copy-outs are priced by the device model, not measured on
    the host), so the entry needs no repeats and cannot flake.  The
    headline ``recovery_overhead`` is the overhead at the runtime's
    default interval; ``speedup`` is its reciprocal form ``1/(1+overhead)``
    so the generic speedup floor still applies, and
    ``--max-recovery-overhead`` gates the overhead itself.

    ``simulated_time_parity`` here is the recovery invariant: every
    checkpointed run — and a run that loses a device mid-flight and
    replays from its last checkpoint — must reproduce the fault-free
    paths, per-query base times and counter totals bit-identically (only
    the modeled time may differ).
    """
    from repro.gpusim.counters import CostCounters
    from repro.runtime.faults import (
        DEFAULT_CHECKPOINT_INTERVAL,
        DeviceFailure,
        FaultPlan,
        TransientFault,
    )

    spec_factory = WORKLOADS["deepwalk"][0]
    service = WalkService(graph)

    def one_run(config):
        session = service.session(spec_factory(), config)
        session.submit(make_queries(graph.num_nodes, walk_length=walk_length))
        return session.collect()

    def matches(result, reference) -> bool:
        return bool(
            result.paths == reference.paths
            and np.array_equal(result.per_query_ns, reference.per_query_ns)
            and all(
                getattr(result.counters, name) == getattr(reference.counters, name)
                for name in CostCounters._COUNT_FIELDS
            )
        )

    base = one_run(FlexiWalkerConfig())
    parity = True
    overheads: dict[str, float] = {}
    for interval in RECOVERY_INTERVALS:
        result = one_run(FlexiWalkerConfig(checkpoint_interval=interval))
        overheads[str(interval)] = result.time_ms / base.time_ms - 1.0
        parity = parity and matches(result, base)
        print(f"  {'recovery':>9} interval {interval:>2}: "
              f"{overheads[str(interval)]:+.1%} simulated-time overhead "
              f"({result.checkpoints_taken} checkpoints)")

    # A permanent device failure two thirds of the way in, plus an earlier
    # transient, recovered from the last default-interval checkpoint: the
    # replayed run must land bit-identically on the fault-free results.
    plan = FaultPlan(
        seed=11,
        device_failures=(DeviceFailure(superstep=(2 * walk_length) // 3),),
        transient_faults=(TransientFault(superstep=walk_length // 4),),
    )
    faulty = one_run(FlexiWalkerConfig(
        fault_plan=plan, checkpoint_interval=DEFAULT_CHECKPOINT_INTERVAL
    ))
    parity = parity and matches(faulty, base)

    overhead = overheads[str(DEFAULT_CHECKPOINT_INTERVAL)]
    entry: dict[str, object] = {
        "workload": "recovery",
        "walk_length": walk_length,
        "num_queries": graph.num_nodes,
        "checkpoint_interval": DEFAULT_CHECKPOINT_INTERVAL,
        "overhead_by_interval": overheads,
        "recovery_overhead": overhead,
        "speedup": 1.0 / (1.0 + max(overhead, 0.0)),
        "simulated_time_parity": parity,
        "faulty_run": {
            "degraded_devices": list(faulty.degraded_devices),
            "recovery_time_ms": faulty.recovery_time_ns / 1e6,
            "checkpoints_taken": faulty.checkpoints_taken,
        },
    }
    print(f"  {'recovery':>9} headline: {overhead:+.1%} overhead at the "
          f"default interval {DEFAULT_CHECKPOINT_INTERVAL} "
          f"(recovery parity: {parity}, degraded {faulty.degraded_devices}, "
          f"recovery {faulty.recovery_time_ns / 1e6:.4f} ms)")
    return entry


def bench_delta(graph, walk_length: int, repeats: int) -> dict[str, object]:
    """Dynamic-graph entry: walk throughput vs streaming-update rate.

    Sweeps the delta-CSR overlay's update rate — ``DELTA_RATES`` deltas of
    ``DELTA_CHANGES`` edges applied between successive walk waves on one
    live :class:`~repro.service.WalkService` — and reports steps-per-second
    at each rate plus edges-applied-per-second at the top rate.  The
    headline ``delta_slowdown`` (gated by ``--max-delta-slowdown``) is the
    static-rate throughput over the top-rate throughput: everything the
    versioned-invalidation machinery costs per update — overlay
    maintenance, CSR cache repair, per-workload recompilation and scoped
    cache migration — lands in that ratio.  ``speedup`` is its reciprocal
    so the generic floor applies.

    ``simulated_time_parity`` here is the compaction-identity contract: a
    session opened at the final version of the swept (mutated) service must
    collect bit-identically — paths, per-query base times, simulated time —
    to a session on a *fresh* service built from the merged edge list.
    """
    from repro.graph.builders import from_edge_list
    from repro.graph.delta import DeltaCSRGraph

    spec_factory = WORKLOADS["deepwalk"][0]
    config = FlexiWalkerConfig()
    num_queries = graph.num_nodes
    adds, rems = DELTA_CHANGES

    def one_sweep(rate: int):
        """Fresh dynamic service, DELTA_WAVES waves at the given rate."""
        service = WalkService(DeltaCSRGraph(graph))
        rng = np.random.default_rng(17)

        def wave(seed: int):
            session = service.session(spec_factory(), config)
            session.submit(make_queries(graph.num_nodes, walk_length=walk_length,
                                        num_queries=num_queries, seed=seed))
            result = session.collect()
            session.close()
            return result

        wave(0)  # warm-up (profile, hint tables, transition cache)
        steps = 0
        edges_changed = 0
        started = time.perf_counter()
        for index in range(DELTA_WAVES):
            for _ in range(rate):
                dynamic = service.dynamic_graph
                cand = rng.integers(0, graph.num_nodes, size=(10 * adds, 2))
                fresh = np.unique(
                    cand[~dynamic.has_edges(cand[:, 0], cand[:, 1])], axis=0
                )[:adds]
                live = dynamic.edge_list()[0]
                removals = np.unique(
                    live[rng.choice(live.shape[0], rems, replace=False)], axis=0
                )
                labels = (rng.integers(0, int(graph.labels.max()) + 1,
                                       size=len(fresh))
                          if graph.labels is not None else None)
                service.apply_delta(fresh, removals,
                                    weights=rng.random(len(fresh)),
                                    labels=labels)
                edges_changed += len(fresh) + len(removals)
            steps += wave(1 + index).total_steps
        elapsed = time.perf_counter() - started
        return {
            "wall_clock_s": elapsed,
            "steps_per_s": steps / elapsed,
            "total_steps": steps,
            "edges_changed": edges_changed,
            "edges_per_s": edges_changed / elapsed,
        }, service

    best: dict[int, dict] = {}
    final_service = None
    with no_gc():
        for _ in range(repeats):
            for rate in DELTA_RATES:
                measured, service = one_sweep(rate)
                if rate not in best or measured["wall_clock_s"] < best[rate]["wall_clock_s"]:
                    best[rate] = measured
                    if rate == DELTA_RATES[-1]:
                        final_service = service
    entry: dict[str, object] = {
        "workload": "delta",
        "walk_length": walk_length,
        "num_queries": num_queries,
        "waves": DELTA_WAVES,
        "delta_changes": list(DELTA_CHANGES),
        "rates": {},
    }
    for rate in DELTA_RATES:
        entry["rates"][str(rate)] = best[rate]
        print(f"  {'delta':>9} rate {rate:>2}: {best[rate]['wall_clock_s']:.3f}s wall, "
              f"{best[rate]['steps_per_s']:,.0f} steps/s, "
              f"{best[rate]['edges_per_s']:,.0f} edges applied/s")
    slowdown = (best[DELTA_RATES[0]]["steps_per_s"]
                / best[DELTA_RATES[-1]]["steps_per_s"])
    entry["delta_slowdown"] = slowdown
    entry["speedup"] = 1.0 / max(slowdown, 1e-9)
    entry["edges_per_s"] = best[DELTA_RATES[-1]]["edges_per_s"]

    # Compaction-identity parity on the mutated service from the top rate.
    def run_session(service):
        session = service.session(spec_factory(), config)
        session.submit(make_queries(service.graph.num_nodes,
                                    walk_length=walk_length,
                                    num_queries=num_queries, seed=99))
        result = session.collect()
        session.close()
        return result

    mutated = run_session(final_service)
    edges, weights, labels = final_service.dynamic_graph.edge_list()
    rebuilt = from_edge_list(edges, num_nodes=graph.num_nodes, weights=weights,
                             labels=labels, name=graph.name)
    reference = run_session(WalkService(rebuilt))
    entry["simulated_time_parity"] = bool(
        mutated.paths == reference.paths
        and np.array_equal(mutated.per_query_ns, reference.per_query_ns)
        and mutated.time_ms == reference.time_ms
    )
    print(f"  {'delta':>9} headline: {slowdown:.2f}x slowdown at "
          f"{DELTA_RATES[-1]} deltas/wave vs static "
          f"(fresh-build parity: {entry['simulated_time_parity']})")
    return entry


def _load_generator():
    """The examples/load_generator.py module (the serving entry's driver)."""
    import importlib.util

    path = REPO_ROOT / "examples" / "load_generator.py"
    spec = importlib.util.spec_from_file_location("bench_load_generator", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _serving_parity(graph, walk_length: int) -> bool:
    """Scheduler-vs-sequential parity: two sessions fused into one frontier
    must each collect() bit-identically to running alone."""
    from repro.walks.deepwalk import DeepWalkSpec as _DeepWalk
    from repro.walks.state import WalkQuery

    def block(base, count):
        rng = np.random.default_rng(base)
        return [
            WalkQuery(query_id=base + i,
                      start_node=int(rng.integers(0, graph.num_nodes)),
                      max_length=walk_length)
            for i in range(count)
        ]

    batches = {"a": [block(1000, 24), block(1100, 8)], "b": [block(2000, 16)]}
    service = WalkService(graph)
    scheduler = service.scheduler(max_inflight_walkers=64)
    fused = {key: scheduler.session(_DeepWalk(), FlexiWalkerConfig()) for key in batches}
    fused["a"].submit(batches["a"][0])
    fused["b"].submit(batches["b"][0])
    for _ in range(3):
        scheduler.tick()
    fused["a"].submit(batches["a"][1])  # admitted mid-flight
    for key in batches:
        solo = WalkService(graph).session(_DeepWalk(), FlexiWalkerConfig())
        for batch in batches[key]:
            solo.submit(batch)
        reference, result = solo.collect(), fused[key].collect()
        if not (
            result.paths == reference.paths
            and np.array_equal(result.per_query_ns, reference.per_query_ns)
            and result.time_ms == reference.time_ms
        ):
            return False
    return True


def bench_serving(graph, repeats: int) -> dict[str, object]:
    """Continuous-batching serving entry: latency/throughput vs session count.

    Drives ``examples/load_generator.py`` (the multi-tenant open-loop load
    generator) at several session counts, all sessions fused into one shared
    frontier, and records p50/p99 ticket latency (in scheduler supersteps —
    a simulation-clock metric, stable across hosts) plus aggregate
    walker-steps per second (a wall-clock metric, best of N).  ``speedup``
    is the fused throughput at the top scale over the bottom scale — the
    continuous-batching scaling factor the regression gate tracks; the
    ``p99_latency_ticks`` ceiling is gated separately
    (``--max-p99-rise``).  ``simulated_time_parity`` re-checks that fusing
    sessions changes no walk, time or count (scheduler-vs-sequential
    parity).  Always runs the YT scale model, whatever ``--dataset`` says —
    the serving trajectory must stay comparable across baselines.
    """
    generator = _load_generator()
    entry: dict[str, object] = {
        "workload": "serving",
        "queries_per_session": SERVING_QUERIES_PER_SESSION,
        "walk_length": SERVING_WALK_LENGTH,
        "max_inflight_walkers": SERVING_MAX_INFLIGHT,
        "scales": {},
    }
    best: dict[int, dict] = {}
    with no_gc():
        for _ in range(repeats):
            for count in SERVING_SESSION_COUNTS:
                metrics = generator.run_load(
                    count,
                    queries_per_session=SERVING_QUERIES_PER_SESSION,
                    walk_length=SERVING_WALK_LENGTH,
                    max_inflight_walkers=SERVING_MAX_INFLIGHT,
                )
                if (
                    count not in best
                    or metrics["aggregate_steps_per_s"]
                    > best[count]["aggregate_steps_per_s"]
                ):
                    best[count] = metrics
    for count in SERVING_SESSION_COUNTS:
        metrics = best[count]
        entry["scales"][str(count)] = {
            key: metrics[key]
            for key in (
                "sessions", "walks", "supersteps", "p50_latency_ticks",
                "p99_latency_ticks", "p99_queue_delay_ticks",
                "aggregate_steps_per_s", "wall_s",
            )
        }
        print(f"  {'serving':>9} {count:>4} sessions: "
              f"p50/p99 latency {metrics['p50_latency_ticks']:.0f}/"
              f"{metrics['p99_latency_ticks']:.0f} ticks, "
              f"{metrics['aggregate_steps_per_s']:,.0f} steps/s")
    low = best[SERVING_SESSION_COUNTS[0]]
    high = best[SERVING_SESSION_COUNTS[-1]]
    entry["speedup"] = (
        high["aggregate_steps_per_s"] / low["aggregate_steps_per_s"]
    )
    entry["p50_latency_ticks"] = high["p50_latency_ticks"]
    entry["p99_latency_ticks"] = high["p99_latency_ticks"]
    entry["simulated_time_parity"] = _serving_parity(graph, SERVING_WALK_LENGTH)
    print(f"  {'serving':>9} scaling: {entry['speedup']:.2f}x steps/s at "
          f"{SERVING_SESSION_COUNTS[-1]} vs {SERVING_SESSION_COUNTS[0]} sessions "
          f"(scheduler parity: {entry['simulated_time_parity']}, "
          f"p99 {entry['p99_latency_ticks']:.0f} ticks)")
    return entry


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)

    def positive_int(value: str) -> int:
        parsed = int(value)
        if parsed < 1:
            raise argparse.ArgumentTypeError(f"must be at least 1, got {parsed}")
        return parsed

    parser.add_argument("--dataset", default="YT", help="dataset tag (default: YT)")
    parser.add_argument("--walk-length", type=positive_int, default=20,
                        help="walk length for deepwalk/node2vec (metapath uses its schema depth)")
    parser.add_argument("--repeats", type=positive_int, default=3)
    parser.add_argument("--workloads", nargs="+", choices=sorted(WORKLOADS),
                        default=sorted(WORKLOADS),
                        help="subset of workloads to benchmark")
    parser.add_argument("--skip-sharded", action="store_true",
                        help="skip the replicated-vs-sharded multi-device entry")
    parser.add_argument("--skip-serving", action="store_true",
                        help="skip the continuous-batching serving entry")
    parser.add_argument("--skip-recovery", action="store_true",
                        help="skip the fault-tolerance checkpoint-overhead entry")
    parser.add_argument("--skip-delta", action="store_true",
                        help="skip the dynamic-graph update-rate entry")
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_engine.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args()

    graph = load_dataset(args.dataset, weights="uniform")
    if graph.labels is None and "metapath" in args.workloads:
        graph = graph.with_labels(random_edge_labels(graph, num_labels=5, seed=0))
    print(f"benchmarking on {graph} (one query per node, best of {args.repeats})")

    report: dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "dataset": args.dataset,
        "quickstart": QUICKSTART,
        "entries": {},
    }
    for name in args.workloads:
        report["entries"][name] = bench_workload(graph, name, args.walk_length, args.repeats)
    if not args.skip_sharded:
        report["entries"]["sharded"] = bench_sharded(graph, args.walk_length, args.repeats)
    if not args.skip_serving:
        report["entries"]["serving"] = bench_serving(graph, args.repeats)
    if not args.skip_recovery:
        report["entries"]["recovery"] = bench_recovery(graph, args.walk_length)
    if not args.skip_delta:
        report["entries"]["delta"] = bench_delta(graph, args.walk_length, args.repeats)

    parity = all(e["simulated_time_parity"] for e in report["entries"].values())
    if QUICKSTART in report["entries"]:
        # Headline mirror of the quickstart entry, kept for readers of the
        # raw JSON (the regression gate reads the per-entry fields).
        report["speedup"] = report["entries"][QUICKSTART]["speedup"]
        report["simulated_time_parity"] = parity

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0 if parity else 1


if __name__ == "__main__":
    raise SystemExit(main())
