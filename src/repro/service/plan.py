"""Execution-plan negotiation for the session service.

The legacy surface scattered backend selection across constructor flags:
``FlexiWalkerConfig.execution``, ``WalkEngine(num_devices=...)``,
``WalkEngine.with_devices(...)``.  The service API replaces that with an
explicit negotiation step: the service declares what it *can* do
(:class:`ServiceCapabilities` — which backends exist, how many devices the
:class:`DeviceFleet` owns, which partition policies are implemented), the
session says what it *wants* (its :class:`~repro.core.config.FlexiWalkerConfig`
plus an optional explicit backend), and :func:`negotiate_plan` resolves the
two into one immutable :class:`ExecutionPlan` — including *why* each choice
was made, so a serving operator can audit the decision instead of reverse-
engineering flag defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.generator import CompiledWorkload
from repro.core.config import FlexiWalkerConfig
from repro.errors import ServiceError
from repro.gpusim.device import A6000, DeviceSpec
from repro.gpusim.multigpu import PARTITION_POLICIES

#: Backends a service can negotiate.  ``scalar`` is the reference
#: interpreter (streams walk-by-walk), ``batched`` the step-synchronous
#: frontier loop (streams superstep-by-superstep), ``multi_device`` the fused
#: multi-device frontier (also superstep-by-superstep; placement only moves
#: the makespan, never the walks).
BACKENDS = ("scalar", "batched", "multi_device")


@dataclass(frozen=True)
class DeviceFleet:
    """The simulated devices a :class:`~repro.service.WalkService` owns.

    Attributes
    ----------
    device:
        The per-device cost model; the fleet is homogeneous, like the
        paper's replicated-graph multi-GPU setup (Fig. 15).
    count:
        Number of devices available to sessions.  A session may use fewer
        (its plan's ``num_devices``), never more.
    """

    device: DeviceSpec = A6000
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ServiceError("a device fleet needs at least one device")


@dataclass(frozen=True)
class ServiceCapabilities:
    """What a service instance can execute, declared up front.

    Returned by :meth:`repro.service.WalkService.capabilities` and consumed
    by :func:`negotiate_plan`; sessions never probe flags at run time.
    """

    backends: tuple[str, ...]
    max_devices: int
    partition_policies: tuple[str, ...]
    device_name: str

    def supports(self, backend: str) -> bool:
        return backend in self.backends


@dataclass(frozen=True)
class ExecutionPlan:
    """The negotiated execution strategy of one session.

    Immutable and self-describing: every field that used to be a scattered
    constructor flag is resolved here once, and ``reasons`` records the
    negotiation trail (requested vs. granted, capability fallbacks).

    Attributes
    ----------
    backend:
        One of :data:`BACKENDS`.
    execution:
        The engine execution mode implementing the backend (``"batched"``
        or ``"scalar"``).
    num_devices / partition_policy:
        Device placement; 1/"hash" for single-device backends.
    scheduling:
        Query-to-lane scheduling inside each device.
    use_transition_cache:
        Whether the cross-superstep transition cache applies — true only
        when the compiler proved the workload's weights node-only.
    streaming_granularity:
        How :meth:`~repro.service.WalkSession.stream` chunks results:
        ``"superstep"`` (frontier backends) or ``"walk"`` (scalar).
    reasons:
        Human-readable negotiation trail, for logs and ``describe()``.
    """

    backend: str
    execution: str
    num_devices: int = 1
    partition_policy: str = "hash"
    scheduling: str = "dynamic"
    use_transition_cache: bool = True
    streaming_granularity: str = "superstep"
    reasons: tuple[str, ...] = field(default=())

    def describe(self) -> dict[str, object]:
        """Plain-dict view (used by examples, logs and ``describe()``s)."""
        return {
            "backend": self.backend,
            "execution": self.execution,
            "num_devices": self.num_devices,
            "partition_policy": self.partition_policy,
            "scheduling": self.scheduling,
            "use_transition_cache": self.use_transition_cache,
            "streaming_granularity": self.streaming_granularity,
            "reasons": list(self.reasons),
        }


def negotiate_plan(
    capabilities: ServiceCapabilities,
    config: FlexiWalkerConfig,
    compiled: CompiledWorkload | None = None,
    backend: str | None = None,
) -> ExecutionPlan:
    """Resolve declared capabilities and a session request into one plan.

    Parameters
    ----------
    capabilities:
        What the service can do (fleet size, implemented backends).
    config:
        The session's requested knobs (execution mode, device count,
        partition policy, scheduling).
    compiled:
        The compiled workload, consulted for cache eligibility.
    backend:
        Explicit backend request; by default the backend is derived from
        ``config`` (``num_devices > 1`` → ``multi_device``, else the
        configured execution mode).

    Raises
    ------
    ServiceError
        When the request exceeds the declared capabilities (unknown
        backend, more devices than the fleet owns, inconsistent
        backend/device combinations).
    """
    reasons: list[str] = []

    if backend is None:
        if config.num_devices > 1:
            backend = "multi_device"
            reasons.append(
                f"config requested {config.num_devices} devices -> multi_device backend"
            )
        else:
            backend = config.execution
            reasons.append(f"config requested execution={config.execution!r}")
    else:
        reasons.append(f"backend {backend!r} requested explicitly")

    if backend not in BACKENDS:
        raise ServiceError(f"unknown backend {backend!r}; valid: {BACKENDS}")
    if not capabilities.supports(backend):
        raise ServiceError(
            f"backend {backend!r} not offered by this service; "
            f"declared: {capabilities.backends}"
        )

    num_devices = config.num_devices
    if backend == "multi_device" and num_devices < 2:
        num_devices = capabilities.max_devices
        reasons.append(
            f"multi_device backend with no device count requested -> "
            f"using the whole fleet ({num_devices})"
        )
    if backend != "multi_device" and num_devices > 1:
        raise ServiceError(
            f"backend {backend!r} is single-device but config requests "
            f"{num_devices} devices; use the multi_device backend"
        )
    if num_devices > capabilities.max_devices:
        raise ServiceError(
            f"session requests {num_devices} devices but the service fleet "
            f"owns {capabilities.max_devices}"
        )
    if backend == "multi_device" and num_devices < 2:
        raise ServiceError("the multi_device backend needs a fleet of at least 2 devices")

    if config.partition_policy not in capabilities.partition_policies:
        raise ServiceError(
            f"unknown partition policy {config.partition_policy!r}; "
            f"valid: {capabilities.partition_policies}"
        )

    # The engine execution mode implementing the backend.  An explicitly
    # requested single-device backend *is* the execution mode (the request
    # wins over config.execution); multi_device keeps the configured mode:
    # batched -> one fused frontier, scalar -> the serial per-device
    # composition (both placement-invariant).
    execution = config.execution if backend == "multi_device" else backend
    if execution != config.execution:
        reasons.append(
            f"requested backend overrides config execution "
            f"({config.execution!r} -> {execution!r})"
        )

    use_cache = compiled is not None and compiled.weights_node_only
    reasons.append(
        "transition cache enabled: compiler proved weights node-only"
        if use_cache
        else "transition cache disabled: weights depend on walker state"
    )

    granularity = "walk" if execution == "scalar" else "superstep"
    return ExecutionPlan(
        backend=backend,
        execution=execution,
        num_devices=num_devices,
        partition_policy=config.partition_policy,
        scheduling=config.scheduling,
        use_transition_cache=use_cache,
        streaming_granularity=granularity,
        reasons=tuple(reasons),
    )


#: Default capability declaration for a fleet: every backend this codebase
#: implements, gated only by the fleet size.
def declare_capabilities(fleet: DeviceFleet) -> ServiceCapabilities:
    """The capability set a service with ``fleet`` declares."""
    backends = ["scalar", "batched"]
    if fleet.count > 1:
        backends.append("multi_device")
    return ServiceCapabilities(
        backends=tuple(backends),
        max_devices=fleet.count,
        partition_policies=PARTITION_POLICIES,
        device_name=fleet.device.name,
    )
