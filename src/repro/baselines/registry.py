"""Registry of baseline systems, keyed by the names used in the paper's tables."""

from __future__ import annotations

from collections.abc import Callable

from repro.baselines.base import BaselineSystem
from repro.baselines.csaw import make_csaw
from repro.baselines.flowwalker import make_flowwalker
from repro.baselines.knightking import make_knightking
from repro.baselines.nextdoor import make_nextdoor
from repro.baselines.skywalker import make_skywalker
from repro.baselines.sowalker import make_sowalker
from repro.baselines.thunderrw import make_thunderrw
from repro.errors import BenchmarkError

#: All baseline factories in the order the paper lists them (Section 6.1).
BASELINES: dict[str, Callable[[], BaselineSystem]] = {
    "SOWalker": make_sowalker,
    "ThunderRW": make_thunderrw,
    "C-SAW": make_csaw,
    "NextDoor": make_nextdoor,
    "Skywalker": make_skywalker,
    "FlowWalker": make_flowwalker,
    "KnightKing": make_knightking,
}

#: The CPU and GPU groups used when computing "best CPU/GPU baseline" speedups.
CPU_BASELINES = ("SOWalker", "ThunderRW")
GPU_BASELINES = ("C-SAW", "NextDoor", "Skywalker", "FlowWalker")


def baseline_names(platform: str | None = None) -> list[str]:
    """Baseline names, optionally filtered to ``"cpu"`` or ``"gpu"`` systems."""
    if platform is None:
        return list(BASELINES.keys())
    if platform == "cpu":
        return list(CPU_BASELINES)
    if platform == "gpu":
        return list(GPU_BASELINES)
    raise BenchmarkError(f"unknown platform filter {platform!r}")


def make_baseline(name: str) -> BaselineSystem:
    """Instantiate a baseline system model by its paper name."""
    factory = BASELINES.get(name)
    if factory is None:
        raise BenchmarkError(f"unknown baseline {name!r}; known: {', '.join(BASELINES)}")
    return factory()
