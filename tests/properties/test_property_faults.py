"""Chaos suite: the bit-identical-recovery invariant under generated faults.

The fault-tolerance contract of :mod:`repro.runtime.faults`: for *every*
seeded :class:`FaultPlan` — permanent device failures, transient kernel
faults with probabilistic retry counts, interconnect drops — and every
checkpoint cadence, a recovered run must reproduce the fault-free run's
paths, per-query base times and counter totals bit-identically.  Only the
simulated clock may differ (the recovery ledger).  Hypothesis generates the
fault schedules; the invariant is asserted across the batched single-device,
fused multi-device, sharded and scheduler-fused execution modes.

The example budget is bounded for tier-1 (``CHAOS_MAX_EXAMPLES``, default
15); the tier-2 nightly re-runs the suite with a larger budget to explore
longer schedules.
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FlexiWalkerConfig
from repro.gpusim.counters import CostCounters
from repro.gpusim.device import A6000
from repro.graph.generators import barabasi_albert_graph
from repro.graph.weights import uniform_weights
from repro.runtime.engine import WalkEngine
from repro.runtime.faults import (
    DeviceFailure,
    FaultPlan,
    InterconnectDrop,
    TransientFault,
)
from repro.service import DeviceFleet, WalkService
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.state import WalkQuery

CHAOS_MAX_EXAMPLES = int(os.environ.get("CHAOS_MAX_EXAMPLES", "15"))

DEVICE = dataclasses.replace(A6000, parallel_lanes=8)
GRAPH = barabasi_albert_graph(40, 3, seed=5, name="chaos-test")
GRAPH = GRAPH.with_weights(uniform_weights(GRAPH, seed=5))
WALK_LENGTH = 8
QUERIES = [
    WalkQuery(query_id=i, start_node=i % GRAPH.num_nodes, max_length=WALK_LENGTH)
    for i in range(12)
]

fault_plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    device_failures=st.lists(
        st.builds(
            DeviceFailure,
            superstep=st.integers(min_value=0, max_value=WALK_LENGTH),
            device=st.integers(min_value=0, max_value=3),
        ),
        max_size=2,
    ),
    transient_faults=st.lists(
        st.builds(
            TransientFault,
            superstep=st.integers(min_value=0, max_value=WALK_LENGTH),
        ),
        max_size=2,
    ),
    interconnect_drops=st.lists(
        st.builds(
            InterconnectDrop,
            step=st.integers(min_value=0, max_value=WALK_LENGTH),
        ),
        max_size=2,
    ),
    retry_success_prob=st.floats(min_value=0.3, max_value=1.0),
)
intervals = st.integers(min_value=0, max_value=5)

#: Fault-free reference per engine mode, computed once (the reference does
#: not depend on the generated plan, only on the fixed workload).
_references: dict[str, object] = {}


def _engine(mode: str, plan: FaultPlan | None = None, interval: int = 0) -> WalkEngine:
    kwargs: dict[str, object] = {}
    if mode == "multidevice":
        kwargs["num_devices"] = 2
    elif mode == "sharded":
        kwargs["num_devices"] = 2
        kwargs["graph_placement"] = "sharded"
    return WalkEngine(
        graph=GRAPH,
        spec=DeepWalkSpec(),
        device=DEVICE,
        fault_plan=plan,
        checkpoint_interval=interval,
        **kwargs,
    )


def _reference(mode: str):
    if mode not in _references:
        _references[mode] = _engine(mode).run(QUERIES)
    return _references[mode]


def assert_bit_identical(result, reference) -> None:
    assert result.paths == reference.paths
    assert np.array_equal(result.per_query_ns, reference.per_query_ns)
    for name in CostCounters._COUNT_FIELDS:
        assert getattr(result.counters, name) == getattr(reference.counters, name)
    assert result.total_steps == reference.total_steps


class TestChaosRecoveryInvariant:
    @settings(max_examples=CHAOS_MAX_EXAMPLES, deadline=None)
    @given(plan=fault_plans, interval=intervals)
    def test_batched_single_device(self, plan, interval):
        result = _engine("batched", plan, interval).run(QUERIES)
        assert_bit_identical(result, _reference("batched"))
        if plan.device_failures and any(
            f.superstep < WALK_LENGTH for f in plan.device_failures
        ):
            assert result.recovery_time_ns > 0
            assert result.degraded_devices

    @settings(max_examples=CHAOS_MAX_EXAMPLES, deadline=None)
    @given(plan=fault_plans, interval=intervals)
    def test_fused_multi_device(self, plan, interval):
        result = _engine("multidevice", plan, interval).run(QUERIES)
        assert_bit_identical(result, _reference("multidevice"))

    @settings(max_examples=CHAOS_MAX_EXAMPLES, deadline=None)
    @given(plan=fault_plans, interval=intervals)
    def test_sharded(self, plan, interval):
        result = _engine("sharded", plan, interval).run(QUERIES)
        assert_bit_identical(result, _reference("sharded"))

    @settings(max_examples=CHAOS_MAX_EXAMPLES, deadline=None)
    @given(plan=fault_plans, interval=intervals)
    def test_scheduler_fused(self, plan, interval):
        """Two sessions fused by the scheduler, with a mid-run admission:
        the faulty run must match the fault-free scheduler run bit-exactly."""

        def run(config):
            service = WalkService(GRAPH, fleet=DeviceFleet(DEVICE))
            scheduler = service.scheduler()
            session = scheduler.session(DeepWalkSpec(), config)
            session.submit(QUERIES[:8])
            for _ in range(3):
                scheduler.tick()
            session.submit(QUERIES[8:])
            scheduler.run_until_idle(max_ticks=500)
            return session.collect()

        base_config = FlexiWalkerConfig(device=DEVICE, seed=3)
        faulty = run(
            dataclasses.replace(
                base_config, fault_plan=plan, checkpoint_interval=interval
            )
        )
        if "scheduler" not in _references:
            _references["scheduler"] = run(base_config)
        assert_bit_identical(faulty, _references["scheduler"])
