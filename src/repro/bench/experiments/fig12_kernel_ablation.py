"""Fig. 12 — ablation of the individual kernel optimisations.

Panel (a) — reservoir sampling: FlowWalker's baseline kernel vs. eRVS with
only the exponential-key rewrite (+EXP, removes the prefix sum and halves
weight-list traffic) vs. full eRVS (+JUMP, also cuts random-number
generation).  The paper reports 1.3–1.6x for +EXP and 1.44–1.82x overall.

Panel (b) — rejection sampling: NextDoor's baseline kernel (per-step max
reduction) vs. eRJS with the compiler-estimated bound (+Est.Max).  The paper
reports 54x–1698x under uniform weights and up to 7.3x under heavy skew
(where most of the time goes to rejected trials either way).

Both panels run weighted Node2Vec under uniform weights and under the most
skewed Pareto setting (alpha = 1).
"""

from __future__ import annotations

from repro.bench.config import ExperimentConfig
from repro.bench.runner import prepare_graph, prepare_queries, run_fixed_sampler
from repro.bench.tables import format_table
from repro.sampling.erjs import EnhancedRejectionSampler
from repro.sampling.ervs import EnhancedReservoirSampler
from repro.sampling.rejection import RejectionSampler
from repro.sampling.reservoir import ReservoirSampler

WORKLOAD = "node2vec"
DATASETS = ("YT", "EU")
SETTINGS = (("uniform", "uniform", 2.0), ("alpha=1", "powerlaw", 1.0))


def run_experiment(config: ExperimentConfig | None = None) -> dict:
    """Execute both kernel-optimisation ablations."""
    config = config or ExperimentConfig.quick()
    datasets = [d for d in DATASETS if d in config.datasets] or list(DATASETS)

    reservoir_rows: list[dict] = []
    rejection_rows: list[dict] = []

    for dataset in datasets:
        for label, scheme, alpha in SETTINGS:
            graph = prepare_graph(dataset, WORKLOAD, weights=scheme, alpha=alpha)
            queries = prepare_queries(graph, WORKLOAD, config)
            common = dict(graph=graph, queries=queries, weights=scheme, alpha=alpha)

            # Panel (a): baseline RVS -> +EXP -> +EXP+JUMP.
            base = run_fixed_sampler(dataset, WORKLOAD, config, ReservoirSampler(),
                                     label="Baseline (FW)", **common)
            exp_only = run_fixed_sampler(dataset, WORKLOAD, config,
                                         EnhancedReservoirSampler(use_jump=False),
                                         label="+EXP", **common)
            full = run_fixed_sampler(dataset, WORKLOAD, config,
                                     EnhancedReservoirSampler(use_jump=True),
                                     label="+JUMP", **common)
            reservoir_rows.append(
                {
                    "dataset": dataset,
                    "weights": label,
                    "baseline_ms": base.time_ms,
                    "+EXP_ms": exp_only.time_ms,
                    "+JUMP_ms": full.time_ms,
                    "+EXP_speedup": base.time_ms / exp_only.time_ms,
                    "+JUMP_speedup": base.time_ms / full.time_ms,
                }
            )

            # Panel (b): baseline RJS (max reduce) -> eRJS (+Est.Max).
            base_rjs = run_fixed_sampler(dataset, WORKLOAD, config, RejectionSampler(),
                                         label="Baseline (ND)", **common)
            est_max = run_fixed_sampler(dataset, WORKLOAD, config, EnhancedRejectionSampler(),
                                        label="+Est.Max", use_hints=True, **common)
            rejection_rows.append(
                {
                    "dataset": dataset,
                    "weights": label,
                    "baseline_ms": base_rjs.time_ms,
                    "+EstMax_ms": est_max.time_ms,
                    "+EstMax_speedup": base_rjs.time_ms / est_max.time_ms,
                }
            )

    return {
        "reservoir": reservoir_rows,
        "rejection": rejection_rows,
        "config": config,
        "paper_reference": "Figure 12: kernel optimisation ablations (eRVS +EXP/+JUMP, eRJS +Est.Max)",
    }


def format_result(result: dict) -> str:
    headers_a = ["dataset", "weights", "baseline_ms", "+EXP_ms", "+JUMP_ms", "+EXP_speedup", "+JUMP_speedup"]
    table_a = format_table(
        headers_a,
        [[row[h] for h in headers_a] for row in result["reservoir"]],
        title="Fig. 12a — reservoir kernel ablation (vs FlowWalker baseline)",
    )
    headers_b = ["dataset", "weights", "baseline_ms", "+EstMax_ms", "+EstMax_speedup"]
    table_b = format_table(
        headers_b,
        [[row[h] for h in headers_b] for row in result["rejection"]],
        title="Fig. 12b — rejection kernel ablation (vs NextDoor baseline)",
    )
    return table_a + "\n\n" + table_b


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_result(run_experiment()))


if __name__ == "__main__":  # pragma: no cover
    main()
