"""Second-order PageRank: degree-aware second-order proximity walks.

Second-order PageRank (Wu et al., 2016) biases the walk toward neighbours of
the previously visited node and scales weights by node degrees (Eq. 3 of the
paper).  With ``maxd = max(d(v), d(v'))`` and decay ``gamma``:

* ``dist(v', u) == 1``:   ``w = ((1 - gamma)/d(v) + gamma/d(v')) * maxd``
* otherwise:              ``w = ((1 - gamma)/d(v)) * maxd``

The degree terms make the transition-weight *sum* of a node fluctuate heavily
across steps (Fig. 7b), which is what motivates per-step kernel selection.
The paper evaluates with ``gamma = 0.2``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WalkSpecError
from repro.graph.csr import CSRGraph
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkerState


class SecondOrderPRSpec(WalkSpec):
    """Second-order PageRank walk specification."""

    name = "2nd_pr"
    is_dynamic = True
    default_walk_length = 80

    def __init__(self, gamma: float = 0.2) -> None:
        if not 0.0 <= gamma <= 1.0:
            raise WalkSpecError("gamma must lie in [0, 1]")
        self.gamma = float(gamma)
        super().__init__()

    # ------------------------------------------------------------------ #
    # User code analysed by Flexi-Compiler
    # ------------------------------------------------------------------ #
    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        h_e = graph.weights[edge]
        post = graph.indices[edge]
        if state.prev_node < 0:
            return h_e
        d_cur = graph.degree(state.current_node)
        d_prev = graph.degree(state.prev_node)
        maxd = d_cur if d_cur > d_prev else d_prev
        if graph.has_edge(state.prev_node, post):
            return ((1.0 - self.gamma) / d_cur + self.gamma / d_prev) * maxd * h_e
        return ((1.0 - self.gamma) / d_cur) * maxd * h_e

    # ------------------------------------------------------------------ #
    def transition_weights(self, graph: CSRGraph, state: WalkerState) -> np.ndarray:
        h = graph.edge_weights(state.current_node).astype(np.float64)
        if state.prev_node < 0:
            return h.copy()
        neighbors = graph.neighbors(state.current_node)
        d_cur = graph.degree(state.current_node)
        d_prev = graph.degree(state.prev_node)
        if d_cur == 0:
            return np.zeros(0, dtype=np.float64)
        maxd = float(max(d_cur, d_prev))
        base = (1.0 - self.gamma) / d_cur
        bonus = self.gamma / d_prev if d_prev > 0 else 0.0
        prev_neighbors = graph.neighbors(state.prev_node)
        w = np.full(neighbors.size, base, dtype=np.float64)
        if prev_neighbors.size:
            pos = np.searchsorted(prev_neighbors, neighbors)
            pos = np.clip(pos, 0, prev_neighbors.size - 1)
            linked = prev_neighbors[pos] == neighbors
            w[linked] = base + bonus
        return w * maxd * h

    # ------------------------------------------------------------------ #
    # Simulator cost hooks: like Node2Vec, dist(v', u) is a membership probe,
    # plus the two degree lookups.
    # ------------------------------------------------------------------ #
    def probe_cost_words(self, graph: CSRGraph, state: WalkerState) -> int:
        if state.prev_node < 0:
            return 0
        d_prev = graph.degree(state.prev_node)
        return 2 + int(np.ceil(np.log2(d_prev + 2)))

    def scan_cost_words(self, graph: CSRGraph, state: WalkerState) -> int:
        if state.prev_node < 0:
            return 0
        return 2 + graph.degree(state.prev_node)

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info.update({"gamma": self.gamma})
        return info
