"""Multi-tenant serving load generator for the continuous-batching scheduler.

Drives many interleaved :class:`~repro.service.WalkSession`\\ s — all fused
into one shared frontier by a :class:`~repro.service.ServiceScheduler` —
through an open-loop arrival process: every scheduler tick a few sessions
submit fresh query batches, tagged with a tenant and (for the interactive
tenant) an SLO priority, while earlier walkers are still mid-walk.  Nothing
waits for a wave to drain; admission happens at superstep boundaries.

Reported per run:

* **ticket latency** (submit → walk completion, in scheduler supersteps):
  p50 / p99 across every walk, plus the queue-delay component
  (submit → first scheduled step) — the serving-style metrics;
* **aggregate throughput** (walker-steps per second across all sessions);
* **per-tenant accounting** (:class:`~repro.service.TenantStats`), showing
  the weighted-fairness split of the fused execution.

A JSON artifact with the same numbers is written next to the script (or to
``--output``), which is what the serving benchmark entry and the nightly
smoke test consume.

Run ``python examples/load_generator.py --sessions 256`` to scale the fleet
of sessions up or down; the defaults keep the demo under a few seconds.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro import (
    DeepWalkSpec,
    DeviceFleet,
    FlexiWalkerConfig,
    SubmitOptions,
    WalkQuery,
    WalkService,
    load_dataset,
)
from repro.gpusim import A6000

#: The tenant mix: (name, weight, share of sessions, submit options template).
#: Every tenant opts into blocking admission so a finite ``--max-inflight``
#: budget throttles the arrival loop (backpressure) instead of erroring it.
TENANTS = (
    ("interactive", 4.0, 0.25, {"priority": 1, "block_on_full": True}),
    ("batch", 2.0, 0.50, {"block_on_full": True}),
    ("background", 1.0, 0.25, {"deadline_steps": 24, "block_on_full": True}),
)


def run_load(
    num_sessions: int,
    queries_per_session: int = 8,
    walk_length: int = 10,
    max_inflight_walkers: int = 0,
    seed: int = 7,
) -> dict:
    """Drive ``num_sessions`` interleaved sessions; return the metrics dict."""
    graph = load_dataset("YT", weights="uniform")
    device = A6000.scaled(96 / A6000.parallel_lanes, name="A6000 (scaled)")
    service = WalkService(graph, fleet=DeviceFleet(device))
    scheduler = service.scheduler(max_inflight_walkers=max_inflight_walkers)
    config = FlexiWalkerConfig(device=device)

    rng = np.random.default_rng(seed)
    sessions = []
    for _index in range(num_sessions):
        pick = rng.random()
        cumulative = 0.0
        for name, weight, share, template in TENANTS:
            cumulative += share
            if pick <= cumulative or name == TENANTS[-1][0]:
                scheduler.register_tenant(name, weight=weight)
                session = scheduler.session(DeepWalkSpec(), config, tenant=name)
                sessions.append((session, SubmitOptions(**template)))
                break

    # Open-loop arrival: each tick a handful of sessions submit a batch,
    # joining walkers already mid-walk in the shared frontier.  A ^C here
    # stops the arrivals but still drains (and reports) whatever is already
    # in flight — the generator exits cleanly with partial stats instead of
    # a stack trace.
    interrupted = False
    next_query_id = 0
    outstanding = list(range(num_sessions))
    rng.shuffle(outstanding)
    started = time.perf_counter()
    try:
        while outstanding:
            arrivals = outstanding[: max(1, num_sessions // 16)]
            outstanding = outstanding[len(arrivals) :]
            for index in arrivals:
                session, options = sessions[index]
                batch = [
                    WalkQuery(
                        query_id=next_query_id + i,
                        start_node=int(rng.integers(0, graph.num_nodes)),
                        max_length=walk_length,
                    )
                    for i in range(queries_per_session)
                ]
                next_query_id += queries_per_session
                session.submit(batch, options=options)
            scheduler.tick()
    except KeyboardInterrupt:
        interrupted = True
        print("\ninterrupted — no more arrivals, draining in-flight walks "
              "(^C again to stop the drain too)")

    # Drain: stream every session, harvesting per-walk latency from the
    # chunk queue-delay fields (all on the scheduler's superstep clock).
    # A second ^C abandons the drain; already-completed walks still report.
    latencies = []
    queue_delays = []
    try:
        for session, _ in sessions:
            for chunk in session.stream():
                for enq, start in zip(chunk.enqueue_steps, chunk.first_scheduled_steps, strict=False):
                    latencies.append(chunk.superstep - enq)
                    queue_delays.append(start - enq)
    except KeyboardInterrupt:
        interrupted = True
        print("\ninterrupted mid-drain — reporting completed walks only")
    wall_s = time.perf_counter() - started

    stats = scheduler.tenant_stats()
    total_steps = sum(s.steps for s in stats.values())
    latencies = np.array(latencies, dtype=np.float64)
    queue_delays = np.array(queue_delays, dtype=np.float64)
    walks = int(latencies.size)
    if walks == 0:  # interrupted before any walk completed
        latencies = queue_delays = np.zeros(1, dtype=np.float64)
    return {
        "sessions": num_sessions,
        "interrupted": interrupted,
        "tenants": {
            name: {
                "weight": s.weight,
                "sessions": s.sessions,
                "completed": s.completed,
                "slo_admitted": s.slo_admitted,
                "steps": s.steps,
            }
            for name, s in stats.items()
        },
        "walks": walks,
        "supersteps": scheduler.supersteps,
        "fusion_groups": scheduler.describe()["fusion_groups"],
        "p50_latency_ticks": float(np.percentile(latencies, 50)),
        "p99_latency_ticks": float(np.percentile(latencies, 99)),
        "p99_queue_delay_ticks": float(np.percentile(queue_delays, 99)),
        "aggregate_steps_per_s": total_steps / max(wall_s, 1e-9),
        "wall_s": wall_s,
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=64)
    parser.add_argument("--queries", type=int, default=8,
                        help="queries per session submission")
    parser.add_argument("--walk-length", type=int, default=10)
    parser.add_argument("--max-inflight", type=int, default=0,
                        help="in-flight walker budget (0 = unbounded)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent / "load_generator.json")
    args = parser.parse_args(argv)

    metrics = run_load(
        args.sessions,
        queries_per_session=args.queries,
        walk_length=args.walk_length,
        max_inflight_walkers=args.max_inflight,
    )
    if metrics["interrupted"]:
        print("run interrupted — the numbers below cover the walks that "
              "completed before the interrupt")
    print(
        f"{metrics['sessions']} sessions fused into "
        f"{metrics['fusion_groups']} group(s): {metrics['walks']} walks over "
        f"{metrics['supersteps']} shared supersteps"
    )
    print(
        f"ticket latency p50={metrics['p50_latency_ticks']:.0f} "
        f"p99={metrics['p99_latency_ticks']:.0f} ticks "
        f"(queue-delay p99={metrics['p99_queue_delay_ticks']:.0f}); "
        f"aggregate {metrics['aggregate_steps_per_s']:,.0f} steps/s"
    )
    for name, tenant in sorted(metrics["tenants"].items()):
        print(
            f"  tenant {name:<12} weight={tenant['weight']:.0f} "
            f"sessions={tenant['sessions']:<3} completed={tenant['completed']:<5} "
            f"slo_admitted={tenant['slo_admitted']:<5} steps={tenant['steps']}"
        )
    args.output.write_text(json.dumps(metrics, indent=2, sort_keys=True))
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
