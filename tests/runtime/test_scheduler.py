"""Tests for the dynamic query queue."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.gpusim.counters import CostCounters
from repro.runtime.scheduler import DynamicQueryQueue, validate_queries
from repro.walks.state import WalkQuery


def make_batch(n):
    return [WalkQuery(query_id=i, start_node=i, max_length=3) for i in range(n)]


class TestDynamicQueryQueue:
    def test_fetch_returns_queries_in_order(self):
        queue = DynamicQueryQueue(make_batch(3))
        assert [queue.fetch().query_id for _ in range(3)] == [0, 1, 2]

    def test_exhausted_queue_returns_none(self):
        queue = DynamicQueryQueue(make_batch(1))
        queue.fetch()
        assert queue.fetch() is None
        assert queue.exhausted

    def test_each_fetch_costs_one_atomic(self):
        queue = DynamicQueryQueue(make_batch(2))
        counters = CostCounters()
        queue.fetch(counters)
        queue.fetch(counters)
        queue.fetch(counters)  # failed fetch still pays the atomic
        assert counters.atomic_ops == 3
        assert queue.atomic_ops == 3

    def test_remaining_and_len(self):
        queue = DynamicQueryQueue(make_batch(4))
        assert len(queue) == 4
        queue.fetch()
        assert queue.remaining == 3

    def test_reset_rewinds(self):
        queue = DynamicQueryQueue(make_batch(2))
        queue.drain()
        queue.reset()
        assert queue.remaining == 2
        assert queue.atomic_ops == 0

    def test_drain_returns_all_remaining(self):
        queue = DynamicQueryQueue(make_batch(5))
        queue.fetch()
        assert [q.query_id for q in queue.drain()] == [1, 2, 3, 4]


class TestValidateQueries:
    def test_valid_batch_passes(self):
        validate_queries(make_batch(3), num_nodes=10)

    def test_out_of_range_start_rejected(self):
        with pytest.raises(SimulationError):
            validate_queries([WalkQuery(0, 99, 5)], num_nodes=10)

    def test_rejects_duplicate_query_ids(self):
        # Each query id owns one random stream; duplicates would make walks
        # depend on execution order and break scalar/batched parity.
        queries = [
            WalkQuery(query_id=0, start_node=1, max_length=3),
            WalkQuery(query_id=0, start_node=2, max_length=3),
        ]
        with pytest.raises(SimulationError, match="duplicate query_id"):
            validate_queries(queries, num_nodes=10)

    def test_empty_batch_passes(self):
        validate_queries([], num_nodes=10)

    def test_range_error_message_is_exact(self):
        queries = make_batch(3) + [WalkQuery(query_id=7, start_node=42, max_length=3)]
        with pytest.raises(
            SimulationError,
            match=r"query 7 starts at node 42, which is outside the graph "
                  r"\(num_nodes=10\)",
        ):
            validate_queries(queries, num_nodes=10)

    def test_duplicate_error_message_is_exact(self):
        queries = make_batch(3) + [WalkQuery(query_id=1, start_node=2, max_length=3)]
        with pytest.raises(
            SimulationError,
            match=r"duplicate query_id 1: ids must be unique within a batch "
                  r"\(each id owns one random stream\)",
        ):
            validate_queries(queries, num_nodes=10)

    def test_reports_the_first_failing_query_in_submission_order(self):
        # The vectorised checks must keep the old loop's semantics: the
        # error names the earliest offender, range checked before
        # duplication at the same index.
        range_then_dup = [
            WalkQuery(query_id=0, start_node=0, max_length=3),
            WalkQuery(query_id=1, start_node=99, max_length=3),  # first offender
            WalkQuery(query_id=0, start_node=1, max_length=3),   # later duplicate
        ]
        with pytest.raises(SimulationError, match="query 1 starts at node 99"):
            validate_queries(range_then_dup, num_nodes=10)

        dup_then_range = [
            WalkQuery(query_id=0, start_node=0, max_length=3),
            WalkQuery(query_id=0, start_node=1, max_length=3),   # first offender
            WalkQuery(query_id=2, start_node=99, max_length=3),  # later range error
        ]
        with pytest.raises(SimulationError, match="duplicate query_id 0"):
            validate_queries(dup_then_range, num_nodes=10)

    def test_same_index_failing_both_checks_reports_the_range_error(self):
        queries = [
            WalkQuery(query_id=3, start_node=1, max_length=3),
            WalkQuery(query_id=3, start_node=50, max_length=3),  # dup AND range
        ]
        with pytest.raises(SimulationError, match="starts at node 50"):
            validate_queries(queries, num_nodes=10)

    def test_duplicate_detection_reports_the_second_occurrence(self):
        # Three-way duplicate: the error fires where the old loop fired —
        # at the *second* occurrence, not the third.
        queries = [
            WalkQuery(query_id=5, start_node=1, max_length=3),
            WalkQuery(query_id=4, start_node=1, max_length=3),
            WalkQuery(query_id=5, start_node=2, max_length=3),
            WalkQuery(query_id=5, start_node=3, max_length=3),
        ]
        with pytest.raises(SimulationError, match="duplicate query_id 5"):
            validate_queries(queries, num_nodes=10)

    def test_large_unique_batch_validates(self):
        queries = [WalkQuery(query_id=i, start_node=i % 10, max_length=3)
                   for i in range(5000)]
        validate_queries(queries, num_nodes=10)


class TestBatchFetch:
    def test_fetch_batch_claims_in_submission_order(self):
        queue = DynamicQueryQueue(make_batch(5))
        claimed = queue.fetch_batch(3)
        assert [q.query_id for q in claimed] == [0, 1, 2]
        assert queue.remaining == 2

    def test_fetch_batch_charges_one_atomic_per_query(self):
        queue = DynamicQueryQueue(make_batch(4))
        counters = CostCounters()
        claimed = queue.fetch_batch(10, counters)
        assert len(claimed) == 4
        assert counters.atomic_ops == 4
        assert queue.atomic_ops == 4
        assert queue.exhausted

    def test_fetch_batch_interleaves_with_scalar_fetch(self):
        queue = DynamicQueryQueue(make_batch(4))
        assert queue.fetch().query_id == 0
        assert [q.query_id for q in queue.fetch_batch(2)] == [1, 2]
        assert queue.fetch().query_id == 3

    def test_fetch_batch_on_empty_queue(self):
        queue = DynamicQueryQueue([])
        assert queue.fetch_batch(5) == []

    def test_fetch_batch_rejects_negative_count(self):
        queue = DynamicQueryQueue(make_batch(1))
        with pytest.raises(SimulationError):
            queue.fetch_batch(-1)
