"""Counting RNG streams and per-thread stream pools.

The number of random numbers generated is one of the explicit cost terms in
the paper (Section 3.2: the baseline reservoir kernel draws one uniform per
neighbour, eRVS's jump technique draws far fewer).  ``CountingStream`` wraps a
:class:`~repro.rng.philox.PhiloxEngine` and records every draw so kernels can
report exact RNG counts to the GPU simulator's cost counters.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.rng.philox import PhiloxEngine, philox_uniform


class CountingStream:
    """RNG stream that counts how many variates have been drawn.

    The count is the number of *variates*, not the number of calls, because a
    vectorised call drawing ``n`` uniforms corresponds to ``n`` cuRAND calls
    on the GPU.
    """

    __slots__ = ("_engine", "draws")

    def __init__(self, engine: PhiloxEngine) -> None:
        self._engine = engine
        self.draws = 0

    @classmethod
    def from_seed(cls, seed: int, stream: int = 0) -> "CountingStream":
        return cls(PhiloxEngine(seed, stream))

    def reset_count(self) -> None:
        self.draws = 0

    def uniform(self, size: int | tuple[int, ...] | None = None) -> np.ndarray | float:
        self.draws += 1 if size is None else int(np.prod(size))
        return self._engine.uniform(size)

    def integers(self, low: int, high: int, size: int | None = None) -> np.ndarray | int:
        self.draws += 1 if size is None else int(size)
        return self._engine.integers(low, high, size)

    def exponential(self, size: int | None = None) -> np.ndarray | float:
        self.draws += 1 if size is None else int(size)
        return self._engine.exponential(size)

    def split(self, index: int) -> "CountingStream":
        """Derive an independent child stream with its own counter."""
        return CountingStream(self._engine.split(index))

    @property
    def philox_key(self) -> np.uint64:
        """The underlying engine key (used by :class:`BatchStreams`)."""
        return self._engine.key

    def reserve(self, n: int) -> np.uint64:
        """Claim ``n`` draws (counting them) and return the start counter.

        The values that correspond to the claimed counters are exactly what
        ``uniform(n)`` would have produced; :class:`BatchStreams` uses this to
        generate them for many streams in one vectorised Philox evaluation.
        """
        self.draws += int(n)
        return self._engine.reserve(int(n))


class BatchStreams:
    """Vectorised draws from many :class:`CountingStream` objects at once.

    Because the underlying generator is counter-based, the variates a stream
    *would* produce are a pure function of ``(key, counter)``: drawing
    ``counts[i]`` values from stream ``i`` for every ``i`` simultaneously is
    one broadcasted Philox evaluation, and each per-stream sub-sequence is
    bit-identical to what sequential ``stream.uniform(counts[i])`` calls
    would have returned.  This is what lets the batched walk engine replay
    the scalar engine's per-walker randomness exactly while running the whole
    frontier through a single numpy expression.
    """

    __slots__ = ("streams", "_keys")

    def __init__(self, streams: Sequence[CountingStream]) -> None:
        self.streams = list(streams)
        self._keys = np.array([s.philox_key for s in self.streams], dtype=np.uint64)

    def __len__(self) -> int:
        return len(self.streams)

    def subset(self, indices: np.ndarray) -> "BatchStreams":
        """A view over a subset of the streams (shared stream objects)."""
        sub = BatchStreams.__new__(BatchStreams)
        sub.streams = [self.streams[int(i)] for i in indices]
        sub._keys = self._keys[np.asarray(indices, dtype=np.int64)]
        return sub

    def stream(self, index: int) -> CountingStream:
        """The underlying scalar stream at position ``index``."""
        return self.streams[int(index)]

    def uniform_flat(self, counts: np.ndarray) -> np.ndarray:
        """Draw ``counts[i]`` uniforms from stream ``i``, concatenated.

        Stream ``i``'s draws occupy ``out[offsets[i]:offsets[i + 1]]`` where
        ``offsets = concatenate([[0], cumsum(counts)])``, in the same order
        ``stream.uniform(counts[i])`` would have produced them.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.size != len(self.streams):
            raise ValueError("counts must have one entry per stream")
        total = int(counts.sum())
        if total == 0:
            return np.zeros(0, dtype=np.float64)
        # The per-stream reserve loop is O(streams) Python work per draw
        # call; it is kept because the scalar CountingStream objects are the
        # single source of truth for counters/draw tallies (scalar-fallback
        # bridges hand them out mid-run).  At the current scale-model
        # frontier sizes the Philox evaluation dominates; if frontiers grow
        # to ~100k walkers, move the counters into arrays here and sync the
        # scalar objects on stream() access instead.
        starts = np.zeros(counts.size, dtype=np.uint64)
        for i, c in enumerate(counts):
            if c > 0:
                starts[i] = self.streams[i].reserve(int(c))
        offsets = np.concatenate(([0], np.cumsum(counts)))
        seg = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
        local = (np.arange(total, dtype=np.int64) - offsets[:-1][seg]).astype(np.uint64)
        with np.errstate(over="ignore"):
            ctrs = starts[seg] + local
        return philox_uniform(self._keys[seg], ctrs)

    def uniform_each(self) -> np.ndarray:
        """One uniform per stream (the vectorised form of ``uniform()``)."""
        return self.uniform_flat(np.ones(len(self.streams), dtype=np.int64))


class StreamPool:
    """A pool of independent streams, one per simulated GPU thread.

    GPU kernels assign one cuRAND state per thread.  The pool mirrors this by
    deriving one child stream per thread index on demand and caching it, so a
    thread that processes many walk queries keeps advancing its own stream.
    """

    def __init__(self, seed: int) -> None:
        self._root = PhiloxEngine(seed)
        self._streams: dict[int, CountingStream] = {}

    def stream(self, thread_index: int) -> CountingStream:
        """Return the (cached) stream owned by ``thread_index``."""
        existing = self._streams.get(thread_index)
        if existing is None:
            existing = CountingStream(self._root.split(thread_index))
            self._streams[thread_index] = existing
        return existing

    def batch(self, thread_indices: Sequence[int]) -> BatchStreams:
        """Bundle the streams of many threads for vectorised draws."""
        return BatchStreams([self.stream(int(i)) for i in thread_indices])

    @property
    def total_draws(self) -> int:
        """Total variates drawn across every stream in the pool."""
        return sum(stream.draws for stream in self._streams.values())

    def reset_counts(self) -> None:
        for stream in self._streams.values():
            stream.reset_count()
