"""FlexiWalker reproduction.

A pure-Python reproduction of *FlexiWalker: Extensible GPU Framework for
Efficient Dynamic Random Walks with Runtime Adaptation* (EUROSYS '26).  The
GPU hardware is replaced by a cost-accounting execution simulator
(:mod:`repro.gpusim`); everything else — the optimised eRJS/eRVS kernels, the
first-order cost model, the compile-time specialisation and the baseline
systems — is implemented faithfully.

Quick start::

    from repro import FlexiWalker, Node2VecSpec, load_dataset

    graph = load_dataset("YT", weights="uniform")
    walker = FlexiWalker(graph, Node2VecSpec())
    result = walker.run(walk_length=20)
    print(result.time_ms, result.selection_ratio())
"""

from repro.core.config import FlexiWalkerConfig
from repro.core.flexiwalker import FlexiWalker
from repro.core.results import summarize_run
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset, dataset_names
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.metapath import MetaPathSpec
from repro.walks.node2vec import Node2VecSpec, UnweightedNode2VecSpec
from repro.walks.second_order_pr import SecondOrderPRSpec
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkQuery, make_queries

__version__ = "1.0.0"

__all__ = [
    "FlexiWalker",
    "FlexiWalkerConfig",
    "summarize_run",
    "CSRGraph",
    "load_dataset",
    "dataset_names",
    "WalkSpec",
    "Node2VecSpec",
    "UnweightedNode2VecSpec",
    "MetaPathSpec",
    "SecondOrderPRSpec",
    "DeepWalkSpec",
    "WalkQuery",
    "make_queries",
    "__version__",
]
