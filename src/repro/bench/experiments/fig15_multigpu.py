"""Fig. 15 — multi-GPU scalability.

The paper replicates the graph on 1–4 A6000s and partitions the walk queries
across them with hash-based start-node mapping (range-based mapping scaled
worse).  This experiment runs the *real* multi-device engine: for every
device count and partitioning policy the query batch is partitioned and each
partition executes the full step-synchronous frontier loop on its own
simulated device (placement never changes the walks — walker randomness is
counter-based per query id — so the sweep measures exactly what the paper
measures: the makespan consequences of query placement).

Expected shape (paper): near-linear scaling (geomean 3.23x on 4 GPUs), with
hash mapping ahead of range mapping — the scale models give low node ids the
highest degrees, so contiguous ranges over the sorted start nodes concentrate
the expensive hub walks on device 0 — and the gap to ideal explained by load
imbalance (worst on AB).  The degree-aware ``balanced`` policy is this
reproduction's extension: greedy longest-processing-time packing by start
degree.
"""

from __future__ import annotations

from repro.bench.config import ExperimentConfig
from repro.bench.runner import prepare_graph, scaled_device_for
from repro.bench.tables import format_table
from repro.core.config import FlexiWalkerConfig
from repro.gpusim.multigpu import MultiGPUExecutor
from repro.service import DeviceFleet, WalkService
from repro.walks.registry import make_workload
from repro.walks.state import make_queries

WORKLOAD = "node2vec"
DATASETS = ("FS", "EU", "AB", "TW", "SK")
GPU_COUNTS = (1, 2, 3, 4)
POLICIES = ("hash", "range", "balanced")


def run_experiment(config: ExperimentConfig | None = None) -> dict:
    """Measure simulated multi-GPU speedups for every partitioning policy.

    Unlike the other experiments this one deliberately ignores
    ``config.num_queries`` and always runs the paper's one-query-per-node
    batches: Fig. 15's hash-vs-range story depends on the correlation
    between node id and degree across the *full* id space, which a sparse
    subsample washes out.  Use ``config.walk_length`` and
    ``config.datasets`` to bound the cost of a run.
    """
    config = config or ExperimentConfig.quick()
    datasets = [d for d in DATASETS if d in config.datasets] or list(DATASETS[:2])
    rows: list[dict] = []

    for dataset in datasets:
        graph = prepare_graph(dataset, WORKLOAD, weights="uniform")
        # One query per node, the paper's Fig. 15 setting.  The skew story
        # needs it: scale-model hubs have low node ids, so contiguous ranges
        # over the full id space concentrate expensive walks on device 0 —
        # a sparse subsample would wash that correlation out.
        queries = make_queries(graph.num_nodes, walk_length=config.walk_length)
        device = scaled_device_for("gpu", len(queries), config.waves)
        # The fleet declares the sweep's maximum device count; each
        # MultiGPUExecutor below re-targets the session's engine at a
        # specific count/policy without recompiling anything.
        service = WalkService(graph, fleet=DeviceFleet(device, max(GPU_COUNTS)))
        session = service.session(
            make_workload(WORKLOAD), FlexiWalkerConfig(device=device, seed=config.seed)
        )
        session.submit(queries)
        single = session.collect()

        row: dict[str, object] = {"dataset": dataset}
        for policy in POLICIES:
            # One device is one partition whatever the policy, so the x1
            # cell is the single run itself — no need to re-walk.
            row[f"{policy}_x1"] = 1.0
        for gpus in [g for g in GPU_COUNTS if g > 1]:
            executor = MultiGPUExecutor(device, gpus)
            for policy in POLICIES:
                result = executor.run(session.engine, queries, policy=policy)
                row[f"{policy}_x{gpus}"] = result.speedup_over(single.kernel.time_ns)
                if gpus == max(GPU_COUNTS):
                    row[f"imbalance_{policy}_x{gpus}"] = result.load_imbalance
        rows.append(row)

    return {
        "rows": rows,
        "config": config,
        "paper_reference": "Figure 15: multi-GPU scalability (paper geomean 3.23x at 4 GPUs, hash mapping)",
    }


def format_result(result: dict) -> str:
    top = max(GPU_COUNTS)
    headers = (
        ["dataset"]
        + [f"{policy}_x{g}" for policy in POLICIES for g in GPU_COUNTS]
        + [f"imbalance_{policy}_x{top}" for policy in POLICIES]
    )
    return format_table(
        headers,
        [[row[h] for h in headers] for row in result["rows"]],
        title="Fig. 15 — multi-GPU speedup over a single GPU (real engine per device)",
        float_format="{:.2f}",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_result(run_experiment()))


if __name__ == "__main__":  # pragma: no cover
    main()
