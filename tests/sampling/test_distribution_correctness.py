"""Every kernel must sample from the exact target transition distribution.

This is the most important correctness property in the library: the paper's
eRJS proof (Section 3.3) and the eRVS statistical equivalence both claim that
the optimisations change cost, never the distribution.  The tests draw a few
thousand single steps per kernel and run a chi-square goodness-of-fit check
against the analytic probabilities.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling.alias import AliasSampler
from repro.sampling.erjs import EnhancedRejectionSampler
from repro.sampling.ervs import EnhancedReservoirSampler
from repro.sampling.its import InverseTransformSampler
from repro.sampling.rejection import RejectionSampler
from repro.sampling.reservoir import ReservoirSampler
from repro.stats.distributions import chi_square_matches, empirical_transition_distribution
from repro.walks.metapath import MetaPathSpec
from repro.walks.node2vec import Node2VecSpec
from repro.walks.spec import UniformWalkSpec

from tests.conftest import make_state

SAMPLERS = [
    AliasSampler(),
    InverseTransformSampler(),
    RejectionSampler(),
    ReservoirSampler(),
    EnhancedRejectionSampler(),
    EnhancedReservoirSampler(),
    EnhancedReservoirSampler(use_jump=False),
]

NUM_SAMPLES = 3000


def _hints(graph, spec, state):
    """Safe (exact) hints: an upper bound 30% above the true max, exact sum."""
    weights = spec.transition_weights(graph, state)
    if weights.size == 0 or weights.sum() == 0:
        return None, None
    return float(weights.max() * 1.3), float(weights.sum())


@pytest.mark.parametrize("sampler", SAMPLERS, ids=lambda s: f"{type(s).__name__}-{getattr(s, 'use_jump', '')}")
class TestTargetDistribution:
    def test_static_weights_fig2a(self, tiny_graph, sampler):
        """The Fig. 2a example: weights {3, 2, 4, 1} from node 0."""
        spec = UniformWalkSpec()
        state = make_state(tiny_graph, node=0)
        bound, total = _hints(tiny_graph, spec, state)
        observed, probabilities = empirical_transition_distribution(
            tiny_graph, spec, sampler, state, num_samples=NUM_SAMPLES, seed=11,
            bound_hint=bound, sum_hint=total,
        )
        assert observed.sum() == NUM_SAMPLES
        assert chi_square_matches(observed, probabilities)

    def test_dynamic_node2vec_distribution(self, small_graph, sampler):
        """Weighted Node2Vec with a real walk history."""
        spec = Node2VecSpec(a=2.0, b=0.5)
        hub = int(np.argmax(small_graph.degrees()))
        prev = int(small_graph.neighbors(hub)[0])
        state = make_state(small_graph, node=hub, prev=prev, step=1)
        bound, total = _hints(small_graph, spec, state)
        observed, probabilities = empirical_transition_distribution(
            small_graph, spec, sampler, state, num_samples=NUM_SAMPLES, seed=13,
            bound_hint=bound, sum_hint=total,
        )
        assert chi_square_matches(observed, probabilities)

    def test_zero_weight_neighbors_never_selected(self, tiny_graph, sampler):
        """MetaPath zeroes non-matching labels; those neighbours must never appear."""
        spec = MetaPathSpec(schema=(0, 1, 2, 3, 4))
        state = make_state(tiny_graph, node=0)
        bound, total = _hints(tiny_graph, spec, state)
        observed, probabilities = empirical_transition_distribution(
            tiny_graph, spec, sampler, state, num_samples=500, seed=17,
            bound_hint=bound, sum_hint=total,
        )
        assert np.all(observed[probabilities == 0] == 0)

    def test_skewed_weights_distribution(self, tiny_graph, sampler):
        """A heavily skewed weight vector (one dominant neighbour)."""
        skewed = tiny_graph.with_weights(
            np.array([100.0, 1.0, 1.0, 1.0, 1, 1, 1, 1, 1, 1, 1, 1], dtype=np.float64)
        )
        spec = UniformWalkSpec()
        state = make_state(skewed, node=0)
        bound, total = _hints(skewed, spec, state)
        observed, probabilities = empirical_transition_distribution(
            skewed, spec, sampler, state, num_samples=NUM_SAMPLES, seed=19,
            bound_hint=bound, sum_hint=total,
        )
        assert chi_square_matches(observed, probabilities)
        assert observed[0] > 0.9 * NUM_SAMPLES


class TestLooseBoundKeepsDistribution:
    """The eRJS proof: any upper bound >= max gives the same distribution."""

    @pytest.mark.parametrize("slack", [1.0, 2.0, 10.0])
    def test_erjs_distribution_invariant_to_bound_slack(self, tiny_graph, slack):
        spec = UniformWalkSpec()
        state = make_state(tiny_graph, node=0)
        weights = spec.transition_weights(tiny_graph, state)
        sampler = EnhancedRejectionSampler()
        observed, probabilities = empirical_transition_distribution(
            tiny_graph, spec, sampler, state, num_samples=NUM_SAMPLES, seed=23,
            bound_hint=float(weights.max() * slack), sum_hint=float(weights.sum()),
        )
        assert chi_square_matches(observed, probabilities)

    def test_looser_bound_costs_more_trials(self, tiny_graph, ctx_factory):
        spec = UniformWalkSpec()
        sampler = EnhancedRejectionSampler()
        tight_trials = 0
        loose_trials = 0
        weights_max = float(spec.transition_weights(tiny_graph, make_state(tiny_graph, 0)).max())
        for seed in range(200):
            ctx = ctx_factory(tiny_graph, spec, node=0, seed=seed, bound_hint=weights_max)
            sampler.sample(ctx)
            tight_trials += ctx.counters.rejection_trials
            ctx = ctx_factory(tiny_graph, spec, node=0, seed=seed, bound_hint=weights_max * 10)
            sampler.sample(ctx)
            loose_trials += ctx.counters.rejection_trials
        assert loose_trials > 2 * tight_trials
