"""Delta-CSR overlay: dynamic graphs as versioned edge deltas over a base CSR.

Every execution mode of this library runs against a frozen
:class:`~repro.graph.csr.CSRGraph`, but a production walk service sees edges
arrive continuously (follows, likes, transactions).  Static-preprocessing
systems (KnightKing, C-SAW — both modeled in :mod:`repro.baselines`) pay a
full rebuild on every change; the delta-CSR overlay instead keeps the base
CSR immutable and layers an append-only **edge delta** on top:

* :meth:`DeltaCSRGraph.apply_delta` folds a batch of edge additions and
  removals into a **new graph version** — a cheap O(|delta| log |delta|)
  operation that shares the base arrays with every other version.  Versions
  are immutable values: an in-flight session keeps reading the version it
  started on while new sessions see the new edges.
* The overlay answers adjacency queries through a **vectorized
  merged-adjacency view** (:meth:`DeltaCSRGraph.merged_adjacency`): the
  surviving base CSR segment of each node merged with its sorted delta
  segment, one ``lexsort`` for a whole node batch.
* :meth:`DeltaCSRGraph.compact` folds the deltas into a fresh
  :class:`~repro.graph.csr.CSRGraph` that is **bit-identical** to building
  that graph from scratch with
  :func:`~repro.graph.builders.from_edge_list` — the invariant the dynamic
  scenario family asserts: walks after compaction match walks on a freshly
  built graph exactly (paths, counters, per-query times).

Each ``apply_delta`` also records the **touched-node set** (nodes whose
out-adjacency changed), which is what the versioned invalidation layer
(:mod:`repro.graph.invalidation`) uses to repair derived structures
incrementally instead of rebuilding them.

Delta semantics (kept deliberately strict so every operation is
deterministic and validatable):

* the node set is fixed by the base graph — additions and removals must
  reference existing node ids (grow the node space by rebuilding the base);
* an addition must not duplicate an edge present in the current version
  (parallel edges may exist in the *base*, but deltas keep the dynamic
  portion a simple graph);
* a removal must name an edge present in the current version and removes
  every parallel copy of it;
* one delta may not add and remove the same edge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = ["DeltaCSRGraph", "GraphDelta"]


def _as_edge_array(edges) -> np.ndarray:
    """Normalise an iterable of (src, dst) pairs to an ``(k, 2)`` int64 array."""
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges, dtype=np.int64)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphError("edges must be an iterable of (src, dst) pairs")
    return arr


def _intra_offsets(counts: np.ndarray) -> np.ndarray:
    """``[0..c0-1, 0..c1-1, ...]`` for run lengths ``counts`` (no Python loop)."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.arange(total, dtype=np.int64)
    starts = np.repeat(np.cumsum(counts) - counts, counts)
    return offsets - starts


def _sorted_membership(sorted_arr: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Boolean membership of ``values`` in a sorted array (one searchsorted)."""
    if sorted_arr.size == 0 or values.size == 0:
        return np.zeros(values.shape, dtype=bool)
    pos = np.searchsorted(sorted_arr, values)
    pos = np.minimum(pos, sorted_arr.size - 1)
    return sorted_arr[pos] == values


@dataclass(frozen=True)
class GraphDelta:
    """One batch of edge mutations, normalised and validated.

    Attributes
    ----------
    additions / removals:
        ``(k, 2)`` / ``(m, 2)`` int64 arrays of ``(src, dst)`` pairs.
    weights:
        Property weights of the added edges, parallel to ``additions``
        (all-ones when the caller passed none).
    labels:
        Edge labels of the added edges, parallel to ``additions`` (``None``
        on unlabeled graphs).
    """

    additions: np.ndarray
    removals: np.ndarray
    weights: np.ndarray
    labels: np.ndarray | None

    @property
    def num_additions(self) -> int:
        return int(self.additions.shape[0])

    @property
    def num_removals(self) -> int:
        return int(self.removals.shape[0])

    @property
    def num_edges_changed(self) -> int:
        return self.num_additions + self.num_removals

    @property
    def touched_nodes(self) -> np.ndarray:
        """Sorted unique nodes whose *out*-adjacency this delta changes."""
        return np.unique(np.concatenate([self.additions[:, 0], self.removals[:, 0]]))

    @property
    def touched_destinations(self) -> np.ndarray:
        """Sorted unique destination endpoints (whose in-degree changes)."""
        return np.unique(np.concatenate([self.additions[:, 1], self.removals[:, 1]]))


class DeltaCSRGraph:
    """An immutable graph *version*: base CSR + append-only edge deltas.

    Construct version 0 directly over a base graph::

        dynamic = DeltaCSRGraph(graph)          # version 0, no deltas
        v1 = dynamic.apply_delta([(0, 5)])      # version 1, one new edge
        v2 = v1.apply_delta([], removals=[(0, 5)])

    Every version shares the base arrays; only the (small) delta state is
    per-version.  Read accessors (``degrees``, ``neighbors``, ``has_edges``,
    :meth:`merged_adjacency`) answer against the merged view without
    materialising a CSR; :meth:`compact` / :meth:`snapshot` materialise one
    when a kernel-shaped consumer needs flat arrays.

    Attributes
    ----------
    base:
        The frozen :class:`~repro.graph.csr.CSRGraph` under the overlay.
    version:
        Monotonically increasing version counter (0 for the bare base).
    delta:
        The :class:`GraphDelta` that produced this version (``None`` at
        version 0) — carries the touched-node set the invalidation layer
        consumes.
    """

    def __init__(self, base: CSRGraph) -> None:
        if not isinstance(base, CSRGraph):
            raise GraphError("DeltaCSRGraph wraps a CSRGraph base")
        self.base = base
        self.version = 0
        self.delta: GraphDelta | None = None
        n = base.num_nodes
        # Cumulative surviving additions since the base, as a delta-CSR:
        # sorted by (src, dst), with a per-node row-pointer so per-node delta
        # segments are contiguous sorted slices.
        self._add_src = np.zeros(0, dtype=np.int64)
        self._add_dst = np.zeros(0, dtype=np.int64)
        self._add_w = np.zeros(0, dtype=np.float64)
        self._add_lbl = np.zeros(0, dtype=np.int64) if base.labels is not None else None
        self._add_indptr = np.zeros(n + 1, dtype=np.int64)
        self._add_keys = np.zeros(0, dtype=np.int64)
        # Sorted positions (into the base edge arrays) of removed base edges.
        self._removed_pos = np.zeros(0, dtype=np.int64)
        self._snapshot: CSRGraph | None = None
        self._degree_cache: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return self.base.num_nodes

    @property
    def num_edges(self) -> int:
        return self.base.num_edges - int(self._removed_pos.size) + int(self._add_src.size)

    @property
    def has_labels(self) -> bool:
        return self.base.labels is not None

    @property
    def num_delta_edges(self) -> int:
        """Surviving added edges currently living in the overlay."""
        return int(self._add_src.size)

    @property
    def num_removed_edges(self) -> int:
        """Base edges masked out by the overlay."""
        return int(self._removed_pos.size)

    # ------------------------------------------------------------------ #
    # Delta application
    # ------------------------------------------------------------------ #
    def apply_delta(
        self,
        additions,
        removals=(),
        *,
        weights=None,
        labels=None,
    ) -> DeltaCSRGraph:
        """Fold one batch of edge mutations into a **new version**.

        Returns a fresh :class:`DeltaCSRGraph` at ``version + 1``; this
        version is left untouched (in-flight readers keep it).  ``additions``
        may be a :class:`GraphDelta` (its ``removals``/``weights``/``labels``
        then travel with it and the explicit arguments must be empty).
        """
        if isinstance(additions, GraphDelta):
            if len(_as_edge_array(removals)) or weights is not None or labels is not None:
                raise GraphError(
                    "pass either a GraphDelta or explicit additions/removals, not both"
                )
            delta = additions
            additions, removals = delta.additions, delta.removals
            weights, labels = delta.weights, delta.labels

        n = self.num_nodes
        add = _as_edge_array(additions)
        rem = _as_edge_array(removals)
        for tag, arr in (("addition", add), ("removal", rem)):
            if arr.size and (arr.min() < 0 or arr.max() >= n):
                raise GraphError(
                    f"{tag} references a node outside [0, {n}); grow the node "
                    "space by rebuilding the base graph"
                )

        add_w = (
            np.ones(add.shape[0], dtype=np.float64)
            if weights is None
            else np.asarray(weights, dtype=np.float64)
        )
        if add_w.shape != (add.shape[0],):
            raise GraphError("delta weights must be parallel to the additions")
        if np.any(add_w < 0):
            raise GraphError("edge property weights must be non-negative")
        if self.has_labels:
            if labels is None and add.shape[0]:
                raise GraphError("labeled graphs need labels for every added edge")
            add_lbl = (
                np.zeros(0, dtype=np.int64)
                if add.shape[0] == 0
                else np.asarray(labels, dtype=np.int64)
            )
            if add_lbl.shape != (add.shape[0],):
                raise GraphError("delta labels must be parallel to the additions")
        else:
            if labels is not None:
                raise GraphError("the base graph has no edge labels")
            add_lbl = None

        nn = np.int64(n)
        add_keys = add[:, 0] * nn + add[:, 1] if add.size else np.zeros(0, dtype=np.int64)
        rem_keys = rem[:, 0] * nn + rem[:, 1] if rem.size else np.zeros(0, dtype=np.int64)

        if np.unique(add_keys).size != add_keys.size:
            raise GraphError("a delta may not add the same edge twice")
        if np.unique(rem_keys).size != rem_keys.size:
            raise GraphError("a delta may not remove the same edge twice")
        if np.intersect1d(add_keys, rem_keys).size:
            raise GraphError("a delta may not add and remove the same edge")

        exists = self.has_edges(
            np.concatenate([add[:, 0], rem[:, 0]]),
            np.concatenate([add[:, 1], rem[:, 1]]),
        )
        add_exists, rem_exists = exists[: add.shape[0]], exists[add.shape[0]:]
        if np.any(add_exists):
            first = add[np.nonzero(add_exists)[0][0]]
            raise GraphError(
                f"edge ({int(first[0])}, {int(first[1])}) already exists at "
                f"version {self.version}; duplicate additions are rejected"
            )
        if not np.all(rem_exists):
            first = rem[np.nonzero(~rem_exists)[0][0]]
            raise GraphError(
                f"edge ({int(first[0])}, {int(first[1])}) does not exist at "
                f"version {self.version}; removals must name live edges"
            )

        # Split removals: those hitting overlay additions drop out of the
        # delta arrays; the rest mask base edge positions (every parallel
        # copy — validation guaranteed at least one copy is live).
        hit_add = _sorted_membership(self._add_keys, rem_keys)
        drop_add_pos = np.searchsorted(self._add_keys, rem_keys[hit_add])
        keep_add = np.ones(self._add_src.size, dtype=bool)
        keep_add[drop_add_pos] = False

        new_removed = self._removed_pos
        base_rem_keys = rem_keys[~hit_add]
        if base_rem_keys.size:
            base_keys = self.base._edge_keys()
            lo = np.searchsorted(base_keys, base_rem_keys, side="left")
            hi = np.searchsorted(base_keys, base_rem_keys, side="right")
            counts = hi - lo
            positions = np.repeat(lo, counts) + _intra_offsets(counts)
            new_removed = np.union1d(self._removed_pos, positions)

        # Merge surviving prior additions with the new ones and re-sort by
        # (src, dst): delta keys are unique, so the order is deterministic.
        src = np.concatenate([self._add_src[keep_add], add[:, 0]])
        dst = np.concatenate([self._add_dst[keep_add], add[:, 1]])
        w = np.concatenate([self._add_w[keep_add], add_w])
        lbl = (
            np.concatenate([self._add_lbl[keep_add], add_lbl])
            if self._add_lbl is not None
            else None
        )
        order = np.lexsort((dst, src))

        child = DeltaCSRGraph.__new__(DeltaCSRGraph)
        child.base = self.base
        child.version = self.version + 1
        child.delta = GraphDelta(additions=add, removals=rem, weights=add_w, labels=add_lbl)
        child._add_src = src[order]
        child._add_dst = dst[order]
        child._add_w = w[order]
        child._add_lbl = None if lbl is None else lbl[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, child._add_src + 1, 1)
        np.cumsum(indptr, out=indptr)
        child._add_indptr = indptr
        child._add_keys = child._add_src * nn + child._add_dst
        child._removed_pos = new_removed
        child._snapshot = None
        child._degree_cache = None
        return child

    # ------------------------------------------------------------------ #
    # Merged read view
    # ------------------------------------------------------------------ #
    def degrees(self) -> np.ndarray:
        """Out-degree of every node under the merged view (cached)."""
        if self._degree_cache is None:
            degs = self.base.degrees().copy()
            if self._removed_pos.size:
                removed_src = (
                    np.searchsorted(self.base.indptr, self._removed_pos, side="right") - 1
                )
                degs -= np.bincount(removed_src, minlength=self.num_nodes).astype(np.int64)
            degs += np.diff(self._add_indptr)
            self._degree_cache = degs
        return self._degree_cache

    def degree(self, node: int) -> int:
        self._check_node(node)
        return int(self.degrees()[node])

    def neighbors(self, node: int) -> np.ndarray:
        """Merged sorted destination ids of ``node``'s out-edges."""
        indptr_l, indices, _, _ = self.merged_adjacency(np.asarray([node], dtype=np.int64))
        return indices[indptr_l[0]:indptr_l[1]]

    def edge_weights(self, node: int) -> np.ndarray:
        """Merged property weights of ``node``'s out-edges."""
        indptr_l, _, weights, _ = self.merged_adjacency(np.asarray([node], dtype=np.int64))
        return weights[indptr_l[0]:indptr_l[1]]

    def has_edge(self, src: int, dst: int) -> bool:
        result = self.has_edges(np.asarray([src]), np.asarray([dst]))
        return bool(result[0])

    def has_edges(self, srcs: np.ndarray, dsts: np.ndarray) -> np.ndarray:
        """Vectorised edge membership under the merged view.

        An edge exists when it lives in the delta additions, or at least one
        base copy of it survives the removal mask.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        if srcs.size == 0:
            return np.zeros(srcs.shape, dtype=bool)
        keys = srcs * np.int64(self.num_nodes) + dsts
        present = _sorted_membership(self._add_keys, keys)
        if self.base.num_edges:
            base_keys = self.base._edge_keys()
            lo = np.searchsorted(base_keys, keys, side="left")
            hi = np.searchsorted(base_keys, keys, side="right")
            copies = hi - lo
            if self._removed_pos.size:
                removed = np.searchsorted(self._removed_pos, hi) - np.searchsorted(
                    self._removed_pos, lo
                )
                copies = copies - removed
            present |= copies > 0
        return present

    def _surviving_base_positions(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-node surviving base edge positions, concatenated.

        Returns ``(segment_ids, positions)`` where ``segment_ids[i]`` is the
        index into ``nodes`` whose slice ``positions[i]`` belongs to.
        """
        base = self.base
        deg = (base.indptr[nodes + 1] - base.indptr[nodes]).astype(np.int64)
        positions = np.repeat(base.indptr[nodes], deg) + _intra_offsets(deg)
        segment = np.repeat(np.arange(nodes.size, dtype=np.int64), deg)
        if self._removed_pos.size and positions.size:
            keep = ~_sorted_membership(self._removed_pos, positions)
            positions, segment = positions[keep], segment[keep]
        return segment, positions

    def merged_adjacency(
        self, nodes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
        """The vectorized merged-adjacency view of a node batch.

        Returns ``(indptr, indices, weights, labels)`` where ``indptr`` is a
        local row-pointer over ``nodes`` (length ``len(nodes) + 1``) and the
        flat arrays hold each node's **merged** out-edges — the surviving
        base segment interleaved with the sorted delta segment, sorted by
        destination exactly as a compacted CSR row would be.  One ``lexsort``
        serves the whole batch.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        base = self.base
        seg_b, pos_b = self._surviving_base_positions(nodes)
        add_deg = (self._add_indptr[nodes + 1] - self._add_indptr[nodes]).astype(np.int64)
        pos_a = np.repeat(self._add_indptr[nodes], add_deg) + _intra_offsets(add_deg)
        seg_a = np.repeat(np.arange(nodes.size, dtype=np.int64), add_deg)

        dst = np.concatenate([base.indices[pos_b], self._add_dst[pos_a]])
        w = np.concatenate([base.weights[pos_b], self._add_w[pos_a]])
        lbl = None
        if base.labels is not None:
            lbl = np.concatenate([base.labels[pos_b], self._add_lbl[pos_a]])
        segment = np.concatenate([seg_b, seg_a])
        # Base copies sort before delta entries on destination ties (the
        # compacted order) via the explicit origin tiebreak; ties only occur
        # between parallel base copies in practice (delta keys are unique).
        origin = np.concatenate(
            [np.zeros(seg_b.size, dtype=np.int64), np.ones(seg_a.size, dtype=np.int64)]
        )
        order = np.lexsort((origin, dst, segment))

        counts = np.bincount(segment, minlength=nodes.size)
        indptr = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
        return (
            indptr.astype(np.int64),
            dst[order],
            w[order],
            None if lbl is None else lbl[order],
        )

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #
    def edge_list(self) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """The current edge set as ``(edges, weights, labels)`` arrays.

        The canonical enumeration: edges in compacted (src, dst) order, so
        ``from_edge_list(*self.edge_list())`` builds exactly the graph
        :meth:`compact` produces.
        """
        compacted = self.compact()
        sources = np.repeat(
            np.arange(compacted.num_nodes, dtype=np.int64), compacted.degrees()
        )
        edges = np.stack([sources, compacted.indices], axis=1)
        return edges, compacted.weights.copy(), (
            None if compacted.labels is None else compacted.labels.copy()
        )

    def compact(self) -> CSRGraph:
        """Fold the deltas into a fresh CSR, bit-identical to a fresh build.

        The merge is one vectorised pass: surviving base edges and delta
        edges are concatenated and stably sorted by (src, dst) — the same
        order :func:`~repro.graph.builders.from_edge_list` produces for the
        same edge multiset (parallel base copies keep their base-relative
        order through the stable sort), so ``indptr``/``indices``/
        ``weights``/``labels`` come out bit-identical to building the graph
        from scratch at this version.
        """
        base = self.base
        if self._removed_pos.size == 0 and self._add_src.size == 0:
            return base
        keep = np.ones(base.num_edges, dtype=bool)
        keep[self._removed_pos] = False
        base_src = np.repeat(np.arange(base.num_nodes, dtype=np.int64), base.degrees())

        src = np.concatenate([base_src[keep], self._add_src])
        dst = np.concatenate([base.indices[keep], self._add_dst])
        w = np.concatenate([base.weights[keep], self._add_w])
        lbl = (
            np.concatenate([base.labels[keep], self._add_lbl])
            if base.labels is not None
            else None
        )
        order = np.lexsort((dst, src))
        indptr = np.zeros(base.num_nodes + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRGraph(
            indptr=indptr,
            indices=dst[order],
            weights=w[order],
            labels=None if lbl is None else lbl[order],
            name=base.name,
        )

    def snapshot(self) -> CSRGraph:
        """The compacted CSR of this version, built once and cached.

        Version 0 returns the base graph itself — a frozen-graph caller
        wrapping its CSR in a :class:`DeltaCSRGraph` pays nothing until the
        first delta.
        """
        if self._snapshot is None:
            self._snapshot = self.compact()
        return self._snapshot

    def memory_footprint_bytes(self, weight_bytes: int = 8) -> int:
        """Base footprint plus the overlay's resident delta arrays."""
        per_add = 8 + 8 + weight_bytes + (8 if self.has_labels else 0)
        return int(
            self.base.memory_footprint_bytes(weight_bytes)
            + self._add_src.size * per_add
            + self._add_indptr.size * 8
            + self._removed_pos.size * 8
        )

    # ------------------------------------------------------------------ #
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise GraphError(f"node {node} out of range [0, {self.num_nodes})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaCSRGraph(v{self.version}, {self.num_nodes} nodes, "
            f"{self.num_edges} edges = base {self.base.num_edges} "
            f"+ {self.num_delta_edges} - {self.num_removed_edges})"
        )
