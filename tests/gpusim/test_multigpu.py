"""Tests for multi-GPU partitioning and execution."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpusim.device import A6000
from repro.gpusim.multigpu import MultiGPUExecutor, partition_queries


@pytest.fixture
def device():
    return dataclasses.replace(A6000, parallel_lanes=8, atomic_ns=0.0)


class TestPartitioning:
    def test_partitions_cover_all_queries(self):
        starts = np.arange(100)
        parts = partition_queries(starts, 4, policy="hash")
        combined = np.sort(np.concatenate(parts))
        assert np.array_equal(combined, np.arange(100))

    def test_range_policy_contiguous_and_balanced(self):
        parts = partition_queries(np.arange(100), 4, policy="range")
        sizes = [p.size for p in parts]
        assert sizes == [25, 25, 25, 25]
        assert np.array_equal(parts[0], np.arange(25))

    def test_hash_policy_roughly_balanced(self):
        parts = partition_queries(np.arange(4000), 4, policy="hash")
        sizes = np.array([p.size for p in parts])
        assert sizes.min() > 800

    def test_hash_deterministic(self):
        a = partition_queries(np.arange(50), 3, policy="hash")
        b = partition_queries(np.arange(50), 3, policy="hash")
        for x, y in zip(a, b, strict=False):
            assert np.array_equal(x, y)

    def test_single_gpu_gets_everything(self):
        parts = partition_queries(np.arange(10), 1)
        assert parts[0].size == 10

    def test_invalid_policy_rejected(self):
        with pytest.raises(SimulationError):
            partition_queries(np.arange(10), 2, policy="round-robin")

    def test_zero_gpus_rejected(self):
        with pytest.raises(SimulationError):
            partition_queries(np.arange(10), 0)

    def test_balanced_policy_packs_by_cost(self):
        # One heavy query and seven light ones: LPT puts the heavy query
        # alone on one device and spreads the light ones over the other.
        costs = np.array([100.0, 1, 1, 1, 1, 1, 1, 1])
        parts = partition_queries(np.arange(8), 2, policy="balanced", costs=costs)
        loads = sorted(costs[p].sum() for p in parts)
        assert loads == [7.0, 100.0]

    def test_balanced_policy_deterministic(self):
        rng = np.random.default_rng(3)
        costs = rng.uniform(1, 50, size=64)
        a = partition_queries(np.arange(64), 4, policy="balanced", costs=costs)
        b = partition_queries(np.arange(64), 4, policy="balanced", costs=costs)
        for x, y in zip(a, b, strict=False):
            assert np.array_equal(x, y)

    def test_balanced_policy_requires_costs(self):
        with pytest.raises(SimulationError):
            partition_queries(np.arange(10), 2, policy="balanced")

    def test_balanced_policy_rejects_mismatched_costs(self):
        with pytest.raises(SimulationError):
            partition_queries(np.arange(10), 2, policy="balanced", costs=np.ones(4))

    def test_more_gpus_than_queries_yields_empty_partitions(self):
        """Defined behavior: surplus devices get zero-length index arrays."""
        for policy in ("hash", "range", "balanced"):
            parts = partition_queries(
                np.arange(3), 8, policy=policy, costs=np.ones(3)
            )
            assert len(parts) == 8
            combined = np.sort(np.concatenate(parts))
            assert np.array_equal(combined, np.arange(3))
            # At most 3 devices can be occupied (hash may collide onto fewer).
            assert sum(p.size == 0 for p in parts) >= 5


class TestMultiGPUExecutor:
    def test_more_gpus_never_slower(self, device):
        per_query = np.random.default_rng(0).uniform(5, 15, size=200)
        starts = np.arange(200)
        times = []
        for gpus in (1, 2, 4):
            result = MultiGPUExecutor(device, gpus).execute(per_query, starts)
            times.append(result.time_ns)
        assert times[1] <= times[0]
        assert times[2] <= times[1]

    def test_speedup_roughly_linear_for_uniform_work(self, device):
        per_query = np.full(512, 10.0)
        starts = np.arange(512)
        single = MultiGPUExecutor(device, 1).execute(per_query, starts)
        quad = MultiGPUExecutor(device, 4).execute(per_query, starts)
        assert quad.speedup_over(single.time_ns) > 2.5

    def test_mismatched_arrays_rejected(self, device):
        with pytest.raises(SimulationError):
            MultiGPUExecutor(device, 2).execute(np.ones(5), np.arange(4))

    def test_per_gpu_results_exposed(self, device):
        result = MultiGPUExecutor(device, 3).execute(np.ones(30), np.arange(30))
        assert len(result.per_gpu) == 3

    def test_load_imbalance_reported(self, device):
        per_query = np.ones(64)
        result = MultiGPUExecutor(device, 4).execute(per_query, np.arange(64))
        assert result.load_imbalance >= 1.0

    def test_load_imbalance_ignores_idle_devices(self, device):
        """Empty partitions must not inflate the imbalance statistic.

        Two uniform queries on eight devices: the two working devices are
        perfectly balanced, so the imbalance is 1.0 even though six devices
        idle (the old all-device mean reported 4.0 here).
        """
        result = MultiGPUExecutor(device, 8).execute(
            np.ones(2), np.arange(2), policy="range"
        )
        occupied = [r for r in result.per_gpu if r.num_queries > 0]
        assert len(occupied) == 2
        assert result.load_imbalance == pytest.approx(1.0)

    def test_load_imbalance_all_idle_is_unity(self, device):
        result = MultiGPUExecutor(device, 4).execute(
            np.zeros(0), np.zeros(0, dtype=np.int64)
        )
        assert result.load_imbalance == 1.0
        assert result.time_ns == 0.0

    def test_balanced_policy_packs_measured_times(self, device):
        """The cost-array path gives 'balanced' the real per-query times."""
        per_query = np.array([100.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        balanced = MultiGPUExecutor(device, 2).execute(
            per_query, np.arange(6), policy="balanced"
        )
        range_result = MultiGPUExecutor(device, 2).execute(
            per_query, np.arange(6), policy="range"
        )
        assert balanced.time_ns <= range_result.time_ns
        assert balanced.load_imbalance <= range_result.load_imbalance
