"""Tests for aggregate statistics helpers."""

from __future__ import annotations

import pytest

from repro.errors import BenchmarkError
from repro.stats.summary import geometric_mean, normalize_to, speedup


class TestGeometricMean:
    def test_single_value(self):
        assert geometric_mean([4.0]) == pytest.approx(4.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_order_invariant(self):
        assert geometric_mean([2.0, 8.0, 1.0]) == pytest.approx(geometric_mean([8.0, 1.0, 2.0]))

    def test_rejects_empty(self):
        with pytest.raises(BenchmarkError):
            geometric_mean([])

    def test_rejects_non_positive(self):
        with pytest.raises(BenchmarkError):
            geometric_mean([1.0, 0.0])


class TestSpeedup:
    def test_basic(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)

    def test_rejects_zero_new_time(self):
        with pytest.raises(BenchmarkError):
            speedup(10.0, 0.0)


class TestNormalizeTo:
    def test_reference_becomes_one(self):
        values = {"a": 2.0, "b": 4.0}
        normalized = normalize_to(values, "a")
        assert normalized["a"] == pytest.approx(1.0)
        assert normalized["b"] == pytest.approx(2.0)

    def test_missing_reference_rejected(self):
        with pytest.raises(BenchmarkError):
            normalize_to({"a": 1.0}, "z")

    def test_non_positive_reference_rejected(self):
        with pytest.raises(BenchmarkError):
            normalize_to({"a": 0.0}, "a")
