"""CI-facing lint CLIs: exit codes and rule-id output.

``scripts/lint_spec.py --all-builtin`` and ``scripts/lint_internal.py`` are
the two commands the CI lint job runs; these tests pin their contract —
exit 0 on a clean tree, exit 1 with rule ids printed on violations.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "spec_fixtures.py"


def run_script(script: str, *args: str, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / script), *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_lint_spec_all_builtin_passes():
    proc = run_script("lint_spec.py", "--all-builtin")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "no ERROR diagnostics" in proc.stdout


def test_lint_spec_fails_on_fixture_module_with_rule_ids():
    proc = run_script("lint_spec.py", str(FIXTURES))
    assert proc.returncode == 1, proc.stdout + proc.stderr
    # Every rule family is represented in the output, by id.
    for rule in (
        "determinism/unseeded-rng",
        "cache-safety/batch-state-divergence",
        "registry-keys/unkeyed-attribute",
    ):
        assert rule in proc.stdout


def test_lint_internal_passes_on_src_repro():
    proc = run_script("lint_internal.py")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "no invariant violations" in proc.stdout


def test_lint_internal_fails_on_synthetic_violation(tmp_path):
    bad = tmp_path / "src" / "repro" / "runtime" / "rogue.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nt0 = time.time()\n")
    proc = run_script("lint_internal.py", str(bad))
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "internal/wall-clock" in proc.stdout
