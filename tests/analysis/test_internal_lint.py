"""Internal invariant linter: each repo invariant fails on a synthetic
violation, and the shipped ``src/repro`` tree passes clean."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import Severity, lint_paths, lint_source

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def rules_of(diagnostics):
    return {d.rule for d in diagnostics}


class TestUnseededRngInvariant:
    def test_unseeded_factory_fails(self):
        diags = lint_source(
            "import numpy as np\nrng = np.random.default_rng()\n",
            "src/repro/sampling/fresh.py",
        )
        assert "internal/unseeded-rng" in rules_of(diags)
        assert any(d.severity is Severity.ERROR for d in diags)

    def test_module_stream_fails(self):
        diags = lint_source(
            "import random\nx = random.random()\n",
            "src/repro/runtime/fresh.py",
        )
        assert "internal/unseeded-rng" in rules_of(diags)

    def test_seeded_factory_passes(self):
        diags = lint_source(
            "import numpy as np\nrng = np.random.default_rng(42)\n",
            "src/repro/sampling/fresh.py",
        )
        assert diags == ()


class TestWallClockInvariant:
    def test_wall_clock_in_runtime_fails(self):
        diags = lint_source(
            "import time\nt0 = time.perf_counter()\n",
            "src/repro/runtime/fresh.py",
        )
        assert "internal/wall-clock" in rules_of(diags)

    def test_wall_clock_in_bench_is_exempt(self):
        src = "import time\nt0 = time.perf_counter()\n"
        assert lint_source(src, "src/repro/bench/fresh.py") == ()
        assert lint_source(src, "scripts/fresh.py") == ()


class TestCacheContractInvariant:
    def test_graph_cache_attr_outside_contract_fails(self):
        diags = lint_source(
            "def poke(graph):\n    graph._edge_key_cache = None\n",
            "src/repro/service/fresh.py",
        )
        assert "internal/cache-contract" in rules_of(diags)

    def test_transition_cache_internals_outside_contract_fail(self):
        diags = lint_source(
            "def poke(cache):\n    return cache._weights\n",
            "src/repro/runtime/fresh.py",
        )
        assert "internal/cache-contract" in rules_of(diags)

    def test_owning_modules_are_allowed(self):
        src = "def repair(graph):\n    graph._edge_key_cache = None\n"
        assert lint_source(src, "src/repro/graph/invalidation.py") == ()
        assert lint_source(src, "src/repro/graph/csr.py") == ()


class TestLinterMechanics:
    def test_syntax_error_is_reported_not_raised(self):
        diags = lint_source("def broken(:\n", "src/repro/fresh.py")
        assert rules_of(diags) == {"internal/syntax-error"}

    def test_inline_suppression_honoured(self):
        diags = lint_source(
            "import time\nt0 = time.time()  # repro: ignore[internal/wall-clock]\n",
            "src/repro/runtime/fresh.py",
        )
        assert diags == ()

    def test_src_repro_passes_clean(self):
        diags = lint_paths([REPO_SRC])
        errors = [d for d in diags if d.severity >= Severity.ERROR]
        assert errors == [], [d.format() for d in errors]
