"""The first-order cost model of Flexi-Runtime (Eq. 9–11).

Both optimised kernels are memory-dominated, so their costs are modelled as
edge-weight memory accesses:

* eRVS scans the neighbour list once:
  ``Cost_RVS = EdgeCost_RVS · degree``                          (Eq. 9)
* eRJS probes random candidates until one is accepted; the expected number of
  probes is the proposal rectangle's area over its accepted area:
  ``Cost_RJS = EdgeCost_RJS · degree · max(w̃) / Σ w̃``          (Eq. 10)

Dividing the two yields the per-node selection rule (Eq. 11): prefer eRJS iff
``(EdgeCost_RJS / EdgeCost_RVS) · max(w̃) < Σ w̃``.  The only hardware
parameter is the cost ratio, profiled at start-up (Section 5.1); ``max`` and
``Σ`` come from the compiler-generated estimation helpers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RuntimeSelectionError


@dataclass(frozen=True)
class CostModel:
    """First-order memory-access cost model for the two optimised kernels.

    Attributes
    ----------
    edge_cost_ratio:
        ``EdgeCost_RJS / EdgeCost_RVS`` — how much more an uncoalesced
        rejection probe costs than one coalesced reservoir-scan element.
        Profiled on the target device; ~8 on the A6000 preset.
    """

    edge_cost_ratio: float = 8.0

    def __post_init__(self) -> None:
        if self.edge_cost_ratio <= 0:
            raise RuntimeSelectionError("edge cost ratio must be positive")

    # ------------------------------------------------------------------ #
    def cost_rvs(self, degree: int) -> float:
        """Relative cost of eRVS on a node of the given degree (Eq. 9)."""
        return float(max(degree, 0))

    def cost_rjs(self, degree: int, max_weight: float, sum_weight: float) -> float:
        """Relative cost of eRJS given the node's weight statistics (Eq. 10)."""
        if sum_weight <= 0 or max_weight <= 0:
            return float("inf")
        return self.edge_cost_ratio * degree * max_weight / sum_weight

    def prefer_rjs(self, max_weight: float | None, sum_weight: float | None) -> bool:
        """The per-node selection rule of Eq. 11.

        Missing estimates (``None``) disqualify rejection sampling — without
        a bound eRJS would have to fall back to a max reduction, at which
        point eRVS is never worse.
        """
        if max_weight is None or sum_weight is None:
            return False
        if max_weight <= 0 or sum_weight <= 0:
            return False
        return self.edge_cost_ratio * max_weight < sum_weight

    def expected_trials(self, degree: int, max_weight: float, sum_weight: float) -> float:
        """Expected rejection trials: proposal area over accepted area."""
        if sum_weight <= 0 or max_weight <= 0 or degree <= 0:
            return float("inf")
        return degree * max_weight / sum_weight
