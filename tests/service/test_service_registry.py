"""WalkService registry bounds: the per-workload caches must not leak.

Each distinct ``spec.describe()`` key pins a compiled workload, profiling
results and an :class:`~repro.runtime.engine.EngineCaches` holder (hint
tables + transition caches, up to O(graph) each).  A long-lived multi-tenant
service therefore needs the registries capped: least-recently-used entries
are evicted and simply re-compiled on demand.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import FlexiWalkerConfig
from repro.errors import ServiceError
from repro.gpusim.device import A6000
from repro.service import DeviceFleet, WalkService
from repro.service.service import DEFAULT_MAX_CACHED_WORKLOADS
from repro.walks.node2vec import Node2VecSpec
from repro.walks.state import make_queries

DEVICE = dataclasses.replace(A6000, parallel_lanes=8)


def spec_variant(i: int) -> Node2VecSpec:
    """Distinct hyperparameters -> distinct registry keys."""
    return Node2VecSpec(a=1.0 + i, b=0.5)


class TestRegistryLRU:
    def test_default_cap_is_bounded(self, service_graph):
        service = WalkService(service_graph)
        assert service.max_cached_workloads == DEFAULT_MAX_CACHED_WORKLOADS

    def test_cap_must_be_positive(self, service_graph):
        with pytest.raises(ServiceError):
            WalkService(service_graph, max_cached_workloads=0)

    def test_old_entries_are_evicted_and_recompiled_on_demand(self, service_graph):
        service = WalkService(
            service_graph, fleet=DeviceFleet(DEVICE, 1), max_cached_workloads=2
        )
        first = service.compile(spec_variant(0))
        service.compile(spec_variant(1))
        service.compile(spec_variant(2))  # evicts variant 0

        assert len(service._compiled) == 2
        key0 = service._registry_key(spec_variant(0))
        assert key0 not in service._compiled
        # The evicted workload still works — it is compiled afresh.
        recompiled = service.compile(spec_variant(0))
        assert recompiled is not first
        assert key0 in service._compiled

    def test_lookup_refreshes_recency(self, service_graph):
        service = WalkService(
            service_graph, fleet=DeviceFleet(DEVICE, 1), max_cached_workloads=2
        )
        kept = service.compile(spec_variant(0))
        service.compile(spec_variant(1))
        # Touch variant 0 so variant 1 is now the least recently used...
        assert service.compile(spec_variant(0)) is kept
        service.compile(spec_variant(2))
        # ...and is the one evicted.
        assert service._registry_key(spec_variant(0)) in service._compiled
        assert service._registry_key(spec_variant(1)) not in service._compiled

    def test_every_registry_is_capped(self, service_graph):
        service = WalkService(
            service_graph, fleet=DeviceFleet(DEVICE, 1), max_cached_workloads=2
        )
        for i in range(4):
            session = service.session(
                spec_variant(i), FlexiWalkerConfig(device=DEVICE)
            )
            session.submit(make_queries(service_graph.num_nodes, walk_length=2,
                                        num_queries=4, seed=i))
            session.collect()
            session.close()
        assert len(service._compiled) == 2
        assert len(service._profiles) == 2
        assert len(service._caches) == 2

    def test_unbounded_when_cap_is_none(self, service_graph):
        service = WalkService(
            service_graph, fleet=DeviceFleet(DEVICE, 1), max_cached_workloads=None
        )
        for i in range(5):
            service.compile(spec_variant(i))
        assert len(service._compiled) == 5

    def test_describe_reports_the_cap(self, service_graph):
        service = WalkService(service_graph, max_cached_workloads=3)
        assert service.describe()["max_cached_workloads"] == 3


class TestRegistryPinning:
    """Eviction must never drop entries a live session still executes against."""

    def test_open_session_entries_survive_eviction_pressure(self, service_graph):
        service = WalkService(
            service_graph, fleet=DeviceFleet(DEVICE, 1), max_cached_workloads=1
        )
        session = service.session(spec_variant(0), FlexiWalkerConfig(device=DEVICE))
        pinned_key = service._registry_key(spec_variant(0))
        pinned_caches = service._caches[pinned_key]
        # Churn enough other workloads through the registries to evict
        # everything unpinned several times over.
        for i in range(1, 5):
            other = service.session(spec_variant(i), FlexiWalkerConfig(device=DEVICE))
            other.submit(make_queries(service_graph.num_nodes, walk_length=2,
                                      num_queries=4, seed=i))
            other.collect()
            other.close()
        assert pinned_key in service._compiled
        assert service._caches[pinned_key] is pinned_caches
        # The pinned session still runs correctly after all the churn.
        session.submit(make_queries(service_graph.num_nodes, walk_length=3,
                                    num_queries=4, seed=0))
        result = session.collect()
        assert len(result.paths) == 4

    def test_entries_become_evictable_once_the_session_is_collected(
        self, service_graph
    ):
        service = WalkService(
            service_graph, fleet=DeviceFleet(DEVICE, 1), max_cached_workloads=1
        )
        session = service.session(spec_variant(0), FlexiWalkerConfig(device=DEVICE))
        key0 = service._registry_key(spec_variant(0))
        assert service._pins.get(key0, 0) == 1
        session.close()
        assert service._pins.get(key0, 0) == 0
        session.close()  # idempotent
        service.compile(spec_variant(1))
        assert key0 not in service._compiled  # evicted normally again

    def test_all_pinned_overshoots_instead_of_evicting(self, service_graph):
        service = WalkService(
            service_graph, fleet=DeviceFleet(DEVICE, 1), max_cached_workloads=1
        )
        sessions = [
            service.session(spec_variant(i), FlexiWalkerConfig(device=DEVICE))
            for i in range(3)
        ]
        # Cap is 1 but all three keys are pinned: the registry overshoots
        # rather than stranding a live session.
        assert len(service._caches) == 3
        for i in range(3):
            assert service._registry_key(spec_variant(i)) in service._caches
        for open_session in sessions:
            open_session.close()
        service.compile(spec_variant(3))
        assert len(service._compiled) == 1
