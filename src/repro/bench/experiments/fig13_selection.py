"""Fig. 13 — sensitivity to the sampling-strategy selection policy.

Weighted Node2Vec with uniform weights on every configured dataset, comparing
three ways of choosing between eRJS and eRVS per step: uniformly at random,
by a degree threshold, and by FlexiWalker's cost model.  Speedups are
reported relative to the degree-based policy, as in the figure.

Expected shape (paper): the cost model wins everywhere — geomean 15.9x over
random and 2.66x over degree-based selection.
"""

from __future__ import annotations

from repro.bench.config import ExperimentConfig
from repro.bench.runner import prepare_graph, prepare_queries, run_flexiwalker
from repro.bench.tables import format_table
from repro.stats.summary import geometric_mean

WORKLOAD = "node2vec"
POLICIES = ("random", "degree", "cost_model")


def run_experiment(config: ExperimentConfig | None = None) -> dict:
    """Execute the selection-strategy sensitivity study."""
    config = config or ExperimentConfig.quick()
    rows: list[dict] = []
    speedup_vs_random: list[float] = []
    speedup_vs_degree: list[float] = []

    for dataset in config.datasets:
        graph = prepare_graph(dataset, WORKLOAD, weights="uniform")
        queries = prepare_queries(graph, WORKLOAD, config)
        times: dict[str, float] = {}
        for policy in POLICIES:
            run = run_flexiwalker(
                dataset, WORKLOAD, config, graph=graph, queries=queries,
                selection=policy, check_memory=False,
            )
            times[policy] = run.time_ms
        rows.append(
            {
                "dataset": dataset,
                "random_ms": times["random"],
                "degree_ms": times["degree"],
                "cost_model_ms": times["cost_model"],
                "speedup_vs_random": times["random"] / times["cost_model"],
                "speedup_vs_degree": times["degree"] / times["cost_model"],
            }
        )
        speedup_vs_random.append(times["random"] / times["cost_model"])
        speedup_vs_degree.append(times["degree"] / times["cost_model"])

    summary = {
        "geomean_speedup_vs_random": geometric_mean(speedup_vs_random),
        "geomean_speedup_vs_degree": geometric_mean(speedup_vs_degree),
    }
    return {
        "rows": rows,
        "summary": summary,
        "config": config,
        "paper_reference": "Figure 13: selection strategies; paper geomeans 15.86x (random), 2.66x (degree-based)",
    }


def format_result(result: dict) -> str:
    headers = ["dataset", "random_ms", "degree_ms", "cost_model_ms", "speedup_vs_random", "speedup_vs_degree"]
    table = format_table(headers, [[row[h] for h in headers] for row in result["rows"]],
                         title="Fig. 13 — sampling-selection strategy sensitivity")
    summary = result["summary"]
    return "\n".join(
        [
            table,
            "",
            f"Geomean speedup over random selection:       {summary['geomean_speedup_vs_random']:.2f}x",
            f"Geomean speedup over degree-based selection: {summary['geomean_speedup_vs_degree']:.2f}x",
        ]
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_result(run_experiment()))


if __name__ == "__main__":  # pragma: no cover
    main()
