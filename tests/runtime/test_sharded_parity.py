"""Sharded-vs-replicated parity: graph placement cannot change any walk.

The sharded driver executes the same fused superstep loop as every other
mode — sharding only decides *where* each step's work lands and what
interconnect traffic it generates.  These tests enforce the acceptance
contract: bit-identical paths, counter totals and per-query base times
against the replicated run for every shard count × shard policy, with only
the communication term and the makespan allowed to differ; plus the
dead-end-on-a-remote-shard edge case and the session-layer exactness of the
sharded accounting.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.compiler.generator import compile_workload
from repro.core.config import FlexiWalkerConfig
from repro.errors import SimulationError
from repro.gpusim.device import A6000
from repro.graph.builders import from_edge_list
from repro.graph.generators import barabasi_albert_graph
from repro.graph.labels import random_edge_labels
from repro.graph.sharded import SHARD_POLICIES, ShardedCSRGraph
from repro.graph.weights import uniform_weights
from repro.runtime.engine import WalkEngine
from repro.runtime.frontier import WALKER_MIGRATION_BYTES
from repro.runtime.selector import CostModelSelector
from repro.service import DeviceFleet, WalkService
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.metapath import MetaPathSpec
from repro.walks.node2vec import Node2VecSpec
from repro.walks.second_order_pr import SecondOrderPRSpec
from repro.walks.state import make_queries

DEVICE = dataclasses.replace(A6000, parallel_lanes=8)
WORKLOADS = {
    "deepwalk": DeepWalkSpec,
    "node2vec": Node2VecSpec,
    "second_order_pr": SecondOrderPRSpec,
    "metapath": lambda: MetaPathSpec(schema=(0, 1, 2)),
}


def labeled_graph(num_nodes: int = 60, seed: int = 3):
    graph = barabasi_albert_graph(num_nodes, 3, seed=seed, name=f"sharded-{seed}")
    graph = graph.with_weights(uniform_weights(graph, seed=seed))
    return graph.with_labels(random_edge_labels(graph, num_labels=4, seed=seed))


def make_engine(graph, spec, num_devices=1, placement="replicated",
                shard_policy="contiguous", seed=0, ghost_cache_bytes=0):
    compiled = compile_workload(spec, graph)
    return WalkEngine(
        graph=graph,
        spec=spec,
        device=DEVICE,
        selector=CostModelSelector(),
        compiled=compiled,
        seed=seed,
        selection_overhead=True,
        warp_switch_overhead=True,
        num_devices=num_devices,
        graph_placement=placement,
        shard_policy=shard_policy,
        ghost_cache_bytes=ghost_cache_bytes,
    )


def assert_base_parity(baseline, result):
    """Everything but communication and makespan must match exactly."""
    assert result.paths == baseline.paths
    assert result.sampler_usage == baseline.sampler_usage
    assert result.total_steps == baseline.total_steps
    assert result.counters.as_dict() == baseline.counters.as_dict()
    assert np.array_equal(result.per_query_ns, baseline.per_query_ns)


class TestShardedParityMatrix:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("shard_policy", SHARD_POLICIES)
    @pytest.mark.parametrize("num_devices", [2, 4])
    def test_base_quantities_identical_to_replicated(
        self, workload, shard_policy, num_devices
    ):
        graph = labeled_graph()
        spec = WORKLOADS[workload]()
        queries = make_queries(graph.num_nodes, walk_length=6, num_queries=32, seed=0)
        replicated = make_engine(graph, spec, num_devices, "replicated").run(queries)
        sharded = make_engine(
            graph, spec, num_devices, "sharded", shard_policy
        ).run(queries)
        assert_base_parity(replicated, sharded)
        assert sharded.graph_placement == "sharded"
        assert sharded.shard_policy == shard_policy
        assert len(sharded.device_kernels) == num_devices
        # The shard decomposition only adds the communication term.
        assert sharded.comm_time_ns >= 0.0
        assert 0.0 <= sharded.remote_edge_ratio <= 1.0
        assert replicated.comm_time_ns == 0.0
        assert replicated.remote_steps == 0

    def test_per_device_counters_fold_back_to_the_aggregate(self):
        graph = labeled_graph(seed=9)
        spec = Node2VecSpec()
        queries = make_queries(graph.num_nodes, walk_length=5, num_queries=24, seed=1)
        result = make_engine(graph, spec, 4, "sharded", "degree_balanced").run(queries)
        for name, total in result.counters.as_dict().items():
            assert sum(k.counters.as_dict()[name] for k in result.device_kernels) == total
        assert sum(k.num_queries for k in result.device_kernels) >= len(queries)

    def test_comm_term_prices_coalesced_migration_batches(self):
        graph = labeled_graph(seed=5)
        spec = DeepWalkSpec()
        queries = make_queries(graph.num_nodes, walk_length=6, seed=0)
        result = make_engine(graph, spec, 4, "sharded").run(queries)
        # Migrations taking the same (step, src, dst) lane coalesce into one
        # transfer: one latency per batch, payload priced per walker.
        per_walker = WALKER_MIGRATION_BYTES / DEVICE.interconnect_bytes_per_ns
        expected = (
            result.migration_batches * DEVICE.interconnect_latency_ns
            + result.remote_steps * per_walker
        )
        assert 0 < result.migration_batches <= result.remote_steps
        assert result.comm_time_ns == pytest.approx(expected)
        # Coalescing can only help: the batched bill never exceeds the
        # one-transfer-per-walker bill.
        migration = DEVICE.migration_time_ns(WALKER_MIGRATION_BYTES)
        assert result.comm_time_ns <= result.remote_steps * migration + 1e-6
        assert result.per_query_comm_ns is not None
        assert result.per_query_comm_ns.sum() == pytest.approx(result.comm_time_ns)
        assert sum(k.comm_ns for k in result.device_kernels) == pytest.approx(
            result.comm_time_ns
        )
        # Each device overlaps communication with compute: its time is the
        # max of the two, and the run's makespan is the slowest device.
        for k in result.device_kernels:
            if k.num_queries:
                assert k.time_ns == pytest.approx(
                    max(float(k.lane_times_ns.max()), k.comm_ns)
                )
        assert result.kernel.time_ns == max(k.time_ns for k in result.device_kernels)

    def test_single_shard_has_no_remote_steps(self):
        graph = labeled_graph(seed=7)
        sharded = ShardedCSRGraph.build(graph, 1)
        assert sharded.remote_edge_fraction() == 0.0

    def test_sharded_requires_batched_execution(self):
        graph = labeled_graph(seed=11)
        with pytest.raises(SimulationError):
            WalkEngine(
                graph=graph,
                spec=DeepWalkSpec(),
                device=DEVICE,
                execution="scalar",
                num_devices=2,
                graph_placement="sharded",
            )
        scalar_engine = WalkEngine(
            graph=graph, spec=DeepWalkSpec(), device=DEVICE, execution="scalar"
        )
        with pytest.raises(SimulationError):
            scalar_engine.with_devices(2, graph_placement="sharded")

    def test_engine_rejects_unknown_placement_and_policy(self):
        graph = labeled_graph(seed=11)
        with pytest.raises(SimulationError):
            WalkEngine(graph=graph, spec=DeepWalkSpec(), graph_placement="mirrored")
        with pytest.raises(SimulationError):
            WalkEngine(graph=graph, spec=DeepWalkSpec(), shard_policy="hashed")


class TestDeadEndOnRemoteShard:
    def test_walker_migrates_then_terminates_without_further_charges(self):
        # Shards (2, contiguous over 4 nodes): shard 0 owns {0, 1}, shard 1
        # owns {2, 3}.  Node 2 is a dead end, so a walk from node 0 crosses
        # the boundary once and dies on the remote shard.
        graph = from_edge_list([(0, 2), (1, 0), (3, 0)], num_nodes=4, name="dead-end")
        spec = DeepWalkSpec()
        queries = make_queries(4, walk_length=5, start_nodes=np.array([0]))

        replicated = make_engine(graph, spec, 2, "replicated").run(queries)
        sharded = make_engine(graph, spec, 2, "sharded").run(queries)
        assert_base_parity(replicated, sharded)
        assert sharded.paths == [[0, 2]]
        # Exactly one boundary crossing: the 0 -> 2 step.  The dead-end
        # termination on shard 1 charges nothing — no step, no migration.
        assert sharded.remote_steps == 1
        migration = DEVICE.migration_time_ns(WALKER_MIGRATION_BYTES)
        assert sharded.comm_time_ns == pytest.approx(migration)
        assert sharded.per_query_comm_ns[0] == pytest.approx(migration)
        # The one walk step executed on shard 0; shard 1 ran no tasks.
        assert sharded.device_kernels[1].num_queries == 0
        assert sharded.device_kernels[1].comm_ns == 0.0

    def test_zero_weight_termination_is_not_a_migration(self):
        # Node 1 (remote from node 0's shard in a 2-shard split) has a
        # single all-zero-weight edge: the walker migrates onto it, then
        # fails to sample and terminates where it stands.
        # CSR edge order (sorted by source): (0,2), (1,3), (2,1), (3,0).
        graph = from_edge_list([(0, 2), (2, 1), (1, 3), (3, 0)], num_nodes=4)
        graph = graph.with_weights(np.array([1.0, 0.0, 1.0, 1.0]))
        spec = DeepWalkSpec()
        queries = make_queries(4, walk_length=5, start_nodes=np.array([0]))
        sharded = make_engine(graph, spec, 2, "sharded").run(queries)
        # 0 -> 2 crosses (shard0 -> shard1), 2 -> 1 crosses back, then the
        # zero-weight step at node 1 charges a step but no migration.
        assert sharded.paths == [[0, 2, 1]]
        assert sharded.remote_steps == 2


class TestGhostCacheParity:
    @pytest.mark.parametrize("workload", ["deepwalk", "node2vec"])
    @pytest.mark.parametrize("shard_policy", ["contiguous", "locality"])
    def test_ghost_cache_changes_no_walk(self, workload, shard_policy):
        graph = labeled_graph(seed=23)
        spec = WORKLOADS[workload]()
        queries = make_queries(graph.num_nodes, walk_length=6, num_queries=32, seed=0)
        replicated = make_engine(graph, spec, 4, "replicated").run(queries)
        ghosted = make_engine(
            graph, spec, 4, "sharded", shard_policy, ghost_cache_bytes=4_000
        ).run(queries)
        assert_base_parity(replicated, ghosted)
        assert 0.0 <= ghosted.ghost_hit_ratio <= 1.0

    def test_ghost_hits_absorb_migrations(self):
        graph = labeled_graph(seed=23)
        spec = DeepWalkSpec()
        queries = make_queries(graph.num_nodes, walk_length=6, num_queries=32, seed=0)
        plain = make_engine(graph, spec, 4, "sharded").run(queries)
        ghosted = make_engine(
            graph, spec, 4, "sharded", ghost_cache_bytes=4_000
        ).run(queries)
        assert plain.ghost_hits == 0
        assert plain.ghost_hit_ratio == 0.0
        assert ghosted.ghost_hits > 0
        # Hits absorb boundary crossings that would otherwise migrate.  (The
        # two runs count crossings against different host trajectories, so
        # the populations need not sum exactly.)
        assert ghosted.remote_steps < plain.remote_steps
        assert ghosted.comm_time_ns < plain.comm_time_ns

    def test_unbounded_budget_eliminates_all_traffic(self):
        graph = labeled_graph(seed=29)
        spec = DeepWalkSpec()
        queries = make_queries(graph.num_nodes, walk_length=5, num_queries=16, seed=1)
        result = make_engine(
            graph, spec, 2, "sharded", ghost_cache_bytes=10**9
        ).run(queries)
        assert result.remote_steps == 0
        assert result.comm_time_ns == 0.0
        assert result.migration_batches == 0
        if result.ghost_hits:
            assert result.ghost_hit_ratio == 1.0


class TestShardedThroughTheService:
    def make_service(self, graph, count=4):
        # A device too small for the whole graph: negotiation must shard.
        small = dataclasses.replace(
            DEVICE, memory_bytes=max(1, graph.memory_footprint_bytes() // count)
        )
        return WalkService(graph, fleet=DeviceFleet(small, count)), small

    def test_negotiated_sharded_session_matches_oneshot_engine(self):
        graph = labeled_graph(seed=13)
        service, small = self.make_service(graph)
        config = FlexiWalkerConfig(device=small, num_devices=4)
        session = service.session(Node2VecSpec(), config)
        assert session.plan.graph_placement == "sharded"
        queries = make_queries(graph.num_nodes, walk_length=5, num_queries=30, seed=2)
        session.submit(queries)
        collected = session.collect()
        oneshot = session.engine.run(queries)
        assert collected.paths == oneshot.paths
        assert np.array_equal(collected.per_query_ns, oneshot.per_query_ns)
        assert np.array_equal(collected.per_query_comm_ns, oneshot.per_query_comm_ns)
        assert collected.counters.as_dict() == oneshot.counters.as_dict()
        assert collected.kernel.time_ns == oneshot.kernel.time_ns
        assert [k.time_ns for k in collected.device_kernels] == [
            k.time_ns for k in oneshot.device_kernels
        ]

    def test_interleaved_submit_stream_is_exact(self):
        graph = labeled_graph(seed=17)
        service, small = self.make_service(graph)
        config = FlexiWalkerConfig(device=small, num_devices=4)
        queries = make_queries(graph.num_nodes, walk_length=5, num_queries=24, seed=3)

        oneshot = service.session(Node2VecSpec(), config)
        oneshot.submit(queries)
        expected = oneshot.collect()

        interleaved = service.session(Node2VecSpec(), config)
        interleaved.submit(queries[:9])
        seen = 0
        for _chunk in interleaved.stream():
            seen += 1
            if seen == 2:
                break
        interleaved.submit(queries[9:])
        result = interleaved.collect()

        assert result.paths == expected.paths
        assert np.array_equal(result.per_query_ns, expected.per_query_ns)
        assert np.array_equal(result.per_query_comm_ns, expected.per_query_comm_ns)
        assert result.remote_steps == expected.remote_steps
        assert result.kernel.time_ns == expected.kernel.time_ns

    def test_summary_reports_the_sharded_quantities(self):
        graph = labeled_graph(seed=19)
        service, small = self.make_service(graph)
        session = service.session(
            DeepWalkSpec(), FlexiWalkerConfig(device=small, num_devices=4)
        )
        session.submit(make_queries(graph.num_nodes, walk_length=4, num_queries=16))
        summary = session.collect().summary()
        assert summary["graph_placement"] == "sharded"
        assert summary["remote_edge_ratio"] > 0.0
        assert summary["comm_time_ms"] > 0.0
