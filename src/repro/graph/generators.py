"""Synthetic graph generators.

The paper evaluates on ten real-world graphs (Table 1) ranging from 6 M to
3.6 B edges.  Those datasets are not shippable here, so the dataset registry
(:mod:`repro.graph.datasets`) builds *scale models* of each graph from the
generators in this module: Barabási–Albert preferential attachment and an
RMAT-style recursive-matrix generator, both of which reproduce the heavy-
tailed degree distributions that drive the sampling-strategy trade-offs the
paper studies (high-degree nodes favour rejection sampling, skewed weights
favour reservoir sampling).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.builders import from_edge_list
from repro.graph.csr import CSRGraph


def barabasi_albert_graph(
    num_nodes: int,
    edges_per_node: int,
    seed: int = 0,
    name: str = "",
) -> CSRGraph:
    """Barabási–Albert preferential-attachment graph (directed, symmetrised).

    Each new node attaches to ``edges_per_node`` existing nodes with
    probability proportional to their current degree, producing a power-law
    degree distribution similar to social networks (YT, LJ, OK, FS).
    Both edge directions are kept so every node has out-edges to walk along.
    """
    if num_nodes <= edges_per_node:
        raise GraphError("num_nodes must exceed edges_per_node")
    if edges_per_node < 1:
        raise GraphError("edges_per_node must be at least 1")
    rng = np.random.default_rng(seed)

    # repeated_nodes holds one entry per edge endpoint: sampling uniformly
    # from it is sampling proportionally to degree.  It is kept as a plain
    # list and indexed by random positions so each attachment step stays O(m).
    repeated_nodes: list[int] = list(range(edges_per_node))
    edges: list[tuple[int, int]] = []
    for new_node in range(edges_per_node, num_nodes):
        pool_size = len(repeated_nodes)
        targets: set[int] = set()
        while len(targets) < edges_per_node:
            positions = rng.integers(0, pool_size, size=edges_per_node - len(targets))
            targets.update(repeated_nodes[int(p)] for p in positions)
        for t in targets:
            edges.append((new_node, t))
            edges.append((t, new_node))
            repeated_nodes.append(t)
            repeated_nodes.append(new_node)
    return from_edge_list(edges, num_nodes=num_nodes, name=name, deduplicate=True)


def rmat_graph(
    num_nodes: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    name: str = "",
) -> CSRGraph:
    """RMAT (recursive matrix) graph, the generator behind Graph500.

    The probabilities ``(a, b, c, d)`` with ``d = 1 - a - b - c`` control the
    skew; the defaults produce web-graph-like skew (EU, UK, SK, AB, TW scale
    models use this generator).  The number of nodes is rounded up internally
    to a power of two and truncated back, so isolated trailing nodes may have
    zero out-degree — exactly like the real web crawls.
    """
    d = 1.0 - a - b - c
    if d < -1e-9 or min(a, b, c) < 0:
        raise GraphError("RMAT probabilities must be non-negative and sum to at most 1")
    if num_nodes < 2 or num_edges < 1:
        raise GraphError("RMAT graph needs at least 2 nodes and 1 edge")
    rng = np.random.default_rng(seed)

    scale = int(np.ceil(np.log2(num_nodes)))
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    # Each level of the recursion picks one quadrant per edge.
    thresholds = np.array([a, a + b, a + b + c])
    for level in range(scale):
        bit = np.int64(1) << np.int64(scale - 1 - level)
        u = rng.random(num_edges)
        quadrant = np.searchsorted(thresholds, u)
        src_bit = (quadrant >= 2).astype(np.int64)
        dst_bit = (quadrant % 2).astype(np.int64)
        src |= src_bit * bit
        dst |= dst_bit * bit
    src %= num_nodes
    dst %= num_nodes
    keep = src != dst
    edges = np.stack([src[keep], dst[keep]], axis=1)
    return from_edge_list(edges, num_nodes=num_nodes, name=name, deduplicate=True)


def erdos_renyi_graph(num_nodes: int, edge_probability: float, seed: int = 0, name: str = "") -> CSRGraph:
    """Erdős–Rényi G(n, p) directed graph (useful for uniform-degree tests)."""
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError("edge_probability must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    # Sample the number of edges per source row to avoid materialising n^2 bits
    # for large n; for the small graphs used in tests this is exact enough.
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    for v in range(num_nodes):
        mask = rng.random(num_nodes) < edge_probability
        mask[v] = False
        nbrs = np.nonzero(mask)[0]
        srcs.append(np.full(nbrs.size, v, dtype=np.int64))
        dsts.append(nbrs.astype(np.int64))
    if srcs:
        edges = np.stack([np.concatenate(srcs), np.concatenate(dsts)], axis=1)
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    return from_edge_list(edges, num_nodes=num_nodes, name=name)


def star_graph(num_leaves: int, name: str = "star") -> CSRGraph:
    """A hub node 0 connected bidirectionally to ``num_leaves`` leaves.

    The canonical high-degree-node stress test: the hub strongly favours
    rejection sampling in the paper's cost model.
    """
    if num_leaves < 1:
        raise GraphError("star graph needs at least one leaf")
    hub_out = [(0, leaf) for leaf in range(1, num_leaves + 1)]
    leaf_out = [(leaf, 0) for leaf in range(1, num_leaves + 1)]
    return from_edge_list(hub_out + leaf_out, num_nodes=num_leaves + 1, name=name)


def cycle_graph(num_nodes: int, name: str = "cycle") -> CSRGraph:
    """A directed cycle 0 -> 1 -> ... -> n-1 -> 0 (degree-1 everywhere)."""
    if num_nodes < 2:
        raise GraphError("cycle graph needs at least two nodes")
    edges = [(v, (v + 1) % num_nodes) for v in range(num_nodes)]
    return from_edge_list(edges, num_nodes=num_nodes, name=name)


def complete_graph(num_nodes: int, name: str = "complete") -> CSRGraph:
    """A complete directed graph without self loops."""
    if num_nodes < 2:
        raise GraphError("complete graph needs at least two nodes")
    edges = [(v, u) for v in range(num_nodes) for u in range(num_nodes) if u != v]
    return from_edge_list(edges, num_nodes=num_nodes, name=name)
