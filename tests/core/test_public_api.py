"""API-surface snapshot: fail when a public symbol disappears or leaks.

Runs the same checks as ``scripts/check_api_surface.py`` (the lint-job
gate) by importing the script, so the two can never disagree about what the
public surface is.  ``API_SURFACE.json`` at the repository root is the
single frozen source of truth; intentional API changes are recorded with
``PYTHONPATH=src python scripts/check_api_surface.py --update``.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


@pytest.fixture(scope="module")
def surface_checker():
    spec = importlib.util.spec_from_file_location(
        "check_api_surface", REPO_ROOT / "scripts" / "check_api_surface.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def surface(surface_checker):
    # compute_surface() itself asserts the structural invariants:
    # __all__ everywhere, every export resolvable, no private leaks.
    return surface_checker.compute_surface()


class TestPublicApiSurface:
    def test_every_public_module_declares_all(self, surface, surface_checker):
        assert set(surface) == set(surface_checker.PUBLIC_MODULES)

    def test_surface_matches_snapshot(self, surface, surface_checker):
        snapshot_path = surface_checker.SNAPSHOT_PATH
        assert snapshot_path.exists(), (
            "API_SURFACE.json is missing; run "
            "`PYTHONPATH=src python scripts/check_api_surface.py --update`"
        )
        snapshot = json.loads(snapshot_path.read_text())
        problems = surface_checker.diff_surface(surface, snapshot)
        assert not problems, "\n".join(problems)

    def test_every_public_dataclass_importable_from_top_level(
        self, surface, surface_checker
    ):
        assert surface_checker.dataclass_gaps(surface) == []

    def test_star_import_exposes_exactly_all(self):
        import repro

        namespace: dict[str, object] = {}
        exec("from repro import *", namespace)
        exported = {name for name in namespace if not name.startswith("__")}
        expected = {name for name in repro.__all__ if not name.startswith("__")}
        assert exported == expected

    def test_service_surface_importable_from_top_level(self):
        # The serving API is the headline of this redesign; pin its spelling.
        from repro import (  # noqa: F401
            BACKENDS,
            DeviceFleet,
            ExecutionPlan,
            QueryTicket,
            ServiceCapabilities,
            WalkChunk,
            WalkService,
            WalkSession,
            negotiate_plan,
        )
