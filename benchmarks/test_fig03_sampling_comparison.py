"""Benchmark: Fig. 3 — base sampling-method comparison on (un)weighted Node2Vec."""

from __future__ import annotations

from bench_helpers import run_once

from repro.bench.experiments import fig03_sampling_comparison as experiment


def test_fig03_sampling_comparison(benchmark, quick_config):
    result = run_once(benchmark, experiment, quick_config)
    weighted = result["normalized"]["weighted"]
    unweighted = result["normalized"]["unweighted"]
    # Paper shape: table-building methods (ITS/ALS) never win; reservoir wins
    # the weighted panel, rejection wins the unweighted panel on the larger
    # (web-scale-model) datasets.
    for _dataset, times in weighted.items():
        assert times["RVS (FlowWalker)"] <= times["ALS (Skywalker)"]
        assert times["RVS (FlowWalker)"] <= 1.0  # normalised to ITS
    assert unweighted["EU"]["RJS (NextDoor)"] < unweighted["EU"]["RVS (FlowWalker)"]
    assert weighted["EU"]["RJS (NextDoor)"] > weighted["EU"]["RVS (FlowWalker)"]
