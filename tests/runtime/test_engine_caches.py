"""Shared engine caches: `with_devices` clones must never rebuild them.

The satellite fix behind these tests: `WalkEngine.with_devices` used to share
already-built caches by reference (copy.copy) but let clones rebuild their
own when the cache had not been built yet at clone time.  The caches now live
in a shared :class:`~repro.runtime.engine.EngineCaches` holder, so sharing is
order-independent — asserted here by object identity in both build orders.
"""

from __future__ import annotations

import dataclasses

from repro.compiler.generator import compile_workload
from repro.gpusim.device import A6000
from repro.graph.generators import barabasi_albert_graph
from repro.graph.weights import uniform_weights
from repro.runtime.engine import EngineCaches, WalkEngine
from repro.walks.deepwalk import DeepWalkSpec
from repro.walks.state import make_queries

DEVICE = dataclasses.replace(A6000, parallel_lanes=8)


def make_engine():
    graph = barabasi_albert_graph(40, 3, seed=3, name="caches")
    graph = graph.with_weights(uniform_weights(graph, seed=3))
    spec = DeepWalkSpec()  # static weights -> transition-cache eligible
    compiled = compile_workload(spec, graph)
    assert compiled.weights_node_only
    return WalkEngine(graph=graph, spec=spec, device=DEVICE, compiled=compiled, seed=0)


class TestWithDevicesSharing:
    def test_clone_shares_caches_built_before_cloning(self):
        engine = make_engine()
        tables = engine._node_hint_tables()
        cache = engine._transition_cache()
        clone = engine.with_devices(4, partition_policy="balanced")
        assert clone._node_hint_tables() is tables
        assert clone._transition_cache() is cache

    def test_clone_shares_caches_built_after_cloning(self):
        engine = make_engine()
        clone = engine.with_devices(2)
        # The clone builds first; the original must see the same objects.
        tables = clone._node_hint_tables()
        cache = clone._transition_cache()
        assert cache is not None
        assert engine._node_hint_tables() is tables
        assert engine._transition_cache() is cache
        assert engine.caches is clone.caches

    def test_sibling_clones_share_one_holder(self):
        engine = make_engine()
        a = engine.with_devices(2)
        b = engine.with_devices(4)
        assert a._transition_cache() is b._transition_cache()

    def test_runs_populate_the_shared_holder(self):
        engine = make_engine()
        clone = engine.with_devices(2)
        queries = make_queries(engine.graph.num_nodes, walk_length=4, num_queries=10)
        clone.run(queries)
        # The run built the caches through the clone; the original sees them.
        assert engine.caches.transition_cache is not None
        assert engine._transition_cache() is clone._transition_cache()

    def test_independent_engines_do_not_share(self):
        a = make_engine()
        b = make_engine()
        assert a._transition_cache() is not b._transition_cache()

    def test_explicit_holder_is_adopted(self):
        holder = EngineCaches()
        graph = barabasi_albert_graph(30, 2, seed=5, name="caches2")
        graph = graph.with_weights(uniform_weights(graph, seed=5))
        spec = DeepWalkSpec()
        compiled = compile_workload(spec, graph)
        a = WalkEngine(graph=graph, spec=spec, device=DEVICE, compiled=compiled, caches=holder)
        b = WalkEngine(graph=graph, spec=spec, device=DEVICE, compiled=compiled, caches=holder)
        assert a._transition_cache() is b._transition_cache()
        assert holder.transition_cache is not None
