"""Walker and query state.

A *query* is one requested random walk (start node + maximum length); a
*walker state* is the evolving position of that walk: current node, previous
node, step counter, the path so far and a small dict of workload-specific
fields (e.g. the MetaPath schema position).  Dynamic random walks are dynamic
precisely because ``get_weight`` reads this state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WalkSpecError


@dataclass(frozen=True)
class WalkQuery:
    """One requested random walk."""

    query_id: int
    start_node: int
    max_length: int

    def __post_init__(self) -> None:
        if self.max_length < 1:
            raise WalkSpecError("walk length must be at least 1 step")
        if self.start_node < 0:
            raise WalkSpecError("start node must be non-negative")


@dataclass
class WalkerState:
    """Mutable per-walker state consulted by ``get_weight`` at every step.

    Attributes
    ----------
    query:
        The originating query.
    current_node:
        Node the walker currently sits on.
    prev_node:
        Node visited in the previous step, or ``-1`` before the first step.
        Node2Vec and 2nd-order PageRank read this to bias the next step.
    step:
        Zero-based index of the step about to be taken.
    path:
        Nodes visited so far (starts with the start node).
    params:
        Workload-specific mutable fields, e.g. ``{"schema_pos": 2}``.
    """

    query: WalkQuery
    current_node: int
    prev_node: int = -1
    step: int = 0
    path: list[int] = field(default_factory=list)
    params: dict[str, float | int] = field(default_factory=dict)

    @classmethod
    def start(cls, query: WalkQuery) -> "WalkerState":
        """Fresh walker positioned on the query's start node."""
        return cls(query=query, current_node=query.start_node, path=[query.start_node])

    def advance(self, next_node: int) -> None:
        """Move the walker to ``next_node`` (called after the workload update)."""
        self.prev_node = self.current_node
        self.current_node = int(next_node)
        self.path.append(int(next_node))
        self.step += 1

    @property
    def finished(self) -> bool:
        return self.step >= self.query.max_length

    @property
    def walk_length(self) -> int:
        """Number of steps taken so far."""
        return len(self.path) - 1


def make_queries(
    num_nodes: int,
    walk_length: int,
    num_queries: int | None = None,
    start_nodes: np.ndarray | None = None,
    seed: int = 0,
) -> list[WalkQuery]:
    """Create walk queries, one per node by default (the paper's setting).

    Parameters
    ----------
    num_nodes:
        Number of nodes in the graph.
    walk_length:
        Maximum number of steps per walk (80 in the paper, 5 for MetaPath).
    num_queries:
        When smaller than ``num_nodes``, a deterministic subsample of start
        nodes is used (the benchmark harness uses this to keep the
        scale-model runs short).
    start_nodes:
        Explicit start nodes; overrides ``num_queries``.
    """
    if num_nodes < 1:
        raise WalkSpecError("graph must have at least one node")
    if start_nodes is not None:
        starts = np.asarray(start_nodes, dtype=np.int64)
    elif num_queries is None or num_queries >= num_nodes:
        starts = np.arange(num_nodes, dtype=np.int64)
    else:
        rng = np.random.default_rng(seed)
        starts = rng.choice(num_nodes, size=num_queries, replace=False).astype(np.int64)
        starts.sort()
    if starts.size and (starts.min() < 0 or starts.max() >= num_nodes):
        raise WalkSpecError("start nodes must be valid node ids")
    return [WalkQuery(query_id=i, start_node=int(s), max_length=walk_length) for i, s in enumerate(starts)]
