"""Smoke tests for the runnable examples.

Each example is loaded from its file path and its ``main()`` is executed, so
a broken public API surface (the thing examples exercise) fails the suite.
Only the two fastest examples run here; the larger corpus-generation and
adaptation demos are exercised implicitly by the integration tests and the
benchmark suite.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(f"examples_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_contains_all_documented_scripts():
    expected = {
        "quickstart.py",
        "service_streaming.py",
        "node2vec_embedding_corpus.py",
        "metapath_heterogeneous.py",
        "custom_workload_adaptation.py",
        "load_generator.py",
        "streaming_updates.py",
    }
    assert expected <= {p.name for p in EXAMPLES_DIR.glob("*.py")}


# The quickstart deliberately exercises the deprecated one-shot facade: the
# acceptance contract is that legacy user code keeps running unchanged, with
# only a DeprecationWarning.  pytest.warns doubles as the opt-out from the
# suite-wide error filter, so one run checks both halves of the contract.
def test_quickstart_example_runs_with_only_a_deprecation_warning(capsys):
    with pytest.warns(DeprecationWarning):
        load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "simulated kernel time" in out
    assert "selection ratio" in out


def test_service_streaming_example_runs(capsys):
    load_example("service_streaming").main()
    out = capsys.readouterr().out
    assert "negotiated plan" in out
    assert "streamed" in out
    assert "transition cache shared: True" in out


def test_metapath_example_runs(capsys):
    load_example("metapath_heterogeneous").main()
    out = capsys.readouterr().out
    assert "walks launched" in out


def test_load_generator_example_runs(capsys, tmp_path):
    import json

    artifact = tmp_path / "load_generator.json"
    load_example("load_generator").main(
        ["--sessions", "12", "--queries", "4", "--output", str(artifact)]
    )
    out = capsys.readouterr().out
    assert "ticket latency" in out
    assert "fused into" in out
    metrics = json.loads(artifact.read_text())
    assert metrics["sessions"] == 12
    assert metrics["walks"] == 12 * 4
    assert metrics["p99_latency_ticks"] >= metrics["p50_latency_ticks"] > 0
    assert metrics["aggregate_steps_per_s"] > 0
    assert sum(t["completed"] for t in metrics["tenants"].values()) == 48


def test_streaming_updates_example_runs(capsys):
    load_example("streaming_updates").main()
    out = capsys.readouterr().out
    assert "graph version 2" in out
    assert "frozen snapshot: True" in out
    assert "bit-identical to fresh build: True" in out


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "service_streaming",
        "node2vec_embedding_corpus",
        "metapath_heterogeneous",
        "custom_workload_adaptation",
        "load_generator",
        "streaming_updates",
    ],
)
def test_every_example_is_importable(name):
    module = load_example(name)
    assert callable(module.main)
