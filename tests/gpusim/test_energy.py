"""Tests for the energy model."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.gpusim.device import A6000, EPYC_9124P
from repro.gpusim.energy import EnergyModel
from repro.gpusim.executor import KernelExecutor


def run_kernel(device, per_query):
    return KernelExecutor(device).execute(np.asarray(per_query, dtype=np.float64), queue_atomic_ns=0.0)


class TestEnergyModel:
    def test_energy_proportional_to_time(self):
        device = dataclasses.replace(A6000, parallel_lanes=4)
        short = EnergyModel(device).report(run_kernel(device, np.full(4, 1e6)))
        long = EnergyModel(device).report(run_kernel(device, np.full(4, 2e6)))
        assert long.total_joules == pytest.approx(2 * short.total_joules, rel=1e-6)

    def test_joules_per_query_divides_by_queries(self):
        device = dataclasses.replace(A6000, parallel_lanes=4)
        report = EnergyModel(device).report(run_kernel(device, np.full(8, 1e6)))
        assert report.joules_per_query == pytest.approx(report.total_joules / 8)

    def test_average_watts_between_idle_and_peak(self):
        device = dataclasses.replace(A6000, parallel_lanes=4)
        report = EnergyModel(device).report(run_kernel(device, np.full(4, 1e6)))
        assert device.idle_watts <= report.average_watts <= device.peak_watts

    def test_max_watts_scales_with_occupancy(self):
        # Filling only a sliver of the device keeps the package well below TDP.
        report_small = EnergyModel(A6000).report(run_kernel(A6000, np.full(4, 1e6)))
        small_device = dataclasses.replace(A6000, parallel_lanes=4)
        report_full = EnergyModel(small_device).report(run_kernel(small_device, np.full(4, 1e6)))
        assert report_small.max_watts < report_full.max_watts

    def test_gpu_wins_joules_per_query_when_much_faster(self):
        # Same number of queries; the CPU takes 50x longer per query, as in
        # the paper's CPU-vs-GPU gap.  The GPU draws more power but far less
        # energy per query.
        gpu = dataclasses.replace(A6000, parallel_lanes=8)
        cpu = dataclasses.replace(EPYC_9124P, parallel_lanes=8)
        gpu_report = EnergyModel(gpu).report(run_kernel(gpu, np.full(64, 1e6)))
        cpu_report = EnergyModel(cpu).report(run_kernel(cpu, np.full(64, 5e7)))
        assert gpu_report.joules_per_query < cpu_report.joules_per_query
        assert gpu_report.max_watts > cpu_report.max_watts

    def test_zero_queries(self):
        device = dataclasses.replace(A6000, parallel_lanes=2)
        report = EnergyModel(device).report(run_kernel(device, np.array([])), num_queries=0)
        assert report.joules_per_query == 0.0
