"""Tests for device cost models."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import SimulationError
from repro.gpusim.counters import CostCounters
from repro.gpusim.device import A6000, EPYC_9124P, DeviceSpec


class TestPresets:
    def test_gpu_has_far_more_lanes_than_cpu(self):
        assert A6000.parallel_lanes > 50 * EPYC_9124P.parallel_lanes

    def test_random_access_costs_more_than_coalesced(self):
        for device in (A6000, EPYC_9124P):
            assert device.random_access_ns > device.coalesced_access_ns

    def test_ratio_matches_costs(self):
        assert A6000.random_to_coalesced_ratio == pytest.approx(
            A6000.random_access_ns / A6000.coalesced_access_ns
        )

    def test_gpu_memory_smaller_than_host(self):
        assert A6000.memory_bytes < EPYC_9124P.memory_bytes

    def test_gpu_peak_watts_higher_than_cpu(self):
        assert A6000.peak_watts > EPYC_9124P.peak_watts


class TestLaneTime:
    def test_zero_counters_cost_nothing(self):
        assert A6000.lane_time_ns(CostCounters()) == 0.0

    def test_each_counter_contributes(self):
        base = A6000.lane_time_ns(CostCounters(coalesced_accesses=10))
        more = A6000.lane_time_ns(CostCounters(coalesced_accesses=10, rng_draws=5))
        assert more > base

    def test_random_accesses_cost_more_than_coalesced(self):
        coalesced = A6000.lane_time_ns(CostCounters(coalesced_accesses=100))
        random = A6000.lane_time_ns(CostCounters(random_accesses=100))
        assert random > 4 * coalesced

    def test_int8_weights_reduce_memory_time(self):
        full = A6000.lane_time_ns(CostCounters(coalesced_accesses=1000, bytes_per_weight=8))
        narrow = A6000.lane_time_ns(CostCounters(coalesced_accesses=1000, bytes_per_weight=1))
        assert narrow == pytest.approx(full / 8)

    def test_int8_does_not_change_compute_time(self):
        full = A6000.lane_time_ns(CostCounters(rng_draws=100, bytes_per_weight=8))
        narrow = A6000.lane_time_ns(CostCounters(rng_draws=100, bytes_per_weight=1))
        assert full == pytest.approx(narrow)


class TestValidationAndScaling:
    def test_scaled_reduces_lanes(self):
        scaled = A6000.scaled(0.01)
        assert scaled.parallel_lanes == int(A6000.parallel_lanes * 0.01)
        assert scaled.coalesced_access_ns == A6000.coalesced_access_ns

    def test_scaled_never_drops_below_one_lane(self):
        assert A6000.scaled(1e-9).parallel_lanes == 1

    def test_zero_lanes_rejected(self):
        with pytest.raises(SimulationError):
            dataclasses.replace(A6000, parallel_lanes=0)

    def test_negative_cost_rejected(self):
        with pytest.raises(SimulationError):
            dataclasses.replace(A6000, rng_ns=-1.0)

    def test_custom_device_spec(self):
        device = DeviceSpec(
            name="toy", parallel_lanes=4, coalesced_access_ns=1.0, random_access_ns=2.0,
            weight_compute_ns=0.0, rng_ns=0.0, reduction_ns=0.0, prefix_sum_ns=0.0,
            warp_sync_ns=0.0, atomic_ns=0.0, table_build_ns=0.0,
            memory_bytes=1024, idle_watts=1.0, peak_watts=2.0,
        )
        assert device.lane_time_ns(CostCounters(coalesced_accesses=2, random_accesses=1)) == 4.0
