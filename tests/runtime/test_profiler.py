"""Tests for the start-up profiling kernels."""

from __future__ import annotations

import pytest

from repro.graph.generators import cycle_graph
from repro.gpusim.device import A6000, EPYC_9124P
from repro.runtime.profiler import profile_edge_costs
from repro.walks.node2vec import Node2VecSpec
from repro.walks.spec import UniformWalkSpec


class TestProfiler:
    def test_ratio_reflects_random_vs_coalesced_gap(self, small_graph):
        profile = profile_edge_costs(small_graph, Node2VecSpec(), A6000, seed=1)
        # Rejection probes are uncoalesced, carry RNG cost and (for
        # second-order workloads) pay the dist(v', u) membership probe, so
        # the measured ratio sits well above 1.
        assert 2.0 < profile.edge_cost_ratio < 80.0

    def test_per_edge_costs_positive(self, small_graph):
        profile = profile_edge_costs(small_graph, UniformWalkSpec(), A6000)
        assert profile.edge_cost_rjs > 0
        assert profile.edge_cost_rvs > 0

    def test_simulated_time_positive_and_small(self, small_graph):
        profile = profile_edge_costs(small_graph, Node2VecSpec(), A6000)
        assert profile.simulated_time_ns > 0
        # Profiling touches a handful of nodes only.
        assert profile.sampled_nodes <= 64

    def test_node_fraction_caps_sampled_nodes(self, small_graph):
        profile = profile_edge_costs(small_graph, UniformWalkSpec(), A6000, node_fraction=0.02, max_nodes=5)
        assert profile.sampled_nodes <= 5

    def test_cpu_device_gives_different_absolute_costs(self, small_graph):
        gpu = profile_edge_costs(small_graph, UniformWalkSpec(), A6000, seed=2)
        cpu = profile_edge_costs(small_graph, UniformWalkSpec(), EPYC_9124P, seed=2)
        assert cpu.edge_cost_rvs > gpu.edge_cost_rvs

    def test_deterministic_for_same_seed(self, small_graph):
        a = profile_edge_costs(small_graph, Node2VecSpec(), A6000, seed=5)
        b = profile_edge_costs(small_graph, Node2VecSpec(), A6000, seed=5)
        assert a.edge_cost_ratio == pytest.approx(b.edge_cost_ratio)

    def test_graph_without_edges_uses_device_defaults(self):
        import numpy as np

        from repro.graph.csr import CSRGraph

        empty = CSRGraph(indptr=np.zeros(4, dtype=np.int64), indices=np.zeros(0, dtype=np.int64))
        profile = profile_edge_costs(empty, UniformWalkSpec(), A6000)
        assert profile.sampled_nodes == 0
        assert profile.edge_cost_ratio == pytest.approx(A6000.random_to_coalesced_ratio)

    def test_degree_one_graph_profiles_without_error(self):
        profile = profile_edge_costs(cycle_graph(20), UniformWalkSpec(), A6000)
        assert profile.sampled_nodes > 0
