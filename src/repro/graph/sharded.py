"""Graph sharding: splitting one CSR graph into per-device edge shards.

The replicated multi-device design (Fig. 15) copies the whole graph onto
every device, so the largest servable graph is bounded by a single device's
memory.  Distributed walk systems (KnightKing-style walker migration) lift
that bound by *partitioning the graph*: each device owns a contiguous range
of nodes together with their out-edges, and a walker executes each step on
the device owning its current node — paying an interconnect transfer when a
sampled step crosses a shard boundary.

:class:`ShardedCSRGraph` is the storage side of that model: it splits a
:class:`~repro.graph.csr.CSRGraph` into per-shard :class:`GraphShard` slices
(contiguous node ranges, chosen either uniformly over nodes or balanced by
edge count), answers ``owner(nodes)`` lookups with one vectorised binary
search, and reports per-shard memory footprints so the plan negotiation in
:mod:`repro.service.plan` can decide when sharding is *required* (graph
larger than one device) rather than merely possible.

Shards slice the parent's edge arrays (no copies): the shard decomposition
is a view-level bookkeeping structure, exactly like the CSR slices the
per-node accessors hand out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

#: Valid node-range partitioning policies of :meth:`ShardedCSRGraph.build`.
SHARD_POLICIES = ("contiguous", "degree_balanced")


@dataclass(frozen=True)
class GraphShard:
    """One device's slice of a sharded graph.

    Attributes
    ----------
    shard_id:
        Position of this shard in the decomposition (== owning device id).
    node_start / node_stop:
        The contiguous global node range ``[node_start, node_stop)`` this
        shard owns.
    indptr:
        Local ``int64`` row-pointer array of length ``num_nodes + 1``
        (rebased to start at 0).
    indices / weights / labels:
        Views into the parent graph's edge arrays covering exactly this
        shard's out-edges.  Destination ids stay *global* — a destination
        outside ``[node_start, node_stop)`` is a remote edge.
    """

    shard_id: int
    node_start: int
    node_stop: int
    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    labels: np.ndarray | None

    @property
    def num_nodes(self) -> int:
        return self.node_stop - self.node_start

    @property
    def num_edges(self) -> int:
        return int(self.indices.size)

    def owns(self, nodes: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``nodes`` fall in this shard's range."""
        nodes = np.asarray(nodes, dtype=np.int64)
        return (nodes >= self.node_start) & (nodes < self.node_stop)

    def remote_edge_count(self) -> int:
        """Out-edges whose destination lives on another shard."""
        return int(np.count_nonzero(~self.owns(self.indices)))

    def memory_footprint_bytes(self, weight_bytes: int = 8) -> int:
        """Device memory needed to hold this shard (same model as the
        replicated :meth:`~repro.graph.csr.CSRGraph.memory_footprint_bytes`)."""
        return int(
            self.indptr.size * 8
            + self.indices.size * 8
            + self.indices.size * weight_bytes
            + (self.indices.size * 8 if self.labels is not None else 0)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphShard(#{self.shard_id}, nodes [{self.node_start}, "
            f"{self.node_stop}), {self.num_edges} edges)"
        )


class ShardedCSRGraph:
    """A CSR graph decomposed into contiguous per-device node-range shards.

    Build with :meth:`build`; the decomposition is immutable.  The parent
    graph stays fully intact (the walk kernels still execute against it —
    the simulator charges communication instead of actually distributing the
    arrays), so a sharded run is bit-identical to a replicated run in
    everything but the modeled interconnect traffic.

    Attributes
    ----------
    graph:
        The parent :class:`~repro.graph.csr.CSRGraph`.
    policy:
        The partitioning policy used (one of :data:`SHARD_POLICIES`).
    boundaries:
        ``int64`` array of length ``num_shards + 1``; shard ``s`` owns the
        node range ``[boundaries[s], boundaries[s + 1])``.
    shards:
        The per-device :class:`GraphShard` slices, in shard-id order.
    """

    def __init__(self, graph: CSRGraph, boundaries: np.ndarray, policy: str) -> None:
        self.graph = graph
        self.policy = policy
        self.boundaries = np.asarray(boundaries, dtype=np.int64)
        if (
            self.boundaries.ndim != 1
            or self.boundaries.size < 2
            or self.boundaries[0] != 0
            or self.boundaries[-1] != graph.num_nodes
            or np.any(np.diff(self.boundaries) < 0)
        ):
            raise GraphError(
                "shard boundaries must be a non-decreasing array covering "
                f"[0, num_nodes]; got {self.boundaries!r}"
            )
        self.shards = [
            self._slice_shard(s, int(self.boundaries[s]), int(self.boundaries[s + 1]))
            for s in range(self.boundaries.size - 1)
        ]

    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls, graph: CSRGraph, num_shards: int, policy: str = "contiguous"
    ) -> "ShardedCSRGraph":
        """Split ``graph`` into ``num_shards`` contiguous node-range shards.

        ``"contiguous"`` slices the node id space into equal ranges — the
        naive decomposition, cheap but degree-blind (the scale models give
        low node ids the highest degrees, so shard 0 ends up edge-heavy).
        ``"degree_balanced"`` places the boundaries so every shard holds
        roughly ``num_edges / num_shards`` out-edges — the edge-balanced
        decomposition distributed walk frameworks default to.  Both policies
        keep node ranges contiguous, so :meth:`owner` is one binary search.
        """
        if num_shards < 1:
            raise GraphError("need at least one shard")
        if policy not in SHARD_POLICIES:
            raise GraphError(
                f"unknown shard policy {policy!r}; valid: {SHARD_POLICIES}"
            )
        n = graph.num_nodes
        if policy == "contiguous":
            boundaries = np.linspace(0, n, num_shards + 1).astype(np.int64)
        else:
            # Edge-balanced boundaries: walk the cumulative edge counts
            # (indptr *is* that prefix sum) and cut at the node where each
            # shard's edge budget fills up.  Interior boundaries are clipped
            # into [0, n]; shards can come out empty on degenerate graphs
            # (fewer nodes than shards), which owner() handles.
            targets = (np.arange(1, num_shards) * graph.num_edges) / num_shards
            interior = np.searchsorted(graph.indptr, targets, side="left")
            boundaries = np.concatenate(
                ([0], np.minimum(interior, n), [n])
            ).astype(np.int64)
            boundaries = np.maximum.accumulate(boundaries)
        return cls(graph, boundaries, policy)

    def _slice_shard(self, shard_id: int, start: int, stop: int) -> GraphShard:
        lo = int(self.graph.indptr[start])
        hi = int(self.graph.indptr[stop])
        return GraphShard(
            shard_id=shard_id,
            node_start=start,
            node_stop=stop,
            indptr=(self.graph.indptr[start:stop + 1] - lo).astype(np.int64),
            indices=self.graph.indices[lo:hi],
            weights=self.graph.weights[lo:hi],
            labels=self.graph.labels[lo:hi] if self.graph.labels is not None else None,
        )

    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def owner(self, nodes: np.ndarray) -> np.ndarray:
        """Shard id owning each of ``nodes`` (vectorised binary search).

        Empty shards never own a node: with ``side="right"`` a node sitting
        on a run of equal boundaries maps past the zero-width ranges to the
        shard whose range actually contains it.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.graph.num_nodes):
            raise GraphError("node id out of range for owner() lookup")
        return np.searchsorted(self.boundaries, nodes, side="right") - 1

    def memory_footprint_bytes(self, weight_bytes: int = 8) -> int:
        """Total device memory across all shards (≈ the replicated footprint
        plus one duplicated ``indptr`` entry per extra shard)."""
        return sum(s.memory_footprint_bytes(weight_bytes) for s in self.shards)

    def max_shard_footprint_bytes(self, weight_bytes: int = 8) -> int:
        """Largest single-shard footprint — what each device must actually fit."""
        return max(s.memory_footprint_bytes(weight_bytes) for s in self.shards)

    def shard_edge_counts(self) -> np.ndarray:
        """Out-edges per shard (the balance the degree_balanced policy targets)."""
        return np.array([s.num_edges for s in self.shards], dtype=np.int64)

    def remote_edge_fraction(self) -> float:
        """Fraction of all edges whose destination lives on another shard.

        A static property of the decomposition (the *walked* remote-edge
        ratio additionally depends on the workload's visit distribution and
        is reported per run by the sharded driver).
        """
        if self.graph.num_edges == 0:
            return 0.0
        remote = sum(s.remote_edge_count() for s in self.shards)
        return remote / self.graph.num_edges

    def describe(self) -> dict[str, object]:
        """Plain-dict view for logs, plans and the bench tables."""
        counts = self.shard_edge_counts()
        return {
            "num_shards": self.num_shards,
            "policy": self.policy,
            "boundaries": self.boundaries.tolist(),
            "shard_edge_counts": counts.tolist(),
            "edge_balance": float(counts.max() / counts.mean()) if counts.size and counts.mean() else 1.0,
            "remote_edge_fraction": self.remote_edge_fraction(),
            "max_shard_footprint_bytes": self.max_shard_footprint_bytes(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedCSRGraph({self.graph!r}, {self.num_shards} shards, "
            f"policy={self.policy!r})"
        )
