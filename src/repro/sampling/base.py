"""Shared sampling-kernel infrastructure: step contexts and the Sampler ABC.

Two execution shapes share this module:

* **Scalar** — one walker takes one step through :meth:`Sampler.sample` with
  a :class:`StepContext` (the original interpreter-style path, kept for
  exact-parity checks via ``execution="scalar"``).
* **Batched** — a whole frontier of walkers takes one step at a time through
  :meth:`Sampler.sample_batch` with a
  :class:`~repro.sampling.batch.BatchStepContext`.  The built-in kernels
  override it with NumPy-vectorised implementations; samplers that don't
  override it fall back to a loop over scalar :meth:`~Sampler.sample`, so any
  custom kernel works in both modes out of the box.

Both shapes must agree exactly — same chosen neighbours, same operation
counts — for a fixed seed policy; the dead-end rules are therefore defined
once here (:func:`is_dead_end`, :func:`all_weights_zero`) and used by both
engines and every kernel.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SamplingError
from repro.graph.csr import CSRGraph
from repro.gpusim.counters import CostCounters
from repro.gpusim.warp import WARP_SIZE, WarpModel
from repro.rng.streams import CountingStream
from repro.sampling.batch import BatchStepContext
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkerState


@dataclass
class StepContext:
    """Everything a sampling kernel needs to take one walk step.

    Attributes
    ----------
    graph / state / spec:
        The graph, the walker's state, and the workload logic.
    rng:
        The simulated thread's random stream.
    counters:
        Cost counters the kernel must add its operation counts to.
    bound_hint:
        Estimated upper bound on the maximum transition weight of the current
        node, produced by the compiler-generated ``get_weight_max`` helper.
        ``None`` means no bound is available (eRJS then falls back to a max
        reduction, like the baseline).
    sum_hint:
        Estimated sum of transition weights (``get_weight_sum`` helper),
        consumed by the runtime cost model rather than the kernels.
    warp_width:
        Number of cooperating lanes for warp-parallel kernels.
    """

    graph: CSRGraph
    state: WalkerState
    spec: WalkSpec
    rng: CountingStream
    counters: CostCounters = field(default_factory=CostCounters)
    bound_hint: float | None = None
    sum_hint: float | None = None
    warp_width: int = WARP_SIZE

    def warp(self) -> WarpModel:
        """A warp model bound to this step's counters."""
        return WarpModel(self.counters, width=self.warp_width)

    @property
    def degree(self) -> int:
        return self.graph.degree(self.state.current_node)

    def neighbors(self) -> np.ndarray:
        return self.graph.neighbors(self.state.current_node)


# ---------------------------------------------------------------------- #
# Dead-end rules (single source of truth for both execution modes)
# ---------------------------------------------------------------------- #
def is_dead_end(graph: CSRGraph, node: int) -> bool:
    """True when a walk cannot leave ``node`` because it has no out-edges.

    Both the scalar and the batched engine consult this exact rule before
    dispatching a step (the batched engine evaluates it vectorised as
    ``degrees == 0``), and every kernel's non-empty precheck goes through it
    too, so the two paths cannot diverge on termination behaviour.
    """
    return graph.degree(node) == 0


def all_weights_zero(weights: np.ndarray) -> bool:
    """True when no probability mass remains (all-zero transition weights).

    Transition weights are non-negative by contract (the CSR builder rejects
    negative property weights and the paper's ``w̃ = w · h`` is a product of
    non-negative factors), so "the sum is not positive" and "no element is
    positive" coincide; batch kernels test the latter per segment
    (:func:`~repro.sampling.batch.segment_any_positive`) while scalar kernels
    use this helper.  A walker whose weights are all zero terminates — e.g. a
    MetaPath dead end where no out-edge matches the schema label.
    """
    return weights.size == 0 or float(weights.sum()) <= 0.0


def gather_transition_weights(
    ctx: StepContext,
    passes: int = 1,
    coalesced: bool = True,
) -> np.ndarray:
    """Compute the transition weights of the current node and account the cost.

    Parameters
    ----------
    passes:
        How many full passes over the weight list the kernel makes; the
        baseline reservoir kernel reads the weights twice (once for the
        prefix sum, once while sampling) whereas eRVS reads them once.
    coalesced:
        Whether the accesses are warp-coalesced (sequential scans) or
        uncoalesced (per-lane random probes).
    """
    if passes < 1:
        raise SamplingError("passes must be at least 1")
    weights = ctx.spec.transition_weights(ctx.graph, ctx.state)
    degree = int(weights.size)
    if coalesced:
        ctx.counters.coalesced_accesses += degree * passes
    else:
        ctx.counters.random_accesses += degree * passes
    ctx.counters.weight_computations += degree
    # Workload-specific side data needed to evaluate the weights (e.g. the
    # previous node's adjacency list for the dist(v', u) checks, or the edge
    # labels for MetaPath) is read once per scan via a coalesced merge join.
    ctx.counters.coalesced_accesses += ctx.spec.scan_cost_words(ctx.graph, ctx.state)
    return weights


def probe_overhead_words(ctx: StepContext) -> int:
    """Uncoalesced words one rejection trial needs beyond the probed weight."""
    return ctx.spec.probe_cost_words(ctx.graph, ctx.state)


class Sampler(ABC):
    """Base class for next-node sampling kernels.

    A sampler receives a :class:`StepContext` and returns the *node id* of
    the chosen neighbour, or ``None`` when the walk cannot continue (the
    current node has no out-edges or every transition weight is zero, e.g. a
    MetaPath dead end).

    Attributes
    ----------
    name:
        Short kernel tag used in tables and the selection-ratio experiment.
    processing_unit:
        ``"thread"`` for one-lane kernels (rejection sampling) or ``"warp"``
        for warp-cooperative kernels (reservoir, alias, ITS) — this drives
        the concurrent-kernel switching model of Section 5.2.
    """

    name: str = "sampler"
    processing_unit: str = "warp"

    @abstractmethod
    def sample(self, ctx: StepContext) -> int | None:
        """Choose the next node for the walker in ``ctx``."""

    # ------------------------------------------------------------------ #
    def sample_batch(self, batch: BatchStepContext) -> np.ndarray:
        """Choose the next node for every walker in ``batch`` at once.

        Returns an ``int64`` array parallel to ``batch.walkers`` holding the
        chosen neighbour id per walker, or ``-1`` where the walk cannot
        continue (the batched encoding of a scalar ``None``).

        This is a template method: it applies the shared dead-end precheck
        (zero-degree walkers get ``-1`` with no charges, exactly like the
        scalar kernels' early return) and hands the all-nonempty remainder to
        :meth:`_sample_batch_nonempty`.  The built-in kernels override that
        hook with NumPy-vectorised implementations that draw from each
        walker's own counter-based random stream, making the result (and the
        per-walker operation counts) identical to running :meth:`sample`
        walker by walker; the default hook loops over scalar :meth:`sample`
        via :meth:`BatchStepContext.scalar_context`, so custom samplers work
        in the batched engine without a vectorised port.
        """
        out = np.full(batch.size, -1, dtype=np.int64)
        if batch.size == 0:
            return out
        nonempty = np.nonzero(batch.degrees > 0)[0]
        if nonempty.size < batch.size:
            if nonempty.size:
                out[nonempty] = self.sample_batch(batch.subset(nonempty))
            return out
        return self._sample_batch_nonempty(batch, out)

    def _sample_batch_nonempty(self, batch: BatchStepContext, out: np.ndarray) -> np.ndarray:
        """Batched sampling core; every walker is guaranteed an out-edge.

        ``out`` arrives filled with ``-1`` (the "walk ends" encoding) and
        must be returned with the chosen neighbour id of every walker that
        can continue.
        """
        for i in range(batch.size):
            ctx, counters = batch.scalar_context(i)
            chosen = self.sample(ctx)
            batch.absorb(i, counters)
            if chosen is not None:
                out[i] = chosen
        return out

    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_nonempty(ctx: StepContext) -> bool:
        """True when the current node has at least one out-edge."""
        return not is_dead_end(ctx.graph, ctx.state.current_node)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
