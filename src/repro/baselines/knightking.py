"""KnightKing (Yang et al., SOSP 2019): distributed CPU walk engine.

KnightKing distributes walkers across machines with load balancing and uses
alias sampling for static walks and rejection sampling (with exact bounds)
for dynamic ones.  In this reproduction it appears in the energy-efficiency
comparison (Fig. 16), where its low per-node power draw makes it the most
frugal CPU baseline even though it is far slower than the GPU systems.
"""

from __future__ import annotations

from repro.baselines.base import BaselineSystem
from repro.gpusim.device import EPYC_9124P
from repro.gpusim.memory import MemoryModel
from repro.sampling.base import Sampler, StepContext
from repro.sampling.rejection import RejectionSampler
from repro.walks.spec import WalkSpec


def _sampler(spec: WalkSpec) -> Sampler:
    return RejectionSampler()


def _message_overhead(ctx: StepContext, sampler: Sampler) -> None:
    """Walker-forwarding messages between partitions (modelled per step)."""
    ctx.counters.random_accesses += 2
    ctx.counters.atomic_ops += 1


def make_knightking() -> BaselineSystem:
    """Build the KnightKing baseline model."""
    return BaselineSystem(
        name="KnightKing",
        platform="cpu",
        device=EPYC_9124P,
        sampler_factory=_sampler,
        description="Distributed CPU walk engine with rejection sampling for dynamic walks",
        memory_model=MemoryModel(graph_overhead=1.2, per_query_bytes=192),
        step_overhead=_message_overhead,
        scheduling="dynamic",
    )
