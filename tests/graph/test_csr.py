"""Tests for the CSR graph representation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph


def simple_graph() -> CSRGraph:
    # 0 -> {1, 2}, 1 -> {2}, 2 -> {}
    return CSRGraph(
        indptr=np.array([0, 2, 3, 3]),
        indices=np.array([1, 2, 2]),
        weights=np.array([1.0, 2.0, 3.0]),
    )


class TestConstruction:
    def test_basic_counts(self):
        g = simple_graph()
        assert g.num_nodes == 3
        assert g.num_edges == 3

    def test_default_weights_are_ones(self):
        g = CSRGraph(indptr=np.array([0, 1]), indices=np.array([0]))
        assert np.array_equal(g.weights, [1.0])
        assert not g.is_weighted

    def test_is_weighted_detects_non_uniform_weights(self):
        assert simple_graph().is_weighted

    def test_rejects_indptr_not_starting_at_zero(self):
        with pytest.raises(GraphError):
            CSRGraph(indptr=np.array([1, 2]), indices=np.array([0]))

    def test_rejects_indptr_edge_count_mismatch(self):
        with pytest.raises(GraphError):
            CSRGraph(indptr=np.array([0, 2]), indices=np.array([0]))

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(GraphError):
            CSRGraph(indptr=np.array([0, 2, 1, 3]), indices=np.array([0, 1, 2]))

    def test_rejects_out_of_range_destination(self):
        with pytest.raises(GraphError):
            CSRGraph(indptr=np.array([0, 1]), indices=np.array([5]))

    def test_rejects_negative_weights(self):
        with pytest.raises(GraphError):
            CSRGraph(indptr=np.array([0, 1]), indices=np.array([0]), weights=np.array([-1.0]))

    def test_rejects_mismatched_weight_length(self):
        with pytest.raises(GraphError):
            CSRGraph(indptr=np.array([0, 1]), indices=np.array([0]), weights=np.array([1.0, 2.0]))

    def test_rejects_mismatched_label_length(self):
        with pytest.raises(GraphError):
            CSRGraph(indptr=np.array([0, 1]), indices=np.array([0]), labels=np.array([1, 2]))


class TestAccessors:
    def test_degrees(self):
        g = simple_graph()
        assert np.array_equal(g.degrees(), [2, 1, 0])
        assert g.degree(0) == 2
        assert g.degree(2) == 0
        assert g.max_degree() == 2

    def test_in_degrees(self):
        g = simple_graph()
        assert np.array_equal(g.in_degrees(), [0, 1, 2])

    def test_neighbors_and_weights(self):
        g = simple_graph()
        assert np.array_equal(g.neighbors(0), [1, 2])
        assert np.array_equal(g.edge_weights(0), [1.0, 2.0])
        assert g.neighbors(2).size == 0

    def test_edge_slice(self):
        g = simple_graph()
        assert g.edge_slice(0) == (0, 2)
        assert g.edge_slice(1) == (2, 3)

    def test_has_edge(self):
        g = simple_graph()
        assert g.has_edge(0, 1)
        assert g.has_edge(0, 2)
        assert not g.has_edge(0, 0)
        assert not g.has_edge(2, 0)

    def test_node_out_of_range_raises(self):
        g = simple_graph()
        with pytest.raises(GraphError):
            g.neighbors(3)
        with pytest.raises(GraphError):
            g.degree(-1)

    def test_edge_labels_require_labels(self):
        g = simple_graph()
        with pytest.raises(GraphError):
            g.edge_labels(0)


class TestDerivedGraphs:
    def test_with_weights_replaces_weights_only(self):
        g = simple_graph()
        g2 = g.with_weights(np.array([5.0, 5.0, 5.0]))
        assert np.array_equal(g2.weights, [5.0, 5.0, 5.0])
        assert np.array_equal(g2.indices, g.indices)
        assert np.array_equal(g.weights, [1.0, 2.0, 3.0])

    def test_with_labels_attaches_labels(self):
        g = simple_graph().with_labels(np.array([1, 2, 3]))
        assert g.has_labels
        assert np.array_equal(g.edge_labels(0), [1, 2])

    def test_memory_footprint_scales_with_weight_bytes(self):
        g = simple_graph()
        assert g.memory_footprint_bytes(weight_bytes=8) > g.memory_footprint_bytes(weight_bytes=1)

    def test_derivation_propagates_topology_caches(self):
        """with_weights/with_labels share indptr/indices unchanged, so the
        O(E) in-degree and edge-key caches must carry over by identity —
        a derived graph silently rebuilding them was the regression."""
        g = simple_graph()
        in_degrees = g.in_degrees()            # populate both caches
        g.has_edges(np.array([0]), np.array([1]))
        assert g._in_degree_cache is not None
        assert g._edge_key_cache is not None

        weighted = g.with_weights(np.array([5.0, 5.0, 5.0]))
        labeled = g.with_labels(np.array([1, 2, 3]))
        chained = weighted.with_labels(np.array([1, 2, 3]))
        for derived in (weighted, labeled, chained):
            assert derived._in_degree_cache is g._in_degree_cache
            assert derived._edge_key_cache is g._edge_key_cache
            assert np.array_equal(derived.in_degrees(), in_degrees)

    def test_caches_populated_after_derivation_are_not_shared_backward(self):
        g = simple_graph()
        derived = g.with_weights(np.array([2.0, 2.0, 2.0]))
        assert derived._in_degree_cache is None  # parent had not built it yet
        derived.in_degrees()
        assert g._in_degree_cache is None        # no backward propagation

    def test_repr_mentions_counts(self):
        assert "3 nodes" in repr(simple_graph())
