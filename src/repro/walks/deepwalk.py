"""DeepWalk: the static-walk reference workload.

DeepWalk (Perozzi et al., 2014) chooses every next node purely from the edge
property weights — ``w(v, u) = 1`` — so its transition distribution per node
never changes.  It is not one of the paper's evaluated dynamic workloads, but
it is the natural correctness/throughput reference: static frameworks
precompute per-node tables for it, and every dynamic kernel must reproduce its
distribution exactly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.graph.csr import CSRGraph
from repro.walks.spec import WalkSpec
from repro.walks.state import WalkerState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sampling.batch import BatchStepContext


class DeepWalkSpec(WalkSpec):
    """Static uniform-over-property-weights walk."""

    name = "deepwalk"
    is_dynamic = False
    default_walk_length = 80

    def get_weight(self, graph: CSRGraph, state: WalkerState, edge: int) -> float:
        h_e = graph.weights[edge]
        return h_e

    def transition_weights(self, graph: CSRGraph, state: WalkerState) -> np.ndarray:
        return graph.edge_weights(state.current_node).astype(np.float64)

    def transition_weights_batch(self, graph: CSRGraph, batch: BatchStepContext) -> np.ndarray:
        return graph.weights[batch.flat_edges].astype(np.float64)

    def static_transition_weights(self, graph: CSRGraph) -> np.ndarray:
        """Whole-graph weights in one pass (enables bulk transition caching)."""
        return graph.weights.astype(np.float64)
