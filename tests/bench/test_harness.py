"""Tests for the benchmark harness (config, runner, tables)."""

from __future__ import annotations

import pytest

from repro.bench.config import ExperimentConfig
from repro.bench.runner import (
    prepare_graph,
    prepare_queries,
    run_baseline,
    run_fixed_sampler,
    run_flexiwalker,
    scaled_device_for,
)
from repro.bench.tables import format_mapping, format_table
from repro.errors import BenchmarkError
from repro.sampling.ervs import EnhancedReservoirSampler

TINY = ExperimentConfig(num_queries=12, walk_length=3, datasets=("YT",))


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig.quick()
        assert config.num_queries > 0
        assert all(d in ("YT", "CP", "OK", "EU") for d in config.datasets)

    def test_full_covers_all_datasets(self):
        assert len(ExperimentConfig.full().datasets) == 10

    def test_invalid_values_rejected(self):
        with pytest.raises(BenchmarkError):
            ExperimentConfig(num_queries=0)
        with pytest.raises(BenchmarkError):
            ExperimentConfig(walk_length=0)
        with pytest.raises(BenchmarkError):
            ExperimentConfig(datasets=("NOPE",))


class TestDeviceScaling:
    def test_gpu_lanes_track_query_count(self):
        small = scaled_device_for("gpu", 40, waves=4)
        large = scaled_device_for("gpu", 400, waves=4)
        assert small.parallel_lanes == 10
        assert large.parallel_lanes == 100

    def test_cpu_scaled_by_same_factor(self):
        gpu = scaled_device_for("gpu", 400, waves=4)
        cpu = scaled_device_for("cpu", 400, waves=4)
        assert cpu.parallel_lanes < gpu.parallel_lanes

    def test_unknown_platform_rejected(self):
        with pytest.raises(BenchmarkError):
            scaled_device_for("fpga", 10)


class TestGraphAndQueryPreparation:
    def test_unweighted_workload_gets_unit_weights(self):
        graph = prepare_graph("YT", "node2vec_unweighted", weights="powerlaw")
        assert not graph.is_weighted

    def test_weighted_workload_keeps_scheme(self):
        graph = prepare_graph("YT", "node2vec", weights="powerlaw", alpha=1.5)
        assert graph.is_weighted

    def test_unknown_workload_rejected(self):
        with pytest.raises(BenchmarkError):
            prepare_graph("YT", "random-walk-9000")

    def test_metapath_queries_use_schema_depth(self):
        graph = prepare_graph("YT", "metapath")
        queries = prepare_queries(graph, "metapath", TINY)
        assert queries[0].max_length == 5

    def test_query_count_respects_config(self):
        graph = prepare_graph("YT", "node2vec")
        assert len(prepare_queries(graph, "node2vec", TINY)) == 12


class TestSystemRunners:
    def test_run_baseline_ok(self):
        run = run_baseline("FlowWalker", "YT", "node2vec", TINY)
        assert run.ok
        assert run.time_ms > 0
        assert run.cell() == f"{run.time_ms:.4f}"

    def test_run_flexiwalker_ok(self):
        run = run_flexiwalker("YT", "node2vec", TINY)
        assert run.ok
        assert run.system == "FlexiWalker"

    def test_run_flexiwalker_ablation_label(self):
        run = run_flexiwalker("YT", "node2vec", TINY, selection="ervs_only", check_memory=False)
        assert run.system == "FlexiWalker[ervs_only]"

    def test_oom_reported_for_nextdoor_on_sk(self):
        config = ExperimentConfig(num_queries=12, walk_length=3, datasets=("SK",))
        run = run_baseline("NextDoor", "SK", "node2vec", config)
        assert run.status == "OOM"
        assert run.cell() == "OOM"

    def test_oot_reported_when_over_limit(self):
        config = ExperimentConfig(num_queries=12, walk_length=3, datasets=("YT",), oot_limit_ms=1e-9)
        run = run_baseline("FlowWalker", "YT", "node2vec", config)
        assert run.status == "OOT"

    def test_run_fixed_sampler(self):
        run = run_fixed_sampler("YT", "node2vec", TINY, EnhancedReservoirSampler(), label="eRVS-only")
        assert run.ok
        assert run.system == "eRVS-only"


class TestTables:
    def test_format_table_aligns_columns(self):
        text = format_table(["name", "value"], [["a", 1.0], ["longer", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines[1:])) <= 2

    def test_format_table_with_title(self):
        assert format_table(["x"], [[1]], title="T").startswith("T\n")

    def test_format_mapping(self):
        text = format_mapping({"metric": 3.0}, title="M")
        assert "metric" in text
        assert "3.0" in text
