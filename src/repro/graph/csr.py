"""Compressed-sparse-row (CSR) graph representation.

The CSR layout is the storage format used by every GPU random-walk framework
the paper compares against (FlowWalker, NextDoor, C-SAW, Skywalker): a
row-pointer array ``indptr`` of length ``num_nodes + 1`` and a column-index
array ``indices`` of length ``num_edges``, with parallel per-edge arrays for
the intrinsic edge property weights ``h(v, u)`` and optional edge labels
(MetaPath).  Neighbour lists of a node are contiguous slices, which is what
makes warp-coalesced scans (reservoir sampling) and strided random probes
(rejection sampling) meaningfully different in memory cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError


@dataclass
class CSRGraph:
    """A directed graph in CSR form with per-edge property weights.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``num_nodes + 1``; neighbours of node ``v``
        occupy ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int64`` array of destination node ids, length ``num_edges``.
    weights:
        ``float64`` array of intrinsic edge property weights ``h``, parallel
        to ``indices``.  Defaults to all-ones (unweighted graph).
    labels:
        Optional ``int64`` array of edge labels, parallel to ``indices``
        (used by MetaPath).
    name:
        Optional human-readable name (dataset tag).
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray | None = None
    labels: np.ndarray | None = None
    name: str = ""
    _in_degree_cache: np.ndarray | None = field(default=None, repr=False, compare=False)
    _edge_key_cache: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise GraphError("indptr and indices must be one-dimensional arrays")
        if self.indptr.size == 0:
            raise GraphError("indptr must have at least one entry")
        if self.indptr[0] != 0:
            raise GraphError("indptr must start at 0")
        if self.indptr[-1] != self.indices.size:
            raise GraphError(
                f"indptr[-1] ({int(self.indptr[-1])}) must equal the number of edges "
                f"({self.indices.size})"
            )
        if np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= self.num_nodes):
            raise GraphError("edge destination out of range")
        if self.weights is None:
            self.weights = np.ones(self.indices.size, dtype=np.float64)
        else:
            self.weights = np.asarray(self.weights, dtype=np.float64)
            if self.weights.shape != self.indices.shape:
                raise GraphError("weights must be parallel to indices")
            if np.any(self.weights < 0):
                raise GraphError("edge property weights must be non-negative")
        if self.labels is not None:
            self.labels = np.asarray(self.labels, dtype=np.int64)
            if self.labels.shape != self.indices.shape:
                raise GraphError("labels must be parallel to indices")

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return int(self.indptr.size - 1)

    @property
    def num_edges(self) -> int:
        return int(self.indices.size)

    @property
    def has_labels(self) -> bool:
        return self.labels is not None

    @property
    def is_weighted(self) -> bool:
        """True when the property weights are not uniformly 1."""
        return bool(self.weights is not None and not np.all(self.weights == 1.0))

    def degree(self, node: int) -> int:
        """Out-degree of ``node``."""
        self._check_node(node)
        return int(self.indptr[node + 1] - self.indptr[node])

    def degrees(self) -> np.ndarray:
        """Out-degree of every node as an ``int64`` array."""
        return np.diff(self.indptr)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every node (cached after the first call)."""
        if self._in_degree_cache is None:
            self._in_degree_cache = np.bincount(self.indices, minlength=self.num_nodes).astype(np.int64)
        return self._in_degree_cache

    def max_degree(self) -> int:
        degs = self.degrees()
        return int(degs.max()) if degs.size else 0

    # ------------------------------------------------------------------ #
    # Neighbour access
    # ------------------------------------------------------------------ #
    def neighbors(self, node: int) -> np.ndarray:
        """Destination ids of the out-edges of ``node`` (a CSR slice view)."""
        self._check_node(node)
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def edge_weights(self, node: int) -> np.ndarray:
        """Property weights ``h(node, ·)`` of the out-edges of ``node``."""
        self._check_node(node)
        return self.weights[self.indptr[node]:self.indptr[node + 1]]

    def edge_labels(self, node: int) -> np.ndarray:
        """Edge labels of the out-edges of ``node`` (requires labels)."""
        if self.labels is None:
            raise GraphError("graph has no edge labels")
        self._check_node(node)
        return self.labels[self.indptr[node]:self.indptr[node + 1]]

    def edge_slice(self, node: int) -> tuple[int, int]:
        """``(start, stop)`` positions of ``node``'s edges in the edge arrays."""
        self._check_node(node)
        return int(self.indptr[node]), int(self.indptr[node + 1])

    def has_edge(self, src: int, dst: int) -> bool:
        """True when the directed edge ``src -> dst`` exists.

        Neighbour lists are kept sorted by the builders, so this is a binary
        search; it mirrors the ``dist(v', u) == 1`` check Node2Vec and
        2nd-order PageRank perform per candidate neighbour.
        """
        nbrs = self.neighbors(src)
        if nbrs.size == 0:
            return False
        pos = np.searchsorted(nbrs, dst)
        return bool(pos < nbrs.size and nbrs[pos] == dst)

    def _edge_keys(self) -> np.ndarray:
        """``src * num_nodes + dst`` of every edge, globally sorted.

        CSR rows are contiguous in source order and each row's destinations
        are sorted, so the combined key array is sorted as a whole — one
        global binary search answers an edge-existence query.  Built lazily
        and cached (host-side acceleration only; simulated costs are charged
        by the workloads' cost hooks, not by how membership is computed).
        """
        if self._edge_key_cache is None:
            sources = np.repeat(
                np.arange(self.num_nodes, dtype=np.int64), np.diff(self.indptr)
            )
            self._edge_key_cache = sources * np.int64(self.num_nodes) + self.indices
        return self._edge_key_cache

    def has_edges(self, srcs: np.ndarray, dsts: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`has_edge` over parallel source/destination arrays.

        The batched second-order workloads (Node2Vec, 2nd-order PageRank) ask
        for the ``dist(v', u) == 1`` classification of every candidate edge of
        a whole frontier at once; answering through one global searchsorted
        over the sorted edge keys replaces a per-segment Python-level
        bisection loop.  Results are exact booleans, so this cannot perturb
        any transition weight.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        if srcs.size == 0 or self.num_edges == 0:
            return np.zeros(srcs.shape, dtype=bool)
        keys = srcs * np.int64(self.num_nodes) + np.asarray(dsts, dtype=np.int64)
        edge_keys = self._edge_keys()
        pos = np.searchsorted(edge_keys, keys)
        pos = np.minimum(pos, self.num_edges - 1)
        return edge_keys[pos] == keys

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def with_weights(self, weights: np.ndarray, name: str | None = None) -> CSRGraph:
        """Return a copy of this graph with replaced property weights.

        ``indptr``/``indices`` are shared unchanged, so the in-degree and
        edge-key caches (both pure functions of the topology) carry over —
        a derived graph must not silently rebuild O(E) structures its parent
        already paid for.
        """
        return CSRGraph(
            indptr=self.indptr,
            indices=self.indices,
            weights=np.asarray(weights, dtype=np.float64),
            labels=self.labels,
            name=self.name if name is None else name,
            _in_degree_cache=self._in_degree_cache,
            _edge_key_cache=self._edge_key_cache,
        )

    def with_labels(self, labels: np.ndarray) -> CSRGraph:
        """Return a copy of this graph with edge labels attached.

        Topology caches propagate exactly as in :meth:`with_weights`.
        """
        return CSRGraph(
            indptr=self.indptr,
            indices=self.indices,
            weights=self.weights,
            labels=np.asarray(labels, dtype=np.int64),
            name=self.name,
            _in_degree_cache=self._in_degree_cache,
            _edge_key_cache=self._edge_key_cache,
        )

    def memory_footprint_bytes(self, weight_bytes: int = 8) -> int:
        """Approximate device memory needed to hold the graph.

        ``weight_bytes`` is 8 for float64, 4 for float32 and 1 for the INT8
        low-precision extension of Section 7.2.
        """
        return int(
            self.indptr.size * 8
            + self.indices.size * 8
            + self.indices.size * weight_bytes
            + (self.indices.size * 8 if self.labels is not None else 0)
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise GraphError(f"node {node} out of range [0, {self.num_nodes})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"CSRGraph({self.num_nodes} nodes, {self.num_edges} edges"
            f"{', labeled' if self.has_labels else ''}"
            f"{', weighted' if self.is_weighted else ''}{tag})"
        )
